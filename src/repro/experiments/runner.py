"""Batch experiment runner: (graph × program × engine × seed) grids.

The simulator executes one cell at a time; scaling to many scenarios is the
runner's job.  A *cell* pins everything needed to reproduce one simulated
execution — graph family, size, seed, node program, engine — so a grid of
cells can be expanded up front, executed sequentially or across
``multiprocessing`` workers (:func:`run_grid`), streamed as results arrive
(``run_grid(..., stream=True)`` / :func:`iter_grid_records`), and
aggregated into one JSON document (:func:`results_payload` /
:func:`write_results`).

Programs are resolved through the declarative registry
(:mod:`repro.api.registry`): a cell's ``program`` axis names a
:class:`~repro.api.registry.ProgramSpec`, which carries the driver, the
metrics summary and the batched-execution recipe.  All registered
programs — including ``lemma310``, ``rounding-exec``, ``tree-sum`` and the
``cds`` composite — are grid-drivable; nothing is hard-coded here.

Design points:

* **Determinism.** Cells carry their own seed; a grid run with ``jobs=1``
  is bit-for-bit reproducible, and worker parallelism cannot reorder the
  output (results are returned in cell order regardless of completion
  order; only the explicit streaming path exposes completion order).
* **Structured failures.** A cell that raises — bad family, simulation
  limit, oversized message — produces an ``ok=False`` record with the
  exception type and message instead of tearing down the whole grid;
  malformed grid *axes* (unknown program, engine or strategy names) raise
  structured :class:`~repro.errors.UnknownProgramError` /
  :class:`~repro.errors.UnknownEngineError` /
  :class:`~repro.errors.UnknownStrategyError` at expansion/dispatch time.
* **Generate once, share everywhere.** All cells of one (family, n, seed)
  work item run on the same topology.  Sequentially the Network object is
  reused directly; across process workers the parent generates each graph
  once and ships its CSR arrays through ``multiprocessing.shared_memory``
  (:mod:`repro.experiments.sharedmem`), so workers skip graph generation
  entirely and nothing big travels through the pool queue.
* **Batched sweeps, ragged or uniform.** ``strategy="batch"`` groups
  vector-engine cells by (family, program) — sizes *and* seeds stack —
  and executes each group as **one** ragged stacked message plane
  (:func:`repro.congest.engine.batched.iter_stacked`) instead of K
  per-node program instantiations.  Split results are bit-for-bit
  identical to per-cell runs — groups that cannot stack (ineligible
  program, any error) transparently fall back to the per-cell path, so
  the strategy only ever changes wall-clock, never records.
* **Streaming, per record.** Execution is organized as *dispatch units*
  (one cell, or one stacked batch group), and the streaming iterators
  yield record by record in completion order.  In-process, a stacked
  group streams *per instance*: the moment an instance's termination mask
  flips, its record surfaces — early-finishing small instances interleave
  ahead of their larger siblings.  Across workers, records surface via
  the pool's unordered result queue as each unit's worker finishes.
  Either way callers can render progress or pipeline downstream work
  while the grid is still running.

The typed record objects live in :mod:`repro.api.records`; the functions
here keep returning the legacy dict shape for compatibility (it is also
the JSON artifact format).  :func:`expand_grid` and :func:`run_cell` are
deprecation shims for the :class:`repro.api.Experiment` builder surface.
"""

from __future__ import annotations

import json
import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.api.records import RunRecord, as_record_dicts
from repro.api.registry import (
    available_programs,
    batchable_programs,
    program_spec,
)
from repro.congest.engine import available_engines
from repro.congest.network import Network
from repro.errors import UnknownEngineError, UnknownStrategyError
from repro.graphs.suite import suite_instance

__all__ = [
    "GridCell",
    "available_programs",
    "available_strategies",
    "batchable_programs",
    "expand_grid",
    "iter_grid_records",
    "run_cell",
    "run_batched_group",
    "run_grid",
    "run_grid_records",
    "summarize_results",
    "results_payload",
    "write_results",
]


@dataclass(frozen=True)
class GridCell:
    """One fully-specified simulated execution."""

    family: str
    n: int
    program: str
    engine: str
    seed: int = 7

    @property
    def key(self) -> str:
        return f"{self.family}-{self.n}/{self.program}/{self.engine}/s{self.seed}"

    @property
    def topology_key(self) -> Tuple[str, int, int]:
        """Cells sharing this key run on the identical generated graph."""
        return (self.family, self.n, self.seed)

    @property
    def group_key(self) -> Tuple[str, str, str]:
        """Cells sharing this key differ only by (n, seed) — one batch group.

        Since the ragged stacked plane, groups span *sizes* as well as
        seeds: mixed-size sweeps of one (family, program, engine) stack
        into a single plane with per-instance offset tables.
        """
        return (self.family, self.program, self.engine)


#: Execution strategies :func:`run_grid` accepts.
STRATEGIES = ("cell", "batch")


def available_strategies() -> List[str]:
    """Names of the grid execution strategies."""
    return list(STRATEGIES)


def _expand_cells(
    families: Sequence[str],
    sizes: Sequence[int],
    programs: Sequence[str] | None = None,
    engines: Sequence[str] | None = None,
    seed: int = 7,
    seeds: Sequence[int] | None = None,
) -> List[GridCell]:
    """Cartesian expansion of the grid axes into concrete cells.

    ``seeds`` sweeps multiple topologies per (family, size) — the axis the
    ``batch`` strategy stacks; it defaults to the single ``seed``.  The
    ``programs`` axis defaults to every registered simulation program
    (composites such as ``cds`` must be requested by name).  Unknown
    program or engine names fail fast with a structured error — one bad
    axis value would otherwise poison every cell it touches.
    """
    programs = list(programs) if programs is not None else available_programs()
    engines = list(engines) if engines is not None else available_engines()
    seed_list = list(seeds) if seeds is not None else [seed]
    for program in programs:
        program_spec(program)  # raises UnknownProgramError on a bad name
    registered = set(available_engines())
    for engine in engines:
        if engine not in registered:
            raise UnknownEngineError(engine, available_engines())
    return [
        GridCell(family=f, n=n, program=p, engine=e, seed=s)
        for f in families
        for n in sizes
        for p in programs
        for e in engines
        for s in seed_list
    ]


def expand_grid(
    families: Sequence[str],
    sizes: Sequence[int],
    programs: Sequence[str] | None = None,
    engines: Sequence[str] | None = None,
    seed: int = 7,
    seeds: Sequence[int] | None = None,
) -> List[GridCell]:
    """Deprecated: build grids with :class:`repro.api.Experiment` instead.

    Identical behaviour to the builder's ``.cells()`` — kept as a shim so
    existing callers and artifacts stay valid (removal planned for 2.0).
    """
    warnings.warn(
        "expand_grid() is deprecated; use repro.api.Experiment(...).cells()",
        DeprecationWarning,
        stacklevel=2,
    )
    return _expand_cells(
        families, sizes, programs=programs, engines=engines, seed=seed, seeds=seeds
    )


def build_network(cell: GridCell) -> Network:
    """Generate the cell's graph and compile it into a CONGEST network."""
    inst = suite_instance(cell.family, cell.n, seed=cell.seed)
    return Network.congest(inst.graph)


def _run_cell_record(
    cell: GridCell, network: Optional[Network] = None
) -> RunRecord:
    """Execute one cell; never raises — failures become structured records.

    ``network`` short-circuits graph generation when the caller already
    holds the cell's topology (sequential reuse or a shared-memory
    reconstruction); the timed section covers simulation only either way.
    """
    try:
        spec = program_spec(cell.program)
        if network is None:
            network = build_network(cell)
        start = time.perf_counter()
        outcome = spec.run(network, cell.engine)
        wall = time.perf_counter() - start
    except Exception as exc:  # noqa: BLE001 - the grid must survive any cell
        return RunRecord(
            cell=cell,
            ok=False,
            error={"type": type(exc).__name__, "message": str(exc)},
        )
    return RunRecord(
        cell=cell,
        ok=True,
        wall_s=wall,
        metrics=spec.cell_metrics(network, outcome),
    )


def run_cell(
    cell: GridCell, network: Optional[Network] = None
) -> Dict[str, object]:
    """Deprecated: run cells through :class:`repro.api.Experiment`.

    Kept as a shim returning the legacy dict record (removal planned for
    2.0); the typed equivalent is a :class:`~repro.api.records.RunRecord`.
    """
    warnings.warn(
        "run_cell() is deprecated; use repro.api.Experiment "
        "(records expose .to_dict() for the legacy shape)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _run_cell_record(cell, network=network).to_dict()


def _iter_batched_group_records(
    cells: Sequence[GridCell],
    networks: Optional[Sequence[Optional[Network]]] = None,
) -> Iterator[Tuple[int, RunRecord]]:
    """Execute one batch group (same family/program/engine; any mix of
    sizes and seeds) as a single ragged stacked run, yielding
    ``(index_in_group, record)`` **the moment each instance terminates**.

    This is the in-group streaming path: a small instance that halts
    early surfaces its record while its larger siblings are still
    running, so stacked groups interleave with cell records in completion
    order.  Success records carry identical ``metrics`` blocks to the
    per-cell path (the stacked-plane parity guarantee) plus a ``batch``
    annotation recording the stack width and the record's stream latency
    (seconds from group dispatch to instance termination).  ``wall_s`` is
    the record's *marginal* simulation wall — time since the previous
    record of the group — so per-group and per-engine wall totals still
    sum to the group's shared simulation wall.

    Any error falls back to per-cell execution for the instances not yet
    yielded (already-yielded records are exact solo-parity results and
    stay valid); the per-cell runs reproduce each solo outcome, including
    structured per-cell failures.
    """
    from repro.congest.engine import iter_stacked

    cells = list(cells)
    nets: List[Optional[Network]] = (
        list(networks) if networks is not None else [None] * len(cells)
    )
    done = set()
    try:
        for i, cell in enumerate(cells):
            if nets[i] is None:
                nets[i] = build_network(cell)
        spec = program_spec(cells[0].program)
        inputs = (
            [spec.batch_inputs(net) for net in nets]
            if spec.batch_inputs is not None
            else None
        )
        start = prev = time.perf_counter()
        for k, sim in iter_stacked(
            nets,
            spec.batch_factory,
            inputs=inputs,
            # Per-instance round limits: a ragged group's limits are
            # size-derived, and an instance exceeding its *own* limit must
            # fall back to the per-cell path (where it reproduces its solo
            # SimulationLimitError) instead of borrowing a sibling's slack.
            max_rounds=[spec.batch_max_rounds(net) for net in nets],
        ):
            now = time.perf_counter()
            record = RunRecord(
                cell=cells[k],
                ok=True,
                wall_s=now - prev,
                batch={"k": len(cells), "stream_latency_s": now - start},
                metrics=spec.cell_metrics(nets[k], sim),
            )
            done.add(k)
            yield k, record
            # Restart the marginal-wall clock only after the consumer hands
            # control back: time the consumer spends processing the yielded
            # record must not count as simulation wall.
            prev = time.perf_counter()
    except Exception:  # noqa: BLE001 - stacking is an optimization only
        for i, (cell, net) in enumerate(zip(cells, nets)):
            if i not in done:
                yield i, _run_cell_record(cell, network=net)


def _run_batched_group_records(
    cells: Sequence[GridCell],
    networks: Optional[Sequence[Optional[Network]]] = None,
) -> List[RunRecord]:
    """Collected (cell-order) form of :func:`_iter_batched_group_records`."""
    records: List[Optional[RunRecord]] = [None] * len(cells)
    for i, record in _iter_batched_group_records(cells, networks=networks):
        records[i] = record
    return records  # type: ignore[return-value]


def run_batched_group(
    cells: Sequence[GridCell],
    networks: Optional[Sequence[Optional[Network]]] = None,
) -> List[Dict[str, object]]:
    """Legacy dict-record wrapper around the stacked group executor."""
    return [
        rec.to_dict() for rec in _run_batched_group_records(cells, networks=networks)
    ]


def _batch_plan(
    cells: Sequence[GridCell], batch_size: int
) -> List[Tuple[str, List[int]]]:
    """Partition cell indices into dispatch units for ``strategy="batch"``.

    Returns ``("batch", indices)`` units for stackable groups — vector
    engine, registry-batchable program, ≥ 2 cells sharing a
    :attr:`GridCell.group_key` (which spans sizes *and* seeds: mixed-size
    groups stack as one ragged plane), chunked to ``batch_size`` (0 =
    unlimited) — and ``("cell", [index])`` units for everything else.
    Units are emitted in first-occurrence order; record order is restored
    by index afterwards, so the strategy cannot reorder results.
    """
    stackable = set(batchable_programs())
    groups: Dict[tuple, List[int]] = {}
    order: List[tuple] = []
    for i, cell in enumerate(cells):
        batchable = cell.engine == "vector" and cell.program in stackable
        key = ("group",) + cell.group_key if batchable else ("solo", i)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(i)
    plan: List[Tuple[str, List[int]]] = []
    for key in order:
        indices = groups[key]
        if key[0] == "solo" or len(indices) < 2:
            plan.extend(("cell", [i]) for i in indices)
            continue
        step = batch_size if batch_size > 0 else len(indices)
        for lo in range(0, len(indices), step):
            chunk = indices[lo : lo + step]
            if len(chunk) < 2:
                plan.append(("cell", chunk))
            else:
                plan.append(("batch", chunk))
    return plan


def _plan_units(
    cells: Sequence[GridCell], strategy: str, batch_size: int
) -> List[Tuple[str, List[int]]]:
    """The dispatch units of one grid run under ``strategy``."""
    if strategy == "batch":
        return _batch_plan(cells, batch_size)
    return [("cell", [i]) for i in range(len(cells))]


# -- dispatch-unit execution ---------------------------------------------------


def _run_cell_task(task) -> List[RunRecord]:
    """Pool worker: attach the published topology (if any) and run."""
    cell, handle = task
    network = None
    if handle is not None:
        from repro.experiments.sharedmem import attach_network

        try:
            network = attach_network(handle)
        except Exception:  # pragma: no cover - attach races are host-specific
            network = None  # fall back to regenerating in the worker
    return [_run_cell_record(cell, network=network)]


def _run_batch_task(task) -> List[RunRecord]:
    """Pool worker: attach a published stacked topology group and run it."""
    cells, handle = task
    networks: Optional[List[Optional[Network]]] = None
    if handle is not None:
        from repro.experiments.sharedmem import attach_stacked

        try:
            networks = list(attach_stacked(handle))
        except Exception:  # pragma: no cover - attach races are host-specific
            networks = None
    return _run_batched_group_records(cells, networks=networks)


def _run_indexed_unit(task) -> Tuple[int, List[RunRecord]]:
    """Pool worker for streaming dispatch: one plan unit per task.

    Returns ``(unit_index, records)`` so the parent can match unordered
    completions back to plan positions.
    """
    index, (kind, payload, handle) = task
    if kind == "cell":
        return index, _run_cell_task((payload, handle))
    return index, _run_batch_task((payload, handle))


def _iter_units_sequential(
    cells: List[GridCell], plan: List[Tuple[str, List[int]]]
) -> Iterator[Tuple[int, RunRecord]]:
    """In-process execution, one record at a time, topologies cached by key.

    Batch groups stream *per instance*: each stacked record is yielded at
    its instance's termination (not when the whole group finishes), so a
    group's early finishers interleave ahead of its stragglers.
    """
    networks: Dict[tuple, Optional[Network]] = {}

    def net_for(cell: GridCell) -> Optional[Network]:
        key = cell.topology_key
        if key not in networks:
            try:
                networks[key] = build_network(cell)
            except Exception:  # noqa: BLE001 - recorded per cell later
                networks[key] = None
        return networks[key]

    for kind, indices in plan:
        if kind == "cell":
            cell = cells[indices[0]]
            yield indices[0], _run_cell_record(cell, network=net_for(cell))
        else:
            group = [cells[i] for i in indices]
            for local, record in _iter_batched_group_records(
                group, networks=[net_for(c) for c in group]
            ):
                yield indices[local], record


def _iter_units_pool(
    cells: List[GridCell],
    plan: List[Tuple[str, List[int]]],
    jobs: int,
) -> Iterator[Tuple[int, RunRecord]]:
    """Worker-pool execution: publish topologies once, stream completions.

    Units are consumed through ``imap_unordered`` — the pool's result
    queue — so each unit's records surface the moment its worker finishes,
    not when the whole map returns.  Unlike the sequential path, a batch
    group's records cross the process boundary together when the group's
    worker finishes (unit granularity); in-group per-instance streaming is
    an in-process (``jobs=1``) property.
    """
    import multiprocessing

    from repro.experiments.sharedmem import SharedStackedTopology, SharedTopology

    published: Dict[tuple, Optional[SharedTopology]] = {}
    stacks: List[SharedStackedTopology] = []
    tasks = []
    try:
        for kind, indices in plan:
            if kind == "cell":
                cell = cells[indices[0]]
                key = cell.topology_key
                if key not in published:
                    try:
                        published[key] = SharedTopology.publish(build_network(cell))
                    except Exception:  # noqa: BLE001 - cell records the failure
                        published[key] = None
                topology = published[key]
                tasks.append(
                    ("cell", cell, topology.handle if topology else None)
                )
            else:
                group = [cells[i] for i in indices]
                handle = None
                try:
                    stack = SharedStackedTopology.publish(
                        [build_network(c) for c in group]
                    )
                    stacks.append(stack)
                    handle = stack.handle
                except Exception:  # noqa: BLE001 - workers regenerate
                    handle = None
                tasks.append(("batch", group, handle))
        with multiprocessing.Pool(processes=min(jobs, len(tasks))) as pool:
            for index, records in pool.imap_unordered(
                _run_indexed_unit, list(enumerate(tasks))
            ):
                for offset, record in zip(plan[index][1], records):
                    yield offset, record
    finally:
        for topology in published.values():
            if topology is not None:
                topology.unlink()
        for stack in stacks:
            stack.unlink()


def _iter_units(
    cells: List[GridCell],
    jobs: int,
    strategy: str,
    batch_size: int,
) -> Iterator[Tuple[int, RunRecord]]:
    """Yield ``(cell_index, record)`` per record, in completion order."""
    if strategy not in STRATEGIES:
        raise UnknownStrategyError(strategy, available_strategies())
    plan = _plan_units(cells, strategy, batch_size)
    if jobs <= 1 or len(plan) <= 1:
        yield from _iter_units_sequential(cells, plan)
    else:
        yield from _iter_units_pool(cells, plan, jobs)


def iter_grid_records(
    cells: Iterable[GridCell],
    jobs: int = 1,
    strategy: str = "cell",
    batch_size: int = 0,
) -> Iterator[RunRecord]:
    """Stream typed records in *completion* order, record by record.

    Stacked batch groups stream per instance: when an instance's
    termination mask flips inside a ragged group, its record is yielded
    immediately (in-process execution; across workers a group's records
    arrive together when its worker finishes).  The record set is
    identical to :func:`run_grid_records`'s — only the order differs (and
    only under worker parallelism or batching); sort by cell position to
    restore the deterministic order.  Bad axis values raise eagerly, at
    the call — not on first iteration — so the error surfaces at the
    faulty call site even if the iterator is handed off or never
    consumed.
    """
    cells = list(cells)
    if strategy not in STRATEGIES:
        raise UnknownStrategyError(strategy, available_strategies())

    def generate() -> Iterator[RunRecord]:
        for _index, record in _iter_units(cells, jobs, strategy, batch_size):
            yield record

    return generate()


def run_grid_records(
    cells: Iterable[GridCell],
    jobs: int = 1,
    strategy: str = "cell",
    batch_size: int = 0,
) -> List[RunRecord]:
    """Run every cell; typed records in deterministic cell order.

    ``strategy="cell"`` executes one simulation per cell;
    ``strategy="batch"`` stacks each group of vector-engine sweep cells —
    seeds and sizes alike, as one ragged multi-instance plane —
    (``batch_size`` caps the stack width; 0 means one stack per group).
    Results come back in cell order under every combination, and each
    unique (family, n, seed) topology is generated exactly once — reused
    in-process sequentially, published through shared memory to workers.
    """
    cells = list(cells)
    results: List[Optional[RunRecord]] = [None] * len(cells)
    for index, record in _iter_units(cells, jobs, strategy, batch_size):
        results[index] = record
    return results  # type: ignore[return-value]


def run_grid(
    cells: Iterable[GridCell],
    jobs: int = 1,
    strategy: str = "cell",
    batch_size: int = 0,
    stream: bool = False,
):
    """Run every cell, optionally across ``jobs`` worker processes.

    Returns legacy dict records (the JSON artifact shape) in cell order.
    With ``stream=True`` it instead returns an iterator that yields each
    record as it completes — per instance inside stacked batch groups, in
    completion order, incremental — for progress rendering and pipelined
    consumers; the record *set* is identical either way.  Typed-record
    equivalents: :func:`run_grid_records` / :func:`iter_grid_records`.
    """
    if stream:
        return (
            rec.to_dict()
            for rec in iter_grid_records(
                cells, jobs=jobs, strategy=strategy, batch_size=batch_size
            )
        )
    return [
        rec.to_dict()
        for rec in run_grid_records(
            cells, jobs=jobs, strategy=strategy, batch_size=batch_size
        )
    ]


def summarize_results(results: Sequence[Mapping[str, object]]) -> Dict[str, object]:
    """Aggregate a grid run: totals per engine plus cross-engine speedups.

    Accepts legacy dict records or typed :class:`RunRecord` objects.  The
    ``speedup_vs_reference`` map reports, for every non-reference engine,
    total-reference-wall / total-engine-wall over the cells where *both*
    engines succeeded on the same (family, n, program, seed) work item —
    the apples-to-apples wall-clock ratio.
    """
    per_engine: Dict[str, Dict[str, float]] = {}
    walls: Dict[tuple, Dict[str, float]] = {}
    failures = []
    for rec in as_record_dicts(results):
        cell = rec["cell"]  # type: ignore[index]
        engine = cell["engine"]  # type: ignore[index]
        agg = per_engine.setdefault(
            engine, {"cells": 0, "ok": 0, "wall_s": 0.0, "rounds": 0, "messages": 0}
        )
        agg["cells"] += 1
        if rec.get("ok"):
            metrics = rec["metrics"]  # type: ignore[index]
            agg["ok"] += 1
            agg["wall_s"] += rec["wall_s"]  # type: ignore[operator]
            agg["rounds"] += metrics["rounds"]  # type: ignore[index]
            agg["messages"] += metrics["total_messages"]  # type: ignore[index]
            item = (cell["family"], cell["n"], cell["program"], cell["seed"])  # type: ignore[index]
            walls.setdefault(item, {})[engine] = rec["wall_s"]  # type: ignore[assignment]
        else:
            failures.append({"key": rec["key"], "error": rec["error"]})
    speedups: Dict[str, float] = {}
    for engine in per_engine:
        if engine == "reference":
            continue
        ref_total = eng_total = 0.0
        for by_engine in walls.values():
            if "reference" in by_engine and engine in by_engine:
                ref_total += by_engine["reference"]
                eng_total += by_engine[engine]
        if eng_total > 0:
            speedups[engine] = round(ref_total / eng_total, 3)
    return {
        "per_engine": per_engine,
        "speedup_vs_reference": speedups,
        "failures": failures,
    }


def results_payload(
    results: Sequence[Mapping[str, object]], meta: Mapping[str, object] | None = None
) -> Dict[str, object]:
    """The canonical JSON document for one grid run."""
    return {
        "generator": "repro.experiments.runner",
        "meta": dict(meta or {}),
        "summary": summarize_results(results),
        "cells": as_record_dicts(results),
    }


def write_results(
    path: str | Path,
    results: Sequence[Mapping[str, object]],
    meta: Mapping[str, object] | None = None,
) -> Path:
    """Write the grid run to ``path`` as pretty-printed JSON."""
    path = Path(path)
    path.write_text(json.dumps(results_payload(results, meta), indent=2) + "\n")
    return path
