"""Declarative program registry: one :class:`ProgramSpec` per workload.

A :class:`ProgramSpec` bundles everything the experiment layer needs to
drive one named workload over an arbitrary compiled topology — the driver
callable, the result-summary hook, batched-execution eligibility, engine
restrictions and default parameters.  Program modules register their own
spec at import time (:func:`register_program`), exactly like engines and
vector kernels register themselves, so the runner, the CLI and the
:class:`~repro.api.experiment.Experiment` builder all discover workloads
from one place instead of hard-coding driver closures.

Two kinds of spec exist:

* **simulation specs** (``program`` set, ``composite=False``) wrap one
  :class:`~repro.congest.node.NodeProgram`; their driver returns a
  :class:`~repro.congest.engine.base.SimulationResult` and the standard
  metrics block (rounds, messages, bits) is derived from it;
* **composite specs** (``composite=True``) wrap a multi-stage pipeline
  (e.g. the Theorem 1.4 CDS pipeline) whose driver returns a
  domain-specific result; they supply their own full ``metrics`` callable.

The registry is populated lazily: the first query imports
:mod:`repro.congest.programs` and :mod:`repro.cds.pipeline`, which register
the built-in specs as a side effect.  Third-party code can register
additional specs the same way before expanding a grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import UnknownProgramError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.congest.network import Network


@dataclass(frozen=True)
class ProgramSpec:
    """Everything needed to run one named workload on a compiled network.

    Attributes
    ----------
    name:
        Registry key; the value of a grid cell's ``program`` axis.
    description:
        One line for catalogs and ``--help`` output.
    drive:
        ``(network, engine, **default_params) -> outcome``.  For simulation
        specs the outcome is a ``SimulationResult``; composites return
        their pipeline result.  Network-only signature — shared-memory CSR
        reconstructions must plug in without a ``networkx`` graph (drivers
        needing one use the lazy ``network.graph``).
    program:
        The :class:`~repro.congest.node.NodeProgram` subclass executed, or
        ``None`` for composites.  Registry-completeness tests key off this.
    summarize:
        Optional ``SimulationResult -> dict`` of program-specific metrics
        (e.g. ``ds_size``), computed from node outputs only so per-cell and
        stacked executions produce identical values.
    metrics:
        Optional full override ``(network, outcome) -> metrics block``;
        composites use it to shape their block like a simulation record.
    batch_factory / batch_max_rounds / batch_inputs:
        Stacked-execution recipe: the program class handed to
        :func:`~repro.congest.engine.batched.run_stacked`, its round limit,
        and (optionally) per-instance input construction.  ``batch_factory``
        is ``None`` for programs the ``batch`` strategy cannot stack.
    batch_prologue_rounds:
        Optional ``network -> int`` estimating how many scalar *prologue*
        rounds each instance runs before its kernel takeover absorbs it
        into the stacked plane (kernels with ``takeover_round > 1``).
        The scheduler's cost model charges these per-instance scalar
        rounds on top of the plane cost; ``None`` means the kernel takes
        over at round 1 and the plane cost alone is accurate.
    engines:
        Engine names the spec is eligible for (``None`` = every registered
        engine).  Enforced by the :class:`~repro.api.experiment.Experiment`
        builder's engine negotiation: explicitly selecting this program
        with an excluded engine raises
        :class:`~repro.errors.EngineRestrictionError` at expansion time,
        while defaulted all-programs grids drop the restricted pairs.
    default_params:
        Keyword arguments applied to every ``drive`` call — the spec's
        canonical workload parameters.
    composite:
        ``True`` for multi-stage pipeline specs; excluded from the default
        grid axes (request them explicitly by name).
    quality_metric:
        Name of the metrics-block entry holding the spec's solution size
        (e.g. ``"ds_size"``), or ``None`` for specs that produce no
        certifiable solution.  Setting it opts the spec into the
        certification oracle (``--certify`` grids attach a ``quality``
        block to its records) *and* into the registry-wide paper-bound
        tripwire test, which certifies every such spec on the small zoo.
    quality_bound:
        ``max_degree -> float``: the spec's documented approximation
        guarantee against OPT (e.g. :func:`repro.analysis.bounds.greedy_bound`
        for the sequential greedy's ``H(Delta+1) <= ln(Delta+1)+1``).
        ``None`` means certified ratios are reported but not gated.
    """

    name: str
    description: str
    drive: Callable[..., object]
    program: Optional[type] = None
    summarize: Optional[Callable[[object], Dict[str, object]]] = None
    metrics: Optional[Callable[["Network", object], Dict[str, object]]] = None
    batch_factory: Optional[type] = None
    batch_max_rounds: Optional[Callable[["Network"], int]] = None
    batch_inputs: Optional[Callable[["Network"], Mapping[int, object]]] = None
    batch_prologue_rounds: Optional[Callable[["Network"], int]] = None
    engines: Optional[Tuple[str, ...]] = None
    default_params: Mapping[str, object] = field(default_factory=dict)
    composite: bool = False
    quality_metric: Optional[str] = None
    quality_bound: Optional[Callable[[int], float]] = None

    @property
    def batchable(self) -> bool:
        """Whether the ``batch`` strategy can stack this spec's cells."""
        return self.batch_factory is not None and self.batch_max_rounds is not None

    def supports_engine(self, engine: str) -> bool:
        return self.engines is None or engine in self.engines

    def run(self, network: "Network", engine: str) -> object:
        """Execute the workload once (the driver plus default params)."""
        return self.drive(network, engine, **dict(self.default_params))

    def cell_metrics(self, network: "Network", outcome: object) -> Dict[str, object]:
        """The metrics block of one success record.

        Simulation specs share one canonical shape (so engine-parity and
        strategy-parity checks compare like with like); composites shape
        their own via ``metrics``.
        """
        if self.metrics is not None:
            return dict(self.metrics(network, outcome))
        sim = outcome  # a SimulationResult by the simulation-spec contract
        block: Dict[str, object] = {
            "n": network.n,
            "max_degree": network.max_degree,
            "rounds": sim.rounds,
            "total_messages": sim.total_messages,
            "total_bits": sim.total_bits,
            "max_message_bits": sim.max_message_bits,
            "all_halted": sim.all_halted,
        }
        if self.summarize is not None:
            block.update(self.summarize(sim))
        return block


_REGISTRY: Dict[str, ProgramSpec] = {}
#: "unloaded" -> "loading" (re-entrant imports short-circuit) -> "loaded".
#: Reset to "unloaded" on failure so a transient import error is retried —
#: and reported — on the next query instead of leaving a silently empty
#: registry for the rest of the process.
_BUILTINS_STATE = "unloaded"


def _ensure_builtin_specs() -> None:
    """Import the modules that register the built-in specs (idempotent)."""
    global _BUILTINS_STATE
    if _BUILTINS_STATE != "unloaded":
        return
    _BUILTINS_STATE = "loading"
    try:
        import repro.cds.pipeline  # noqa: F401  (registers the composite spec)
        import repro.congest.programs  # noqa: F401  (registers simulation specs)
    except BaseException:
        _BUILTINS_STATE = "unloaded"
        raise
    _BUILTINS_STATE = "loaded"


def register_program(spec: ProgramSpec, replace: bool = False) -> ProgramSpec:
    """Add ``spec`` to the registry; returns it so modules can keep a ref.

    Re-registering an existing name is an error unless ``replace=True`` —
    a silent overwrite would let two modules fight over one axis value.
    """
    if not spec.name:
        raise ValueError("a ProgramSpec needs a non-empty name")
    if not replace and spec.name in _REGISTRY:
        raise ValueError(f"program {spec.name!r} is already registered")
    if not spec.composite and spec.program is None:
        raise ValueError(
            f"simulation spec {spec.name!r} must name its NodeProgram class"
        )
    _REGISTRY[spec.name] = spec
    return spec


def program_spec(name: str) -> ProgramSpec:
    """Look up a spec by name; unknown names raise a structured error."""
    _ensure_builtin_specs()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownProgramError(
            name, available_programs(include_composite=True)
        ) from None


def registered_specs(include_composite: bool = True) -> List[ProgramSpec]:
    """All registered specs, sorted by name."""
    _ensure_builtin_specs()
    return [
        _REGISTRY[name]
        for name in sorted(_REGISTRY)
        if include_composite or not _REGISTRY[name].composite
    ]


def available_programs(include_composite: bool = False) -> List[str]:
    """Sorted names of the registered programs.

    Simulation programs only by default — the set grid axes expand over;
    composites (e.g. ``cds``) are runnable but must be requested by name.
    """
    return [spec.name for spec in registered_specs(include_composite)]


def batchable_programs() -> List[str]:
    """Sorted names of the programs the ``batch`` strategy can stack."""
    return [spec.name for spec in registered_specs() if spec.batchable]
