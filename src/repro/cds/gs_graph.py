"""The ``G_S`` graph of Claim 4.1.

Given a dominating set ``S`` of ``G``, ``G_S`` has node set ``S`` and an
edge between two S-nodes whenever their distance in ``G`` is at most 3.
Claim 4.1: ``G_S`` is connected iff ``G`` is connected.  Every ``G_S`` edge
stores a witness path of length <= 3 in ``G`` so later stages can realize
cluster connections with concrete connector nodes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import networkx as nx

from repro.analysis.verify import require_dominating_set


@dataclass
class GSGraph:
    """``G_S`` plus witness paths (keyed by sorted S-node pair)."""

    graph: nx.Graph
    s_nodes: List[int]
    gs: nx.Graph
    witness: Dict[Tuple[int, int], List[int]]

    def witness_path(self, u: int, v: int) -> List[int]:
        """Witness path from ``u`` to ``v`` (length <= 3), oriented u -> v."""
        key = (u, v) if u < v else (v, u)
        path = self.witness[key]
        return path if path[0] == u else list(reversed(path))


def build_gs_graph(graph: nx.Graph, s_nodes: Iterable[int]) -> GSGraph:
    """BFS to depth 3 from every S-node; record lexicographically smallest
    shortest witness paths."""
    s_list = sorted(set(s_nodes))
    require_dominating_set(graph, s_list, "G_S input")
    s_set = set(s_list)
    gs = nx.Graph()
    gs.add_nodes_from(s_list)
    witness: Dict[Tuple[int, int], List[int]] = {}
    for s in s_list:
        # Depth-3 BFS with parent tracking (sorted adjacency = deterministic).
        parent: Dict[int, int] = {s: -1}
        depth: Dict[int, int] = {s: 0}
        frontier = deque([s])
        while frontier:
            v = frontier.popleft()
            if depth[v] == 3:
                continue
            for u in sorted(graph.neighbors(v)):
                if u not in parent:
                    parent[u] = v
                    depth[u] = depth[v] + 1
                    frontier.append(u)
        for t in parent:
            if t == s or t not in s_set or t < s:
                continue
            path = [t]
            while path[-1] != s:
                path.append(parent[path[-1]])
            path.reverse()  # s .. t
            gs.add_edge(s, t)
            key = (s, t)
            if key not in witness or path < witness[key]:
                witness[key] = path
    return GSGraph(graph=graph, s_nodes=s_list, gs=gs, witness=witness)


def verify_claim_41(gsg: GSGraph) -> bool:
    """Claim 4.1: ``G_S`` connected iff ``G`` connected."""
    g_connected = nx.is_connected(gsg.graph) if gsg.graph.number_of_nodes() else True
    gs_connected = nx.is_connected(gsg.gs) if gsg.gs.number_of_nodes() else True
    return g_connected == gs_connected
