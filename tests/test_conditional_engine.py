"""The conditional-expectation engine: budget invariant, schedule rules,
determinism, and dominance over the randomized expectation."""

import random
import statistics

import networkx as nx
import pytest

from repro.derand.conditional import ConditionalExpectationEngine
from repro.derand.estimators import EstimatorConfig
from repro.domsets.cfds import CFDS
from repro.domsets.covering import CoveringInstance
from repro.errors import DerandomizationError
from repro.graphs.generators import regular_graph
from repro.graphs.normalize import normalize_graph
from repro.rounding.abstract import execute_rounding
from repro.rounding.coins import independent_coins
from repro.rounding.schemes import factor_two_scheme, one_shot_scheme


def singleton_schedule(scheme):
    """Fully sequential schedule (always valid)."""
    return [[u] for u in scheme.participating()]


@pytest.fixture
def tight_scheme():
    g = regular_graph(18, 5, seed=1)
    inst = CoveringInstance.from_graph(g, {v: 1.0 / 6.0 for v in g.nodes()})
    return g, factor_two_scheme(inst, eps=0.5, r=6.0)


class TestBudgetInvariant:
    def test_realized_size_below_initial_estimate(self, tight_scheme):
        g, scheme = tight_scheme
        engine = ConditionalExpectationEngine(scheme)
        result = engine.run(singleton_schedule(scheme))
        assert result.realized_size <= result.initial_estimate + 1e-9
        assert result.final_estimate <= result.initial_estimate + 1e-9

    def test_trajectory_monotone(self, tight_scheme):
        _, scheme = tight_scheme
        engine = ConditionalExpectationEngine(scheme)
        result = engine.run(singleton_schedule(scheme))
        for a, b in zip(result.trajectory, result.trajectory[1:]):
            assert b <= a + 1e-7

    def test_output_feasible(self, tight_scheme):
        g, scheme = tight_scheme
        engine = ConditionalExpectationEngine(scheme)
        result = engine.run(singleton_schedule(scheme))
        assert CFDS.fds(g, result.outcome.projected).is_feasible()

    def test_beats_random_average(self, tight_scheme):
        """The derandomized size is at most the randomized mean (that is the
        whole point of the method of conditional expectations)."""
        _, scheme = tight_scheme
        engine = ConditionalExpectationEngine(scheme)
        det = engine.run(singleton_schedule(scheme)).realized_size
        sizes = [
            execute_rounding(
                scheme, independent_coins(scheme, random.Random(s))
            ).accounted_size
            for s in range(60)
        ]
        assert det <= statistics.mean(sizes) + 1e-9


class TestScheduleValidation:
    def test_shared_constraint_in_batch_rejected(self, tight_scheme):
        _, scheme = tight_scheme
        participants = scheme.participating()
        # Two adjacent variables share a constraint for sure on a tight
        # regular instance: pick any constraint with two participants.
        inst = scheme.instance
        batch = None
        pset = set(participants)
        for cn in inst.constraints.values():
            inside = [u for u in cn.members if u in pset]
            if len(inside) >= 2:
                batch = inside[:2]
                break
        assert batch is not None
        engine = ConditionalExpectationEngine(scheme)
        with pytest.raises(DerandomizationError):
            engine.run([batch])

    def test_unscheduled_variable_rejected(self, tight_scheme):
        _, scheme = tight_scheme
        engine = ConditionalExpectationEngine(scheme)
        schedule = singleton_schedule(scheme)[:-1]
        with pytest.raises(DerandomizationError):
            engine.run(schedule)

    def test_double_scheduling_rejected(self, tight_scheme):
        _, scheme = tight_scheme
        engine = ConditionalExpectationEngine(scheme)
        u = scheme.participating()[0]
        with pytest.raises(DerandomizationError):
            engine.run([[u], [u]])

    def test_non_participant_rejected(self, tight_scheme):
        _, scheme = tight_scheme
        engine = ConditionalExpectationEngine(scheme)
        deterministic = [
            u for u in scheme.instance.value_vars if u not in set(scheme.participating())
        ]
        if deterministic:
            with pytest.raises(DerandomizationError):
                engine.run([[deterministic[0]]])

    def test_empty_batches_skipped(self, tight_scheme):
        _, scheme = tight_scheme
        engine = ConditionalExpectationEngine(scheme)
        schedule = [[]] + singleton_schedule(scheme) + [[]]
        result = engine.run(schedule)
        assert result.batches == len(scheme.participating())


class TestDeterminism:
    def test_identical_runs(self, tight_scheme):
        _, scheme = tight_scheme
        r1 = ConditionalExpectationEngine(scheme).run(singleton_schedule(scheme))
        r2 = ConditionalExpectationEngine(scheme).run(singleton_schedule(scheme))
        assert r1.decisions == r2.decisions
        assert r1.realized_size == r2.realized_size

    def test_batch_order_within_class_irrelevant(self):
        """Variables in one valid batch are constraint-disjoint, so any
        order of the same batching gives identical decisions."""
        g = normalize_graph(nx.path_graph(8))
        inst = CoveringInstance.from_graph(g, {v: 0.4 for v in g.nodes()})
        scheme = factor_two_scheme(inst, eps=0.2, r=5.0)
        parts = scheme.participating()
        far_apart = [u for u in parts if u in (0, 4)]
        if len(far_apart) == 2:
            rest = [[u] for u in parts if u not in far_apart]
            a = ConditionalExpectationEngine(scheme).run(
                [far_apart] + rest
            )
            b = ConditionalExpectationEngine(scheme).run(
                [list(reversed(far_apart))] + rest
            )
            assert a.decisions == b.decisions


class TestOneShotIntegration:
    def test_one_shot_dominating_set(self, medium_gnp):
        from repro.fractional.raising import kmw06_initial_fds

        initial = kmw06_initial_fds(medium_gnp, eps=0.5)
        delta_tilde = max(d for _, d in medium_gnp.degree()) + 1
        inst = CoveringInstance.from_graph(medium_gnp, initial.fds.values)
        scheme = one_shot_scheme(inst, delta_tilde)
        engine = ConditionalExpectationEngine(
            scheme, EstimatorConfig(mode="exact-product")
        )
        result = engine.run(singleton_schedule(scheme))
        ds = {o for o, x in result.outcome.projected.items() if x >= 1 - 1e-9}
        assert CFDS.from_set(medium_gnp, ds).is_feasible()
        # Lemma 3.8-style budget: ln(D~) A + n/D~ (+ tiny quantization).
        import math

        a = initial.raised_size
        n = medium_gnp.number_of_nodes()
        assert len(ds) <= math.log(delta_tilde) * a + n / delta_tilde + 1.0
