"""E7 — the comparison table behind the paper's positioning.

The paper's claim (Section 1): the deterministic CONGEST algorithms achieve
the *same* near-optimal approximation as the classic randomized /
centralized approaches.  This table races, on every suite instance:

* LP optimum (lower bound),
* exact OPT on tiny instances,
* sequential greedy ([Joh74]),
* randomized LP rounding (median of several seeds),
* deterministic coloring route (Theorem 1.2),
* deterministic decomposition route (Theorem 1.1).

Shape checks: the deterministic outputs never lose to the randomized
baseline by more than a small factor, and all sizes respect their analytic
guarantees.
"""

from __future__ import annotations

import statistics

from repro.analysis.bounds import greedy_bound, theorem12_approximation_bound
from repro.baselines.exact import exact_mds
from repro.baselines.greedy import greedy_mds
from repro.baselines.randomized_lp import randomized_lp_rounding_mds
from repro.experiments.harness import ExperimentReport, standard_suite
from repro.fractional.lp import lp_fractional_mds
from repro.mds.deterministic import approx_mds_coloring, approx_mds_decomposition

COLUMNS = [
    "graph", "n", "Delta", "lp", "opt", "greedy", "randomized", "det_col",
    "det_dec", "det/greedy", "det/rand",
]


def run(fast: bool = True, eps: float = 0.5, rand_seeds: int = 5) -> ExperimentReport:
    report = ExperimentReport(
        experiment="E7",
        claim="Deterministic CONGEST matches greedy/randomized quality",
        columns=COLUMNS,
    )
    for inst in standard_suite(fast):
        graph = inst.graph
        lp = lp_fractional_mds(graph)
        greedy = len(greedy_mds(graph))
        rand = int(
            statistics.median(
                len(randomized_lp_rounding_mds(graph, seed=s))
                for s in range(rand_seeds)
            )
        )
        det_col = approx_mds_coloring(graph, eps=eps).size
        det_dec = approx_mds_decomposition(graph, eps=eps).size
        opt = len(exact_mds(graph)) if inst.n <= 40 else None
        report.add_row(
            graph=inst.name,
            n=inst.n,
            Delta=inst.max_degree,
            lp=round(lp.optimum, 2),
            opt=opt if opt is not None else "-",
            greedy=greedy,
            randomized=rand,
            det_col=det_col,
            det_dec=det_dec,
            **{
                "det/greedy": round(det_col / max(1, greedy), 2),
                "det/rand": round(det_col / max(1, rand), 2),
            },
        )
        report.check("det_beats_bound", det_col <= theorem12_approximation_bound(
            eps, inst.max_degree) * max(lp.optimum, 1e-9) + 1e-6)
        report.check("greedy_beats_bound", greedy <= greedy_bound(
            inst.max_degree) * max(lp.optimum, 1e-9) + 1e-6)
        report.check("det_competitive", det_col <= 2 * rand + 2)
        if opt is not None:
            report.check("opt_sandwich", lp.optimum <= opt + 1e-6)
    return report
