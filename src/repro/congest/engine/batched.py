"""Batched multi-instance execution: K instances as one stacked message plane.

Statistical sweeps — the Theorem 1.1/1.2 style experiments — are many
independent runs of the *same* program family over different seeded
topologies.  Solo, each run pays the vector engine's per-round fixed cost
(a few dozen numpy dispatches) on arrays that are tiny for suite-sized
graphs, so a 50-seed sweep pays that overhead 50 times over.  This module
stacks the K instances into **one** columnar message plane so each numpy
kernel invocation advances every instance at once:

* :class:`StackedPlane` — K per-instance CSR topologies concatenated
  block-diagonally in instance-major order.  The layout is **ragged**:
  instances may have *different* node counts, described by per-instance
  offset tables (``local_ns[k]`` is instance ``k``'s size,
  ``node_offsets[k]`` its first global node, ``slot_offsets[k]`` its first
  edge slot).  Because no row ever references another instance's slots,
  all of :class:`~repro.congest.engine.vector.CsrPlane`'s row reductions
  (``np.add.reduceat`` over the non-empty rows) are exactly the
  per-instance reductions, computed in one call; per-instance aggregates
  reduce the same way over the ``node_offsets`` segment boundaries.
* :func:`iter_stacked` / :func:`run_stacked` — the batched run loop.  It
  instantiates programs and contexts *per instance with local ids* (so
  every message field, bit length and packed comparison key is identical
  to a solo run), performs the scalar ``setup`` + handover per instance,
  then drives the registered
  :class:`~repro.congest.engine.vector.VectorKernel` over the union plane
  with **per-instance accounting**: each instance has its own round
  counter, per-round series, wire totals, bit budget, round limit and
  termination mask.  The moment an instance's termination mask flips,
  :func:`iter_stacked` yields its finished :class:`SimulationResult` —
  in-group per-record streaming — and the result is bit-for-bit what the
  instance's solo ``vector``-engine run would have produced (the parity
  suite in ``tests/test_batched_engine.py`` enforces this across the
  graph zoo, for uniform and mixed-size groups alike).

Instances need not enter the plane in lockstep.  When the kernel's
``takeover_round`` exceeds 1 for any instance, each instance runs its own
**scalar prologue** — exact ``FastEngine`` collect/charge/receive
mechanics, driven by the shared global round clock — and joins the plane
at its *own* takeover round: the runner collects the instance's handover
broadcast, scatters it into the plane's pending traffic, and asks the
kernel to :meth:`~repro.congest.engine.vector.VectorKernel.absorb_instance`
the scalar state into its slice of the plane (the kernel boots from
:meth:`~repro.congest.engine.vector.VectorKernel.stacked_blank`, all nodes
dead, and lights slices up as instances arrive).  Because every instance
executes round ``r`` at global tick ``r``, no round skew exists and every
ledger entry matches the solo run.  Kernels may additionally publish a
:attr:`~repro.congest.engine.vector.VectorKernel.prologue_oracle` that
names the nodes whose ``receive`` can act in a given prologue round, so
the scalar prologue costs O(actors) instead of O(n) per round — this is
how the Lemma 3.10 program stacks heterogeneous inputs: its takeover
round is ``2 + 3 * num_colors``, a per-instance quantity, its
color-class rounds run as sparse scalar prologues, and its execution
phase runs vectorized on the shared plane.  Canonical uniform Lemma 3.10
instances instead take over at round 1 and run the color-class rounds
*in-plane* (targeted alpha traffic and all), so an all-canonical group is
a pure lockstep run with no scalar prologue; a mixed group carries
in-plane and prologue instances side by side, and one plane round may
then hold several differently-tagged pending parts.

Eligibility is deliberately narrow and fails loudly
(:class:`~repro.errors.BatchEligibilityError`) so callers can fall back to
per-cell execution:

* the program class declares :attr:`NodeProgram.message_specs` and has a
  registered kernel whose :attr:`VectorKernel.stackable` flag is set —
  the kernel promises to use ``plane.local_n_of`` / ``plane.local_ids``
  and to never consult ``self.network``;
* a kernel whose ``takeover_round`` exceeds 1 for some instance must
  implement ``absorb_instance`` (late joins are refused otherwise);
* the traffic queued at every handover point — ``setup`` for round-1
  takeovers, the last prologue round otherwise — is a conforming
  single-tag broadcast per instance; lockstep (round-1) groups must share
  one tag, while late joiners merge into the plane round's matching-tag
  part or ride along as an extra part (a silent instance joins any tag).

Node counts, bit budgets and round limits are all per-instance — mixed
sizes (and hence the size-derived CONGEST budgets) stack fine.  Instances
terminate independently: a finished instance's nodes leave the kernel's
live mask, so its portion of every later broadcast mask is empty — zero
messages, zero bits, no leakage into the siblings' accounting — and its
per-round series simply stops growing while the others run on.
"""

from __future__ import annotations

from typing import (
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.congest.engine.base import SimulationResult
from repro.congest.engine.fast import _EMPTY_INBOX, FastEngine, Inboxes
from repro.congest.engine.vector import (
    _NONCONFORMING,
    CsrPlane,
    PendingBroadcast,
    PendingTargeted,
    VectorEngine,
    VectorKernel,
    _as_int64,
    kernel_for,
    pending_parts,
)
from repro.congest.network import Network
from repro.congest.node import Context, NodeProgram
from repro.errors import (
    BatchEligibilityError,
    MessageTooLargeError,
    SimulationLimitError,
)

__all__ = [
    "StackedPlane",
    "iter_stacked",
    "plane_cost",
    "run_stacked",
    "stack_ineligibility",
]

#: Per-node budget stand-in for LOCAL-model instances (unbounded messages);
#: far above any bit length :func:`bit_length_array` accepts.
_NO_BUDGET = np.iinfo(np.int64).max


class StackedPlane(CsrPlane):
    """K instance topologies as one ragged block-diagonal CSR plane.

    Instance ``k`` owns the global node range
    ``node_offsets[k] .. node_offsets[k+1] - 1`` (its size is
    ``local_ns[k]``) and the edge-slot range
    ``slot_offsets[k] .. slot_offsets[k+1]``.  ``local_ids`` maps every
    global node back to its per-instance id, ``instance_of`` to its
    instance index, and ``local_n_of`` to its instance's node count — the
    ``n`` that node's program believes it is running on.  ``local_n`` is
    the shared size when the stack is uniform and ``None`` when it is
    ragged (kernels must use the per-node ``local_n_of`` either way).
    """

    __slots__ = (
        "instances",
        "local_ns",
        "node_offsets",
        "slot_offsets",
        "instance_of",
        "slot_instance",
    )

    def __init__(self, networks: Sequence[Network]):
        if not networks:
            raise BatchEligibilityError("cannot stack zero instances")
        k_count = len(networks)
        local_ns = np.fromiter(
            (net.n for net in networks), dtype=np.int64, count=k_count
        )
        node_offsets = np.zeros(k_count + 1, dtype=np.int64)
        np.cumsum(local_ns, out=node_offsets[1:])
        indptr_parts: List[np.ndarray] = []
        indices_parts: List[np.ndarray] = []
        slot_offsets = np.zeros(k_count + 1, dtype=np.int64)
        for k, net in enumerate(networks):
            indptr, indices = net.csr()
            indptr = _as_int64(indptr)
            indices = _as_int64(indices)
            # Globalize: shift row starts by the slots already emitted and
            # neighbor ids into instance k's node range.
            start = indptr[1:] if k else indptr
            indptr_parts.append(start + slot_offsets[k])
            indices_parts.append(indices + node_offsets[k])
            slot_offsets[k + 1] = slot_offsets[k] + indices.shape[0]
        self._init_arrays(
            np.concatenate(indptr_parts), np.concatenate(indices_parts)
        )
        self.instances = k_count
        self.local_ns = local_ns
        self.node_offsets = node_offsets
        self.slot_offsets = slot_offsets
        uniform = bool((local_ns == local_ns[0]).all())
        self.local_n = int(local_ns[0]) if uniform else None
        self.local_ids = np.arange(self.n, dtype=np.int64) - np.repeat(
            node_offsets[:-1], local_ns
        )
        self.local_n_of = np.repeat(local_ns, local_ns)
        self.instance_of = np.repeat(
            np.arange(k_count, dtype=np.int64), local_ns
        )
        self.slot_instance = np.repeat(
            np.arange(k_count, dtype=np.int64), np.diff(slot_offsets)
        )

    def live_per_instance(self, live: np.ndarray) -> np.ndarray:
        """Per-instance count of set flags in a global node mask.

        ``reduceat`` over the ragged ``node_offsets`` segment boundaries —
        exact per-instance sums regardless of instance sizes.
        """
        return np.add.reduceat(
            live.astype(np.int64), self.node_offsets[:-1]
        )


def plane_cost(
    local_ns: Sequence[int],
    round_limits: Sequence[int],
    message_bits: Sequence[int],
) -> int:
    """Estimated bit-volume of driving one stacked plane to completion.

    The model is the plane's worst-case broadcast traffic: instance ``k``
    contributes ``local_ns[k] * round_limits[k] * message_bits[k]`` — its
    plane width times its round limit times its widest per-message wire
    size.  The absolute number is an upper bound, not a prediction; what
    matters to the adaptive batch scheduler
    (:mod:`repro.experiments.scheduler`) is that the quantity is exact
    arithmetic (deterministic plans), additive across instances (group
    cost = sum of cell costs, so splits conserve cost), and strictly
    monotone in each of width, rounds and bits.
    """
    total = 0
    for n, rounds, bits in zip(local_ns, round_limits, message_bits):
        total += int(n) * int(rounds) * int(bits)
    return total


def stack_ineligibility(program_cls: type) -> Optional[str]:
    """Why ``program_cls`` cannot run stacked, or ``None`` if it can.

    This is the *static* half of eligibility (specs declared, kernel
    registered and stackable); :func:`iter_stacked` additionally verifies
    the per-instance conditions (conforming handovers, and
    ``absorb_instance`` support when a takeover round exceeds 1) at run
    time.
    """
    if not getattr(program_cls, "message_specs", ()):
        return f"{program_cls.__name__} declares no message_specs"
    kernel_cls = kernel_for(program_cls)
    if kernel_cls is None:
        return f"{program_cls.__name__} has no registered vector kernel"
    if not kernel_cls.stackable:
        return f"{kernel_cls.__name__} is not stackable"
    return None


def _accumulate_round(
    plane: StackedPlane,
    pending,
    node_budget: Optional[np.ndarray],
    active_nodes: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-instance exact wire totals ``(messages, bits, max_bits)``.

    The instance-wise analogue of ``VectorEngine._account``, summed over
    every part of the round (a ragged plane can carry differently-tagged
    broadcast *and* targeted traffic side by side): a broadcast puts
    ``degree`` copies of the sender's message on the wire, so its
    per-instance counts are degree-weighted sums over that instance's
    senders; a targeted part puts exactly one message per masked slot on
    the wire, bucketed by ``slot_instance``.  ``active_nodes`` masks out
    finished instances — their bottom-of-loop queued traffic is discarded
    uncharged and unchecked, exactly as the solo loop never reaches
    another accounting pass.  ``node_budget`` holds every sender's own
    instance's bit budget (budgets are per-instance on a ragged plane);
    raises :class:`MessageTooLargeError` for the lowest-global-id
    over-budget sender (reported with its *local* ids, matching what the
    corresponding solo run would raise).
    """
    k_count = plane.instances
    messages = np.zeros(k_count, dtype=np.int64)
    bits_total = np.zeros(k_count, dtype=np.int64)
    wire_max = np.zeros(k_count, dtype=np.int64)
    for part in pending_parts(pending):
        if isinstance(part, PendingTargeted):
            _accumulate_targeted(
                plane, part, node_budget, active_nodes,
                messages, bits_total, wire_max,
            )
        else:
            _accumulate_broadcast(
                plane, part, node_budget, active_nodes,
                messages, bits_total, wire_max,
            )
    return messages, bits_total, wire_max


def _accumulate_broadcast(
    plane: StackedPlane,
    pending: PendingBroadcast,
    node_budget: Optional[np.ndarray],
    active_nodes: np.ndarray,
    messages: np.ndarray,
    bits_total: np.ndarray,
    wire_max: np.ndarray,
) -> None:
    on_wire = pending.mask & (plane.degrees > 0) & active_nodes
    if not on_wire.any():
        return
    if node_budget is not None:
        over = on_wire & (pending.bits > node_budget)
        if over.any():
            sender = int(np.flatnonzero(over)[0])
            receiver = int(plane.indices[plane.indptr[sender]])
            raise MessageTooLargeError(
                int(plane.local_ids[sender]),
                int(plane.local_ids[receiver]),
                int(pending.bits[sender]),
                int(node_budget[sender]),
            )
    k_count = plane.instances
    inst = plane.instance_of[on_wire]
    degrees = plane.degrees[on_wire]
    bits = pending.bits[on_wire]
    # float64 bincount weights are exact here: per-round per-instance wire
    # totals are far below 2**53 for any CONGEST-budgeted workload.
    messages += np.bincount(inst, weights=degrees, minlength=k_count).astype(
        np.int64
    )
    bits_total += np.bincount(
        inst, weights=degrees * bits, minlength=k_count
    ).astype(np.int64)
    np.maximum.at(wire_max, inst, bits)


def _accumulate_targeted(
    plane: StackedPlane,
    pending: PendingTargeted,
    node_budget: Optional[np.ndarray],
    active_nodes: np.ndarray,
    messages: np.ndarray,
    bits_total: np.ndarray,
    wire_max: np.ndarray,
) -> None:
    senders = plane.indices
    on_wire = pending.slot_mask & active_nodes[senders]
    if not on_wire.any():
        return
    if node_budget is not None:
        over = on_wire & (pending.bits > node_budget[senders])
        if over.any():
            slots = np.flatnonzero(over)
            slot = int(slots[np.lexsort((slots, senders[slots]))[0]])
            sender = int(senders[slot])
            receiver = (
                int(np.searchsorted(plane.indptr, slot, "right")) - 1
            )
            raise MessageTooLargeError(
                int(plane.local_ids[sender]),
                int(plane.local_ids[receiver]),
                int(pending.bits[slot]),
                int(node_budget[sender]),
            )
    k_count = plane.instances
    inst = plane.slot_instance[on_wire]
    bits = pending.bits[on_wire]
    messages += np.bincount(inst, minlength=k_count).astype(np.int64)
    bits_total += np.bincount(
        inst, weights=bits.astype(np.float64), minlength=k_count
    ).astype(np.int64)
    np.maximum.at(wire_max, inst, bits)


def _stitch_handover(
    plane: StackedPlane,
    collected: Sequence[PendingBroadcast],
) -> Optional[PendingBroadcast]:
    """Combine per-instance handover traffic into one stacked broadcast."""
    specs = {p.spec.tag: p.spec for p in collected if p.mask.any()}
    if len(specs) > 1:
        raise BatchEligibilityError(
            f"instances handed over mixed tags: {sorted(specs)}"
        )
    spec = next(iter(specs.values())) if specs else collected[0].spec
    mask = np.concatenate([p.mask for p in collected])
    # A silent instance may have defaulted to a different spec; its column
    # values are never read (empty mask), only their shape must line up.
    per_instance_columns = [
        p.columns
        if p.spec.arity == spec.arity
        else tuple(np.zeros_like(p.bits) for _ in range(spec.arity))
        for p in collected
    ]
    columns = tuple(
        np.concatenate([cols[i] for cols in per_instance_columns])
        for i in range(spec.arity)
    )
    bits = np.concatenate([p.bits for p in collected])
    return PendingBroadcast(spec, mask, columns, bits)


class _PrologueInstance:
    """One instance still executing its scalar prologue inside a stacked run.

    Holds the exact solo-scalar machinery — per-node records, the active
    map, inbox planes, the drain set and the instance's own bit budget —
    so every prologue round runs :class:`FastEngine`'s collect/charge/
    receive mechanics bit for bit, just driven by the shared global clock.
    ``oracle`` (from :attr:`VectorKernel.prologue_oracle`) optionally
    names the nodes whose ``receive`` can act in a given round; skipped
    nodes are provably no-ops, so sparse prologues charge and deliver
    identically to the solo full scan.
    """

    __slots__ = (
        "index",
        "net",
        "n",
        "takeover",
        "programs",
        "contexts",
        "active",
        "drain",
        "inboxes",
        "budget",
        "oracle",
        "touched",
    )

    def __init__(
        self,
        index: int,
        net: Network,
        programs: Dict[int, NodeProgram],
        contexts: Dict[int, Context],
        records: List[tuple],
    ):
        self.index = index
        self.net = net
        self.n = net.n
        self.takeover = 1
        self.programs = programs
        self.contexts = contexts
        #: id -> record, insertion-ordered ascending (the solo active list).
        self.active = {
            rec[0]: rec for rec in records if not rec[1]._halted
        }
        self.drain: Sequence[tuple] = records
        self.inboxes: Inboxes = [None] * net.n
        self.budget = net.bit_budget
        self.oracle = None
        self.touched: List[int] = []

    def execute_round(self, round_no: int) -> None:
        """Deliver and run one scalar round (solo active-set semantics).

        With an oracle, only the named actors run — in ascending id order,
        a subsequence of the solo scan, so inbox insertion order and every
        per-node call sequence are preserved.  The executed set becomes
        the next round's drain (non-actors queue nothing, so draining only
        actors collects exactly the solo traffic).
        """
        actors = None if self.oracle is None else self.oracle(round_no)
        if actors is None:
            executed = list(self.active.values())
        else:
            get = self.active.get
            executed = [
                rec for a in actors if (rec := get(int(a))) is not None
            ]
        inboxes = self.inboxes
        for rec in executed:
            v, ctx, recv = rec
            ctx.round_number = round_no
            box = inboxes[v]
            if box is None:
                recv(ctx, _EMPTY_INBOX)
            else:
                inboxes[v] = None
                recv(ctx, box)
            if ctx._halted:
                del self.active[v]
        for to in self.touched:
            inboxes[to] = None
        self.touched = []
        self.drain = executed


def _boot_instances(
    plane: StackedPlane,
    networks: Sequence[Network],
    program_factory: type,
    inputs: Optional[Sequence[Optional[Mapping[int, object]]]],
    kernel_cls: type,
):
    """Object-level boot for kernels without a vectorized ``stacked_setup``.

    Instantiates programs and contexts per instance with *local* ids (so
    every message field and bit length matches the solo run), runs the
    scalar round 0 (``setup``) and computes each instance's takeover
    round.  Returns the per-instance prologue state plus the union
    program/context maps (global ids) the kernel and the finishers read.
    """
    booted: List[_PrologueInstance] = []
    union_programs: Dict[int, NodeProgram] = {}
    union_contexts: Dict[int, Context] = {}
    for k, net in enumerate(networks):
        node_inputs = inputs[k] if inputs and inputs[k] else {}
        base = int(plane.node_offsets[k])
        contexts: Dict[int, Context] = {}
        programs: Dict[int, NodeProgram] = {}
        records: List[tuple] = []
        for v in range(net.n):
            ctx = Context(v, net.neighbors(v), net.n)
            prog = program_factory(node_inputs.get(v))
            contexts[v] = ctx
            programs[v] = prog
            ctx.round_number = 0
            prog.setup(ctx)
            records.append((v, ctx, prog.receive))
            union_programs[base + v] = prog
            union_contexts[base + v] = ctx
        if not kernel_cls.eligible(net, programs):
            raise BatchEligibilityError(
                f"{kernel_cls.__name__} declined an instance of the group"
            )
        inst = _PrologueInstance(k, net, programs, contexts, records)
        inst.takeover = int(kernel_cls.takeover_round(net, programs))
        booted.append(inst)
    return booted, union_programs, union_contexts


def _merge_joiners(
    plane: StackedPlane,
    pending,
    joiners: Sequence[Tuple[int, PendingBroadcast]],
):
    """Scatter per-instance takeover broadcasts into the plane's traffic.

    ``pending`` is the kernel's own outbound traffic for this plane round
    (masks confined to already-absorbed instances; possibly several
    differently-tagged parts); each joiner contributes its local handover
    broadcast at its node-offset slice.  Joiners are grouped by tag: each
    group merges into the kernel part carrying the same tag when one
    exists, otherwise it becomes a new broadcast part — one plane round
    may legitimately carry mixed tags when instances are in different
    protocol phases.  Returns ``None`` / a single part / a tuple of
    parts, in kernel-part order with appended joiner tags last.
    """
    parts = list(pending_parts(pending))
    groups: Dict[str, List[Tuple[int, PendingBroadcast]]] = {}
    for k, joiner in joiners:
        if joiner.mask.any():
            groups.setdefault(joiner.spec.tag, []).append((k, joiner))
    for tag, group in groups.items():
        target: Optional[PendingBroadcast] = None
        for part in parts:
            if isinstance(part, PendingBroadcast) and part.spec.tag == tag:
                target = part
                break
        if target is None:
            spec = group[0][1].spec
            target = PendingBroadcast(
                spec,
                np.zeros(plane.n, dtype=bool),
                tuple(
                    np.zeros(plane.n, dtype=np.int64)
                    for _ in range(spec.arity)
                ),
                np.zeros(plane.n, dtype=np.int64),
            )
            parts.append(target)
        for k, joiner in group:
            lo = int(plane.node_offsets[k])
            hi = lo + int(plane.local_ns[k])
            # The kernel's own masks never cover a just-joining instance,
            # so slice assignment cannot clobber absorbed traffic.
            target.mask[lo:hi] = joiner.mask
            target.bits[lo:hi] = joiner.bits
            if joiner.spec.arity == target.spec.arity:
                for i in range(target.spec.arity):
                    target.columns[i][lo:hi] = joiner.columns[i]
    if not parts:
        return None
    return parts[0] if len(parts) == 1 else tuple(parts)


def _round_limits(
    max_rounds: Union[int, Sequence[int]], k_count: int
) -> np.ndarray:
    """Per-instance round limits from an int or a per-instance sequence."""
    if isinstance(max_rounds, (int, np.integer)):
        return np.full(k_count, int(max_rounds), dtype=np.int64)
    limits = np.asarray([int(r) for r in max_rounds], dtype=np.int64)
    if limits.shape[0] != k_count:
        raise BatchEligibilityError(
            f"got {limits.shape[0]} round limits for {k_count} instances"
        )
    return limits


def iter_stacked(
    networks: Sequence[Network],
    program_factory: type,
    inputs: Optional[Sequence[Optional[Mapping[int, object]]]] = None,
    max_rounds: Union[int, Sequence[int]] = 10_000,
) -> Iterator[Tuple[int, SimulationResult]]:
    """Run K instances as one stacked plane, streaming finished instances.

    Yields ``(instance_index, result)`` **the moment the instance's
    termination mask flips** — a small instance that halts early surfaces
    long before its larger siblings finish — in completion order (ties
    broken by instance index).  Each yielded result is bit-for-bit equal
    to the instance's solo ``vector``-engine run of the same
    (network, inputs) pair; collect them all and you have exactly
    :func:`run_stacked`'s output.

    ``max_rounds`` may be an int (shared limit) or one limit per instance
    (a ragged group's natural shape, e.g. size-derived limits).  An
    unfinished instance hitting its own limit aborts the whole group with
    :class:`~repro.errors.SimulationLimitError`; callers such as the batch
    runner fall back to per-cell execution for the instances not yet
    yielded, which reproduces each solo outcome (including the solo
    error) exactly.

    Raises :class:`~repro.errors.BatchEligibilityError` when the
    instances cannot be stacked (see the module docstring for the rules).
    Static eligibility and argument shapes are validated eagerly — at the
    call, not on first iteration — so the error surfaces at the faulty
    call site even if the iterator is handed off or never consumed
    (run-time conditions such as a non-conforming handover still raise
    from the iterator).
    """
    k_count = len(networks)
    if k_count == 0:
        raise BatchEligibilityError("cannot stack zero instances")
    reason = stack_ineligibility(program_factory)
    if reason is not None:
        raise BatchEligibilityError(reason)
    limits = _round_limits(max_rounds, k_count)
    return _iter_stacked(list(networks), program_factory, inputs, limits)


def _iter_stacked(
    networks: Sequence[Network],
    program_factory: type,
    inputs: Optional[Sequence[Optional[Mapping[int, object]]]],
    limits: np.ndarray,
) -> Iterator[Tuple[int, SimulationResult]]:
    """Generator body of :func:`iter_stacked` (arguments pre-validated)."""
    k_count = len(networks)
    kernel_cls = kernel_for(program_factory)

    plane = StackedPlane(networks)
    budgets = [net.bit_budget for net in networks]
    if all(b is None for b in budgets):
        node_budget = None
    else:
        node_budget = np.repeat(
            np.asarray(
                [_NO_BUDGET if b is None else int(b) for b in budgets],
                dtype=np.int64,
            ),
            plane.local_ns,
        )
    union_contexts: Optional[Dict[int, Context]] = None
    #: Instances still in their scalar prologue, keyed by instance index.
    prologue: Dict[int, _PrologueInstance] = {}
    absorbed = np.ones(k_count, dtype=bool)
    boot = None
    if kernel_cls.stacked_setup is not None:
        # Vectorized boot: no per-node program or context objects at all —
        # the kernel initializes its planes and the round-1 broadcast
        # directly from the instance inputs.  This is where batched sweeps
        # stop paying O(total nodes) Python object construction.
        # ``stacked_setup`` implies a round-1 takeover for every instance;
        # a kernel with *conditional* round-1 takeover (lemma310's
        # canonical gate) returns ``None`` to decline the group, sending
        # it through the object-level boot and its per-instance takeover
        # machinery below.
        boot = kernel_cls.stacked_setup(
            plane, list(inputs) if inputs else [None] * k_count
        )
    if boot is not None:
        kernel, pending = boot
    else:
        booted, union_programs, union_contexts = _boot_instances(
            plane, networks, program_factory, inputs, kernel_cls
        )
        specs = program_factory.message_specs
        if all(inst.takeover <= 1 for inst in booted):
            # Lockstep boot: every instance hands over at round 1, so the
            # kernel is constructed from the union state and the setup
            # traffic is stitched into one plane-wide broadcast.
            collected: List[PendingBroadcast] = []
            for inst in booted:
                handover = VectorEngine._collect_handover(
                    inst.drain, specs, inst.n
                )
                if handover is _NONCONFORMING:
                    raise BatchEligibilityError(
                        "an instance queued non-conforming traffic "
                        "during setup"
                    )
                collected.append(handover)
            # Stackable kernels never consult the network argument (there
            # is no single network to hand them) — part of the `stackable`
            # contract.
            kernel = kernel_cls(plane, None, union_programs, union_contexts)
            pending = _stitch_handover(plane, collected)
        else:
            # Per-instance takeover: boot the kernel dead and let each
            # instance join the plane at its own takeover round, running
            # exact scalar-prologue rounds until then.
            if kernel_cls.absorb_instance is VectorKernel.absorb_instance:
                raise BatchEligibilityError(
                    f"{kernel_cls.__name__} takes over after round 1 but "
                    "does not implement absorb_instance; instances cannot "
                    "join the plane late"
                )
            kernel = kernel_cls.stacked_blank(plane)
            pending = None
            absorbed = np.zeros(k_count, dtype=bool)
            oracle_factory = kernel_cls.prologue_oracle
            for inst in booted:
                if inst.takeover > 1 and oracle_factory is not None:
                    inst.oracle = oracle_factory(inst.net, inst.programs)
                prologue[inst.index] = inst

    # -- the stacked loop: VectorEngine._run_hybrid with K ledgers ----------
    #
    # Accounting is fully incremental so an instance's result can be built
    # the instant it finishes: running per-instance totals plus per-round
    # history rows (one int64 vector of length K per executed round).
    # ``finished`` is monotone, so each unfinished instance has executed
    # every round so far — its counted rounds form a prefix of the history,
    # exactly its solo per-round series.
    hist_msgs: List[np.ndarray] = []
    hist_bits: List[np.ndarray] = []
    total_messages = np.zeros(k_count, dtype=np.int64)
    total_bits = np.zeros(k_count, dtype=np.int64)
    wire_max = np.zeros(k_count, dtype=np.int64)
    inst_rounds = np.zeros(k_count, dtype=np.int64)
    finished = np.zeros(k_count, dtype=bool)
    #: Node-level expansion of ``~finished`` (masks discarded traffic).
    active_nodes = np.ones(plane.n, dtype=bool)

    def _finish(k: int) -> Tuple[int, SimulationResult]:
        """Snapshot instance ``k``'s solo-equivalent result at flip time."""
        base = int(plane.node_offsets[k])
        local_n = int(plane.local_ns[k])
        lo, hi = base, base + local_n
        active_nodes[lo:hi] = False
        outputs: Dict[int, Dict[str, object]] = {}
        for v in range(local_n):
            g = base + v
            values = (
                dict(union_contexts[g]._outputs)
                if union_contexts is not None
                else {}
            )
            values.update(kernel._outputs.get(g, {}))
            outputs[v] = values
        executed = int(inst_rounds[k])
        return k, SimulationResult(
            rounds=executed,
            total_messages=int(total_messages[k]),
            total_bits=int(total_bits[k]),
            max_message_bits=int(wire_max[k]),
            outputs=outputs,
            all_halted=True,
            messages_per_round=[int(row[k]) for row in hist_msgs[:executed]],
            bits_per_round=[int(row[k]) for row in hist_bits[:executed]],
        )

    specs = program_factory.message_specs
    rounds = 0
    live_k = plane.live_per_instance(kernel.live)
    while True:
        # Per-instance takeover: instances whose next round is their
        # takeover round hand their queued broadcast over and join the
        # plane — the stacked analogue of the solo loop's top-of-loop
        # takeover check, so handover traffic is charged *this* tick.
        if prologue:
            joiners: List[Tuple[int, PendingBroadcast]] = []
            for k in sorted(prologue):
                inst = prologue[k]
                if finished[k] or inst_rounds[k] + 1 < inst.takeover:
                    continue
                handover = VectorEngine._collect_handover(
                    inst.drain, specs, inst.n
                )
                if handover is _NONCONFORMING:
                    raise BatchEligibilityError(
                        "an instance queued non-conforming traffic at its "
                        "takeover round"
                    )
                lo = int(plane.node_offsets[k])
                kernel.absorb_instance(
                    lo, lo + inst.n, inst.programs, inst.contexts
                )
                absorbed[k] = True
                joiners.append((k, handover))
            if joiners:
                for k, _ in joiners:
                    del prologue[k]
                pending = _merge_joiners(plane, pending, joiners)
                live_k = plane.live_per_instance(kernel.live)

        msgs_k, bits_k, wmax_k = _accumulate_round(
            plane, pending, node_budget, active_nodes
        )
        # Scalar prologue instances: exact FastEngine collection and
        # charging against the instance's own budget and running maximum,
        # folded into this tick's per-instance ledger row.
        for k, inst in prologue.items():
            if finished[k]:
                continue
            touched, sizes = FastEngine._collect_traffic(
                inst.drain, inst.inboxes
            )
            inst.touched = touched
            round_bits, new_max = FastEngine._charge(
                sizes, inst.inboxes, touched, inst.budget, int(wire_max[k])
            )
            msgs_k[k] += len(sizes)
            bits_k[k] += round_bits
            wire_max[k] = new_max
        total_bits += bits_k
        np.maximum(wire_max, wmax_k, out=wire_max)
        # Solo top-of-loop break: an instance with no live nodes has its
        # in-flight traffic charged but does not execute the round.  A
        # prologue instance's "no live nodes" is an empty active map.
        newly = ~finished & absorbed & (live_k == 0)
        for k, inst in prologue.items():
            if not finished[k] and not inst.active:
                newly[k] = True
        if newly.any():
            finished |= newly
            for k in np.flatnonzero(newly):
                prologue.pop(int(k), None)
                yield _finish(int(k))
        if finished.all():
            return
        exhausted = ~finished & (inst_rounds >= limits)
        if exhausted.any():
            raise SimulationLimitError(
                "stacked simulation did not terminate within "
                f"{int(limits[exhausted].min())} rounds"
            )

        counted = ~finished
        total_messages += np.where(counted, msgs_k, 0)
        inst_rounds += counted
        hist_msgs.append(msgs_k)
        hist_bits.append(bits_k)
        rounds += 1
        pending = kernel.step(rounds, pending) if absorbed.any() else None
        for k, inst in prologue.items():
            if not finished[k]:
                inst.execute_round(rounds)
        live_k = plane.live_per_instance(kernel.live)
        # Solo bottom-of-loop break: traffic an instance queued during its
        # final round is discarded *uncharged* (``active_nodes`` masks it
        # out of the next accumulation; a finished prologue instance is
        # simply never drained again).
        newly = ~finished & absorbed & (live_k == 0)
        for k, inst in prologue.items():
            if not finished[k] and not inst.active:
                newly[k] = True
        if newly.any():
            finished |= newly
            for k in np.flatnonzero(newly):
                prologue.pop(int(k), None)
                yield _finish(int(k))
        if finished.all():
            return


def run_stacked(
    networks: Sequence[Network],
    program_factory: type,
    inputs: Optional[Sequence[Optional[Mapping[int, object]]]] = None,
    max_rounds: Union[int, Sequence[int]] = 10_000,
) -> List[SimulationResult]:
    """Run one program family on K instance networks as one stacked plane.

    Returns one :class:`SimulationResult` per instance (in instance
    order), bit-for-bit equal to K solo ``vector``-engine runs of the same
    (network, inputs) pairs; the streaming variant is
    :func:`iter_stacked`.  Raises
    :class:`~repro.errors.BatchEligibilityError` when the instances cannot
    be stacked (see the module docstring for the rules) — callers such as
    the batch runner fall back to per-cell execution.
    """
    results: List[Optional[SimulationResult]] = [None] * len(networks)
    for k, result in iter_stacked(
        networks, program_factory, inputs=inputs, max_rounds=max_rounds
    ):
        results[k] = result
    return results  # type: ignore[return-value]
