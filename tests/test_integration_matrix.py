"""Cross-product integration matrix: every algorithm on every zoo graph,
with exact optima as ground truth wherever tractable."""


import networkx as nx
import pytest

from repro.analysis.bounds import (
    greedy_bound,
    theorem11_approximation_bound,
    theorem14_cds_bound,
)
from repro.analysis.stats import geometric_mean, summarize_ratios
from repro.analysis.verify import (
    is_connected_dominating_set,
    is_dominating_set,
)
from repro.baselines.exact import exact_mds
from repro.baselines.greedy import greedy_mds
from repro.cds.pipeline import approx_cds
from repro.fractional.lp import lp_fractional_mds
from repro.mds.deterministic import approx_mds_coloring, approx_mds_decomposition
from repro.mds.local_model import approx_mds_local
from repro.mds.randomized import approx_mds_randomized
from tests.conftest import graph_zoo

ALGORITHMS = {
    "coloring": lambda g: approx_mds_coloring(g, eps=0.5).dominating_set,
    "decomposition": lambda g: approx_mds_decomposition(g, eps=0.5).dominating_set,
    "local": lambda g: approx_mds_local(g, eps=0.5).dominating_set,
    "randomized": lambda g: approx_mds_randomized(g, eps=0.5, seed=1).dominating_set,
    "greedy": greedy_mds,
}


@pytest.mark.parametrize("alg_name", sorted(ALGORITHMS))
def test_every_algorithm_on_every_zoo_graph(alg_name, zoo_graph):
    ds = ALGORITHMS[alg_name](zoo_graph)
    assert is_dominating_set(zoo_graph, ds)


@pytest.mark.parametrize("name,graph", graph_zoo(), ids=[n for n, _ in graph_zoo()])
def test_deterministic_vs_exact_optimum(name, graph):
    """On zoo-sized graphs we can afford exact OPT: the deterministic output
    must respect the Theorem 1.1/1.2 guarantee against true OPT, and the
    sandwich LP <= OPT <= greedy_bound * LP must hold."""
    if graph.number_of_nodes() > 30:
        pytest.skip("exact OPT too slow")
    opt = len(exact_mds(graph))
    lp = lp_fractional_mds(graph)
    delta = max((d for _, d in graph.degree()), default=0)
    assert lp.optimum <= opt + 1e-6
    assert opt <= greedy_bound(delta) * lp.optimum + 1e-6

    det = len(approx_mds_coloring(graph, eps=0.5).dominating_set)
    assert det <= theorem11_approximation_bound(0.5, delta) * opt + 1e-9
    # Empirical shape: within 2x of true optimum on these instances.
    assert det <= 2 * opt + 1


@pytest.mark.parametrize("name,graph", graph_zoo(), ids=[n for n, _ in graph_zoo()])
def test_cds_on_every_connected_zoo_graph(name, graph):
    if not nx.is_connected(graph):
        pytest.skip("CDS needs connectivity")
    result = approx_cds(graph, eps=0.5)
    assert is_connected_dominating_set(graph, result.cds)
    delta = max((d for _, d in graph.degree()), default=0)
    lp = lp_fractional_mds(graph)
    assert result.size <= theorem14_cds_bound(delta) * max(lp.optimum, 1.0) + 3


def test_aggregate_ratio_shape():
    """Across the zoo, the deterministic geometric-mean ratio vs LP is close
    to greedy's — the paper's quality story in one number."""
    det_ratios, greedy_ratios = [], []
    for name, graph in graph_zoo():
        lp = lp_fractional_mds(graph).optimum
        if lp < 0.5:
            continue
        det_ratios.append(
            len(approx_mds_coloring(graph, eps=0.5).dominating_set) / lp
        )
        greedy_ratios.append(len(greedy_mds(graph)) / lp)
    det_gm = geometric_mean(det_ratios)
    greedy_gm = geometric_mean(greedy_ratios)
    assert det_gm <= greedy_gm * 1.25 + 0.01
    summary = summarize_ratios(det_ratios)
    assert summary.maximum <= 3.0  # far inside the analytic guarantee
    assert summary.minimum >= 1.0 - 1e-9  # LP really is a lower bound


def test_eps_monotonicity_of_bound():
    """Smaller eps gives a tighter guarantee; the implementation must keep
    meeting it (the output may or may not shrink — only the bound moves)."""
    from repro.graphs.generators import gnp_graph

    graph = gnp_graph(50, 0.12, seed=13)
    lp = lp_fractional_mds(graph).optimum
    delta = max(d for _, d in graph.degree())
    for eps in (1.0, 0.5, 0.25, 0.1):
        size = len(approx_mds_coloring(graph, eps=eps).dominating_set)
        assert size <= theorem11_approximation_bound(eps, delta) * lp + 1e-9


class TestStatsHelpers:
    def test_summarize(self):
        s = summarize_ratios([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.median == 2.0
        assert s.count == 3
        assert "mean=2.000" in s.render()

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_ratios([])

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_column_extraction(self):
        from repro.analysis.stats import column

        rows = [{"r": 1.5}, {"r": "n/a"}, {"r": 2}, {"x": 3}, {"r": True}]
        assert column(rows, "r") == [1.5, 2.0]
