"""Constrained fractional dominating sets (Definition 2.1).

A CFDS assigns each node ``v`` a fractional value ``x(v) in [0, 1]`` and a
constraint ``c(v) in [0, 1]``; feasibility demands
``sum_{u in N(v)} x(u) >= c(v)`` for every node, with ``N(v)`` the
*inclusive* neighborhood.  A fractional dominating set (FDS) is the special
case ``c == 1``; an integral FDS is a dominating set in the classical sense.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Set, Tuple

import networkx as nx

from repro.errors import InfeasibleSolutionError
from repro.graphs.normalize import require_normalized

#: Numerical slack for feasibility checks on float values.
FEASIBILITY_TOL = 1e-9


def fractionality_of(values: Mapping[int, float], tol: float = 1e-15) -> float:
    """Smallest non-zero value (``inf`` if all values are zero).

    The paper calls a solution ``lambda``-fractional when every non-zero
    value is at least ``lambda``.
    """
    nonzero = [x for x in values.values() if x > tol]
    return min(nonzero) if nonzero else float("inf")


@dataclass
class CFDS:
    """A constrained fractional dominating set on a normalized graph.

    Values and constraints default to 0 / 1 respectively for missing nodes.
    """

    graph: nx.Graph
    values: Dict[int, float] = field(default_factory=dict)
    constraints: Dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        require_normalized(self.graph)
        self.values = {
            v: float(self.values.get(v, 0.0)) for v in self.graph.nodes()
        }
        self.constraints = {
            v: float(self.constraints.get(v, 1.0)) for v in self.graph.nodes()
        }
        for v, x in self.values.items():
            if not -FEASIBILITY_TOL <= x <= 1.0 + FEASIBILITY_TOL:
                raise InfeasibleSolutionError(f"value x({v}) = {x} outside [0, 1]")
        for v, c in self.constraints.items():
            if not -FEASIBILITY_TOL <= c <= 1.0 + FEASIBILITY_TOL:
                raise InfeasibleSolutionError(f"constraint c({v}) = {c} outside [0, 1]")

    # -- constructors -------------------------------------------------------

    @classmethod
    def fds(cls, graph: nx.Graph, values: Mapping[int, float]) -> "CFDS":
        """Fractional dominating set: all constraints are 1."""
        return cls(graph, dict(values), {v: 1.0 for v in graph.nodes()})

    @classmethod
    def from_set(cls, graph: nx.Graph, nodes: Iterable[int]) -> "CFDS":
        """Integral FDS from a vertex set."""
        chosen = set(nodes)
        return cls.fds(graph, {v: (1.0 if v in chosen else 0.0) for v in graph.nodes()})

    # -- accessors ----------------------------------------------------------

    @property
    def size(self) -> float:
        """Total value ``sum_v x(v)`` (the paper's CFDS size)."""
        return sum(self.values.values())

    @property
    def fractionality(self) -> float:
        """Smallest non-zero value."""
        return fractionality_of(self.values)

    def coverage(self, v: int) -> float:
        """``sum_{u in N(v)} x(u)`` over the inclusive neighborhood."""
        total = self.values[v]
        for u in self.graph.neighbors(v):
            total += self.values[u]
        return total

    def slack(self, v: int) -> float:
        """``coverage(v) - c(v)`` (negative = violated)."""
        return self.coverage(v) - self.constraints[v]

    def violations(self, tol: float = FEASIBILITY_TOL) -> List[Tuple[int, float]]:
        """All ``(node, slack)`` pairs with negative slack."""
        out = []
        for v in self.graph.nodes():
            s = self.slack(v)
            if s < -tol:
                out.append((v, s))
        return out

    def is_feasible(self, tol: float = FEASIBILITY_TOL) -> bool:
        return not self.violations(tol)

    def require_feasible(self, what: str = "CFDS", tol: float = FEASIBILITY_TOL) -> None:
        bad = self.violations(tol)
        if bad:
            worst = min(bad, key=lambda t: t[1])
            raise InfeasibleSolutionError(
                f"{what} infeasible at {len(bad)} nodes; worst: node "
                f"{worst[0]} slack {worst[1]:.3g}"
            )

    # -- integrality --------------------------------------------------------

    def is_integral(self, tol: float = 1e-9) -> bool:
        return all(x <= tol or x >= 1.0 - tol for x in self.values.values())

    def support(self, tol: float = 1e-15) -> Set[int]:
        """Nodes with non-zero value."""
        return {v for v, x in self.values.items() if x > tol}

    def integral_set(self, tol: float = 1e-9) -> Set[int]:
        """The vertex set of an integral solution.

        Raises :class:`InfeasibleSolutionError` if any value is fractional.
        """
        if not self.is_integral(tol):
            raise InfeasibleSolutionError("solution is not integral")
        return {v for v, x in self.values.items() if x >= 1.0 - tol}

    # -- transforms ---------------------------------------------------------

    def scaled(self, factor: float, cap: float = 1.0) -> "CFDS":
        """New CFDS with values ``min(cap, factor * x(v))``."""
        return CFDS(
            self.graph,
            {v: min(cap, factor * x) for v, x in self.values.items()},
            dict(self.constraints),
        )

    def with_values(self, values: Mapping[int, float]) -> "CFDS":
        """New CFDS with the same graph/constraints and different values."""
        return CFDS(self.graph, dict(values), dict(self.constraints))

    def copy(self) -> "CFDS":
        return CFDS(self.graph, dict(self.values), dict(self.constraints))
