"""Hypothesis property tests on the library's core invariants."""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.verify import is_dominating_set
from repro.baselines.greedy import greedy_mds
from repro.derand.conditional import ConditionalExpectationEngine
from repro.domsets.cfds import CFDS, fractionality_of
from repro.domsets.covering import CoveringInstance
from repro.fractional.raising import raise_fractionality, repair_feasibility
from repro.graphs.generators import gnp_graph
from repro.mds.deterministic import approx_mds_coloring
from repro.rounding.abstract import execute_rounding
from repro.rounding.coins import independent_coins
from repro.rounding.schemes import factor_two_scheme, one_shot_scheme

graphs = st.builds(
    gnp_graph,
    st.integers(4, 28),
    st.floats(0.08, 0.45),
    seed=st.integers(0, 50),
)

slow = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@slow
@given(graphs)
def test_greedy_always_dominates(graph):
    assert is_dominating_set(graph, greedy_mds(graph))


@slow
@given(graphs, st.sampled_from([0.25, 0.5, 1.0]))
def test_pipeline_output_always_dominates(graph, eps):
    result = approx_mds_coloring(graph, eps=eps)
    assert is_dominating_set(graph, result.dominating_set)


@slow
@given(graphs, st.integers(0, 20))
def test_rounding_output_always_feasible(graph, seed):
    """Lemma 3.1 part 1 under arbitrary coins."""
    values = {v: 0.8 for v in graph.nodes()}
    inst = CoveringInstance.from_graph(graph, values)
    if not inst.is_feasible():
        return
    scheme = factor_two_scheme(inst, eps=0.2, r=5.0)
    outcome = execute_rounding(
        scheme, independent_coins(scheme, random.Random(seed))
    )
    assert CFDS.fds(graph, outcome.projected).is_feasible()


@slow
@given(graphs)
def test_derandomized_never_exceeds_estimate(graph):
    delta_tilde = max((d for _, d in graph.degree()), default=0) + 1
    values = {v: min(1.0, 2.0 / delta_tilde) for v in graph.nodes()}
    inst = CoveringInstance.from_graph(graph, values)
    if not inst.is_feasible():
        return
    scheme = one_shot_scheme(inst, delta_tilde)
    engine = ConditionalExpectationEngine(scheme)
    result = engine.run([[u] for u in scheme.participating()])
    assert result.realized_size <= result.initial_estimate + 1e-6


@slow
@given(graphs, st.floats(0.01, 0.2))
def test_raising_preserves_feasibility_and_levels(graph, lam):
    values = repair_feasibility(graph, {v: 0.0 for v in graph.nodes()})
    raised = raise_fractionality(values, lam)
    assert fractionality_of(raised) >= lam - 1e-12
    assert CFDS.fds(graph, raised).is_feasible()
    # Raising never lowers any value.
    assert all(raised[v] >= values[v] - 1e-12 for v in values)


@slow
@given(graphs)
def test_one_shot_scheme_respects_caps(graph):
    delta_tilde = max((d for _, d in graph.degree()), default=0) + 1
    values = {v: 1.0 / delta_tilde for v in graph.nodes()}
    inst = CoveringInstance.from_graph(graph, values)
    scheme = one_shot_scheme(inst, delta_tilde)
    for u, var in scheme.instance.value_vars.items():
        assert 0.0 <= var.x <= 1.0
        assert scheme.p[u] >= var.x - 1e-12
        if 0 < scheme.p[u] < 1:
            assert scheme.success_value(u) <= 1.0 + 1e-12


@slow
@given(graphs, st.integers(0, 30))
def test_accounted_size_dominates_projection(graph, seed):
    """Per-copy accounting upper-bounds the projected solution size."""
    values = {v: 0.7 for v in graph.nodes()}
    inst = CoveringInstance.from_graph(graph, values)
    if not inst.is_feasible():
        return
    scheme = factor_two_scheme(inst, eps=0.3, r=5.0)
    outcome = execute_rounding(
        scheme, independent_coins(scheme, random.Random(seed))
    )
    assert sum(outcome.projected.values()) <= outcome.accounted_size + 1e-9
