"""E5 — Lemmas 3.9 / 3.14: the factor-two iteration trace.

Runs Part II with scaled-down constants so the doubling loop actually
engages at laptop scale (with the paper's constants the loop is skipped for
small ``Delta``, see Section 3.4), and records for every iteration the size
inflation and the fractionality doubling.  Claims: per-iteration inflation
stays below ``(1 + eps_2)`` plus the uncovered penalty, and the inverse
fractionality halves (up to the value caps).
"""

from __future__ import annotations

from repro.domsets.cfds import CFDS, fractionality_of
from repro.derand.coloring_based import factor_two_via_coloring
from repro.experiments.harness import ExperimentReport
from repro.fractional.raising import kmw06_initial_fds
from repro.graphs.generators import gnp_graph, regular_graph
from repro.oracle import lp_lower_bound

COLUMNS = [
    "graph", "iter", "r_before", "r_after", "size_before", "size_after",
    "inflation", "allowed", "lp_opt", "ratio_vs_lp", "colors",
]


def run(fast: bool = True, eps2: float = 0.3, iterations: int = 4,
        seed: int = 9) -> ExperimentReport:
    report = ExperimentReport(
        experiment="E5",
        claim="Lemma 3.14: each factor-two step costs <= (1+eps) and doubles fractionality",
        columns=COLUMNS,
    )
    graphs = [
        ("gnp-70", gnp_graph(70, 0.09, seed=seed)),
        ("regular-60", regular_graph(60, 6, seed=seed)),
    ]
    if not fast:
        graphs.append(("gnp-150", gnp_graph(150, 0.05, seed=seed)))

    for name, graph in graphs:
        # The LP optimum lower-bounds every feasible fractional solution,
        # so each iteration's size must stay above it (checked per row) —
        # the factor-two loop trades fractionality for size, never
        # feasibility.
        lp_opt = lp_lower_bound(graph)
        initial = kmw06_initial_fds(graph, eps=0.25)
        values = dict(initial.fds.values)
        r = 1.0 / fractionality_of(values)
        for it in range(iterations):
            if r <= 8.0:
                break
            size_before = sum(values.values())
            out = factor_two_via_coloring(
                graph, values, eps=eps2, r=r, constants_scale=1e-3
            )
            new_values = out.values
            CFDS.fds(graph, new_values).require_feasible("E5 iteration")
            size_after = sum(new_values.values())
            r_after = 1.0 / fractionality_of(new_values)
            inflation = size_after / max(size_before, 1e-12)
            # Allowed: (1+eps) multiplicative plus the uncovered penalty the
            # estimator certifies (joins count 1 each).
            allowed = (1.0 + eps2) + (
                out.result.initial_estimate - (1.0 + eps2) * size_before
            ) / max(size_before, 1e-12)
            report.add_row(
                graph=name,
                iter=it,
                r_before=round(r, 1),
                r_after=round(r_after, 1),
                size_before=round(size_before, 3),
                size_after=round(size_after, 3),
                inflation=round(inflation, 4),
                allowed=round(max(allowed, 1.0 + eps2), 4),
                lp_opt=round(lp_opt, 2),
                ratio_vs_lp=round(size_after / max(lp_opt, 1e-12), 3),
                colors=out.num_colors,
            )
            report.check("inflation_bounded", size_after <= out.result.initial_estimate + 1e-6)
            report.check("fractionality_doubles", r_after <= r / 1.8 + 1.0)
            report.check("frac_above_lp", size_after >= lp_opt - 1e-6)
            values = new_values
            r = r_after
    report.notes.append(
        "constants_scale=1e-3 shrinks s = 64 eps^-2 ln(D~) so splitting "
        "engages at laptop scale; the estimator budget (initial_estimate) "
        "is the per-iteration certificate"
    )
    return report
