"""Theorem 1.4: deterministic O(ln Delta)-approximate connected dominating
set in the CONGEST model.

Pipeline:

1. dominating set ``S`` from one of the Section 3 MDS algorithms;
2. ``G_S`` (Claim 4.1); a tiny ``S`` falls back to the direct
   spanning-tree construction (|CDS| < 3|S|);
3. ruling set ``S'`` on ``G_S`` (paper: pairwise G-distance
   ``>= c' log^2 n``; the separation is a tunable scaled constant);
4. BFS-phase clustering of ``S`` around ``S'`` (Lemma 4.2) with pruned
   cluster trees;
5. connection-path selection (rules 1-3) giving the cluster graph ``G'_S``;
6. (derandomized) Baswana-Sen spanner on ``G'_S``;
7. output ``S`` + cluster-tree connectors + interior nodes of the witness
   paths of selected spanner edges.

The output is verified to be a connected dominating set; sizes of every
ingredient are recorded for E6.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

import networkx as nx

from repro.analysis.verify import require_connected_dominating_set
from repro.cds.clustering import cluster_dominating_set
from repro.cds.connector import cds_from_spanning_tree
from repro.cds.gs_graph import build_gs_graph
from repro.cds.paths import select_connection_paths
from repro.cds.ruling import ruling_set
from repro.congest.cost import CostLedger, ruling_set_rounds
from repro.errors import GraphError
from repro.graphs.validation import require_connected
from repro.mds.deterministic import approx_mds_coloring, approx_mds_decomposition
from repro.mds.pipeline import MDSResult, PipelineParams
from repro.spanner.baswana_sen import (
    baswana_sen_spanner,
    derandomized_sampler,
    spanner_subgraph,
)


@dataclass
class CDSResult:
    """Connected dominating set plus pipeline provenance."""

    graph: nx.Graph
    cds: Set[int]
    dominating_set: Set[int]
    ledger: CostLedger
    stats: Dict[str, float] = field(default_factory=dict)
    mds_result: Optional[MDSResult] = None
    route: str = ""

    @property
    def size(self) -> int:
        return len(self.cds)

    @property
    def overhead(self) -> float:
        """``|CDS| / |S|`` — the connection cost over the dominating set."""
        return len(self.cds) / max(1, len(self.dominating_set))

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable summary (for the CLI and downstream tooling)."""
        return {
            "route": self.route,
            "cds": sorted(self.cds),
            "cds_size": self.size,
            "mds_size": len(self.dominating_set),
            "overhead": self.overhead,
            "stats": dict(self.stats),
            "rounds_simulated": self.ledger.simulated_rounds,
            "rounds_charged": self.ledger.charged_rounds,
        }


def default_ruling_beta(n: int, scale: float = 1.0) -> int:
    """Separation for the ruling set on ``G_S``.

    The paper asks for G-distance ``c' log^2 n``; since one ``G_S`` hop is
    at most 3 G-hops, ``beta_GS = ceil(scale * log2(n)^2 / 3)`` gives the
    equivalent separation.  At laptop scale this is deliberately small so
    the clustering stage actually engages (scale down via ``scale``).
    """
    log_n = math.log2(max(2, n))
    return max(2, int(math.ceil(scale * log_n * log_n / 3.0)))


def approx_cds(
    graph: nx.Graph,
    eps: float = 0.5,
    mds: Optional[Set[int]] = None,
    mds_route: str = "coloring",
    params: Optional[PipelineParams] = None,
    ruling_beta: Optional[int] = None,
    ruling_scale: float = 0.25,
    spanner_phases: Optional[int] = None,
) -> CDSResult:
    """Theorem 1.4 pipeline.  Pass ``mds`` to reuse a precomputed set."""
    require_connected(graph, "connected dominating set")
    n = graph.number_of_nodes()
    ledger = CostLedger()

    mds_result: Optional[MDSResult] = None
    if mds is None:
        if mds_route == "coloring":
            mds_result = approx_mds_coloring(graph, eps=eps, params=params)
        elif mds_route == "decomposition":
            mds_result = approx_mds_decomposition(graph, eps=eps, params=params)
        else:
            raise GraphError(f"unknown mds_route {mds_route!r}")
        s_nodes = set(mds_result.dominating_set)
        ledger.merge(mds_result.ledger, prefix="mds/")
    else:
        s_nodes = set(mds)

    stats: Dict[str, float] = {"s_size": float(len(s_nodes)), "n": float(n)}

    if len(s_nodes) <= 1:
        cds = set(s_nodes) or ({0} if n else set())
        require_connected_dominating_set(graph, cds, "CDS")
        stats["route"] = 0.0
        return CDSResult(graph, cds, s_nodes, ledger, stats, mds_result, "trivial")

    gsg = build_gs_graph(graph, s_nodes)
    ledger.charge("gs-construction", 3)

    beta = ruling_beta if ruling_beta is not None else default_ruling_beta(n, ruling_scale)
    ruling = ruling_set(gsg.gs, s_nodes, beta=beta)
    ledger.charge("ruling-set", ruling_set_rounds(n))
    stats["ruling_beta"] = float(beta)
    stats["num_centers"] = float(len(ruling.chosen))

    if len(ruling.chosen) <= 2:
        # Problem too small for the clustering/spanner machinery; the direct
        # spanning-tree construction is both exact-in-structure and cheaper.
        cds = cds_from_spanning_tree(gsg)
        ledger.charge("spanning-tree-cds", max(1, n))
        stats["tree_fallback"] = 1.0
        stats["cds_size"] = float(len(cds))
        return CDSResult(graph, cds, s_nodes, ledger, stats, mds_result, "tree")

    clustering = cluster_dominating_set(graph, s_nodes, ruling.chosen)
    ledger.charge("clustering-phases", 3 * clustering.phases)
    stats["clusters"] = float(len(clustering.trees))
    stats["cluster_phases"] = float(clustering.phases)
    stats["tree_nodes"] = float(clustering.total_tree_nodes)
    stats["max_tree_radius"] = float(clustering.max_radius)

    selection = select_connection_paths(graph, s_nodes, clustering)
    ledger.charge("path-selection", 4)
    stats["cluster_edges"] = float(len(selection.cluster_edges))
    stats["path_congestion"] = float(selection.max_congestion)

    cluster_graph = selection.cluster_graph()
    cluster_graph.add_nodes_from(range(len(clustering.trees)))
    if cluster_graph.number_of_nodes() > 1 and not nx.is_connected(cluster_graph):
        raise GraphError(
            "cluster graph G'_S disconnected; path selection rules failed"
        )

    spanner = baswana_sen_spanner(
        cluster_graph, derandomized_sampler(), phases=spanner_phases
    )
    # Each spanner phase costs O(log n) rounds over the selected paths.
    ledger.charge(
        "spanner", spanner.phases * max(1, math.ceil(math.log2(max(2, n))))
    )
    stats["spanner_edges"] = float(spanner.num_edges)
    stats["spanner_forced_balance"] = float(spanner.forced_balance_events)

    sub = spanner_subgraph(cluster_graph, spanner)
    if sub.number_of_nodes() > 1 and not nx.is_connected(sub):
        raise GraphError("spanner disconnected the cluster graph")

    cds: Set[int] = set(s_nodes)
    cds |= clustering.connector_nodes
    for a, b in spanner.edges:
        key = (a, b) if a < b else (b, a)
        path = selection.cluster_edges[key]
        cds.update(path[1:-1])

    require_connected_dominating_set(graph, cds, "Theorem 1.4 CDS")
    stats["cds_size"] = float(len(cds))
    stats["connectors"] = float(len(cds) - len(s_nodes))
    return CDSResult(graph, cds, s_nodes, ledger, stats, mds_result, "spanner")


# -- experiment-surface registration ------------------------------------------

from repro.api.registry import ProgramSpec, register_program  # noqa: E402


def _drive_cds(network, engine: str, eps: float = 0.5, mds_route: str = "coloring"):
    """Run the Theorem 1.4 pipeline on a compiled topology.

    The pipeline is multi-stage (MDS, ruling set, clustering, spanner), so
    the requested engine is installed as the process default for the
    duration of the call — every simulated primitive inside the pipeline
    then runs on it — and restored afterwards.
    """
    from repro.congest.engine import default_engine_name, set_default_engine

    previous = default_engine_name()
    set_default_engine(engine)
    try:
        return approx_cds(network.graph, eps=eps, mds_route=mds_route)
    finally:
        set_default_engine(previous)


def _metrics_cds(network, result: "CDSResult") -> Dict[str, object]:
    """A simulation-shaped metrics block for the composite record.

    ``rounds`` counts the pipeline's actually-simulated rounds from its
    cost ledger; message totals are not metered through the composite
    stages, so they report 0 (the block keeps the standard keys so grid
    summaries and reports need no special casing).
    """
    return {
        "n": network.n,
        "max_degree": network.max_degree,
        "rounds": result.ledger.simulated_rounds,
        "total_messages": 0,
        "total_bits": 0,
        "max_message_bits": result.ledger.max_message_bits,
        "all_halted": True,
        "cds_size": result.size,
        "mds_size": len(result.dominating_set),
        "overhead": round(result.overhead, 4),
        "charged_rounds": result.ledger.charged_rounds,
    }


register_program(
    ProgramSpec(
        name="cds",
        description="Theorem 1.4 connected-dominating-set pipeline (composite)",
        drive=_drive_cds,
        metrics=_metrics_cds,
        default_params={"eps": 0.5, "mds_route": "coloring"},
        composite=True,
    )
)
