"""Certification oracle: bound-ladder correctness, caching, registry tripwire.

The property under test is the sandwich ``lp_bound <= opt <= size``: every
ladder rung must bound the true optimum honestly, the exact and ILP rungs
must agree wherever both apply, and the memo must return the *identical*
certificate on a repeat key.  The registry-wide tripwire at the bottom
certifies every MDS-producing :class:`~repro.api.registry.ProgramSpec`
against its documented guarantee on the small zoo — a future registration
with a ``quality_metric`` is gated automatically, with no test edit.
"""

import math

import networkx as nx
import pytest

from repro.analysis.verify import require_dominating_set
from repro.baselines.exact import exact_mds
from repro.baselines.greedy import greedy_mds
from repro.domsets.covering import Constraint, CoveringInstance, ValueVar
from repro.errors import (
    LPError,
    LPInfeasibleError,
    ReproError,
    SearchBudgetExceededError,
)
from repro.fractional.lp import solve_covering_lp
from repro.oracle import (
    Certificate,
    certify,
    clear_oracle_cache,
    lp_lower_bound,
    oracle_cache,
    solve_mds_ilp,
    topology_cache_key,
)
from tests.conftest import graph_zoo


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_oracle_cache()
    yield
    clear_oracle_cache()


class TestILP:
    @pytest.mark.solver
    @pytest.mark.parametrize(
        "name,graph", graph_zoo(), ids=[name for name, _g in graph_zoo()]
    )
    def test_ilp_matches_exact_branch_and_bound(self, name, graph):
        ilp = solve_mds_ilp(graph)
        assert ilp.proven
        assert ilp.optimum == len(exact_mds(graph))
        require_dominating_set(graph, ilp.nodes, "ILP solution")

    def test_empty_graph_is_trivially_optimal(self):
        ilp = solve_mds_ilp(nx.empty_graph(0))
        assert ilp.proven and ilp.optimum == 0 and ilp.nodes == frozenset()

    def test_vanishing_time_limit_yields_unproven_solution(self):
        graph = graph_zoo()[7][1]  # gnp-24
        ilp = solve_mds_ilp(graph, time_limit_s=1e-9)
        assert not ilp.proven
        assert ilp.status == "time_limit"
        # Any incumbent HiGHS did find must still be a dominating set (the
        # solver verifies it) and an upper bound on OPT.
        if ilp.nodes is not None:
            assert ilp.optimum >= len(exact_mds(graph))


class TestLadder:
    @pytest.mark.solver
    @pytest.mark.parametrize(
        "name,graph", graph_zoo(), ids=[name for name, _g in graph_zoo()]
    )
    def test_sandwich_lp_le_opt_le_greedy(self, name, graph):
        greedy = greedy_mds(graph)
        cert = certify(graph, greedy)
        assert cert.method == "exact" and cert.status == "optimal"
        assert cert.opt == len(exact_mds(graph))
        assert cert.lp_bound <= cert.opt + 1e-6
        assert cert.opt <= cert.size == len(greedy)
        assert cert.ratio_vs_opt is not None
        assert cert.ratio_vs_opt <= cert.ratio_vs_lp + 1e-9

    def test_ds_collection_is_validated_before_solving(self):
        graph = graph_zoo()[0][1]  # path-8
        with pytest.raises(ReproError):
            certify(graph, {0})  # not dominating
        cert = certify(graph, greedy_mds(graph))
        assert isinstance(cert, Certificate)

    def test_lp_mode_reports_bound_only(self):
        graph = graph_zoo()[7][1]
        cert = certify(graph, greedy_mds(graph), oracle="lp")
        assert cert.method == "lp" and cert.status == "lp_bound_only"
        assert cert.opt is None and cert.ratio_vs_opt is None
        assert cert.ratio_vs_lp >= 1.0 - 1e-9
        assert math.isclose(cert.lp_bound, lp_lower_bound(graph))

    def test_ilp_mode_skips_branch_and_bound(self):
        graph = graph_zoo()[4][1]  # grid 4x4
        cert = certify(graph, greedy_mds(graph), oracle="ilp")
        assert cert.method == "ilp" and cert.proven

    def test_exact_mode_refuses_oversized_graphs(self):
        big = nx.path_graph(80)
        with pytest.raises(ReproError, match="exact"):
            certify(big, set(range(80)), oracle="exact")

    def test_auto_falls_back_to_ilp_on_search_budget(self):
        graph = graph_zoo()[7][1]
        cert = certify(graph, greedy_mds(graph), search_budget=1)
        assert cert.method == "ilp" and cert.proven
        assert cert.opt == len(exact_mds(graph))

    def test_unknown_mode_rejected(self):
        graph = graph_zoo()[0][1]
        with pytest.raises(ValueError, match="oracle mode"):
            certify(graph, greedy_mds(graph), oracle="divination")

    def test_empty_graph_certifies_at_ratio_one(self):
        cert = certify(nx.empty_graph(0), 0)
        assert cert.opt == 0 and cert.ratio_vs_opt == 1.0
        assert cert.ratio_vs_lp == 1.0


class TestCache:
    def test_repeat_key_returns_identical_object(self):
        graph = graph_zoo()[5][1]  # tree-18
        key = topology_cache_key("tree", 18, 6)
        size = len(greedy_mds(graph))
        first = certify(graph, size, cache_key=key)
        second = certify(graph, size, cache_key=key)
        assert second is first
        assert oracle_cache().stats() == {"hits": 1, "misses": 1, "entries": 1}

    def test_distinct_sizes_and_modes_miss(self):
        graph = graph_zoo()[5][1]
        key = topology_cache_key("tree", 18, 6)
        size = len(greedy_mds(graph))
        certify(graph, size, cache_key=key)
        certify(graph, size + 1, cache_key=key)
        certify(graph, size, oracle="lp", cache_key=key)
        assert oracle_cache().stats() == {"hits": 0, "misses": 3, "entries": 3}

    def test_no_key_means_no_memoization(self):
        graph = graph_zoo()[0][1]
        certify(graph, greedy_mds(graph))
        assert len(oracle_cache()) == 0

    def test_topology_key_carries_full_identity(self):
        assert topology_cache_key("gnp", 24, 7) == ("gnp", 24, 7, None)
        assert topology_cache_key("gnp", 24, 7) != topology_cache_key("gnp", 24, 8)
        assert topology_cache_key("gnp", 24, 7, params=("p", 0.5)) != (
            topology_cache_key("gnp", 24, 7)
        )


class TestSolverFailures:
    def test_infeasible_lp_raises_typed_error_with_status(self):
        # A constraint with demand 1 and no members is unsatisfiable.
        instance = CoveringInstance(
            [ValueVar(0, 0.0, 0)],
            [Constraint(0, c=1.0, members=(), origin=0)],
        )
        with pytest.raises(LPInfeasibleError, match="infeasible") as excinfo:
            solve_covering_lp(instance)
        assert excinfo.value.status == 2
        # Infeasibility is an LPError too, so existing handlers still catch
        # it — but the subtype lets the oracle refuse to fall back.
        assert isinstance(excinfo.value, LPError)

    def test_search_budget_is_enforced(self):
        graph = graph_zoo()[7][1]
        with pytest.raises(SearchBudgetExceededError, match="budget"):
            exact_mds(graph, search_budget=1)
        # None (the default) searches to completion as before.
        assert exact_mds(graph) == exact_mds(graph, search_budget=None)


@pytest.mark.solver
class TestRegistryTripwire:
    """Every MDS-producing spec is certified against its documented bound.

    Auto-covering: a future ``register_program`` with a ``quality_metric``
    lands in this sweep with no test change, and ships only if its measured
    ratio on the whole small zoo stays within its declared guarantee.
    """

    def _quality_specs(self):
        from repro.api.registry import registered_specs

        specs = [
            spec
            for spec in registered_specs()
            if spec.quality_metric is not None
        ]
        assert specs, "expected at least the greedy spec to declare quality"
        return specs

    def test_greedy_declares_its_guarantee(self):
        from repro.analysis.bounds import greedy_bound
        from repro.api.registry import program_spec

        spec = program_spec("greedy")
        assert spec.quality_metric == "ds_size"
        assert spec.quality_bound is greedy_bound

    def test_every_quality_spec_within_documented_bound(self):
        from repro.api import Experiment

        families = ["gnp", "gnp-dense", "tree", "grid", "caterpillar"]
        for spec in self._quality_specs():
            sweep = (
                Experiment(spec.name)
                .on(*families)
                .sizes(24)
                .engine("vector")
                .seeds(2)
                .certify("auto")
                .run()
            )
            assert sweep.ok, sweep.failures()
            for rec in sweep:
                quality = rec.quality
                assert quality is not None, rec.key
                assert quality["status"] != "failed", (rec.key, quality)
                ratio = (
                    quality["ratio_vs_opt"]
                    if quality["ratio_vs_opt"] is not None
                    else quality["ratio_vs_lp"]
                )
                if spec.quality_bound is not None:
                    bound = spec.quality_bound(
                        int(rec.metrics["max_degree"])
                    )
                    assert quality["within_bound"], (rec.key, quality)
                    assert ratio <= bound + 1e-9, (rec.key, ratio, bound)
