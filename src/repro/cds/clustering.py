"""BFS-phase clustering of a dominating set around ruling-set centers
(Section 4, proof of Lemma 4.2).

Phases ``i = 1, 2, ...`` of three rounds each grow cluster trees rooted at
the centers ``S'``:

* round 1 — an unclustered non-S node adjacent to a clustered S-node hooks
  onto that node's tree;
* round 2 — an unclustered non-S node adjacent to a clustered non-S node
  (in particular a round-1 joiner) hooks on, so witness paths with two
  relay nodes can be crossed within one phase;
* round 3 — an unclustered S-node adjacent to any clustered node joins that
  cluster.

Ties always break to the smallest (cluster id, neighbor id).  The paper
phrases rounds 1 and 3 in terms of nodes that joined *in the previous
phase*; we hook onto *any* already-clustered node, which absorbs at least
the same frontier every phase (so the Lemma 4.2 radius bound still holds:
every S-node at ``G_S``-distance ``d`` from its nearest center is clustered
by phase ``d``) and cannot stall when witness paths of different S-nodes
interleave.  Afterwards each tree is pruned so only non-S nodes that lie on
a path to some S-node remain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import networkx as nx

from repro.errors import GraphError


@dataclass
class ClusterTree:
    """One cluster: its center, S-members, and the connector tree in G."""

    center: int
    members_s: Set[int] = field(default_factory=set)
    #: tree parent for every tree node (center -> -1)
    parent: Dict[int, int] = field(default_factory=dict)

    @property
    def nodes(self) -> Set[int]:
        return set(self.parent)

    def radius(self) -> int:
        """Maximum parent-chain length to the center."""
        worst = 0
        for v in self.parent:
            hops = 0
            u = v
            while self.parent[u] != -1:
                u = self.parent[u]
                hops += 1
            worst = max(worst, hops)
        return worst

    def prune(self) -> None:
        """Drop non-S leaves repeatedly (connectors that support no S-node)."""
        children: Dict[int, int] = {v: 0 for v in self.parent}
        for v, p in self.parent.items():
            if p != -1:
                children[p] += 1
        leaves = [
            v for v, c in children.items() if c == 0 and v not in self.members_s
        ]
        while leaves:
            v = leaves.pop()
            p = self.parent.pop(v)
            if p != -1:
                children[p] -= 1
                if children[p] == 0 and p not in self.members_s:
                    leaves.append(p)


@dataclass
class ClusterTreeSet:
    """All cluster trees plus assignment and phase statistics."""

    trees: List[ClusterTree]
    cluster_of_s: Dict[int, int]
    phases: int

    @property
    def total_tree_nodes(self) -> int:
        return sum(len(t.parent) for t in self.trees)

    @property
    def connector_nodes(self) -> Set[int]:
        """All non-S nodes kept in some pruned tree."""
        out: Set[int] = set()
        for tree in self.trees:
            out |= tree.nodes - tree.members_s
        return out

    @property
    def max_radius(self) -> int:
        return max((t.radius() for t in self.trees), default=0)


def cluster_dominating_set(
    graph: nx.Graph,
    s_nodes: Set[int],
    centers: List[int],
    max_phases: Optional[int] = None,
) -> ClusterTreeSet:
    """Run the three-round phases until every S-node is clustered."""
    s_set = set(s_nodes)
    if not set(centers) <= s_set:
        raise GraphError("cluster centers must be dominating-set nodes")
    if not centers:
        raise GraphError("clustering needs at least one center")
    max_phases = max_phases or 3 * graph.number_of_nodes() + 3

    trees: List[ClusterTree] = []
    cluster_of: Dict[int, int] = {}  # any clustered node -> tree index
    cluster_of_s: Dict[int, int] = {}

    for idx, center in enumerate(sorted(centers)):
        tree = ClusterTree(center=center, members_s={center}, parent={center: -1})
        trees.append(tree)
        cluster_of[center] = idx
        cluster_of_s[center] = idx

    clustered_s: Set[int] = set(cluster_of_s)
    unclustered_s = s_set - clustered_s
    phases = 0
    all_nodes = sorted(graph.nodes())

    def hook(w: int, eligible: Set[int]) -> Optional[tuple]:
        """Smallest (cluster, neighbor) hook among eligible neighbors."""
        best = None
        for u in graph.neighbors(w):
            if u in eligible and u in cluster_of:
                key = (cluster_of[u], u)
                if best is None or key < best:
                    best = key
        return best

    while unclustered_s:
        phases += 1
        if phases > max_phases:
            raise GraphError(
                f"clustering failed to absorb {len(unclustered_s)} S-nodes "
                f"within {max_phases} phases; is the graph connected?"
            )
        progressed = False

        # Round 1: unclustered non-S nodes hook onto clustered S-nodes.
        joined_r1: Dict[int, tuple] = {}
        for w in all_nodes:
            if w in cluster_of or w in s_set:
                continue
            h = hook(w, clustered_s)
            if h is not None:
                joined_r1[w] = h
        for w, (idx, u) in joined_r1.items():
            trees[idx].parent[w] = u
            cluster_of[w] = idx
            progressed = True

        # Round 2: unclustered non-S nodes hook onto clustered non-S nodes.
        clustered_relays = {v for v in cluster_of if v not in s_set}
        joined_r2: Dict[int, tuple] = {}
        for w in all_nodes:
            if w in cluster_of or w in s_set:
                continue
            h = hook(w, clustered_relays)
            if h is not None:
                joined_r2[w] = h
        for w, (idx, u) in joined_r2.items():
            trees[idx].parent[w] = u
            cluster_of[w] = idx
            progressed = True

        # Round 3: unclustered S-nodes join via any clustered neighbor.
        clustered_any = set(cluster_of)
        joined_s: Dict[int, tuple] = {}
        for u in sorted(unclustered_s):
            h = hook(u, clustered_any)
            if h is not None:
                joined_s[u] = h
        for u, (idx, w) in joined_s.items():
            trees[idx].parent[u] = w
            trees[idx].members_s.add(u)
            cluster_of[u] = idx
            cluster_of_s[u] = idx
            clustered_s.add(u)
            progressed = True

        unclustered_s -= set(joined_s)
        if not progressed and unclustered_s:
            raise GraphError(
                f"clustering stalled with {len(unclustered_s)} S-nodes left; "
                "is the graph connected?"
            )

    for tree in trees:
        tree.prune()
    return ClusterTreeSet(trees=trees, cluster_of_s=cluster_of_s, phases=phases)
