"""Shared pipeline skeleton for the Section 3.4 proofs.

All MDS algorithms follow the same three parts:

* **Part I** — Lemma 2.1: a ``(1+eps_1)``-approximate fractional dominating
  set with fractionality ``eps_1 / (2 Delta~)`` (``r = 2 Delta~ / eps_1``).
* **Part II** — iterate factor-two rounding (Lemma 3.9 or 3.14) while the
  inverse fractionality ``r`` exceeds ``F = 256 eps_2^-3 ln Delta~``, each
  iteration doubling the fractionality at a ``(1 + eps_2)`` cost factor.
* **Part III** — one final one-shot rounding (Lemma 3.8 or 3.13), paying the
  ``ln(Delta~)`` factor and producing the integral dominating set.

The paper's constants make ``F`` astronomically large, so at laptop scale
Part II is legitimately skipped ("for small constant Delta part II is not
executed at all", Section 3.4); experiments that exercise Part II shrink
the constants through :attr:`PipelineParams.constants_scale`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Set

import networkx as nx

from repro.analysis.bounds import theorem11_approximation_bound
from repro.analysis.verify import require_dominating_set
from repro.congest.cost import CostLedger
from repro.domsets.cfds import CFDS, fractionality_of
from repro.errors import GraphError
from repro.fractional.raising import kmw06_initial_fds


@dataclass(frozen=True)
class PipelineParams:
    """Knobs shared by both deterministic routes.

    eps:
        Target approximation slack; the output is guaranteed at most
        ``(1 + eps)(1 + ln(Delta + 1))`` times the LP optimum.
    part1_provider:
        ``"lp"`` or ``"distributed"`` (see :mod:`repro.fractional`).
    constants_scale:
        Multiplies the theory constants (``256 eps^-3 ln D~`` and
        ``64 eps^-2 ln D~``); 1.0 = paper-faithful, smaller values force
        Part II to engage at laptop scale (experiments E5/E12).
    max_factor_two_iterations:
        Safety cap on Part II length.
    """

    eps: float = 0.5
    part1_provider: str = "lp"
    constants_scale: float = 1.0
    max_factor_two_iterations: int = 64
    #: direct overrides for experiments that study Part II in isolation
    #: (the paper's cascaded constants make F astronomically large, so at
    #: laptop scale Part II only engages through these)
    eps2_override: float | None = None
    f_target_override: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.eps <= 1.0:
            raise GraphError(f"eps must be in (0, 1], got {self.eps}")

    def derived(self, max_degree: int) -> "DerivedConstants":
        """The Section 3.4 parameter cascade."""
        delta_tilde = max_degree + 1
        eps1 = min(self.eps / 16.0, 0.25)
        rho_guess = max(1.0, math.log2(max(2.0, delta_tilde / self.eps)))
        eps2 = (
            self.eps2_override
            if self.eps2_override is not None
            else eps1 / (100.0 * rho_guess)
        )
        # Part II engages only while r > F; scaled constants shrink F.
        if self.f_target_override is not None:
            f_target = max(4.0, self.f_target_override)
        else:
            f_target = max(
                4.0,
                256.0
                * self.constants_scale
                * math.log(max(2, delta_tilde))
                / eps2 ** 3,
            )
        return DerivedConstants(
            delta_tilde=delta_tilde,
            eps1=eps1,
            eps2=eps2,
            rho_guess=rho_guess,
            f_target=f_target,
        )


@dataclass(frozen=True)
class DerivedConstants:
    delta_tilde: int
    eps1: float
    eps2: float
    rho_guess: float
    f_target: float


@dataclass
class StageTrace:
    """Size/fractionality bookkeeping after one pipeline stage."""

    stage: str
    size: float
    fractionality: float
    detail: str = ""


@dataclass
class MDSResult:
    """An integral dominating set plus full pipeline provenance."""

    graph: nx.Graph
    dominating_set: Set[int]
    ledger: CostLedger
    trace: List[StageTrace] = field(default_factory=list)
    params: Dict[str, float] = field(default_factory=dict)
    route: str = ""

    @property
    def size(self) -> int:
        return len(self.dominating_set)

    def approximation_bound(self) -> float:
        """The Theorem 1.1/1.2 guarantee for this instance's parameters."""
        max_degree = max((d for _, d in self.graph.degree()), default=0)
        return theorem11_approximation_bound(self.params.get("eps", 0.5), max_degree)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable summary (for the CLI and downstream tooling)."""
        return {
            "route": self.route,
            "size": self.size,
            "dominating_set": sorted(self.dominating_set),
            "n": self.graph.number_of_nodes(),
            "params": dict(self.params),
            "rounds_simulated": self.ledger.simulated_rounds,
            "rounds_charged": self.ledger.charged_rounds,
            "trace": [
                {
                    "stage": t.stage,
                    "size": t.size,
                    "fractionality": t.fractionality,
                    "detail": t.detail,
                }
                for t in self.trace
            ],
        }


def run_pipeline(
    graph: nx.Graph,
    params: PipelineParams,
    factor_two_step: Callable[[Dict[int, float], float, float], tuple],
    one_shot_step: Callable[[Dict[int, float]], tuple],
    route: str,
) -> MDSResult:
    """Execute Parts I-III with the supplied rounding steps.

    ``factor_two_step(values, eps2, r) -> (new_values, ledger)`` and
    ``one_shot_step(values) -> (final_values, ledger)`` are the route
    specific Lemmas (3.9/3.14 and 3.8/3.13 respectively).
    """
    n = graph.number_of_nodes()
    if n == 0:
        raise GraphError("empty graph")
    max_degree = max((d for _, d in graph.degree()), default=0)
    consts = params.derived(max_degree)
    ledger = CostLedger()
    trace: List[StageTrace] = []

    # -- Part I ----------------------------------------------------------
    initial = kmw06_initial_fds(
        graph, eps=consts.eps1, provider=params.part1_provider
    )
    ledger.merge(initial.ledger, prefix="part1/")
    values = dict(initial.fds.values)
    trace.append(
        StageTrace(
            stage="part1-fractional",
            size=initial.raised_size,
            fractionality=initial.fds.fractionality,
            detail=f"provider={initial.provider} size_before_raise={initial.provider_size:.4f}",
        )
    )

    # -- Part II ---------------------------------------------------------
    r = 1.0 / fractionality_of(values)
    iterations = 0
    while r > consts.f_target and iterations < params.max_factor_two_iterations:
        new_values, step_ledger = factor_two_step(values, consts.eps2, r)
        ledger.merge(step_ledger, prefix=f"part2/iter{iterations}/")
        cfds = CFDS.fds(graph, new_values)
        cfds.require_feasible(f"Part II iteration {iterations}")
        values = new_values
        r_new = 1.0 / fractionality_of(values)
        trace.append(
            StageTrace(
                stage=f"part2-factor-two-{iterations}",
                size=cfds.size,
                fractionality=cfds.fractionality,
                detail=f"r {r:.4g} -> {r_new:.4g}",
            )
        )
        if r_new > r / 1.5:
            # The doubling stalled (can happen only with degenerate scaled
            # constants); stop rather than loop.
            r = r_new
            break
        r = r_new
        iterations += 1

    # -- Part III ---------------------------------------------------------
    final_values, final_ledger = one_shot_step(values)
    ledger.merge(final_ledger, prefix="part3/")
    ds = {v for v, x in final_values.items() if x >= 1.0 - 1e-9}
    require_dominating_set(graph, ds, f"{route} output")
    trace.append(
        StageTrace(
            stage="part3-one-shot",
            size=float(len(ds)),
            fractionality=1.0,
            detail=f"factor-two iterations={iterations}",
        )
    )

    return MDSResult(
        graph=graph,
        dominating_set=ds,
        ledger=ledger,
        trace=trace,
        params={
            "eps": params.eps,
            "eps1": consts.eps1,
            "eps2": consts.eps2,
            "f_target": consts.f_target,
            "constants_scale": params.constants_scale,
            "part2_iterations": float(iterations),
        },
        route=route,
    )
