"""Every example script runs end to end (small parameters)."""

import runpy
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list) -> None:
    old_argv = sys.argv
    sys.argv = [name] + [str(a) for a in argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart(capsys):
    run_example("quickstart.py", [40, 1])
    out = capsys.readouterr().out
    assert "LP lower bound" in out
    assert "[holds]" in out


def test_wireless_clustering(capsys):
    run_example("wireless_clustering.py", [60, 2])
    out = capsys.readouterr().out
    assert "cluster heads" in out
    assert "cluster sizes" in out


def test_cds_backbone(capsys):
    run_example("cds_backbone.py", [50, 3])
    out = capsys.readouterr().out
    assert "backbone" in out
    assert "routing stretch" in out


def test_set_cover_monitoring(capsys):
    run_example("set_cover_monitoring.py", [40, 15, 4])
    out = capsys.readouterr().out
    assert "derandomized rounding" in out
    assert "probes" in out


def test_congest_simulation(capsys):
    run_example("congest_simulation.py", [36, 5])
    out = capsys.readouterr().out
    assert "distributed run" in out
    assert "decisions identical: True" in out


def test_experiment_api(capsys):
    run_example("experiment_api.py", [30, 3])
    out = capsys.readouterr().out
    assert "registered programs" in out
    assert "negotiated strategy: batch" in out
    assert "streaming a BFS grid" in out
    assert "composite spec 'cds'" in out
