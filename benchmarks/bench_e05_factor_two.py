"""Benchmark E5: Lemma 3.14 factor-two iteration trace.

Regenerates the Lemma 3.14 factor-two iteration trace (see DESIGN.md Section 2) and certifies
every guarantee check recorded by the experiment.
"""

from benchmarks.conftest import run_experiment
from repro.experiments import e05_factor_two


def bench_e05_factor_two(benchmark):
    run_experiment(benchmark, e05_factor_two.run)
