"""CLI entry point (python -m repro) and result serialization."""

import json

import pytest

from repro.__main__ import build_parser, main
from repro.cds.pipeline import approx_cds
from repro.mds.deterministic import approx_mds_coloring


class TestCLI:
    def test_mds_json(self, capsys):
        rc = main(
            ["mds", "--family", "gnp", "-n", "40", "--seed", "1",
             "--algorithm", "coloring", "--json"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "coloring"
        assert payload["ratio_vs_lp"] <= payload["bound"]
        assert payload["size"] >= 1

    def test_mds_plain_verbose(self, capsys):
        rc = main(
            ["mds", "--family", "tree", "-n", "30", "--algorithm",
             "decomposition", "--verbose"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "ratio_vs_lp" in out
        assert "stage ledger" in out

    def test_mds_randomized(self, capsys):
        rc = main(["mds", "-n", "30", "--algorithm", "randomized", "--json"])
        assert rc == 0
        assert json.loads(capsys.readouterr().out)["size"] >= 1

    def test_cds_json(self, capsys):
        rc = main(["cds", "--family", "geometric", "-n", "50", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cds_size"] >= payload["mds_size"]

    def test_suite_listing(self, capsys):
        rc = main(["suite", "--sizes", "20"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "gnp-20" in out
        assert "geometric-20" in out

    def test_bench_known(self, capsys):
        rc = main(["bench", "E9"])
        assert rc == 0
        assert "E9" in capsys.readouterr().out

    def test_bench_unknown(self, capsys):
        rc = main(["bench", "E99"])
        assert rc == 2

    def test_mds_engine_flag(self, capsys):
        from repro.congest.engine import default_engine_name, set_default_engine

        original = default_engine_name()
        try:
            rc = main(
                ["mds", "-n", "30", "--engine", "reference", "--json"]
            )
            assert rc == 0
            assert json.loads(capsys.readouterr().out)["size"] >= 1
            assert default_engine_name() == "reference"
        finally:
            set_default_engine(original)

    def test_grid_command(self, capsys, tmp_path):
        out = tmp_path / "grid.json"
        rc = main(
            ["grid", "--families", "tree", "--sizes", "16", "--programs",
             "bfs", "--engines", "reference,fast", "--json-out", str(out)]
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "engine_parity=PASS" in text
        payload = json.loads(out.read_text())
        assert len(payload["cells"]) == 2
        assert payload["summary"]["failures"] == []

    def test_grid_command_unknown_family_fails_checks(self, capsys):
        rc = main(
            ["grid", "--families", "nope", "--sizes", "16",
             "--programs", "bfs", "--engines", "fast"]
        )
        assert rc == 1
        assert "no_failures=FAIL" in capsys.readouterr().out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestSerialization:
    def test_mds_to_dict_round_trips_json(self, small_gnp):
        result = approx_mds_coloring(small_gnp, eps=0.5)
        payload = result.to_dict()
        text = json.dumps(payload)
        restored = json.loads(text)
        assert restored["size"] == result.size
        assert set(restored["dominating_set"]) == result.dominating_set
        assert restored["trace"][0]["stage"] == "part1-fractional"

    def test_cds_to_dict(self, small_geometric):
        result = approx_cds(small_geometric, eps=0.5)
        payload = result.to_dict()
        json.dumps(payload)
        assert payload["cds_size"] == result.size
        assert payload["overhead"] == pytest.approx(result.overhead)
        assert payload["route"] in ("tree", "spanner", "trivial")
