"""Deterministic greedy coloring and coloring utilities.

Greedy coloring in increasing-ID order uses at most ``max_degree + 1``
colors and is fully deterministic — the centralized stand-in for the
[BEK15]/[BEG18] distributed (Delta+1)-coloring the paper invokes (round
costs for the distributed version are charged separately, see
:func:`repro.congest.cost.bek15_coloring_rounds`).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Sequence

import networkx as nx

from repro.errors import ColoringError


def greedy_coloring(
    graph: nx.Graph, order: Sequence[Hashable] | None = None
) -> Dict[Hashable, int]:
    """First-fit coloring in the given (default: sorted-ID) order.

    Returns a map node -> color with colors ``0..C-1``.
    """
    if order is None:
        order = sorted(graph.nodes())
    colors: Dict[Hashable, int] = {}
    for v in order:
        taken = {colors[u] for u in graph.neighbors(v) if u in colors}
        color = 0
        while color in taken:
            color += 1
        colors[v] = color
    return colors


def validate_coloring(graph: nx.Graph, colors: Dict[Hashable, int]) -> int:
    """Check properness; returns the number of colors used.

    Raises :class:`ColoringError` on a monochromatic edge or uncolored node.
    """
    for v in graph.nodes():
        if v not in colors:
            raise ColoringError(f"node {v} is uncolored")
    for u, v in graph.edges():
        if colors[u] == colors[v]:
            raise ColoringError(
                f"edge ({u}, {v}) is monochromatic with color {colors[u]}"
            )
    return len(set(colors[v] for v in graph.nodes())) if graph.number_of_nodes() else 0


def color_classes(colors: Dict[Hashable, int]) -> List[List[Hashable]]:
    """Group nodes by color, ordered by color index; nodes sorted within."""
    if not colors:
        return []
    buckets: Dict[int, List[Hashable]] = {}
    for v, c in colors.items():
        buckets.setdefault(c, []).append(v)
    return [sorted(buckets[c]) for c in sorted(buckets)]


def restrict_coloring(
    colors: Dict[Hashable, int], keep: Iterable[Hashable]
) -> Dict[Hashable, int]:
    """Coloring restricted to a node subset (colors re-indexed densely)."""
    keep_set = set(keep)
    used = sorted({c for v, c in colors.items() if v in keep_set})
    remap = {c: i for i, c in enumerate(used)}
    return {v: remap[c] for v, c in colors.items() if v in keep_set}
