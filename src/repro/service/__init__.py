"""The always-on simulation service: multi-tenant batch-window serving.

This package wraps the run-to-completion experiment stack in a long-lived
service where **batching is how traffic is served**: concurrent tenants'
cells coalesce into ragged stacked planes per batch window, a two-tier
deterministic cache (topologies over shared memory, results by full cell
identity) short-circuits repeat work, and per-tenant queues bound each
tenant's pressure on the window.  Three layers, outermost first:

* :mod:`repro.service.server` / :mod:`repro.service.client` — the
  JSON-lines protocol (:mod:`repro.service.protocol`) over TCP;
  ``python -m repro serve`` / ``repro submit`` on the CLI.
* :class:`~repro.service.service.SimulationService` — the in-process
  facade the protocol is a thin shell over: admission windows, fairness,
  backpressure, delivery tickets.
* :mod:`repro.service.cache` — the deterministic cache tiers.

See ``docs/service.md`` for the protocol frames, the window policy and
the cache identity argument.
"""

from repro.service.cache import ResultCache, TopologyCache
from repro.service.client import RemoteServiceError, ServiceClient
from repro.service.server import ServiceServer, run_server
from repro.service.service import (
    ServedRecord,
    ServiceConfig,
    SimulationService,
    Ticket,
)

__all__ = [
    "RemoteServiceError",
    "ResultCache",
    "ServedRecord",
    "ServiceClient",
    "ServiceConfig",
    "ServiceServer",
    "SimulationService",
    "Ticket",
    "TopologyCache",
    "run_server",
]
