"""Degenerate and adversarial inputs through every public entry point."""

import networkx as nx
import pytest

from repro.analysis.verify import is_connected_dominating_set, is_dominating_set
from repro.baselines.greedy import greedy_mds
from repro.cds.pipeline import approx_cds
from repro.decomposition.ball_carving import carve_decomposition
from repro.decomposition.cluster_graph import validate_decomposition
from repro.domsets.covering import CoveringInstance
from repro.fractional.lp import lp_fractional_mds
from repro.graphs.generators import clique_graph, star_graph
from repro.graphs.normalize import normalize_graph
from repro.mds.deterministic import approx_mds_coloring, approx_mds_decomposition
from repro.setcover.instance import SetCoverInstance
from repro.setcover.solve import approx_min_set_cover, greedy_set_cover
from repro.spanner.baswana_sen import baswana_sen_spanner, derandomized_sampler


def singleton_graph():
    g = nx.Graph()
    g.add_node(0)
    return normalize_graph(g)


class TestSingletonGraph:
    def test_mds_routes(self):
        g = singleton_graph()
        for runner in (approx_mds_coloring, approx_mds_decomposition):
            result = runner(g, eps=0.5)
            assert result.dominating_set == {0}

    def test_cds(self):
        result = approx_cds(singleton_graph())
        assert result.cds == {0}
        assert result.route == "trivial"

    def test_greedy_and_lp(self):
        g = singleton_graph()
        assert greedy_mds(g) == {0}
        assert lp_fractional_mds(g).optimum == pytest.approx(1.0)

    def test_decomposition(self):
        dec = carve_decomposition(singleton_graph())
        validate_decomposition(dec)
        assert dec.num_clusters == 1


class TestTwoNodeGraph:
    def test_mds(self):
        g = normalize_graph(nx.path_graph(2))
        result = approx_mds_coloring(g, eps=0.5)
        assert len(result.dominating_set) == 1

    def test_cds(self):
        g = normalize_graph(nx.path_graph(2))
        result = approx_cds(g)
        assert is_connected_dominating_set(g, result.cds)
        assert len(result.cds) <= 2


class TestExtremeShapes:
    def test_star_everything_is_one(self):
        g = star_graph(30)
        for runner in (approx_mds_coloring, approx_mds_decomposition):
            result = runner(g, eps=0.5)
            assert is_dominating_set(g, result.dominating_set)
            assert result.size <= 3  # OPT=1, ln(31)-ish headroom is plenty

    def test_clique(self):
        g = clique_graph(15)
        result = approx_mds_coloring(g, eps=0.5)
        assert is_dominating_set(g, result.dominating_set)
        assert result.size <= 4

    def test_disjoint_union_mds(self):
        """Disconnected graphs are fine for MDS (only CDS needs
        connectivity)."""
        g = normalize_graph(nx.disjoint_union(nx.path_graph(4), nx.path_graph(4)))
        result = approx_mds_coloring(g, eps=0.5)
        assert is_dominating_set(g, result.dominating_set)
        dec = carve_decomposition(g)
        validate_decomposition(dec)

    def test_spanner_disconnected_input(self):
        g = normalize_graph(nx.disjoint_union(nx.cycle_graph(5), nx.cycle_graph(5)))
        result = baswana_sen_spanner(g, derandomized_sampler())
        # Per-component connectivity must be preserved.
        from repro.spanner.baswana_sen import spanner_subgraph

        sub = spanner_subgraph(g, result)
        for comp in nx.connected_components(g):
            assert nx.is_connected(sub.subgraph(comp))


class TestSetCoverEdgeCases:
    def test_single_set_covers_all(self):
        inst = SetCoverInstance.from_iterables(
            {0: [1, 2, 3], 1: [1]}, universe=[1, 2, 3]
        )
        assert greedy_set_cover(inst) == {0}
        result = approx_min_set_cover(inst)
        assert inst.is_cover(result.chosen)

    def test_every_element_unique_set(self):
        inst = SetCoverInstance.from_iterables(
            {i: [i] for i in range(6)}, universe=range(6)
        )
        result = approx_min_set_cover(inst)
        assert result.chosen == set(range(6))

    def test_gradual_matches_cover(self):
        from repro.setcover.instance import random_setcover_instance

        inst = random_setcover_instance(30, 12, 6, seed=9)
        result = approx_min_set_cover(inst, gradual=True)
        assert inst.is_cover(result.chosen)
        assert result.ledger.total_rounds > 0

    def test_empty_universe(self):
        inst = SetCoverInstance.from_iterables({0: [1]}, universe=[])
        assert greedy_set_cover(inst) == set()


class TestQuantizationExtremes:
    def test_coarse_grid_still_feasible(self, small_gnp):
        """A deliberately coarse transmittable grid must not break
        feasibility (values are always rounded up)."""
        from repro.derand.coloring_based import one_shot_via_coloring
        from repro.fractional.raising import kmw06_initial_fds
        from repro.util.transmittable import TransmittableGrid

        initial = kmw06_initial_fds(small_gnp, eps=0.5)
        out = one_shot_via_coloring(
            small_gnp, initial.fds.values, grid=TransmittableGrid(iota=8)
        )
        ds = {v for v, x in out.values.items() if x >= 1 - 1e-9}
        assert is_dominating_set(small_gnp, ds)

    def test_all_values_one(self, small_gnp):
        inst = CoveringInstance.from_graph(
            small_gnp, {v: 1.0 for v in small_gnp.nodes()}
        )
        from repro.rounding.schemes import one_shot_scheme

        scheme = one_shot_scheme(inst, delta_tilde=10)
        assert scheme.participating() == []  # everything deterministic
