"""The JSON-lines wire protocol between service clients and the server.

One frame per line, UTF-8 JSON objects with a ``type`` field.  The
protocol is deliberately boring: the service's semantics live in
:mod:`repro.service.service`, and the server is a thin shell — frames
carry exactly the facade's inputs and outputs, with records in the legacy
dict shape (:meth:`~repro.api.records.RunRecord.to_dict`, the same shape
``grid --stream`` prints and BENCH artifacts store).

Client → server::

    {"type": "hello",  "client": "tenant-a"}                 # optional
    {"type": "submit", "id": "r1", "cells": [CELL, ...],
     "use_cache": true, "certify": null}
    {"type": "flush"}
    {"type": "stats",  "id": "s1"}
    {"type": "bye"}

Server → client::

    {"type": "hello",    "client": "tenant-a"}
    {"type": "accepted", "id": "r1", "cells": 4}
    {"type": "record",   "id": "r1", "index": 2,
     "record": RECORD, "meta": {"window": 7, "cache_hit": false,
                                "stack_width": 4, "latency_s": 0.01}}
    {"type": "done",     "id": "r1"}
    {"type": "stats",    "id": "s1", "stats": {...}}
    {"type": "error",    "id": "r1"?, "error": {"type": "...", "message": "..."}}

``CELL`` is ``{"family", "n", "program", "engine", "seed"}`` (``seed``
defaults to 7, matching :class:`~repro.experiments.runner.GridCell`).
``error.type`` is the raising exception's class name — the
:mod:`repro.errors` code a library caller would have caught, so remote
and in-process tenants pattern-match the same error family.  Frames for
different requests may interleave on one connection; ``id`` is the
client-chosen correlation key.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Dict, Mapping, Union

from repro.errors import ServiceError
from repro.experiments.runner import GridCell

__all__ = [
    "MalformedFrameError",
    "cell_from_wire",
    "cell_to_wire",
    "decode_frame",
    "encode_frame",
    "error_payload",
]


class MalformedFrameError(ServiceError):
    """A line on the wire was not a valid protocol frame."""


def encode_frame(frame: Mapping[str, object]) -> bytes:
    """Serialize one frame to its wire form (compact JSON + newline)."""
    return (json.dumps(frame, separators=(",", ":")) + "\n").encode("utf-8")


def decode_frame(line: Union[str, bytes]) -> Dict[str, object]:
    """Parse one wire line into a frame dict; structured error on garbage."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        frame = json.loads(line)
    except ValueError as exc:
        raise MalformedFrameError(f"not a JSON frame: {exc}") from None
    if not isinstance(frame, dict) or not isinstance(frame.get("type"), str):
        raise MalformedFrameError("a frame must be an object with a 'type' string")
    return frame


def cell_to_wire(cell: GridCell) -> Dict[str, object]:
    """The wire form of one grid cell (same dict the record shape embeds)."""
    return asdict(cell)


def cell_from_wire(data: Mapping[str, object]) -> GridCell:
    """Parse one wire cell; missing/garbled fields raise a structured error."""
    try:
        return GridCell(
            family=str(data["family"]),
            n=int(data["n"]),  # type: ignore[arg-type]
            program=str(data["program"]),
            engine=str(data["engine"]),
            seed=int(data.get("seed", 7)),  # type: ignore[arg-type]
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise MalformedFrameError(f"bad cell {dict(data)!r}: {exc}") from None


def error_payload(exc: BaseException) -> Dict[str, str]:
    """The structured error block of an ``error`` frame."""
    return {"type": type(exc).__name__, "message": str(exc)}
