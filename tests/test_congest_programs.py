"""BFS forest, tree aggregation and rounding-execution node programs."""

import networkx as nx
import pytest

from repro.congest.programs.aggregate import run_tree_sum
from repro.congest.programs.bfs import run_bfs_forest
from repro.congest.programs.rounding_exec import run_rounding_execution
from repro.graphs.normalize import normalize_graph
from repro.util.transmittable import TransmittableGrid


class TestBFS:
    def test_single_root_distances_match_networkx(self, medium_gnp):
        root_of, dist_of, parent_of, _ = run_bfs_forest(medium_gnp, roots=[0])
        truth = nx.single_source_shortest_path_length(medium_gnp, 0)
        for v, d in truth.items():
            assert dist_of[v] == d
            assert root_of[v] == 0

    def test_parents_are_closer(self, small_geometric):
        _, dist_of, parent_of, _ = run_bfs_forest(small_geometric, roots=[0])
        for v, p in parent_of.items():
            if p >= 0:
                assert dist_of[p] == dist_of[v] - 1
                assert small_geometric.has_edge(v, p)

    def test_multi_root_assigns_nearest(self, medium_gnp):
        roots = [0, 1, 2]
        root_of, dist_of, _, _ = run_bfs_forest(medium_gnp, roots=roots)
        for v in medium_gnp.nodes():
            best = min(
                nx.shortest_path_length(medium_gnp, v, r) for r in roots
            )
            assert dist_of[v] == best

    def test_rounds_close_to_eccentricity(self, small_tree):
        _, _, _, sim = run_bfs_forest(small_tree, roots=[0])
        ecc = nx.eccentricity(small_tree, 0)
        assert sim.rounds <= ecc + 4

    def test_unreachable_component(self):
        g = normalize_graph(nx.Graph([(0, 1), (2, 3)]))
        root_of, dist_of, _, _ = run_bfs_forest(g, roots=[0])
        assert root_of[2] == -1
        assert dist_of[3] == -1


class TestTreeAggregation:
    def test_path_sum(self):
        g = normalize_graph(nx.path_graph(5))
        parent = {0: -1, 1: 0, 2: 1, 3: 2, 4: 3}
        totals, sim = run_tree_sum(g, parent, {v: (v,) for v in range(5)})
        assert totals[0] == (10,)
        # Every tree node learns the total via the downward broadcast.
        for v in range(5):
            assert totals[v] == (10,)

    def test_vector_sum(self):
        g = normalize_graph(nx.star_graph(3))
        center = [v for v in g.nodes() if g.degree(v) == 3][0]
        parent = {v: (-1 if v == center else center) for v in g.nodes()}
        vectors = {v: (1, v) for v in g.nodes()}
        totals, _ = run_tree_sum(g, parent, vectors)
        assert totals[center] == (4, sum(g.nodes()))

    def test_forest_sums_per_tree(self):
        g = normalize_graph(nx.Graph([(0, 1), (2, 3)]))
        parent = {0: -1, 1: 0, 2: -1, 3: 2}
        totals, _ = run_tree_sum(g, parent, {v: (1,) for v in range(4)})
        assert totals[0] == (2,)
        assert totals[2] == (2,)

    def test_bfs_then_aggregate(self, small_tree):
        _, _, parent_of, _ = run_bfs_forest(small_tree, roots=[0])
        totals, _ = run_tree_sum(
            small_tree, parent_of, {v: (1,) for v in small_tree.nodes()}
        )
        assert totals[0] == (small_tree.number_of_nodes(),)


class TestRoundingExecution:
    def test_uncovered_nodes_join(self):
        g = normalize_graph(nx.path_graph(3))
        values = {0: 0.0, 1: 0.0, 2: 1.0}
        final, sim = run_rounding_execution(
            g, values, {v: 1.0 for v in g.nodes()}
        )
        # Node 0 sees coverage 0 (only neighbor 1 with value 0) -> joins.
        assert final[0] == 1.0
        # Nodes 1 and 2 are covered by node 2.
        assert final[1] == 0.0
        assert final[2] == 1.0
        assert sim.rounds <= 2

    def test_covered_keep_values(self, small_gnp):
        grid = TransmittableGrid.for_n(30)
        values = {v: 1.0 for v in small_gnp.nodes()}
        final, _ = run_rounding_execution(
            small_gnp, values, {v: 1.0 for v in small_gnp.nodes()}, grid=grid
        )
        assert final == values

    def test_fractional_coverage(self):
        g = normalize_graph(nx.complete_graph(4))
        values = {v: 0.25 for v in g.nodes()}
        final, _ = run_rounding_execution(g, values, {v: 1.0 for v in g.nodes()})
        assert final == values  # 4 * 0.25 = 1 covers everyone

    def test_respects_constraints_map(self):
        g = normalize_graph(nx.path_graph(2))
        values = {0: 0.3, 1: 0.3}
        final, _ = run_rounding_execution(g, values, {0: 0.5, 1: 1.0})
        # The grid for n=2 is coarse (iota=10), hence the loose tolerance.
        assert final[0] == pytest.approx(0.3, abs=1e-3)  # c=0.5 satisfied
        assert final[1] == 1.0  # c=1 violated -> joins
