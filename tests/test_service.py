"""The simulation service: windows, coalescing, caches, fairness, protocol.

The load-bearing guarantee is **cross-tenant coalescing determinism**:
records served through the service — coalesced into ragged stacked planes
with other tenants' cells, deduped, or replayed from the result cache —
are field-for-field identical to solo ``Experiment.run()`` records on the
strategy-invariant fields (cell identity, ok, the whole metrics block;
the same :func:`~repro.experiments.harness.comparable_records` contract
every other execution strategy is held to).  Wall-clock differs by
nature; everything else must not.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.api import Experiment
from repro.errors import (
    ClientQueueFullError,
    ServiceClosedError,
    UnknownEngineError,
    UnknownProgramError,
)
from repro.experiments.harness import comparable_records
from repro.experiments.runner import GridCell
from repro.service import (
    RemoteServiceError,
    ServiceClient,
    ServiceConfig,
    ServiceServer,
    SimulationService,
)

#: A generous window: tests close windows explicitly with flush() so
#: nothing races the deadline, and a stuck test fails fast via timeouts.
SLOW_WINDOW = ServiceConfig(window_s=30.0)

COLLECT_TIMEOUT = 60.0


def _cells(sizes, seeds, program="greedy", engine="vector", family="gnp"):
    return [
        GridCell(family, n, program, engine, seed=s) for n in sizes for s in seeds
    ]


def _solo_records(cells):
    """The ground truth: each cell run solo through the builder."""
    records = []
    for cell in cells:
        sweep = (
            Experiment(cell.program)
            .on(cell.family)
            .sizes(cell.n)
            .engines(cell.engine)
            .seeds([cell.seed])
            .strategy("cell")
            .run()
        )
        assert len(sweep) == 1
        records.append(sweep[0])
    return records


@pytest.fixture()
def service():
    svc = SimulationService(SLOW_WINDOW).start()
    yield svc
    svc.stop(drain=False)


class TestServiceBasics:
    def test_submit_before_start_raises(self):
        svc = SimulationService(SLOW_WINDOW)
        with pytest.raises(ServiceClosedError):
            svc.submit("t", _cells((20,), (0,)))

    def test_submit_after_stop_raises(self):
        svc = SimulationService(SLOW_WINDOW).start()
        svc.stop()
        with pytest.raises(ServiceClosedError):
            svc.submit("t", _cells((20,), (0,)))

    def test_bad_axes_rejected_eagerly(self, service):
        with pytest.raises(UnknownProgramError):
            service.submit("t", [GridCell("gnp", 20, "nope", "vector", 0)])
        with pytest.raises(UnknownEngineError):
            service.submit("t", [GridCell("gnp", 20, "greedy", "warp", 0)])
        with pytest.raises(ValueError):
            service.submit("t", _cells((20,), (0,)), certify="psychic")

    def test_empty_submission_completes_immediately(self, service):
        ticket = service.submit("t", [])
        assert ticket.collect(timeout=5.0) == []

    def test_dict_cells_accepted(self, service):
        ticket = service.submit(
            "t",
            [{"family": "gnp", "n": 20, "program": "greedy", "engine": "vector"}],
        )
        service.flush()
        (record,) = ticket.collect(timeout=COLLECT_TIMEOUT)
        assert record.ok
        assert record.cell == GridCell("gnp", 20, "greedy", "vector", 7)

    def test_unknown_family_degrades_to_error_record(self, service):
        ticket = service.submit("t", [GridCell("mobius", 20, "greedy", "vector", 0)])
        service.flush()
        (record,) = ticket.collect(timeout=COLLECT_TIMEOUT)
        assert not record.ok
        assert record.error and record.error["type"]

    def test_stop_drains_pending_work(self):
        svc = SimulationService(SLOW_WINDOW).start()
        ticket = svc.submit("t", _cells((20, 30), (0, 1)))
        svc.stop(drain=True)  # no flush: drain itself must finish the work
        records = ticket.collect(timeout=COLLECT_TIMEOUT)
        assert len(records) == 4 and all(r.ok for r in records)

    def test_stop_without_drain_cancels(self):
        svc = SimulationService(SLOW_WINDOW).start()
        ticket = svc.submit("t", _cells((20,), range(4)))
        svc.stop(drain=False)
        with pytest.raises(ServiceClosedError):
            ticket.collect(timeout=5.0)


class TestCoalescingDeterminism:
    def test_single_tenant_records_match_solo_runs(self, service):
        cells = _cells((20, 30), (0, 1, 2))
        ticket = service.submit("t", cells)
        service.flush()
        served = ticket.collect(timeout=COLLECT_TIMEOUT)
        assert comparable_records(served) == comparable_records(_solo_records(cells))
        # Normalized delivery: no batch/plan leakage from the coalesced path.
        assert all(rec.batch is None and rec.plan is None for rec in served)

    def test_two_tenants_coalesce_and_match_solo(self, service):
        cells_a = _cells((20, 30), (0, 1))
        cells_b = _cells((30, 40), (1, 2))  # overlaps a on (30, 1)
        ticket_a = service.submit("tenant-a", cells_a)
        ticket_b = service.submit("tenant-b", cells_b)
        service.flush()
        served_a = ticket_a.collect(timeout=COLLECT_TIMEOUT)
        served_b = ticket_b.collect(timeout=COLLECT_TIMEOUT)
        assert comparable_records(served_a) == comparable_records(
            _solo_records(cells_a)
        )
        assert comparable_records(served_b) == comparable_records(
            _solo_records(cells_b)
        )
        stats = service.stats()
        assert stats["coalesced_windows"] >= 1
        # 8 submitted cells, 7 unique: the shared cell simulated once.
        assert stats["result_cache"]["entries"] == 7

    def test_concurrent_submitting_threads_match_solo(self, service):
        tenants = {
            f"tenant-{i}": _cells((20, 30, 40), (i, i + 1)) for i in range(4)
        }
        tickets = {}
        barrier = threading.Barrier(len(tenants) + 1)

        def tenant(name, cells):
            barrier.wait()
            tickets[name] = service.submit(name, cells)

        threads = [
            threading.Thread(target=tenant, args=item) for item in tenants.items()
        ]
        for t in threads:
            t.start()
        barrier.wait()
        for t in threads:
            t.join()
        # All submissions are queued; close the window around all of them.
        service.flush()
        for name, cells in tenants.items():
            served = tickets[name].collect(timeout=COLLECT_TIMEOUT)
            assert comparable_records(served) == comparable_records(
                _solo_records(cells)
            )

    def test_mixed_programs_and_engines_in_one_window(self, service):
        cells = _cells((20,), (0, 1)) + _cells(
            (20,), (0,), program="color-reduction"
        ) + _cells((20,), (0,), engine="fast")
        ticket = service.submit("t", cells)
        service.flush()
        served = ticket.collect(timeout=COLLECT_TIMEOUT)
        assert comparable_records(served) == comparable_records(_solo_records(cells))

    def test_certified_delivery_matches_solo_certify(self, service):
        cells = _cells((20,), (0, 1))
        ticket = service.submit("t", cells, certify="auto")
        service.flush()
        served = ticket.collect(timeout=COLLECT_TIMEOUT)
        solo = (
            Experiment("greedy")
            .on("gnp")
            .sizes(20)
            .engines("vector")
            .seeds([0, 1])
            .strategy("cell")
            .certify("auto")
            .run()
        )
        # Solve wall and oracle-cache warmth vary run to run; every other
        # quality field is deterministic and must agree.
        volatile = ("solve_wall_s", "cache_hit")
        for got, want in zip(served, solo):
            assert got.quality is not None and want.quality is not None
            assert {k: v for k, v in got.quality.items() if k not in volatile} == {
                k: v for k, v in want.quality.items() if k not in volatile
            }


class TestResultCache:
    def test_repeat_submission_hits_the_cache(self, service):
        cells = _cells((20, 30), (0,))
        first = service.submit("t", cells)
        service.flush()
        records_first = first.collect(timeout=COLLECT_TIMEOUT)
        second = service.submit("t", cells)
        service.flush()
        records_second = second.collect(timeout=COLLECT_TIMEOUT)
        assert comparable_records(records_first) == comparable_records(
            records_second
        )
        stats = service.stats()
        assert stats["result_cache"]["hits"] == 2
        assert stats["cache_served"] == 2

    def test_cache_hits_are_flagged_in_delivery_meta(self, service):
        cells = _cells((20,), (0,))
        first = service.submit("t", cells)
        service.flush()
        assert [s.meta["cache_hit"] for s in first] == [False]
        second = service.submit("t", cells)
        service.flush()
        assert [s.meta["cache_hit"] for s in second] == [True]

    def test_use_cache_false_bypasses_reads(self, service):
        cells = _cells((20,), (0,))
        warm = service.submit("t", cells)
        service.flush()
        warm.collect(timeout=COLLECT_TIMEOUT)
        opt_out = service.submit("t", cells, use_cache=False)
        service.flush()
        (served,) = list(opt_out)
        assert served.meta["cache_hit"] is False
        # The fresh run still refreshed the cache (entry count unchanged,
        # no hit counted for the opted-out read).
        assert service.stats()["result_cache"]["hits"] == 0

    def test_opt_out_and_cached_requester_share_one_execution(self, service):
        cells = _cells((20,), (0,))
        warm = service.submit("t", cells)
        service.flush()
        warm.collect(timeout=COLLECT_TIMEOUT)  # cache is warm from here
        cached = service.submit("a", cells)  # will be served from cache
        fresh = service.submit("b", cells, use_cache=False)  # forces a run
        service.flush()
        (from_cache,) = list(cached)
        (from_run,) = list(fresh)
        assert from_cache.meta["cache_hit"] is True
        assert from_run.meta["cache_hit"] is False
        assert comparable_records([from_cache.record]) == comparable_records(
            [from_run.record]
        )

    def test_failure_records_are_not_cached(self, service):
        bad = [GridCell("mobius", 20, "greedy", "vector", 0)]
        first = service.submit("t", bad)
        service.flush()
        assert not list(first)[0].record.ok
        ticket = service.submit("t", bad)
        service.flush()
        (served,) = list(ticket)
        assert served.meta["cache_hit"] is False
        assert service.stats()["result_cache"]["entries"] == 0

    def test_lru_bound_evicts_oldest(self):
        svc = SimulationService(
            ServiceConfig(window_s=30.0, result_cache_entries=2)
        ).start()
        try:
            for seed in (0, 1, 2):
                ticket = svc.submit("t", _cells((20,), (seed,)))
                svc.flush()
                ticket.collect(timeout=COLLECT_TIMEOUT)
            assert svc.stats()["result_cache"]["entries"] == 2
            # seed 0 evicted: resubmitting it misses.
            ticket = svc.submit("t", _cells((20,), (0,)))
            svc.flush()
            (served,) = list(ticket)
            assert served.meta["cache_hit"] is False
        finally:
            svc.stop(drain=False)


class TestFairnessAndBackpressure:
    def test_overflowing_submission_rejected_whole(self):
        svc = SimulationService(
            ServiceConfig(window_s=30.0, max_pending_per_client=3)
        ).start()
        try:
            svc.submit("greedy-tenant", _cells((20,), (0, 1)))
            # 4 cells can never fit a 3-entry queue, whatever the window
            # already admitted: the submission is rejected whole.
            with pytest.raises(ClientQueueFullError) as excinfo:
                svc.submit("greedy-tenant", _cells((20,), (2, 3, 4, 5)))
            assert excinfo.value.client == "greedy-tenant"
            assert excinfo.value.limit == 3
            # Other tenants are unaffected by one tenant's full queue.
            svc.submit("other-tenant", _cells((20,), (9,)))
        finally:
            svc.stop(drain=False)

    def test_per_window_inflight_cap_shares_the_window(self):
        # Deadline-closed windows here: flush() only closes one window,
        # and the capped heavy tenant needs three to drain.
        svc = SimulationService(
            ServiceConfig(window_s=0.25, max_inflight_per_client=2)
        ).start()
        try:
            heavy = svc.submit("heavy", _cells((20,), range(6)))
            light = svc.submit("light", _cells((30,), (0,)))
            # The light tenant's lone cell shares the first window with
            # exactly 2 of the heavy tenant's 6; the tail waits its turn.
            (light_served,) = list(light)
            assert light_served.meta["window"] == 1
            heavy_windows = [s.meta["window"] for s in heavy]
            assert min(heavy_windows) == 1
            assert max(heavy_windows) > 1
            assert sum(1 for w in heavy_windows if w == 1) == 2
        finally:
            svc.stop(drain=False)

    def test_window_width_cap_closes_the_window(self):
        svc = SimulationService(
            ServiceConfig(window_s=30.0, max_window_width=3)
        ).start()
        try:
            ticket = svc.submit("t", _cells((20,), range(3)))
            records = ticket.collect(timeout=COLLECT_TIMEOUT)  # no flush needed
            assert len(records) == 3
            assert svc.stats()["window_close_reasons"].get("width", 0) >= 1
        finally:
            svc.stop(drain=False)

    def test_window_cost_cap_closes_the_window(self):
        svc = SimulationService(
            ServiceConfig(window_s=30.0, max_window_cost=1)
        ).start()
        try:
            ticket = svc.submit("t", _cells((20,), (0, 1)))
            records = ticket.collect(timeout=COLLECT_TIMEOUT)
            assert len(records) == 2
            assert svc.stats()["window_close_reasons"].get("cost", 0) >= 1
        finally:
            svc.stop(drain=False)


class TestDisconnect:
    def test_mid_window_cancel_skips_delivery_but_serves_siblings(self, service):
        cells_a = _cells((20, 30), (0,))
        cells_b = _cells((20, 30), (0,))
        ticket_a = service.submit("a", cells_a)
        ticket_b = service.submit("b", cells_b)
        ticket_a.cancel()  # disconnect after admission, before execution
        service.flush()
        served_b = ticket_b.collect(timeout=COLLECT_TIMEOUT)
        assert comparable_records(served_b) == comparable_records(
            _solo_records(cells_b)
        )
        # The cancelled ticket's stream ended without its records.
        assert ticket_a.next_event(timeout=5.0) is None

    def test_cancel_before_window_drops_queued_entries(self, service):
        ticket = service.submit("t", _cells((20,), range(3)))
        ticket.cancel()
        other = service.submit("u", _cells((30,), (0,)))
        service.flush()
        other.collect(timeout=COLLECT_TIMEOUT)
        # Whether the cancelled entries were dropped at admission or their
        # window was already open, nothing was delivered for them.
        assert ticket.next_event(timeout=5.0) is None
        assert service.stats()["records_served"] == 1


class TestServerProtocol:
    """End-to-end over TCP: asyncio server, two real client connections."""

    @pytest.fixture()
    def server(self):
        loop = asyncio.new_event_loop()
        srv = ServiceServer(SimulationService(ServiceConfig(window_s=0.25)))
        started = threading.Event()

        def run():
            asyncio.set_event_loop(loop)
            loop.run_until_complete(srv.start())
            started.set()
            loop.run_forever()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert started.wait(timeout=30)
        yield srv
        asyncio.run_coroutine_threadsafe(srv.stop(), loop).result(timeout=30)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=30)

    def test_two_concurrent_tenants_coalesce_with_solo_parity(self, server):
        cells_a = _cells((20, 30), (0, 1))
        cells_b = _cells((30, 40), (1, 2))
        results = {}
        barrier = threading.Barrier(2)

        def tenant(name, cells):
            with ServiceClient(port=server.port, client=name) as client:
                barrier.wait()
                results[name] = client.run(cells)

        threads = [
            threading.Thread(target=tenant, args=("a", cells_a)),
            threading.Thread(target=tenant, args=("b", cells_b)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert comparable_records(results["a"]) == comparable_records(
            _solo_records(cells_a)
        )
        assert comparable_records(results["b"]) == comparable_records(
            _solo_records(cells_b)
        )
        with ServiceClient(port=server.port, client="probe") as probe:
            stats = probe.stats()
        assert stats["coalesced_windows"] >= 1
        assert stats["records_served"] == 8

    def test_repeat_request_serves_from_cache(self, server):
        cells = _cells((20,), (0, 1))
        with ServiceClient(port=server.port, client="t") as client:
            client.run(cells)
            metas = [meta for _i, _r, meta in client.stream(cells)]
            stats = client.stats()
        assert all(meta["cache_hit"] for meta in metas)
        assert stats["result_cache"]["hits"] >= 2

    def test_structured_error_frame_for_bad_program(self, server):
        with ServiceClient(port=server.port, client="t") as client:
            with pytest.raises(RemoteServiceError) as excinfo:
                client.submit([GridCell("gnp", 20, "nope", "vector", 0)])
        assert excinfo.value.code == "UnknownProgramError"

    def test_backpressure_surfaces_as_error_frame(self):
        loop = asyncio.new_event_loop()
        srv = ServiceServer(
            SimulationService(
                ServiceConfig(window_s=30.0, max_pending_per_client=1)
            )
        )
        started = threading.Event()

        def run():
            asyncio.set_event_loop(loop)
            loop.run_until_complete(srv.start())
            started.set()
            loop.run_forever()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert started.wait(timeout=30)
        try:
            with ServiceClient(port=srv.port, client="t") as client:
                client.submit(_cells((20,), (0,)))
                with pytest.raises(RemoteServiceError) as excinfo:
                    client.submit(_cells((20,), (1, 2)))
            assert excinfo.value.code == "ClientQueueFullError"
        finally:
            asyncio.run_coroutine_threadsafe(srv.stop(), loop).result(timeout=30)
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=30)

    def test_client_disconnect_mid_window_leaves_siblings_served(self, server):
        """A tenant dropping its socket after submitting must not disturb
        the window its cells were admitted to."""
        import socket as socket_module

        from repro.service.protocol import cell_to_wire, encode_frame

        cells = _cells((20, 30), (0,))
        raw = socket_module.create_connection(("127.0.0.1", server.port))
        raw.sendall(
            encode_frame(
                {
                    "type": "submit",
                    "id": "doomed",
                    "cells": [cell_to_wire(c) for c in cells],
                }
            )
        )
        time.sleep(0.05)  # let the submit frame land in the window
        raw.close()  # disconnect before (or during) execution
        survivor_cells = _cells((20, 30), (0,))
        with ServiceClient(port=server.port, client="survivor") as client:
            records = client.run(survivor_cells)
        assert comparable_records(records) == comparable_records(
            _solo_records(survivor_cells)
        )

    def test_flush_frame_closes_the_window(self):
        loop = asyncio.new_event_loop()
        srv = ServiceServer(SimulationService(SLOW_WINDOW))
        started = threading.Event()

        def run():
            asyncio.set_event_loop(loop)
            loop.run_until_complete(srv.start())
            started.set()
            loop.run_forever()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert started.wait(timeout=30)
        try:
            # Window deadline is 30 s: without the flush frame this would
            # time out, so completing quickly proves flush worked.
            with ServiceClient(port=srv.port, client="t") as client:
                request = client.submit(_cells((20,), (0,)))
                client.flush()
                seen_done = False
                for frame in client.events():
                    if frame.get("id") == request and frame.get("type") == "done":
                        seen_done = True
                        break
                assert seen_done
        finally:
            asyncio.run_coroutine_threadsafe(srv.stop(), loop).result(timeout=30)
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=30)


class TestLemma310Coalescing:
    """Service-path coverage for the last kernel to join the stackable
    set: lemma310 cells in a multi-tenant window must coalesce into a
    stacked plane (per-instance scalar prologues and all) — not fall
    back per cell — and the served records must be solo-parity."""

    def test_multi_tenant_lemma310_window_matches_solo(self, service):
        cells_a = _cells((20, 30), (0, 1), program="lemma310")
        cells_b = _cells((30, 24), (1, 2), program="lemma310")
        ticket_a = service.submit("tenant-a", cells_a)
        ticket_b = service.submit("tenant-b", cells_b)
        service.flush()
        widths = []
        records_a: dict = {}
        for served in ticket_a:
            records_a[served.index] = served.record
            widths.append(served.meta["stack_width"])
        served_a = [records_a[i] for i in range(len(cells_a))]
        served_b = ticket_b.collect(timeout=COLLECT_TIMEOUT)
        assert comparable_records(served_a) == comparable_records(
            _solo_records(cells_a)
        )
        assert comparable_records(served_b) == comparable_records(
            _solo_records(cells_b)
        )
        # The window really stacked the cells: multi-instance planes, and
        # the cross-tenant coalescing counter moved.
        assert max(widths) >= 2
        assert service.stats()["coalesced_windows"] >= 1

    def test_lemma310_group_stacks_without_fallback(self):
        """Runner-level witness that the service's batch arm does not take
        the silent per-cell fallback for lemma310: stacked-path records
        carry the ``batch`` annotation, fallback records never do."""
        from repro.experiments.runner import _iter_batched_group_records

        cells = _cells((20, 30, 24), (0, 1), program="lemma310")
        records = [record for _i, record in _iter_batched_group_records(cells)]
        assert len(records) == len(cells)
        assert all(rec.ok for rec in records)
        assert all(
            rec.batch is not None and rec.batch["k"] == len(cells)
            for rec in records
        ), "a lemma310 group fell back to per-cell execution"

    def test_mixed_program_window_keeps_groups_separate(self, service):
        """lemma310 and greedy cells in one window coalesce per program
        group and every record still matches its solo run."""
        cells = _cells((20,), (0, 1), program="lemma310") + _cells(
            (20,), (0, 1), program="greedy"
        )
        ticket = service.submit("t", cells)
        service.flush()
        served = ticket.collect(timeout=COLLECT_TIMEOUT)
        assert comparable_records(served) == comparable_records(
            _solo_records(cells)
        )
