"""The :class:`Experiment` builder: declarative grid runs with streaming.

One fluent object replaces the old stitch-work of ``expand_grid`` +
``run_grid`` + hand-rolled dict handling::

    from repro.api import Experiment

    sweep = (
        Experiment("greedy")
        .on("gnp", "tree").sizes(60)
        .seeds(50)
        .engine("vector")
        .strategy("batch")
        .run()
    )
    sweep.summary()["per_engine"]["vector"]["ok"]  # typed records underneath

Every setter returns the builder, so chains read as the experiment design.
``run()`` executes the grid and returns a :class:`~repro.api.records.
SweepResult` in deterministic cell order; ``stream()`` yields
:class:`~repro.api.records.RunRecord` objects in *completion* order as
cells or batch groups finish — the streaming path behind
``python -m repro grid --stream``.

Strategy negotiation: ``strategy("auto")`` (the default) resolves to
``batch`` exactly when the selected axes contain a stackable
multi-instance sweep (a registry-batchable program on the vector engine
with more than one instance per group — seeds *and* sizes both count,
since mixed-size groups stack as one ragged plane) and to ``cell``
otherwise.  The two strategies are guaranteed to produce identical
records, so the negotiation only ever changes wall-clock.  Engine
negotiation also enforces each spec's ``engines`` restriction: asking a
restricted program to run on an excluded engine raises a structured
:class:`~repro.errors.EngineRestrictionError` at expansion time.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.api.records import RunRecord, SweepResult
from repro.api.registry import available_programs, program_spec
from repro.errors import (
    EngineRestrictionError,
    UnknownEngineError,
    UnknownStrategyError,
)

#: Strategies the builder accepts (``auto`` resolves to one of the others).
BUILDER_STRATEGIES = ("auto", "cell", "batch")


class Experiment:
    """Fluent builder over the (family x size x program x engine x seed) grid.

    Construct with the program names to run (``Experiment("greedy",
    "bfs")``); with none given, the sweep covers every registered
    simulation program.  Defaults: families ``("gnp",)``, sizes ``(60,)``,
    the process default engine, seed 7, strategy ``auto``, one process.
    """

    def __init__(self, *programs: str):
        self._programs: Optional[List[str]] = list(programs) or None
        self._families: List[str] = ["gnp"]
        self._sizes: List[int] = [60]
        self._engines: Optional[List[str]] = None
        self._seeds: List[int] = [7]
        self._strategy: str = "auto"
        self._batch_size: int = 0
        self._target_cost: int | str = 0
        self._jobs: int = 1
        self._certify: Optional[str] = None

    # -- axes -----------------------------------------------------------------

    def programs(self, *names: str) -> "Experiment":
        """Select the program axis (alternative to the constructor)."""
        self._programs = list(names) or None
        return self

    def on(self, *families: str, sizes: Optional[Sequence[int]] = None) -> "Experiment":
        """Select the graph families (and optionally sizes in one call)."""
        if families:
            self._families = list(families)
        if sizes is not None:
            self._sizes = [int(s) for s in sizes]
        return self

    def sizes(self, *sizes: int) -> "Experiment":
        self._sizes = [int(s) for s in sizes]
        return self

    def seeds(self, seeds: int | Iterable[int]) -> "Experiment":
        """Seed ensemble: an int means ``range(seeds)``, else the given list."""
        if isinstance(seeds, int):
            self._seeds = list(range(seeds))
        else:
            self._seeds = [int(s) for s in seeds]
        return self

    def seed(self, seed: int) -> "Experiment":
        """Single-seed shorthand for :meth:`seeds`."""
        self._seeds = [int(seed)]
        return self

    def engine(self, *names: str) -> "Experiment":
        self._engines = list(names) or None
        return self

    #: Plural alias — ``.engines("reference", "fast", "vector")`` reads better
    #: for comparison grids.
    engines = engine

    # -- execution knobs ------------------------------------------------------

    def strategy(self, name: str) -> "Experiment":
        if name not in BUILDER_STRATEGIES:
            raise UnknownStrategyError(name, list(BUILDER_STRATEGIES))
        self._strategy = name
        return self

    def batch_size(self, size: int) -> "Experiment":
        """Cap the stack width of batched groups (0 = one stack per group)."""
        self._batch_size = int(size)
        return self

    def target_cost(self, cost: int | str) -> "Experiment":
        """Per-plane cost target for the adaptive batch scheduler.

        ``0`` (the default) keeps the fixed ``batch_size`` chunking — one
        plane per group, no ``plan`` block on records.  A positive integer
        splits batch groups at that estimated cost (plane width × round
        limit × message bits, see :mod:`repro.experiments.scheduler`);
        ``"auto"`` negotiates the target from the grid's total stackable
        cost and :meth:`jobs`.  ``batch_size`` stays honored as a hard
        width cap either way.
        """
        if cost == "auto":
            self._target_cost = "auto"
            return self
        value = int(cost)
        if value < 0:
            raise ValueError("target_cost must be >= 0 or 'auto'")
        self._target_cost = value
        return self

    def jobs(self, jobs: int) -> "Experiment":
        """Worker processes (topologies travel via shared memory)."""
        self._jobs = int(jobs)
        return self

    def certify(self, oracle: str = "auto") -> "Experiment":
        """Attach the certification oracle's ``quality`` block to records.

        ``oracle`` picks the bound ladder mode (see
        :func:`repro.oracle.certify`): ``"auto"`` walks exact → ILP → LP,
        ``"exact"``/``"ilp"`` pin a rung, ``"lp"`` computes only the LP
        lower bound.  Certification runs parent-side as records arrive,
        sharing one in-process oracle cache across the whole grid; only
        specs declaring a ``quality_metric`` are certified.  Without this
        call, records are byte-identical to uncertified runs.
        """
        from repro.oracle import ORACLE_MODES

        if oracle not in ORACLE_MODES:
            raise ValueError(
                f"unknown oracle mode {oracle!r}; choose from "
                f"{', '.join(ORACLE_MODES)}"
            )
        self._certify = oracle
        return self

    # -- resolution -----------------------------------------------------------

    def _selected_programs(self) -> List[str]:
        return list(self._programs) if self._programs else available_programs()

    def _selected_engines(self) -> List[str]:
        if self._engines:
            return list(self._engines)
        from repro.congest.engine import default_engine_name

        return [default_engine_name()]

    def resolved_strategy(self) -> str:
        """What ``auto`` negotiates to for the current axes.

        ``batch`` exactly when a stackable multi-instance sweep is
        present: a registry-batchable program on the vector engine with
        ≥ 2 instances per (family, program) group.  Since the ragged
        stacked plane, the instance axis spans sizes *and* seeds — a
        mixed-size single-seed sweep batches just like a seed ensemble.
        """
        if self._strategy != "auto":
            return self._strategy
        if "vector" not in self._selected_engines():
            return "cell"
        if len(self._seeds) * len(self._sizes) < 2:
            return "cell"
        specs = [program_spec(name) for name in self._selected_programs()]
        return "batch" if any(spec.batchable for spec in specs) else "cell"

    def cells(self):
        """Expand the axes into concrete :class:`GridCell` objects.

        Unknown program or engine names fail fast here with structured
        errors, before any simulation runs.  Engine negotiation also
        enforces each spec's ``engines`` restriction: *explicitly*
        selecting a program together with an engine its
        :class:`~repro.api.registry.ProgramSpec` excludes raises a
        structured :class:`~repro.errors.EngineRestrictionError` — the
        builder refuses to schedule a workload on an unsupported engine
        rather than silently running it.  When the program axis is the
        registry default (no programs named), restricted (program,
        engine) pairs are dropped from the expansion instead, so one
        restricted spec never breaks all-programs comparison grids.
        """
        from repro.congest.engine import available_engines
        from repro.experiments.runner import _expand_cells

        engines = self._selected_engines()
        registered = set(available_engines())
        for engine in engines:
            if engine not in registered:
                raise UnknownEngineError(engine, sorted(registered))
        explicit = self._programs is not None
        dropped = set()
        for name in self._selected_programs():
            spec = program_spec(name)
            for engine in engines:
                if spec.supports_engine(engine):
                    continue
                if explicit:
                    raise EngineRestrictionError(
                        name, engine, list(spec.engines or ())
                    )
                dropped.add((name, engine))
        cells = _expand_cells(
            families=self._families,
            sizes=self._sizes,
            programs=self._selected_programs(),
            engines=engines,
            seeds=self._seeds,
        )
        if dropped:
            cells = [
                cell
                for cell in cells
                if (cell.program, cell.engine) not in dropped
            ]
        return cells

    def _meta(self) -> Dict[str, object]:
        meta: Dict[str, object] = {
            "families": list(self._families),
            "sizes": list(self._sizes),
            "programs": self._selected_programs(),
            "engines": self._selected_engines(),
            "seeds": len(self._seeds),
            "strategy": self.resolved_strategy(),
            "batch_size": self._batch_size,
            "target_cost": self._target_cost,
            "jobs": self._jobs,
        }
        if self._certify is not None:
            meta["certify"] = self._certify
        return meta

    # -- execution ------------------------------------------------------------

    def run(self) -> SweepResult:
        """Execute the grid; records come back in deterministic cell order."""
        from repro.experiments.runner import run_grid_records

        records = run_grid_records(
            self.cells(),
            jobs=self._jobs,
            strategy=self.resolved_strategy(),
            batch_size=self._batch_size,
            target_cost=self._target_cost,
            certify=self._certify,
        )
        return SweepResult(records=records, meta=self._meta())

    def stream(self) -> Iterator[RunRecord]:
        """Yield records in completion order, record by record.

        Stacked batch groups stream *per instance*: when an instance's
        termination mask flips inside a (possibly ragged) group, its
        record is yielded immediately — in-process and across pool
        workers alike, where each record is pushed through the worker's
        result channel the moment it exists, so concurrently-running
        groups interleave here in true completion order.  The
        deterministic cell order can always be restored afterwards with
        :meth:`collect` — the streamed record *set* is identical to
        :meth:`run`'s.
        """
        from repro.experiments.runner import iter_grid_records

        return iter_grid_records(
            self.cells(),
            jobs=self._jobs,
            strategy=self.resolved_strategy(),
            batch_size=self._batch_size,
            target_cost=self._target_cost,
            certify=self._certify,
        )

    def collect(self, records: Iterable[RunRecord]) -> SweepResult:
        """Assemble streamed records into a deterministic :class:`SweepResult`.

        Sorts the completion-order records from :meth:`stream` back into
        cell order (keys are unique per cell) and attaches the same run
        meta :meth:`run` would, plus ``streamed: True`` — so the
        "streamed set == run() set" contract is one code path for every
        consumer (the CLI's ``--stream``, scripts, user loops).
        """
        order = {cell.key: index for index, cell in enumerate(self.cells())}
        sorted_records = sorted(records, key=lambda rec: order[rec.key])
        meta = self._meta()
        meta["streamed"] = True
        return SweepResult(records=sorted_records, meta=meta)
