"""Adaptive batch scheduler: cost model, planner, and record plumbing."""

import pytest

from repro.api.records import RunRecord
from repro.congest.engine import plane_cost
from repro.experiments.runner import GridCell, _batch_plan, _plan_units
from repro.experiments.scheduler import (
    _CALIBRATION_SLACK,
    adaptive_plan,
    calibrate_rounds,
    calibrated_round_limit,
    estimate_cell_cost,
    estimate_message_bits,
    estimate_round_limit,
    record_round_sample,
    reset_round_calibration,
    resolve_target_cost,
)


def _group(sizes, seeds=(0,), program="greedy", engine="vector", family="gnp"):
    return [
        GridCell(family, n, program, engine, seed=s) for n in sizes for s in seeds
    ]


class TestCostModel:
    def test_plane_cost_additive_and_monotone(self):
        base = plane_cost([20, 30], [100, 100], [16, 16])
        assert base == 20 * 100 * 16 + 30 * 100 * 16
        assert plane_cost([21, 30], [100, 100], [16, 16]) > base
        assert plane_cost([20, 30], [101, 100], [16, 16]) > base
        assert plane_cost([20, 30], [100, 100], [17, 16]) > base

    def test_cell_cost_monotone_in_width(self):
        costs = [
            estimate_cell_cost(GridCell("gnp", n, "greedy", "vector"))
            for n in (20, 40, 80, 160)
        ]
        assert costs == sorted(costs)
        assert len(set(costs)) == len(costs)

    def test_uncalibrated_round_limit_uses_registry_recipe(self):
        # greedy registers 8n + 16; the uncalibrated estimator must
        # reproduce it exactly — it is the limit the executor enforces.
        assert estimate_round_limit("greedy", 50, calibrated=False) == 8 * 50 + 16

    def test_message_bits_grow_with_n(self):
        bits = [estimate_message_bits("greedy", n) for n in (15, 255, 65535)]
        assert bits == sorted(bits)
        assert len(set(bits)) == len(bits)

    def test_cost_is_deterministic(self):
        cell = GridCell("gnp", 64, "greedy", "vector", seed=3)
        assert estimate_cell_cost(cell) == estimate_cell_cost(cell)


class TestRoundCalibration:
    @pytest.fixture(autouse=True)
    def _fresh_table(self):
        reset_round_calibration()
        yield
        reset_round_calibration()

    def test_calibrated_clamps_the_worst_case_at_large_n(self):
        # greedy's proof limit is 8n + 16 = 6416 rounds at n=800; the
        # measured maximum in BENCH_scheduler.json is 69. The calibrated
        # estimate must stop over-weighting large n by orders of magnitude.
        worst = estimate_round_limit("greedy", 800, calibrated=False)
        calibrated = estimate_round_limit("greedy", 800)
        assert worst == 8 * 800 + 16
        assert calibrated <= _CALIBRATION_SLACK * 69
        assert calibrated < worst / 40

    def test_worst_case_wins_when_tighter(self):
        # At tiny n the proof limit is below the slacked envelope — the
        # estimate must never exceed the enforced limit.
        assert estimate_round_limit("greedy", 4) == 8 * 4 + 16

    def test_unsampled_program_falls_back_to_worst_case(self):
        assert calibrated_round_limit("color-reduction", 100) is None
        assert estimate_round_limit("color-reduction", 100) == estimate_round_limit(
            "color-reduction", 100, calibrated=False
        )

    def test_envelope_is_monotone_despite_raw_samples(self):
        # The committed samples dip at n=800 (65 < 69 at n=500); the
        # envelope must not — cost monotonicity depends on it.
        limits = [calibrated_round_limit("greedy", n) for n in (100, 300, 500, 800, 5000)]
        assert limits == sorted(limits)

    def test_record_round_sample_only_raises_the_envelope(self):
        before = calibrated_round_limit("greedy", 100)
        record_round_sample("greedy", 100, 1)  # a faster run changes nothing
        assert calibrated_round_limit("greedy", 100) == before
        record_round_sample("greedy", 100, 400)
        assert calibrated_round_limit("greedy", 100) > before

    def test_calibrate_rounds_ingests_records_and_dicts(self):
        cell = GridCell("gnp", 64, "greedy", "vector", seed=0)
        typed = RunRecord(cell=cell, ok=True, wall_s=0.1, metrics={"rounds": 999})
        legacy = typed.to_dict()
        failed = RunRecord(cell=cell, ok=False, error={"type": "X", "message": ""})
        assert calibrate_rounds([typed, legacy, failed]) == 2
        assert calibrated_round_limit("greedy", 64) >= 999

    def test_calibration_keeps_cell_cost_monotone(self):
        record_round_sample("greedy", 60, 500)  # an outlier mid-range
        costs = [
            estimate_cell_cost(GridCell("gnp", n, "greedy", "vector"))
            for n in (20, 40, 60, 80, 160, 1000)
        ]
        assert costs == sorted(costs)
        assert len(set(costs)) == len(costs)


class TestResolveTargetCost:
    def test_sequential_resolves_to_disabled(self):
        assert resolve_target_cost(_group((20, 30), seeds=(0, 1)), jobs=1) == 0

    def test_no_stackable_group_resolves_to_disabled(self):
        solo = _group((20, 30), engine="fast")  # fast never stacks
        assert resolve_target_cost(solo, jobs=4) == 0

    def test_parallel_sweep_resolves_positive(self):
        cells = _group((20, 30, 40), seeds=(0, 1))
        target = resolve_target_cost(cells, jobs=2)
        assert target > 0
        # Oversubscription: the target spreads the total over 2 * jobs
        # planes, so it is at most half the total stackable cost.
        total = sum(estimate_cell_cost(c) for c in cells)
        assert target <= total // 2 + 1


class TestAdaptivePlan:
    def test_plan_is_deterministic(self):
        cells = _group((20, 30, 40), seeds=(0, 1, 2))
        target = resolve_target_cost(cells, jobs=2)
        assert adaptive_plan(cells, target, jobs=2) == adaptive_plan(
            cells, target, jobs=2
        )

    def test_plan_covers_every_cell_exactly_once(self):
        cells = _group((20, 30, 40), seeds=(0, 1, 2))
        plan = adaptive_plan(cells, resolve_target_cost(cells, jobs=2), jobs=2)
        covered = [i for _kind, indices, _meta in plan for i in indices]
        assert sorted(covered) == list(range(len(cells)))

    def test_batch_size_stays_a_hard_cap(self):
        cells = _group((20,), seeds=range(12))
        # A huge target would put all 12 in one plane; batch_size must
        # still cap the width at 3.
        plan = adaptive_plan(cells, target_cost=10**12, batch_size=3)
        widths = {len(indices) for kind, indices, _ in plan if kind == "batch"}
        assert widths == {3}

    def test_tail_steal_fills_idle_workers(self):
        cells = _group((20,), seeds=range(8))
        # One plane at this target; with jobs=4 the steal pass must halve
        # it until four workers have a plane each.
        plan = adaptive_plan(cells, target_cost=10**12, jobs=4)
        widths = sorted(len(i) for kind, i, _ in plan if kind == "batch")
        assert widths == [2, 2, 2, 2]

    def test_plan_meta_present_on_every_unit(self):
        cells = _group((20, 30), seeds=(0, 1)) + _group((25,), engine="fast")
        plan = adaptive_plan(cells, resolve_target_cost(cells, jobs=2), jobs=2)
        for i, (_kind, _indices, meta) in enumerate(plan):
            assert meta is not None
            assert meta["scheduler"] == "adaptive"
            assert meta["unit"] == i
            assert meta["est_cost"] > 0
            assert meta["target_cost"] > 0

    def test_chunks_respect_cost_target(self):
        cells = _group((20,), seeds=range(10))
        per_cell = estimate_cell_cost(cells[0])
        plan = adaptive_plan(cells, target_cost=3 * per_cell)
        for kind, indices, meta in plan:
            if kind == "batch":
                assert meta["est_cost"] <= 3 * per_cell
                assert len(indices) <= 3


class TestPlanUnitsIntegration:
    def test_target_zero_keeps_fixed_plan(self):
        cells = _group((20, 30), seeds=(0, 1, 2))
        assert _plan_units(cells, "batch", 3, target_cost=0) == _batch_plan(
            cells, 3
        )

    def test_fixed_plan_has_no_meta(self):
        cells = _group((20, 30), seeds=(0, 1, 2))
        for _kind, _indices, meta in _plan_units(cells, "batch", 3):
            assert meta is None

    def test_auto_with_one_job_is_fixed(self):
        cells = _group((20, 30), seeds=(0, 1, 2))
        assert _plan_units(
            cells, "batch", 0, target_cost="auto", jobs=1
        ) == _batch_plan(cells, 0)

    def test_auto_with_jobs_splits_the_group(self):
        cells = _group((20, 30, 40), seeds=(0, 1, 2))
        plan = _plan_units(cells, "batch", 0, target_cost="auto", jobs=2)
        assert len(plan) > 1
        assert any(meta is not None for _k, _i, meta in plan)


class TestPlanRecordRoundTrip:
    def test_plan_meta_round_trips_through_run_record(self):
        cell = GridCell("gnp", 20, "greedy", "vector", seed=0)
        plan = {
            "scheduler": "adaptive",
            "target_cost": 1000,
            "est_cost": 640,
            "splits": 2,
            "unit": 1,
            "actual_wall_s": 0.25,
        }
        record = RunRecord(
            cell=cell, ok=True, wall_s=0.25, metrics={"rounds": 3}, plan=plan
        )
        parsed = RunRecord.from_dict(record.to_dict())
        assert parsed.plan == plan
        assert parsed.metrics == record.metrics

    def test_failure_records_keep_plan(self):
        cell = GridCell("gnp", 20, "greedy", "vector", seed=0)
        record = RunRecord(
            cell=cell,
            ok=False,
            error={"type": "X", "message": "boom"},
            plan={"scheduler": "adaptive", "unit": 0},
        )
        as_dict = record.to_dict()
        assert as_dict["plan"]["unit"] == 0
        assert RunRecord.from_dict(as_dict).plan == record.plan

    def test_absent_plan_stays_absent(self):
        cell = GridCell("gnp", 20, "greedy", "vector", seed=0)
        record = RunRecord(cell=cell, ok=True, wall_s=0.1, metrics={})
        assert "plan" not in record.to_dict()
        assert RunRecord.from_dict(record.to_dict()).plan is None
