"""Small numeric helpers used across the library."""

from __future__ import annotations

import math


def H_harmonic(k: int) -> float:
    """The ``k``-th harmonic number ``H_k = 1 + 1/2 + ... + 1/k``.

    ``H_k`` upper-bounds the greedy set-cover/dominating-set approximation
    factor; ``H_k <= 1 + ln k``.
    """
    if k <= 0:
        return 0.0
    if k < 256:
        return sum(1.0 / i for i in range(1, k + 1))
    # Asymptotic expansion is exact to ~1e-12 at this size.
    gamma = 0.57721566490153286
    return math.log(k) + gamma + 1.0 / (2 * k) - 1.0 / (12 * k * k)


def ilog2(n: int) -> int:
    """Floor of ``log2(n)`` for ``n >= 1``."""
    if n < 1:
        raise ValueError(f"ilog2 requires n >= 1, got {n}")
    return n.bit_length() - 1


def ceil_log2(n: int) -> int:
    """Ceiling of ``log2(n)`` for ``n >= 1``."""
    if n < 1:
        raise ValueError(f"ceil_log2 requires n >= 1, got {n}")
    return (n - 1).bit_length()


def log_star(n: float) -> int:
    """Iterated logarithm ``log* n`` (base 2): how many times ``log2`` must be
    applied before the value drops to at most 1.
    """
    count = 0
    value = float(n)
    while value > 1.0:
        value = math.log2(value)
        count += 1
    return count


def clamp01(value: float) -> float:
    """Clamp a float into ``[0, 1]``."""
    return 0.0 if value < 0.0 else (1.0 if value > 1.0 else value)


def ln_tilde_delta(max_degree: int) -> float:
    """``ln(Delta~)`` with ``Delta~ = Delta + 1`` (inclusive-degree log)."""
    return math.log(max_degree + 1) if max_degree >= 1 else 0.0
