"""Execution of the abstract rounding process (Section 3.1) on the simulator.

Phase one of the process is a purely local coin flip / coin lookup: node
``v``'s value becomes ``X_v`` (either ``x(v)/p(v)`` or ``0``).  Phase two
requires one communication round: every node broadcasts ``X_v``, and a node
whose constraint ``sum_{u in N(v)} X_u >= c(v)`` is violated joins the
dominating set (sets its value to 1).

The program takes the already-resolved phase-one value as input (the coins —
random, k-wise pseudo-random, or deterministically fixed — are produced by
:mod:`repro.rounding` / :mod:`repro.derand`), so the same program executes
both the randomized and the derandomized variants, exactly as in the paper
where "the third step can be executed in O(1) rounds".

Values travel as grid numerators; one value per message.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

import networkx as nx
import numpy as np

from repro.congest.engine import (
    EngineSpec,
    MessageSpec,
    PendingBroadcast,
    VectorKernel,
    register_kernel,
)
from repro.congest.message import Message
from repro.congest.network import Network
from repro.congest.node import Context, NodeProgram
from repro.congest.simulator import SimulationResult, Simulator
from repro.util.transmittable import TransmittableGrid


class RoundingExecutionProgram(NodeProgram):
    """Per-node input: ``(x_num, c_num, scale)`` grid numerators.

    ``x_num`` is the phase-one value numerator, ``c_num`` the constraint
    numerator, ``scale`` the grid denominator (``2**iota``).  Output:
    ``value`` — the final numerator after phase two (``scale`` if the node
    joined the dominating set).
    """

    #: One broadcast phase: every node announces its phase-one numerator.
    message_specs = (MessageSpec("val", "value"),)

    def __init__(self, input_value: object = None):
        super().__init__(input_value)
        self.x_num, self.c_num, self.scale = input_value  # type: ignore[misc]

    def setup(self, ctx: Context) -> None:
        ctx.broadcast(Message("val", self.x_num))

    def receive(self, ctx: Context, inbox: Dict[int, Message]) -> None:
        covered = self.x_num  # inclusive neighborhood: own value counts
        for msg in inbox.values():
            covered += msg.fields[0]
        if covered < self.c_num:
            final = self.scale  # join: value 1
        else:
            final = self.x_num
        ctx.output("value", final)
        ctx.halt()


@register_kernel(RoundingExecutionProgram)
class RoundingExecutionKernel(VectorKernel):
    """Vector transcription of the single constraint-check round.

    Phase two is one broadcast round: sum the delivered numerators over
    each inclusive neighborhood (an exact int64 CSR row reduction) and
    compare against the constraint — every live node outputs and halts in
    the same round, exactly like the scalar ``receive``.
    """

    def __init__(self, plane, network, programs, contexts):
        super().__init__(plane, network, programs, contexts)
        n = plane.n
        self.x_num = np.fromiter(
            (programs[v].x_num for v in range(n)), dtype=np.int64, count=n
        )
        self.c_num = np.fromiter(
            (programs[v].c_num for v in range(n)), dtype=np.int64, count=n
        )
        self.scale = np.fromiter(
            (programs[v].scale for v in range(n)), dtype=np.int64, count=n
        )

    @classmethod
    def stacked_setup(cls, plane, inputs):
        """Vectorized boot: every node announces its phase-one numerator.

        Each instance must supply a full ``{node: (x_num, c_num, scale)}``
        mapping (the solo entry point always does); a missing node raises,
        which batched callers treat as "run this group per cell".
        """
        kernel = cls._blank(plane)
        n = plane.n
        if any(not mapping for mapping in inputs):
            from repro.errors import BatchEligibilityError

            raise BatchEligibilityError(
                "rounding-exec instances need full per-node input mappings"
            )
        x_num = np.zeros(n, dtype=np.int64)
        c_num = np.zeros(n, dtype=np.int64)
        scale = np.zeros(n, dtype=np.int64)
        for k, mapping in enumerate(inputs):
            base = int(plane.node_offsets[k])
            for v in range(int(plane.local_ns[k])):
                xv, cv, sv = mapping[v]
                x_num[base + v] = xv
                c_num[base + v] = cv
                scale[base + v] = sv
        kernel.x_num = x_num
        kernel.c_num = c_num
        kernel.scale = scale
        spec = RoundingExecutionProgram.message_specs[0]
        pending = PendingBroadcast(
            spec, plane.degrees > 0, (x_num,), spec.bits_array((x_num,))
        )
        return kernel, pending

    def step(
        self, round_no: int, inbound: Optional[PendingBroadcast]
    ) -> Optional[PendingBroadcast]:
        plane = self.plane
        sent = plane.sent_slots(inbound)
        received = (
            plane.row_sum(np.where(sent, plane.gather(self.x_num), 0))
            if inbound is not None
            else np.zeros(plane.n, dtype=np.int64)
        )
        covered = self.x_num + received
        final = np.where(covered < self.c_num, self.scale, self.x_num)
        for v in np.flatnonzero(self.live):
            self.output(int(v), "value", int(final[v]))
        self.live[:] = False
        return None


def run_rounding_execution(
    graph: nx.Graph | None,
    phase_one_values: Mapping[int, float],
    constraints: Mapping[int, float],
    grid: TransmittableGrid | None = None,
    network: Network | None = None,
    engine: EngineSpec = None,
) -> Tuple[Dict[int, float], SimulationResult]:
    """Run phase two of the abstract rounding process distributedly.

    Returns ``(final_values, result)`` with final values mapped back to
    floats on the grid.  ``graph`` may be ``None`` when ``network`` is
    given (e.g. a shared-memory CSR reconstruction).
    """
    network = network or Network.congest(graph)
    grid = grid or TransmittableGrid.for_n(network.n)
    scale = 1 << grid.iota
    inputs = {
        v: (
            grid.to_int(phase_one_values.get(v, 0.0)),
            grid.to_int(constraints.get(v, 1.0)),
            scale,
        )
        for v in (graph.nodes() if graph is not None else range(network.n))
    }
    sim = Simulator(network, RoundingExecutionProgram, inputs=inputs, engine=engine)
    result = sim.run(max_rounds=4)
    values = {
        v: grid.from_int(num) for v, num in result.output_map("value").items()
    }
    return values, result


# -- experiment-surface registration ------------------------------------------

from repro.api.registry import ProgramSpec, register_program  # noqa: E402


def default_rounding_inputs(
    network: Network, grid: TransmittableGrid | None = None
) -> Dict[int, Tuple[int, int, int]]:
    """The spec's canonical workload: ``x(v) = 1/(deg(v)+1)`` against ``c = 1``.

    The uniform fractional relaxation — every node spreads one unit of
    coverage over its inclusive neighborhood — so the constraint check is
    non-trivial on every topology and fully determined by the topology
    (identical for per-cell and stacked executions).
    """
    grid = grid or TransmittableGrid.for_n(network.n)
    scale = 1 << grid.iota
    return {
        v: (
            grid.to_int(1.0 / (network.degree(v) + 1)),
            grid.to_int(1.0),
            scale,
        )
        for v in range(network.n)
    }


def _drive(network: Network, engine: str) -> SimulationResult:
    sim = Simulator(
        network,
        RoundingExecutionProgram,
        inputs=default_rounding_inputs(network),
        engine=engine,
    )
    return sim.run(max_rounds=4)


def _summary(sim: SimulationResult) -> Dict[str, object]:
    scale = 1 << TransmittableGrid.for_n(len(sim.outputs)).iota
    values = sim.output_map("value")
    return {"joined": sum(1 for num in values.values() if num == scale)}


register_program(
    ProgramSpec(
        name="rounding-exec",
        description="Section 3.1 rounding phase two: one constraint-check round",
        program=RoundingExecutionProgram,
        drive=_drive,
        summarize=_summary,
        batch_factory=RoundingExecutionProgram,
        batch_max_rounds=lambda net: 4,
        batch_inputs=default_rounding_inputs,
    )
)
