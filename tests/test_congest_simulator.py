"""CONGEST simulator semantics: messages, networks, budgets, scheduling."""

import networkx as nx
import pytest

from repro.congest.message import Message, bits_of_int, message_bits
from repro.congest.network import Network, congest_bit_budget
from repro.congest.node import Context, NodeProgram
from repro.congest.simulator import Simulator
from repro.errors import CongestError, GraphError, MessageTooLargeError, SimulationLimitError
from repro.graphs.normalize import normalize_graph


class TestMessage:
    def test_bits_of_int(self):
        assert bits_of_int(0) == 1
        assert bits_of_int(1) == 1
        assert bits_of_int(255) == 8
        assert bits_of_int(256) == 9

    def test_negative_field_rejected(self):
        with pytest.raises(ValueError):
            Message("t", -1)

    def test_message_bits_includes_framing(self):
        one = message_bits([1])
        two = message_bits([1, 1])
        assert two > one

    def test_equality_and_hash(self):
        assert Message("a", 1, 2) == Message("a", 1, 2)
        assert Message("a", 1) != Message("b", 1)
        assert hash(Message("a", 1)) == hash(Message("a", 1))


class TestNetwork:
    def test_requires_normalized_labels(self):
        g = nx.Graph()
        g.add_edge("x", "y")
        with pytest.raises(GraphError):
            Network(g)

    def test_rejects_empty(self):
        with pytest.raises(GraphError):
            Network(nx.Graph())

    def test_neighbors_sorted(self):
        g = normalize_graph(nx.star_graph(4))
        net = Network(g)
        center = max(range(5), key=lambda v: net.degree(v))
        assert net.neighbors(center) == tuple(sorted(net.neighbors(center)))

    def test_budget_grows_with_n(self):
        assert congest_bit_budget(1 << 20) > congest_bit_budget(16)

    def test_local_mode_unbounded(self):
        g = normalize_graph(nx.path_graph(3))
        assert Network.local(g).bit_budget is None


class EchoProgram(NodeProgram):
    """Round 1: everyone broadcasts its id; round 2: record and halt."""

    def setup(self, ctx: Context) -> None:
        ctx.broadcast(Message("id", ctx.node))

    def receive(self, ctx, inbox):
        ctx.output("heard", tuple(sorted(m.fields[0] for m in inbox.values())))
        ctx.halt()


class TestSimulator:
    def test_echo_on_triangle(self):
        g = normalize_graph(nx.complete_graph(3))
        result = Simulator(Network.congest(g), EchoProgram).run()
        assert result.rounds == 1
        assert result.all_halted
        for v in range(3):
            assert result.outputs[v]["heard"] == tuple(sorted(set(range(3)) - {v}))

    def test_message_budget_enforced(self):
        g = normalize_graph(nx.path_graph(2))

        class Big(NodeProgram):
            def setup(self, ctx):
                ctx.broadcast(Message("big", 1 << 512))

            def receive(self, ctx, inbox):
                ctx.halt()

        with pytest.raises(MessageTooLargeError) as exc:
            Simulator(Network(g, bit_budget=64), Big).run()
        assert exc.value.bits > exc.value.budget

    def test_double_send_same_port_rejected(self):
        g = normalize_graph(nx.path_graph(2))

        class Doubler(NodeProgram):
            def setup(self, ctx):
                ctx.send(ctx.neighbors[0], Message("a", 1))
                ctx.send(ctx.neighbors[0], Message("b", 2))

            def receive(self, ctx, inbox):
                ctx.halt()

        with pytest.raises(CongestError):
            Simulator(Network.congest(g), Doubler).run()

    def test_send_to_non_neighbor_rejected(self):
        g = normalize_graph(nx.path_graph(3))  # 0-1-2

        class Illegal(NodeProgram):
            def setup(self, ctx):
                if ctx.node == 0:
                    ctx.send(2, Message("x", 1))

            def receive(self, ctx, inbox):
                ctx.halt()

        with pytest.raises(CongestError):
            Simulator(Network.congest(g), Illegal).run()

    def test_round_limit(self):
        g = normalize_graph(nx.path_graph(2))

        class Forever(NodeProgram):
            def receive(self, ctx, inbox):
                ctx.broadcast(Message("ping", ctx.round_number))

            def setup(self, ctx):
                ctx.broadcast(Message("ping", 0))

        with pytest.raises(SimulationLimitError):
            Simulator(Network.congest(g), Forever).run(max_rounds=10)

    def test_metrics_counted(self):
        g = normalize_graph(nx.complete_graph(4))
        result = Simulator(Network.congest(g), EchoProgram).run()
        assert result.total_messages == 12  # 4 nodes x 3 neighbors
        assert result.max_message_bits > 0
        assert result.total_bits >= result.total_messages
        assert result.messages_per_round[0] == 12

    def test_per_node_inputs(self):
        g = normalize_graph(nx.path_graph(3))

        class Out(NodeProgram):
            def setup(self, ctx):
                ctx.output("in", self.input)
                ctx.halt()

            def receive(self, ctx, inbox):  # pragma: no cover
                ctx.halt()

        result = Simulator(
            Network.congest(g), Out, inputs={0: "a", 2: "c"}
        ).run()
        assert result.outputs[0]["in"] == "a"
        assert result.outputs[1]["in"] is None
        assert result.outputs[2]["in"] == "c"

    def test_output_map(self):
        g = normalize_graph(nx.complete_graph(3))
        result = Simulator(Network.congest(g), EchoProgram).run()
        heard = result.output_map("heard")
        assert set(heard) == {0, 1, 2}
