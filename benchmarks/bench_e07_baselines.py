"""Benchmark E7: baseline comparison table.

Regenerates the baseline comparison (see DESIGN.md Section 2) and certifies
every guarantee check recorded by the experiment.
"""

from benchmarks.conftest import run_experiment
from repro.experiments import e07_baselines


def bench_e07_baselines(benchmark):
    run_experiment(benchmark, e07_baselines.run)
