"""The two derandomization routes: Lemmas 3.13/3.14 (coloring) and
Lemmas 3.8/3.9 (decomposition)."""

import math

import pytest

from repro.analysis.verify import is_dominating_set
from repro.decomposition.ball_carving import carve_decomposition
from repro.derand.coloring_based import (
    default_split_width,
    factor_two_via_coloring,
    one_shot_via_coloring,
)
from repro.derand.decomposition_based import (
    factor_two_via_decomposition,
    one_shot_via_decomposition,
    schedule_from_decomposition,
)
from repro.domsets.cfds import CFDS, fractionality_of
from repro.domsets.covering import CoveringInstance
from repro.errors import DerandomizationError
from repro.fractional.raising import kmw06_initial_fds
from repro.graphs.generators import gnp_graph
from repro.rounding.schemes import factor_two_scheme


@pytest.fixture
def prepared(medium_gnp):
    initial = kmw06_initial_fds(medium_gnp, eps=0.5)
    return medium_gnp, initial


class TestOneShotColoring:
    """Lemma 3.13."""

    def test_integral_dominating_set(self, prepared):
        graph, initial = prepared
        out = one_shot_via_coloring(graph, initial.fds.values)
        ds = {v for v, x in out.values.items() if x >= 1 - 1e-9}
        assert is_dominating_set(graph, ds)
        assert all(x in (0.0, 1.0) or x >= 1 - 1e-9 for x in out.values.values())

    def test_size_bound(self, prepared):
        """|DS| <= ln(D~) A + n/D~ + quantization slack."""
        graph, initial = prepared
        out = one_shot_via_coloring(graph, initial.fds.values)
        ds = {v for v, x in out.values.items() if x >= 1 - 1e-9}
        delta_tilde = max(d for _, d in graph.degree()) + 1
        n = graph.number_of_nodes()
        bound = math.log(delta_tilde) * initial.raised_size + n / delta_tilde + 1.0
        assert len(ds) <= bound

    def test_estimator_budget(self, prepared):
        graph, initial = prepared
        out = one_shot_via_coloring(graph, initial.fds.values)
        assert out.result.realized_size <= out.result.initial_estimate + 1e-6

    def test_colors_bounded_by_f_delta(self, prepared):
        """Lemma 3.13's palette: O(F * Delta~) colors after pruning."""
        graph, initial = prepared
        out = one_shot_via_coloring(graph, initial.fds.values)
        delta_tilde = max(d for _, d in graph.degree()) + 1
        f_cap = math.ceil(1.0 / initial.fds.fractionality)
        assert out.num_colors <= f_cap * delta_tilde

    def test_ledger_stages(self, prepared):
        graph, initial = prepared
        out = one_shot_via_coloring(graph, initial.fds.values)
        stages = out.ledger.by_stage()
        assert "lemma3.12-coloring" in stages
        assert "lemma3.10-color-loop" in stages


class TestFactorTwoColoring:
    """Lemma 3.14."""

    def test_fractionality_doubles(self, prepared):
        graph, initial = prepared
        values = initial.fds.values
        r = 1.0 / fractionality_of(values)
        out = factor_two_via_coloring(
            graph, values, eps=0.3, r=r, constants_scale=1e-3
        )
        new_frac = fractionality_of(out.values)
        assert new_frac >= (2.0 / r) * 0.99

    def test_output_feasible(self, prepared):
        graph, initial = prepared
        values = initial.fds.values
        r = 1.0 / fractionality_of(values)
        out = factor_two_via_coloring(
            graph, values, eps=0.3, r=r, constants_scale=1e-3
        )
        CFDS.fds(graph, out.values).require_feasible("factor-two output")

    def test_size_within_estimator_budget(self, prepared):
        graph, initial = prepared
        values = initial.fds.values
        r = 1.0 / fractionality_of(values)
        out = factor_two_via_coloring(
            graph, values, eps=0.3, r=r, constants_scale=1e-3
        )
        assert out.result.realized_size <= out.result.initial_estimate + 1e-6

    def test_split_width_formula(self):
        assert default_split_width(0.5, 16) == math.ceil(
            64 * math.log(16) / 0.25
        )
        assert default_split_width(0.5, 16, scale=0.5) <= default_split_width(0.5, 16)

    def test_explicit_s(self, prepared):
        graph, initial = prepared
        values = initial.fds.values
        r = 1.0 / fractionality_of(values)
        out = factor_two_via_coloring(graph, values, eps=0.3, r=r, s=3)
        CFDS.fds(graph, out.values).require_feasible()


class TestDecompositionRoute:
    """Lemmas 3.4, 3.8, 3.9."""

    def test_one_shot_dominating(self, prepared):
        graph, initial = prepared
        out = one_shot_via_decomposition(graph, initial.fds.values)
        ds = {v for v, x in out.values.items() if x >= 1 - 1e-9}
        assert is_dominating_set(graph, ds)

    def test_one_shot_size_bound(self, prepared):
        graph, initial = prepared
        out = one_shot_via_decomposition(graph, initial.fds.values)
        ds = {v for v, x in out.values.items() if x >= 1 - 1e-9}
        delta_tilde = max(d for _, d in graph.degree()) + 1
        bound = (
            math.log(delta_tilde) * initial.raised_size
            + graph.number_of_nodes() / delta_tilde
            + 1.0
        )
        assert len(ds) <= bound

    def test_factor_two_doubles(self, prepared):
        graph, initial = prepared
        values = initial.fds.values
        r = 1.0 / fractionality_of(values)
        out = factor_two_via_decomposition(graph, values, eps=0.3, r=r)
        assert fractionality_of(out.values) >= (2.0 / r) * 0.99
        CFDS.fds(graph, out.values).require_feasible()

    def test_reuses_given_decomposition(self, prepared):
        graph, initial = prepared
        dec = carve_decomposition(graph, separation_k=2)
        out = one_shot_via_decomposition(graph, initial.fds.values, decomposition=dec)
        assert out.decomposition is dec

    def test_charges_gk18_and_seed_fixing(self, prepared):
        graph, initial = prepared
        out = one_shot_via_decomposition(graph, initial.fds.values)
        stages = out.ledger.by_stage()
        assert "gk18-decomposition" in stages
        assert "lemma3.4-seed-fixing" in stages

    def test_schedule_batches_are_separated(self, prepared):
        """Same-batch variables must not share a constraint — the property
        2-hop separation guarantees."""
        graph, initial = prepared
        dec = carve_decomposition(graph, separation_k=2)
        base = CoveringInstance.from_graph(graph, initial.fds.values)
        r = 1.0 / fractionality_of(initial.fds.values)
        scheme = factor_two_scheme(base, eps=0.3, r=r)
        schedule = schedule_from_decomposition(scheme, dec)
        for batch in schedule:
            touched = set()
            for u in batch:
                for cid in scheme.instance.var_constraints[u]:
                    assert cid not in touched
                    touched.add(cid)
        flat = [u for batch in schedule for u in batch]
        assert sorted(flat) == scheme.participating()

    def test_schedule_rejects_foreign_variables(self, prepared):
        graph, initial = prepared
        dec = carve_decomposition(graph, separation_k=2)
        # Build a scheme whose variable ids are NOT graph nodes.
        from repro.domsets.covering import Constraint, ValueVar

        inst = CoveringInstance(
            [ValueVar(10_000, 0.5, origin=0)],
            [Constraint(0, 0.5, (10_000,), origin=0)],
        )
        from repro.rounding.abstract import RoundingScheme

        scheme = RoundingScheme(inst, {10_000: 0.6}, "manual")
        with pytest.raises(DerandomizationError):
            schedule_from_decomposition(scheme, dec)


class TestRouteAgreementShape:
    def test_both_routes_similar_quality(self):
        g = gnp_graph(50, 0.1, seed=17)
        initial = kmw06_initial_fds(g, eps=0.5)
        a = one_shot_via_coloring(g, initial.fds.values)
        b = one_shot_via_decomposition(g, initial.fds.values)
        size_a = sum(1 for x in a.values.values() if x >= 1 - 1e-9)
        size_b = sum(1 for x in b.values.values() if x >= 1 - 1e-9)
        assert abs(size_a - size_b) <= max(3, 0.5 * max(size_a, size_b))
