"""Monitoring-probe selection as weighted set cover (Section 5).

A service operator must choose probe locations so that every service
endpoint is observed by at least one probe; probes have different running
costs.  That is weighted minimum set cover, which the paper's machinery
solves directly (sets = value variables, endpoints = constraints).

The script compares the derandomized-rounding solution against weighted
greedy and the LP lower bound.

Usage:  python examples/set_cover_monitoring.py [elements] [sets] [seed]
"""

from __future__ import annotations

import sys

from repro import approx_min_set_cover, greedy_set_cover
from repro.setcover import random_setcover_instance


def main(num_elements: int = 80, num_sets: int = 30, seed: int = 11) -> None:
    instance = random_setcover_instance(
        num_elements, num_sets, set_size=max(4, num_elements // 8),
        seed=seed, weighted=True,
    )
    print(
        f"instance: {num_elements} endpoints, {num_sets} candidate probes, "
        f"max endpoint frequency f={instance.max_element_frequency}"
    )

    greedy = greedy_set_cover(instance)
    print(
        f"weighted greedy: {len(greedy)} probes, "
        f"cost {instance.cover_weight(greedy):.2f}"
    )

    result = approx_min_set_cover(instance)
    assert instance.is_cover(result.chosen)
    print(
        f"derandomized rounding: {len(result.chosen)} probes, "
        f"cost {result.weight:.2f} "
        f"(LP bound {result.lp_optimum:.2f}, ratio {result.weight / result.lp_optimum:.3f}, "
        f"{result.num_colors} color classes)"
    )

    print("\nselected probes (id: cost, endpoints covered):")
    for sid in sorted(result.chosen)[:12]:
        print(
            f"  probe {sid:>3d}: {instance.weight_of(sid):5.2f}, "
            f"{len(instance.sets[sid])} endpoints"
        )
    if len(result.chosen) > 12:
        print(f"  ... and {len(result.chosen) - 12} more")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:4]]
    main(*args)
