"""Weighted MDS via weighted LP + derandomized one-shot rounding."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Set

import networkx as nx

from repro.analysis.verify import require_dominating_set
from repro.coloring.distance2 import bipartite_distance2_coloring
from repro.congest.cost import CostLedger
from repro.derand.coloring_based import (
    ROUNDS_PER_COLOR,
    derandomized_rounding_with_coloring,
)
from repro.derand.estimators import EstimatorConfig
from repro.domsets.covering import CoveringInstance
from repro.errors import GraphError
from repro.fractional.lp import solve_covering_lp
from repro.fractional.raising import repair_feasibility
from repro.rounding.schemes import one_shot_scheme
from repro.util.transmittable import TransmittableGrid


@dataclass
class WeightedMDSResult:
    """Weighted dominating set plus provenance."""

    dominating_set: Set[int]
    weight: float
    lp_optimum: float
    num_colors: int
    ledger: CostLedger


def greedy_weighted_mds(graph: nx.Graph, weights: Mapping[int, float]) -> Set[int]:
    """Weighted greedy: minimize weight per newly dominated node."""
    uncovered = set(graph.nodes())
    chosen: Set[int] = set()
    while uncovered:
        best, best_ratio = None, math.inf
        for v in sorted(graph.nodes()):
            if v in chosen:
                continue
            gain = len((set(graph.neighbors(v)) | {v}) & uncovered)
            if gain == 0:
                continue
            ratio = float(weights.get(v, 1.0)) / gain
            if ratio < best_ratio:
                best, best_ratio = v, ratio
        assert best is not None
        chosen.add(best)
        uncovered -= set(graph.neighbors(best)) | {best}
    return require_dominating_set(graph, chosen, "weighted greedy")


def approx_weighted_mds(
    graph: nx.Graph,
    weights: Mapping[int, float],
    raise_fraction: float = 0.25,
    config: EstimatorConfig | None = None,
) -> WeightedMDSResult:
    """Weighted LP + derandomized one-shot rounding.

    Output weight is at most ``ln(Delta~) * LP_w + sum of uncovered
    penalties`` — the weighted analogue of Lemma 3.13, realized through the
    same estimator with per-variable weights.
    """
    n = graph.number_of_nodes()
    if n == 0:
        raise GraphError("empty graph")
    bad = [v for v in graph.nodes() if float(weights.get(v, 1.0)) <= 0]
    if bad:
        raise GraphError(f"weights must be positive; offending nodes {bad[:5]}")
    delta_tilde = max((d for _, d in graph.degree()), default=0) + 1
    ledger = CostLedger()
    grid = TransmittableGrid.for_n(n)

    w = {v: float(weights.get(v, 1.0)) for v in graph.nodes()}
    lp_instance = CoveringInstance.from_graph(
        graph, {v: 0.0 for v in graph.nodes()}, weights=w
    )
    lp = solve_covering_lp(lp_instance)
    values = repair_feasibility(graph, lp.values)
    # Weighted raising: lifting by lambda costs sum_v w_v * lambda; keep the
    # lift proportional to the LP weight so the factor stays (1 + raise).
    total_weight = sum(w.values())
    lam = raise_fraction * max(lp.optimum, 1e-9) / max(total_weight, 1e-9)
    lam = min(lam, 1.0 / (2.0 * delta_tilde))
    values = {v: max(x, lam) for v, x in values.items()}

    base = CoveringInstance.from_graph(graph, values, weights=w)
    pruned = base.prune_to_cover(max_members=None)
    scheme = one_shot_scheme(pruned, delta_tilde, quantize=grid.up)

    participating = set(scheme.participating())
    coloring = bipartite_distance2_coloring(
        scheme.instance, restrict=participating, n_network=n
    )
    ledger.charge("lemma3.12-coloring", coloring.charged_rounds)

    cfg = config or EstimatorConfig(mode="exact-product")
    result = derandomized_rounding_with_coloring(scheme, coloring.colors, cfg)
    ledger.charge("lemma3.10-color-loop", ROUNDS_PER_COLOR * max(1, coloring.num_colors))

    ds = {
        v for v, x in result.outcome.projected.items() if x >= 1.0 - 1e-9
    }
    require_dominating_set(graph, ds, "weighted one-shot output")
    return WeightedMDSResult(
        dominating_set=ds,
        weight=sum(w[v] for v in ds),
        lp_optimum=lp.optimum,
        num_colors=coloring.num_colors,
        ledger=ledger,
    )
