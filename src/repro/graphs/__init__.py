"""Graph workloads: generators, the named benchmark suite, graph powers and
the bipartite double cover used by Section 3.3.
"""

from repro.graphs.normalize import normalize_graph, relabel_map
from repro.graphs.generators import (
    gnp_graph,
    geometric_graph,
    preferential_attachment_graph,
    grid_graph,
    ring_graph,
    random_tree,
    caterpillar_graph,
    regular_graph,
    star_graph,
    clique_graph,
    dumbbell_graph,
)
from repro.graphs.suite import SuiteInstance, benchmark_suite, suite_instance
from repro.graphs.powers import graph_power, square_graph
from repro.graphs.validation import degree_stats, require_connected

__all__ = [
    "normalize_graph",
    "relabel_map",
    "gnp_graph",
    "geometric_graph",
    "preferential_attachment_graph",
    "grid_graph",
    "ring_graph",
    "random_tree",
    "caterpillar_graph",
    "regular_graph",
    "star_graph",
    "clique_graph",
    "dumbbell_graph",
    "SuiteInstance",
    "benchmark_suite",
    "suite_instance",
    "graph_power",
    "square_graph",
    "degree_stats",
    "require_connected",
]
