"""Graph input validation and summary statistics."""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.errors import GraphError


@dataclass(frozen=True)
class DegreeStats:
    """Degree summary used in experiment table rows."""

    n: int
    m: int
    max_degree: int
    min_degree: int
    avg_degree: float

    @property
    def delta_tilde(self) -> int:
        """Inclusive-neighborhood size bound ``Delta~ = Delta + 1``."""
        return self.max_degree + 1


def degree_stats(graph: nx.Graph) -> DegreeStats:
    """Compute degree statistics for a graph."""
    degrees = [d for _, d in graph.degree()]
    n = graph.number_of_nodes()
    return DegreeStats(
        n=n,
        m=graph.number_of_edges(),
        max_degree=max(degrees, default=0),
        min_degree=min(degrees, default=0),
        avg_degree=(sum(degrees) / n) if n else 0.0,
    )


def require_connected(graph: nx.Graph, what: str = "algorithm") -> None:
    """Raise :class:`GraphError` unless the graph is connected.

    The CDS problem (Section 4) is only well posed on connected graphs.
    """
    if graph.number_of_nodes() == 0:
        raise GraphError(f"{what} requires a non-empty graph")
    if not nx.is_connected(graph):
        raise GraphError(f"{what} requires a connected graph")
