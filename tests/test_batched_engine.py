"""Stacked multi-instance engine: parity, isolation, eligibility.

The batched mode's contract is absolute: splitting a K-instance stacked
run must reproduce K solo ``vector``-engine runs **bit for bit** — rounds,
outputs, message/bit totals, per-round series, ``max_message_bits``, all
of it.  These tests enforce the contract across the graph zoo and seed
ensembles, prove per-instance termination masks never leak traffic
between instances, and pin the eligibility rules (what must raise
:class:`BatchEligibilityError` so the runner falls back per cell).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.congest.engine import (
    StackedPlane,
    iter_stacked,
    run_stacked,
    stack_ineligibility,
)
from repro.errors import SimulationLimitError
from repro.congest.network import Network
from repro.congest.programs.bfs import BFSTreeProgram
from repro.congest.programs.color_reduction import ColorReductionProgram
from repro.congest.programs.greedy_mds import DistributedGreedyProgram
from repro.congest.programs.lemma310 import Lemma310Program
from repro.congest.programs.rounding_exec import RoundingExecutionProgram
from repro.congest.simulator import Simulator
from repro.errors import BatchEligibilityError
from repro.graphs.suite import suite_instance

#: (program class, max_rounds for size n, per-instance inputs builder).
PROGRAMS = {
    "greedy": (DistributedGreedyProgram, lambda n: 8 * n + 16, None),
    "color-reduction": (ColorReductionProgram, lambda n: n + 4, None),
    "rounding-exec": (
        RoundingExecutionProgram,
        lambda n: 4,
        lambda n, k: {v: ((3 * v + k) % 23, 40, 64) for v in range(n)},
    ),
}

#: Families whose generators honor the requested n exactly, so K seeds of
#: one (family, n) always stack.
EXACT_FAMILIES = ("gnp", "gnp-dense", "tree", "geometric", "ba")


def _networks(family: str, n: int, seeds) -> list:
    return [
        Network.congest(suite_instance(family, n, seed=s).graph) for s in seeds
    ]


def _lemma310_group(networks):
    """Registry-recipe inputs and per-instance round limits for lemma310.

    Unlike the closed-form ``PROGRAMS`` recipes, lemma310's round limit
    depends on the distance-2 coloring of each concrete graph, so both
    come from the registered spec.  These are the *canonical uniform*
    inputs, which the kernel runs fully in-plane from round 1.
    """
    from repro.api.registry import program_spec

    spec = program_spec("lemma310")
    inputs = [dict(spec.batch_inputs(net)) for net in networks]
    limits = [int(spec.batch_max_rounds(net)) for net in networks]
    return inputs, limits


def _perturb_lemma310(network, inputs):
    """Make one instance's inputs heterogeneous (``x != p`` on a third of
    the nodes), failing the kernel's round-1 gate so the instance runs the
    scalar color-class prologue and absorbs at ``2 + 3*num_colors``."""
    from repro.util.transmittable import TransmittableGrid

    grid = TransmittableGrid.for_n(network.n)
    quarter = grid.to_int(0.25)
    return {
        v: (dict(box, x_num=quarter) if v % 3 == 0 else dict(box))
        for v, box in inputs.items()
    }


def _break_lemma310_uniformity(network, inputs):
    """Keep every node at ``x == p`` but vary the value across nodes.

    Each node still looks canonical in isolation; only the *cross-node*
    uniformity clause of the round-1 gate fails.  The vectorized protocol
    seeds its whole log-product table from one shared ``p``, so absorbing
    such an instance at round 1 would silently compute wrong alpha quotes
    — the gate must route it through the scalar prologue instead."""
    from repro.util.transmittable import TransmittableGrid

    grid = TransmittableGrid.for_n(network.n)
    quarter = grid.to_int(0.25)
    return {
        v: (
            dict(box, x_num=quarter, p_num=quarter)
            if v % 3 == 0
            else dict(box)
        )
        for v, box in inputs.items()
    }


def _lemma310_takeovers(networks, inputs):
    """Actual per-instance takeover rounds, straight from the kernel."""
    from repro.congest.engine import kernel_for

    kernel_cls = kernel_for(Lemma310Program)
    return [
        int(
            kernel_cls.takeover_round(
                net, {v: Lemma310Program(box[v]) for v in range(net.n)}
            )
        )
        for net, box in zip(networks, inputs)
    ]


def _solo_and_stacked(program: str, networks, seeds=None):
    cls, max_rounds, inputs_fn = PROGRAMS[program]
    n = networks[0].n
    inputs = (
        [inputs_fn(n, k) for k in range(len(networks))] if inputs_fn else None
    )
    solo = [
        Simulator(
            net, cls, inputs=(inputs[k] if inputs else {}), engine="vector"
        ).run(max_rounds=max_rounds(n))
        for k, net in enumerate(networks)
    ]
    stacked = run_stacked(networks, cls, inputs=inputs, max_rounds=max_rounds(n))
    return solo, stacked


@pytest.mark.parametrize("family", EXACT_FAMILIES)
@pytest.mark.parametrize("program", sorted(PROGRAMS))
def test_stacked_parity_across_families(family, program):
    """K stacked seeds == K solo vector runs, field for field."""
    networks = _networks(family, 32, range(5))
    solo, stacked = _solo_and_stacked(program, networks)
    for k, (a, b) in enumerate(zip(solo, stacked)):
        assert a.rounds == b.rounds, (family, program, k)
        assert a.outputs == b.outputs, (family, program, k)
        assert a.total_messages == b.total_messages, (family, program, k)
        assert a.total_bits == b.total_bits, (family, program, k)
        assert a.max_message_bits == b.max_message_bits, (family, program, k)
        assert a.messages_per_round == b.messages_per_round, (family, program, k)
        assert a.bits_per_round == b.bits_per_round, (family, program, k)
        assert a.all_halted == b.all_halted
        assert a == b


def test_stacked_parity_heterogeneous_termination():
    """Instances finishing at very different rounds stay independent.

    The greedy run on a sparse tree terminates in far fewer phases than on
    a denser gnp of the same size; after the early instance's termination
    mask empties, its per-round series must stop exactly where its solo
    run stopped while the siblings run on — any cross-instance message
    leak would shift the degree-weighted per-round counts.
    """
    networks = _networks("tree", 48, range(3)) + _networks("gnp-dense", 48, range(3))
    solo, stacked = _solo_and_stacked("greedy", networks)
    rounds = sorted(r.rounds for r in stacked)
    assert rounds[0] < rounds[-1], "workload should terminate heterogeneously"
    assert solo == stacked
    for result in stacked:
        # Per-instance series are exactly as long as the instance ran and
        # account exactly its own traffic.
        assert len(result.messages_per_round) == result.rounds
        assert len(result.bits_per_round) == result.rounds
        assert sum(result.messages_per_round) == result.total_messages
        assert sum(result.bits_per_round) == result.total_bits
        assert all(isinstance(b, int) for b in result.bits_per_round)


def test_stacked_identical_copies_agree():
    """K copies of one seed produce K identical results equal to solo."""
    networks = _networks("gnp", 24, [7] * 4)
    solo, stacked = _solo_and_stacked("greedy", networks)
    assert stacked == solo
    assert all(r == stacked[0] for r in stacked)


def test_stacked_single_instance_matches_solo():
    networks = _networks("geometric", 30, [3])
    solo, stacked = _solo_and_stacked("color-reduction", networks)
    assert stacked == solo


class TestStackedPlaneIsolation:
    """Structural no-leak properties of the block-diagonal plane."""

    @pytest.mark.parametrize("family", EXACT_FAMILIES)
    def test_instance_slots_stay_in_instance(self, family):
        networks = _networks(family, 20, range(4))
        plane = StackedPlane(networks)
        n = plane.local_n
        for k in range(plane.instances):
            lo, hi = plane.slot_offsets[k], plane.slot_offsets[k + 1]
            neighbors = plane.indices[lo:hi]
            assert neighbors.size == 0 or (
                neighbors.min() >= k * n and neighbors.max() < (k + 1) * n
            ), f"instance {k} references foreign nodes"
        assert plane.n == len(networks) * n
        assert plane.nnz == sum(net.csr()[1].__len__() for net in networks)

    def test_local_ids_and_instance_of(self):
        networks = _networks("tree", 15, range(3))
        plane = StackedPlane(networks)
        assert list(plane.local_ids[:15]) == list(range(15))
        assert list(plane.local_ids[15:30]) == list(range(15))
        assert list(plane.instance_of[:15]) == [0] * 15
        assert list(plane.instance_of[30:]) == [2] * 15

    def test_row_reductions_match_per_instance_planes(self):
        from repro.congest.engine import CsrPlane

        networks = _networks("gnp", 18, range(3))
        plane = StackedPlane(networks)
        values = np.arange(plane.nnz, dtype=np.int64) % 11
        stacked_sum = plane.row_sum(values)
        for k, net in enumerate(networks):
            solo = CsrPlane(net)
            lo, hi = plane.slot_offsets[k], plane.slot_offsets[k + 1]
            solo_sum = solo.row_sum(values[lo:hi])
            assert list(stacked_sum[k * 18 : (k + 1) * 18]) == list(solo_sum)


class TestEligibility:
    def test_zero_instances_raise(self):
        with pytest.raises(BatchEligibilityError):
            run_stacked([], DistributedGreedyProgram)

    def test_program_without_kernel_raises(self):
        networks = _networks("gnp", 20, range(2))
        with pytest.raises(BatchEligibilityError):
            run_stacked(networks, BFSTreeProgram)

    def test_stackable_programs_report_eligible(self):
        for cls in (
            DistributedGreedyProgram,
            ColorReductionProgram,
            RoundingExecutionProgram,
            Lemma310Program,
        ):
            assert stack_ineligibility(cls) is None

    def test_late_takeover_without_absorb_is_rejected_at_boot(self, monkeypatch):
        """takeover_round > 1 demands absorb_instance — checked eagerly,
        before any scalar prologue work is spent.  Heterogeneous inputs
        force the late takeover (canonical ones run in-plane from round 1
        and never need absorption)."""
        from repro.congest.engine import VectorKernel, kernel_for

        kernel_cls = kernel_for(Lemma310Program)
        monkeypatch.setattr(
            kernel_cls, "absorb_instance", VectorKernel.absorb_instance
        )
        networks = _networks("gnp", 12, range(2))
        inputs, limits = _lemma310_group(networks)
        inputs = [
            _perturb_lemma310(net, box)
            for net, box in zip(networks, inputs)
        ]
        assert all(t > 1 for t in _lemma310_takeovers(networks, inputs))
        with pytest.raises(BatchEligibilityError, match="absorb_instance"):
            run_stacked(
                networks, Lemma310Program, inputs=inputs, max_rounds=limits
            )

    def test_canonical_lemma310_takes_over_at_round_one(self, monkeypatch):
        """Canonical uniform inputs clear the kernel's round-1 gate: the
        whole group runs lockstep in-plane and never calls
        absorb_instance at all."""
        from repro.congest.engine import VectorKernel, kernel_for

        kernel_cls = kernel_for(Lemma310Program)
        monkeypatch.setattr(
            kernel_cls, "absorb_instance", VectorKernel.absorb_instance
        )
        networks = _networks("gnp", 12, range(2))
        inputs, limits = _lemma310_group(networks)
        assert _lemma310_takeovers(networks, inputs) == [1, 1]
        results = run_stacked(
            networks, Lemma310Program, inputs=inputs, max_rounds=limits
        )
        assert all(r.all_halted for r in results)

    def test_bfs_reports_reason(self):
        assert "message_specs" in stack_ineligibility(BFSTreeProgram)


def test_color_reduction_respects_initial_colors():
    """Stacked boot honors explicit per-instance initial colorings."""
    networks = _networks("tree", 16, range(3))
    n = networks[0].n
    inputs = [
        {v: (v + k) % n for v in range(n)} for k in range(len(networks))
    ]
    solo = [
        Simulator(
            net, ColorReductionProgram, inputs=inputs[k], engine="vector"
        ).run(max_rounds=n + 4)
        for k, net in enumerate(networks)
    ]
    stacked = run_stacked(
        networks, ColorReductionProgram, inputs=inputs, max_rounds=n + 4
    )
    assert solo == stacked


def test_scalar_boot_fallback_matches_vectorized_boot(monkeypatch):
    """A stackable kernel without ``stacked_setup`` boots through the
    object-level path (per-node programs + handover) with identical
    results — the contract both boots must satisfy."""
    from repro.congest.engine import kernel_for

    kernel_cls = kernel_for(DistributedGreedyProgram)
    networks = _networks("gnp", 28, range(4))
    fast = run_stacked(networks, DistributedGreedyProgram, max_rounds=8 * 28 + 16)
    monkeypatch.setattr(kernel_cls, "stacked_setup", None)
    scalar = run_stacked(networks, DistributedGreedyProgram, max_rounds=8 * 28 + 16)
    assert fast == scalar


def test_rounding_exec_missing_inputs_is_eligibility_error():
    """Absent per-node inputs surface as the documented fallback signal."""
    networks = _networks("gnp", 16, range(2))
    with pytest.raises(BatchEligibilityError):
        run_stacked(networks, RoundingExecutionProgram, max_rounds=4)


class TestRaggedStacking:
    """Mixed-size (ragged) stacked planes: parity, streaming, transport.

    Since the ragged layout, nothing requires instances to share a node
    count (or the size-derived CONGEST bit budget): a mixed-size sweep
    stacks into one block-diagonal plane with per-instance offset tables,
    and the bit-for-bit parity contract extends unchanged — every instance
    of the stack must reproduce its solo ``vector`` run field for field.
    """

    #: Mixed sizes spanning an order of magnitude, with a duplicated size
    #: so local-id collisions across instances are exercised too.
    SPECS = [("gnp", 20, 0), ("tree", 60, 1), ("gnp-dense", 150, 2), ("gnp", 20, 3)]

    @classmethod
    def _ragged_networks(cls):
        return [
            Network.congest(suite_instance(f, n, seed=s).graph)
            for f, n, s in cls.SPECS
        ]

    @pytest.mark.parametrize("program", sorted(PROGRAMS))
    def test_ragged_parity_field_for_field(self, program):
        """n ∈ {20, 60, 150} stacked == the same solo vector runs."""
        cls, max_rounds, inputs_fn = PROGRAMS[program]
        networks = self._ragged_networks()
        inputs = (
            [inputs_fn(net.n, k) for k, net in enumerate(networks)]
            if inputs_fn
            else None
        )
        solo = [
            Simulator(
                net, cls, inputs=(inputs[k] if inputs else {}), engine="vector"
            ).run(max_rounds=max_rounds(net.n))
            for k, net in enumerate(networks)
        ]
        stacked = run_stacked(
            networks,
            cls,
            inputs=inputs,
            max_rounds=[max_rounds(net.n) for net in networks],
        )
        for k, (a, b) in enumerate(zip(solo, stacked)):
            assert a.rounds == b.rounds, (program, k)
            assert a.outputs == b.outputs, (program, k)
            assert a.total_messages == b.total_messages, (program, k)
            assert a.total_bits == b.total_bits, (program, k)
            assert a.max_message_bits == b.max_message_bits, (program, k)
            assert a.messages_per_round == b.messages_per_round, (program, k)
            assert a.bits_per_round == b.bits_per_round, (program, k)
            assert a == b

    def test_ragged_mixed_budgets_stack(self):
        """Budgets are per-instance: LOCAL and CONGEST instances co-stack."""
        graphs = [suite_instance("gnp", 24, seed=s).graph for s in range(2)]
        networks = [Network.congest(graphs[0]), Network.local(graphs[1])]
        solo = [
            Simulator(net, DistributedGreedyProgram, engine="vector").run(
                max_rounds=8 * 24 + 16
            )
            for net in networks
        ]
        assert run_stacked(
            networks, DistributedGreedyProgram, max_rounds=8 * 24 + 16
        ) == solo

    def test_early_terminating_instance_streams_first(self):
        """iter_stacked yields a finished instance *before* siblings end.

        Color reduction terminates in exactly n rounds, so the size order
        is the completion order: the 20-node instances must surface while
        the 150-node instance still has ~130 rounds to run.
        """
        networks = self._ragged_networks()
        seen = []
        for k, result in iter_stacked(
            networks,
            ColorReductionProgram,
            max_rounds=[net.n + 4 for net in networks],
        ):
            assert result.all_halted
            assert result.rounds == networks[k].n  # solo schedule per size
            seen.append(k)
        rounds_in_yield_order = [networks[k].n for k in seen]
        assert rounds_in_yield_order == sorted(rounds_in_yield_order)
        assert set(seen[:2]) == {0, 3}  # both 20-node instances first
        assert seen[-1] == 2  # the 150-node instance last

    def test_iter_stacked_matches_run_stacked(self):
        networks = self._ragged_networks()
        collected = {}
        for k, result in iter_stacked(
            networks, DistributedGreedyProgram, max_rounds=8 * 150 + 16
        ):
            collected[k] = result
        assert [collected[k] for k in range(len(networks))] == run_stacked(
            networks, DistributedGreedyProgram, max_rounds=8 * 150 + 16
        )

    def test_per_instance_round_limits(self):
        """An instance exceeding its *own* limit aborts the whole group —
        the signal the runner turns into a per-cell fallback that then
        reproduces the solo ``SimulationLimitError`` exactly."""
        networks = self._ragged_networks()
        limits = [8 * net.n + 16 for net in networks]
        limits[1] = 2  # the 60-node greedy run needs far more than 2 rounds
        with pytest.raises(SimulationLimitError):
            run_stacked(networks, DistributedGreedyProgram, max_rounds=limits)
        with pytest.raises(BatchEligibilityError):
            run_stacked(
                networks, DistributedGreedyProgram, max_rounds=limits[:2]
            )  # wrong arity: one limit per instance

    def test_ragged_plane_offset_tables(self):
        networks = self._ragged_networks()
        plane = StackedPlane(networks)
        sizes = [net.n for net in networks]
        assert plane.local_n is None  # ragged: no single shared size
        assert list(plane.local_ns) == sizes
        assert list(plane.node_offsets) == [0, 20, 80, 230, 250]
        assert plane.n == sum(sizes)
        # Per-node tables: local ids restart at each instance boundary and
        # local_n_of reports the owning instance's size.
        for k, net in enumerate(networks):
            lo, hi = plane.node_offsets[k], plane.node_offsets[k + 1]
            assert list(plane.local_ids[lo:hi]) == list(range(net.n))
            assert set(plane.local_n_of[lo:hi]) == {net.n}
            assert set(plane.instance_of[lo:hi]) == {k}
            # Slot containment: no row references a foreign instance.
            s_lo, s_hi = plane.slot_offsets[k], plane.slot_offsets[k + 1]
            neighbors = plane.indices[s_lo:s_hi]
            assert neighbors.size == 0 or (
                neighbors.min() >= lo and neighbors.max() < hi
            )

    def test_ragged_live_per_instance(self):
        networks = self._ragged_networks()
        plane = StackedPlane(networks)
        live = np.zeros(plane.n, dtype=bool)
        live[plane.node_offsets[1] : plane.node_offsets[1] + 7] = True
        live[plane.node_offsets[3] :] = True
        assert list(plane.live_per_instance(live)) == [0, 7, 0, 20]

    def test_ragged_row_reductions_match_solo_planes(self):
        from repro.congest.engine import CsrPlane

        networks = self._ragged_networks()
        plane = StackedPlane(networks)
        values = np.arange(plane.nnz, dtype=np.int64) % 13
        stacked_sum = plane.row_sum(values)
        for k, net in enumerate(networks):
            solo = CsrPlane(net)
            lo, hi = plane.slot_offsets[k], plane.slot_offsets[k + 1]
            n_lo, n_hi = plane.node_offsets[k], plane.node_offsets[k + 1]
            assert list(stacked_sum[n_lo:n_hi]) == list(solo.row_sum(values[lo:hi]))

    def test_ragged_sharedmem_round_trip(self):
        """Mixed-size groups travel through the two-block transport."""
        from repro.experiments.sharedmem import (
            SharedStackedTopology,
            attach_stacked,
        )

        networks = self._ragged_networks()
        stack = SharedStackedTopology.publish(networks)
        try:
            rebuilt = attach_stacked(stack.handle)
        finally:
            stack.unlink()
        assert [net.n for net in rebuilt] == [net.n for net in networks]
        for original, copy_net in zip(networks, rebuilt):
            assert copy_net.bit_budget == original.bit_budget
            for v in range(original.n):
                assert copy_net.neighbors(v) == original.neighbors(v)
        # The rebuilt group stacks and splits identically to the original.
        assert run_stacked(
            rebuilt, DistributedGreedyProgram, max_rounds=8 * 150 + 16
        ) == run_stacked(
            networks, DistributedGreedyProgram, max_rounds=8 * 150 + 16
        )


class TestLemma310Stacking:
    """Lemma 3.10 stacking, both speeds.

    Canonical uniform instances clear the kernel's round-1 gate and run
    their color-class rounds *in-plane* (lockstep, targeted alpha traffic
    and all); heterogeneous instances run their ``2 + 3*num_colors``
    scalar prologue against the shared global clock and are absorbed at
    their *own* takeover round.  A mixed group carries both side by side.
    The parity contract is the same absolute one in every lane: field for
    field against solo ``vector`` runs.
    """

    @pytest.mark.parametrize("family", ("gnp", "tree", "geometric"))
    def test_uniform_parity_field_for_field(self, family):
        networks = _networks(family, 24, range(4))
        inputs, limits = _lemma310_group(networks)
        assert set(_lemma310_takeovers(networks, inputs)) == {1}
        solo = [
            Simulator(
                net, Lemma310Program, inputs=inputs[k], engine="vector"
            ).run(max_rounds=limits[k])
            for k, net in enumerate(networks)
        ]
        stacked = run_stacked(
            networks, Lemma310Program, inputs=inputs, max_rounds=limits
        )
        for k, (a, b) in enumerate(zip(solo, stacked)):
            assert a.rounds == b.rounds, (family, k)
            assert a.outputs == b.outputs, (family, k)
            assert a.total_messages == b.total_messages, (family, k)
            assert a.total_bits == b.total_bits, (family, k)
            assert a.max_message_bits == b.max_message_bits, (family, k)
            assert a.messages_per_round == b.messages_per_round, (family, k)
            assert a.bits_per_round == b.bits_per_round, (family, k)
            assert a == b

    def test_ragged_mixed_takeover_parity(self):
        """Canonical and heterogeneous instances inside one plane.

        The perturbed instances fail the round-1 gate and run scalar
        prologues of different ``2 + 3*num_colors`` lengths while the
        canonical one executes its color-class rounds in-plane from round
        1 — three distinct takeover rounds, one shared clock, and plane
        rounds that carry in-plane and handover traffic with different
        tags at once.
        """
        specs = [("gnp", 16, 0), ("gnp-dense", 40, 1), ("tree", 28, 2)]
        networks = [
            Network.congest(suite_instance(f, n, seed=s).graph)
            for f, n, s in specs
        ]
        inputs, limits = _lemma310_group(networks)
        inputs = [
            _perturb_lemma310(net, box) if k else box
            for k, (net, box) in enumerate(zip(networks, inputs))
        ]
        takeovers = _lemma310_takeovers(networks, inputs)
        assert takeovers[0] == 1 and len(set(takeovers)) > 2
        solo = [
            Simulator(
                net, Lemma310Program, inputs=inputs[k], engine="vector"
            ).run(max_rounds=limits[k])
            for k, net in enumerate(networks)
        ]
        assert run_stacked(
            networks, Lemma310Program, inputs=inputs, max_rounds=limits
        ) == solo

    def test_nonuniform_x_equals_p_declines_round_one(self):
        """Per-node-canonical but cross-node-varying inputs stay scalar.

        ``x == p`` holds at every node yet the value differs across
        nodes: the round-1 gate must decline (the in-plane log-product
        replay assumes one shared ``p``), the scalar engines must agree
        with the vector engine solo, and the stacked run must still match
        solo field for field through the prologue lane."""
        networks = _networks("gnp", 20, range(2))
        inputs, limits = _lemma310_group(networks)
        inputs = [
            _break_lemma310_uniformity(net, box)
            for net, box in zip(networks, inputs)
        ]
        assert all(t > 1 for t in _lemma310_takeovers(networks, inputs))
        for k, net in enumerate(networks):
            runs = {
                engine: Simulator(
                    net, Lemma310Program, inputs=inputs[k], engine=engine
                ).run(max_rounds=limits[k])
                for engine in ("reference", "vector")
            }
            assert runs["reference"] == runs["vector"], k
        solo = [
            Simulator(
                net, Lemma310Program, inputs=inputs[k], engine="vector"
            ).run(max_rounds=limits[k])
            for k, net in enumerate(networks)
        ]
        assert run_stacked(
            networks, Lemma310Program, inputs=inputs, max_rounds=limits
        ) == solo

    def test_vectorized_boot_matches_object_boot(self, monkeypatch):
        """`stacked_setup` accepts exactly the all-canonical groups and
        reproduces the object-level boot bit for bit.

        An all-canonical group boots without a single program or context
        object; disabling the hook forces the same group through scalar
        ``setup`` plus handover stitching, and the results must be
        identical.  Any perturbed instance makes ``stacked_setup`` decline
        (return ``None``) so the group keeps its per-instance lanes."""
        from repro.congest.engine import kernel_for

        kernel_cls = kernel_for(Lemma310Program)
        networks = _networks("gnp", 24, range(3))
        inputs, limits = _lemma310_group(networks)
        vec_boot = run_stacked(
            networks, Lemma310Program, inputs=inputs, max_rounds=limits
        )
        with monkeypatch.context() as m:
            m.setattr(kernel_cls, "stacked_setup", None)
            obj_boot = run_stacked(
                networks, Lemma310Program, inputs=inputs, max_rounds=limits
            )
        assert vec_boot == obj_boot
        from repro.congest.engine.batched import StackedPlane

        mixed = [dict(box) for box in inputs]
        mixed[1] = _perturb_lemma310(networks[1], mixed[1])
        assert (
            kernel_cls.stacked_setup(StackedPlane(networks), mixed) is None
        )
        assert (
            kernel_cls.stacked_setup(StackedPlane(networks), inputs)
            is not None
        )

    def test_iter_stacked_streams_lemma310(self):
        networks = _networks("gnp", 20, range(3))
        inputs, limits = _lemma310_group(networks)
        solo = [
            Simulator(
                net, Lemma310Program, inputs=inputs[k], engine="vector"
            ).run(max_rounds=limits[k])
            for k, net in enumerate(networks)
        ]
        collected = {}
        for k, result in iter_stacked(
            networks, Lemma310Program, inputs=inputs, max_rounds=limits
        ):
            collected[k] = result
        assert [collected[k] for k in range(len(networks))] == solo
