"""The two instantiations of the abstract rounding process (Section 3.2).

*One-shot rounding* boosts every value by ``ln(Delta~)`` and rounds with
``p(v) = x(v)``, turning a fractional solution into an integral one in a
single step (phase-one values are 0/1 because ``x/p = 1``).

*Factor-two rounding* boosts by ``(1+eps)`` and lets every variable with
value below ``2/r`` double itself with probability 1/2, doubling the
fractionality ``1/r -> 2/r`` while inflating the size by roughly ``(1+eps)``.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.domsets.covering import CoveringInstance
from repro.errors import InfeasibleSolutionError
from repro.rounding.abstract import RoundingScheme


def one_shot_scheme(
    instance: CoveringInstance,
    delta_tilde: int,
    quantize: Callable[[float], float] | None = None,
) -> RoundingScheme:
    """One-shot rounding: ``x = min(1, ln(Delta~) x')``, ``p = x``.

    ``delta_tilde`` is ``Delta + 1`` of the graph the instance came from
    (for set cover: the largest constraint degree).
    """
    if delta_tilde < 1:
        raise InfeasibleSolutionError(f"delta_tilde must be >= 1, got {delta_tilde}")
    boost = max(1.0, math.log(delta_tilde))
    boosted = instance.boost_values(boost, quantize=quantize)
    p = {}
    for u, var in boosted.value_vars.items():
        p[u] = var.x if var.x > 0.0 else 1.0
    return RoundingScheme(
        instance=boosted,
        p=p,
        name="one-shot",
        params={"delta_tilde": float(delta_tilde), "boost": boost},
    )


def factor_two_scheme(
    instance: CoveringInstance,
    eps: float,
    r: float,
    quantize: Callable[[float], float] | None = None,
) -> RoundingScheme:
    """Factor-two rounding: ``x = min(1, (1+eps) x')``; variables with
    ``x < 2/r`` flip a fair coin to double, the rest keep their value.

    ``r`` is the inverse fractionality of the *input* (every non-zero input
    value is at least ``1/r``).
    """
    if eps <= 0:
        raise InfeasibleSolutionError(f"eps must be positive, got {eps}")
    if r < 4:
        raise InfeasibleSolutionError(
            f"factor-two rounding needs r >= 4 so doubled values stay <= 1, got {r}"
        )
    boosted = instance.boost_values(1.0 + eps, quantize=quantize)
    threshold = 2.0 / r
    p = {}
    for u, var in boosted.value_vars.items():
        if var.x <= 0.0:
            p[u] = 1.0
        elif var.x < threshold:
            p[u] = 0.5
        else:
            p[u] = 1.0
    return RoundingScheme(
        instance=boosted,
        p=p,
        name="factor-two",
        params={"eps": eps, "r": float(r), "threshold": threshold},
    )


def scheme_for_name(
    name: str,
    instance: CoveringInstance,
    *,
    delta_tilde: int | None = None,
    eps: float | None = None,
    r: float | None = None,
    quantize: Callable[[float], float] | None = None,
) -> RoundingScheme:
    """Factory used by experiment sweeps."""
    if name == "one-shot":
        if delta_tilde is None:
            raise InfeasibleSolutionError("one-shot scheme needs delta_tilde")
        return one_shot_scheme(instance, delta_tilde, quantize=quantize)
    if name == "factor-two":
        if eps is None or r is None:
            raise InfeasibleSolutionError("factor-two scheme needs eps and r")
        return factor_two_scheme(instance, eps, r, quantize=quantize)
    raise InfeasibleSolutionError(f"unknown scheme {name!r}")
