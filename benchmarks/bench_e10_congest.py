"""Benchmark E10: CONGEST round/bit accounting table.

Regenerates the CONGEST round/bit accounting (see DESIGN.md Section 2) and certifies
every guarantee check recorded by the experiment.
"""

from benchmarks.conftest import run_experiment
from repro.experiments import e10_congest


def bench_e10_congest(benchmark):
    run_experiment(benchmark, e10_congest.run)
