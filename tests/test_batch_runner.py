"""Batch runner: grid expansion, determinism, structured failures, JSON."""

from __future__ import annotations

import copy
import json


from repro.experiments.harness import engine_grid_cells, engine_grid_report
from repro.experiments.runner import (
    GridCell,
    available_programs,
    expand_grid,
    results_payload,
    run_cell,
    run_grid,
    summarize_results,
    write_results,
)


def _strip_walls(results):
    stripped = copy.deepcopy(results)
    for rec in stripped:
        rec.pop("wall_s", None)
    return stripped


SMALL_GRID = expand_grid(
    families=("tree", "gnp"),
    sizes=(16,),
    programs=("bfs",),
    engines=("reference", "fast"),
    seed=3,
)


class TestExpandGrid:
    def test_cartesian_product(self):
        cells = expand_grid(
            families=("gnp", "tree"),
            sizes=(20, 40),
            programs=("bfs", "greedy"),
            engines=("reference", "fast"),
        )
        assert len(cells) == 2 * 2 * 2 * 2
        assert len(set(cells)) == len(cells)
        assert all(isinstance(c, GridCell) for c in cells)

    def test_defaults_cover_all_programs_and_engines(self):
        cells = expand_grid(families=("tree",), sizes=(12,))
        programs = {c.program for c in cells}
        engines = {c.engine for c in cells}
        assert programs == set(available_programs())
        assert {"reference", "fast"} <= engines

    def test_key_is_reproducible(self):
        cell = GridCell(family="gnp", n=40, program="bfs", engine="fast", seed=9)
        assert cell.key == "gnp-40/bfs/fast/s9"


class TestRunCell:
    def test_success_record(self):
        cell = GridCell(family="tree", n=16, program="bfs", engine="fast", seed=3)
        rec = run_cell(cell)
        assert rec["ok"] is True
        assert rec["metrics"]["rounds"] >= 1
        assert rec["metrics"]["all_halted"] is True
        assert rec["wall_s"] >= 0
        assert rec["cell"] == {
            "family": "tree", "n": 16, "program": "bfs",
            "engine": "fast", "seed": 3,
        }

    def test_unknown_family_is_structured_error(self):
        rec = run_cell(GridCell(family="nope", n=16, program="bfs", engine="fast"))
        assert rec["ok"] is False
        assert rec["error"]["type"] == "GraphError"
        assert "nope" in rec["error"]["message"]

    def test_unknown_program_is_structured_error(self):
        rec = run_cell(GridCell(family="tree", n=16, program="boom", engine="fast"))
        assert rec["ok"] is False
        assert rec["error"]["type"] == "UnknownProgramError"
        assert "boom" in rec["error"]["message"]

    def test_unknown_engine_is_structured_error(self):
        rec = run_cell(GridCell(family="tree", n=16, program="bfs", engine="warp"))
        assert rec["ok"] is False
        assert rec["error"]["type"] == "UnknownEngineError"
        assert "warp" in rec["error"]["message"]


class TestRunGrid:
    def test_single_worker_is_deterministic(self):
        first = run_grid(SMALL_GRID, jobs=1)
        second = run_grid(SMALL_GRID, jobs=1)
        assert _strip_walls(first) == _strip_walls(second)

    def test_results_preserve_cell_order(self):
        results = run_grid(SMALL_GRID, jobs=1)
        assert [r["key"] for r in results] == [c.key for c in SMALL_GRID]

    def test_worker_pool_matches_sequential(self):
        sequential = run_grid(SMALL_GRID, jobs=1)
        parallel = run_grid(SMALL_GRID, jobs=2)
        assert _strip_walls(sequential) == _strip_walls(parallel)

    def test_cell_failure_does_not_crash_grid(self):
        cells = [
            GridCell(family="tree", n=16, program="bfs", engine="fast"),
            GridCell(family="nope", n=16, program="bfs", engine="fast"),
            GridCell(family="gnp", n=16, program="bfs", engine="fast"),
        ]
        results = run_grid(cells, jobs=1)
        assert [r["ok"] for r in results] == [True, False, True]


class TestSummariesAndJson:
    def test_summary_speedup_and_failures(self):
        cells = SMALL_GRID + [
            GridCell(family="nope", n=16, program="bfs", engine="fast")
        ]
        results = run_grid(cells, jobs=1)
        summary = summarize_results(results)
        assert summary["per_engine"]["reference"]["ok"] == 2
        assert summary["per_engine"]["fast"]["ok"] == 2
        assert summary["per_engine"]["fast"]["cells"] == 3
        assert "fast" in summary["speedup_vs_reference"]
        assert len(summary["failures"]) == 1
        assert summary["failures"][0]["error"]["type"] == "GraphError"

    def test_write_results_roundtrip(self, tmp_path):
        results = run_grid(SMALL_GRID, jobs=1)
        out = write_results(tmp_path / "grid.json", results, meta={"jobs": 1})
        payload = json.loads(out.read_text())
        assert payload["generator"] == "repro.experiments.runner"
        assert payload["meta"] == {"jobs": 1}
        assert len(payload["cells"]) == len(SMALL_GRID)
        assert payload["summary"] == json.loads(
            json.dumps(summarize_results(results))
        )

    def test_results_payload_is_json_serializable(self):
        results = run_grid(SMALL_GRID, jobs=1)
        json.dumps(results_payload(results))


class TestEngineGridReport:
    def test_parity_and_no_failures_pass(self):
        results = run_grid(SMALL_GRID, jobs=1)
        report = engine_grid_report(results)
        assert report.checks["no_failures"] is True
        assert report.checks["engine_parity"] is True
        assert len(report.rows) == len(SMALL_GRID)
        assert "wall_ms" in report.columns

    def test_failure_flips_check(self):
        cells = SMALL_GRID + [
            GridCell(family="nope", n=16, program="bfs", engine="fast")
        ]
        report = engine_grid_report(run_grid(cells, jobs=1))
        assert report.checks["no_failures"] is False
        assert any("nope" in note for note in report.notes)

    def test_metric_divergence_flips_parity(self):
        results = run_grid(SMALL_GRID, jobs=1)
        doctored = copy.deepcopy(results)
        for rec in doctored:
            if rec["cell"]["engine"] == "fast":
                rec["metrics"]["rounds"] += 1
        report = engine_grid_report(doctored)
        assert report.checks["engine_parity"] is False

    def test_shared_cells_definition(self):
        cells = engine_grid_cells(fast=True)
        assert all(c.engine in ("reference", "fast", "vector") for c in cells)
        assert len({(c.family, c.n, c.program) for c in cells}) * 3 == len(cells)
