"""Micro-benchmark: Reference vs Fast vs Vector engines on 10k-node graphs.

Acceptance targets for the engine work, asserted on every run:

* **Fast >= 2x reference** (PR 1): BFS on the 100x100 grid plus the
  event-driven tree-sum on a 10k random tree.
* **Vector >= 5x reference** (this PR): distributed greedy MDS on the
  100x100 grid — a broadcast-heavy program (four fixed-shape broadcast
  steps per phase, ~400 rounds at this size) that runs entirely on the
  numpy message plane.  One observed run: reference 12.7s, fast 10.8s,
  vector 0.43s (~30x vs reference).

``bench_engine_vector_10k`` also asserts full result parity between the
three engines on the 10k workload before it asserts the speedup, so a
regression in correctness can never hide behind a timing win.
``bench_engine_grid`` additionally times the shared comparison grid through
the batch runner (the same cells ``scripts/run_experiments.py --quick``
writes to ``BENCH_engines.json``).
"""

from __future__ import annotations

import time

import networkx as nx

from benchmarks.conftest import run_engine_grid
from repro.congest.network import Network
from repro.congest.programs.aggregate import run_tree_sum
from repro.congest.programs.bfs import run_bfs_forest
from repro.congest.programs.greedy_mds import run_distributed_greedy
from repro.experiments.harness import engine_grid_cells
from repro.graphs.generators import grid_graph, random_tree

#: 100 x 100 grid: n = 10_000, diameter 198.
BENCH_SIDE = 100
BENCH_TREE_N = 10_000

#: The tentpole bar: VectorEngine vs ReferenceEngine on a 10k-node
#: broadcast-heavy program.
VECTOR_SPEEDUP_BAR = 5.0


def _bfs_10k(engine: str):
    graph = grid_graph(BENCH_SIDE, BENCH_SIDE)
    network = Network.congest(graph)
    return run_bfs_forest(graph, roots=[0], network=network, engine=engine)[-1]


def _tree_sum_10k(engine: str):
    graph = random_tree(BENCH_TREE_N, seed=7)
    network = Network.congest(graph)
    parents = {0: -1}
    for u, v in nx.bfs_edges(graph, 0):
        parents[v] = u
    vectors = {v: (1,) for v in graph.nodes()}
    return run_tree_sum(graph, parents, vectors, network=network, engine=engine)[-1]


def _greedy_10k(engine: str, network: Network | None = None):
    network = network or Network.congest(grid_graph(BENCH_SIDE, BENCH_SIDE))
    return run_distributed_greedy(None, network=network, engine=engine)[-1]


def bench_engine_reference_10k(benchmark):
    result = benchmark.pedantic(
        _bfs_10k, args=("reference",), iterations=1, rounds=1, warmup_rounds=0
    )
    assert result.all_halted


def bench_engine_fast_10k(benchmark):
    result = benchmark.pedantic(
        _bfs_10k, args=("fast",), iterations=1, rounds=1, warmup_rounds=0
    )
    assert result.all_halted


def bench_engine_speedup_10k(benchmark):
    """Both scalar engines, identical results, >= 2x for the fast path."""

    def _measure():
        timings = {}
        results = {}
        for name, fn in (("bfs", _bfs_10k), ("tree-sum", _tree_sum_10k)):
            for engine in ("reference", "fast"):
                t0 = time.perf_counter()
                results[name, engine] = fn(engine)
                timings[name, engine] = time.perf_counter() - t0
        return results, timings

    results, timings = benchmark.pedantic(
        _measure, iterations=1, rounds=1, warmup_rounds=0
    )
    ref_total = fast_total = 0.0
    print()
    for name in ("bfs", "tree-sum"):
        assert results[name, "reference"] == results[name, "fast"], (
            f"engines disagree on 10k-node {name}"
        )
        t_ref, t_fast = timings[name, "reference"], timings[name, "fast"]
        ref_total += t_ref
        fast_total += t_fast
        print(f"{name:>9s}: reference {t_ref:.2f}s, fast {t_fast:.2f}s "
              f"-> {t_ref / max(t_fast, 1e-9):.1f}x")
    speedup = ref_total / max(fast_total, 1e-9)
    print(f"{'combined':>9s}: reference {ref_total:.2f}s, fast {fast_total:.2f}s "
          f"-> {speedup:.1f}x")
    assert speedup >= 2.0, f"fast engine only {speedup:.2f}x over reference"


def bench_engine_vector_10k(benchmark):
    """Vector engine on a broadcast-heavy 10k program: parity, then >= 5x."""

    def _measure():
        network = Network.congest(grid_graph(BENCH_SIDE, BENCH_SIDE))
        timings = {}
        results = {}
        for engine in ("reference", "fast", "vector"):
            t0 = time.perf_counter()
            results[engine] = _greedy_10k(engine, network=network)
            timings[engine] = time.perf_counter() - t0
        return results, timings

    results, timings = benchmark.pedantic(
        _measure, iterations=1, rounds=1, warmup_rounds=0
    )
    print()
    for engine in ("fast", "vector"):
        assert results[engine] == results["reference"], (
            f"{engine} engine disagrees with reference on 10k greedy MDS"
        )
        print(f"{engine:>9s}: {timings[engine]:.2f}s vs reference "
              f"{timings['reference']:.2f}s -> "
              f"{timings['reference'] / max(timings[engine], 1e-9):.1f}x")
    speedup = timings["reference"] / max(timings["vector"], 1e-9)
    assert speedup >= VECTOR_SPEEDUP_BAR, (
        f"vector engine only {speedup:.2f}x over reference "
        f"(bar: {VECTOR_SPEEDUP_BAR}x)"
    )


def bench_engine_grid(benchmark):
    run_engine_grid(benchmark, engine_grid_cells())
