"""Set cover solvers: greedy baseline and the derandomized rounding route."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Set

from repro.congest.cost import CostLedger
from repro.coloring.distance2 import bipartite_distance2_coloring
from repro.derand.coloring_based import (
    ROUNDS_PER_COLOR,
    derandomized_rounding_with_coloring,
)
from repro.derand.estimators import EstimatorConfig
from repro.errors import InfeasibleSolutionError
from repro.fractional.lp import solve_covering_lp
from repro.rounding.schemes import one_shot_scheme
from repro.setcover.instance import SetCoverInstance
from repro.util.transmittable import TransmittableGrid


def greedy_set_cover(instance: SetCoverInstance) -> Set[int]:
    """Weighted greedy: repeatedly pick the set minimizing weight per newly
    covered element.  ``H(max set size)``-approximate."""
    uncovered: Set[int] = set(instance.universe)
    chosen: Set[int] = set()
    while uncovered:
        best, best_ratio = None, math.inf
        for sid in sorted(instance.sets):
            if sid in chosen:
                continue
            gain = len(instance.sets[sid] & uncovered)
            if gain == 0:
                continue
            ratio = instance.weight_of(sid) / gain
            if ratio < best_ratio:
                best, best_ratio = sid, ratio
        if best is None:
            raise InfeasibleSolutionError("universe not coverable")
        chosen.add(best)
        uncovered -= instance.sets[best]
    return chosen


@dataclass
class SetCoverResult:
    """Derandomized set cover plus provenance."""

    chosen: Set[int]
    weight: float
    lp_optimum: float
    initial_estimate: float
    num_colors: int
    ledger: CostLedger


def _factor_two_covering_step(
    covering,
    values,
    eps: float,
    r: float,
    s: int,
    grid,
    config: EstimatorConfig | None,
):
    """One Lemma 3.14 step on a generic covering instance (set cover)."""
    base = covering.with_values(values)
    boosted = base.boost_values(1.0 + eps, quantize=grid.up)
    threshold = 2.0 / r
    split = boosted.split_constraints(
        original_values=values, participation_threshold=threshold, s=s
    )
    from repro.rounding.abstract import RoundingScheme

    p = {
        u: (0.5 if 0.0 < var.x < threshold else 1.0)
        for u, var in split.value_vars.items()
    }
    scheme = RoundingScheme(split, p, "factor-two/setcover",
                            params={"eps": eps, "r": float(r), "s": float(s)})
    participating = set(scheme.participating())
    coloring = bipartite_distance2_coloring(split, restrict=participating)
    cfg = config or EstimatorConfig(mode="chernoff")
    result = derandomized_rounding_with_coloring(scheme, coloring.colors, cfg)
    new_values = {
        u: result.outcome.projected.get(covering.value_vars[u].origin, 0.0)
        for u in covering.value_vars
    }
    return new_values, coloring.num_colors


def approx_min_set_cover(
    instance: SetCoverInstance,
    raise_fraction: float = 0.25,
    config: EstimatorConfig | None = None,
    gradual: bool = False,
    f_target: float = 8.0,
    eps2: float = 0.3,
) -> SetCoverResult:
    """LP + derandomized rounding for set cover.

    ``raise_fraction`` plays the role of ``eps`` in Lemma 2.1's raising
    step: LP values below ``raise_fraction / (2 f)`` (``f`` = max element
    frequency) are lifted so the pruning/coloring machinery sees bounded
    fractionality.  Guarantee mirrors the MDS bound with ``Delta~`` replaced
    by the max element frequency.

    With ``gradual=True`` the full Section 3.4 cascade runs on the covering
    instance: factor-two doublings (Lemma 3.14, generic constraint
    splitting) until the inverse fractionality drops below ``f_target``,
    then the final one-shot step — demonstrating the paper's remark that
    the machinery applies to set cover "almost directly".
    """
    covering = instance.to_covering()
    lp = solve_covering_lp(covering)
    freq = instance.max_element_frequency
    lam = raise_fraction / (2.0 * max(1, freq))
    values = {u: max(x, lam) for u, x in lp.values.items()}
    # Repair LP tolerance: scale up slightly, cap at 1.
    values = {u: min(1.0, x * (1.0 + 1e-7) + 1e-12) for u, x in values.items()}
    base = covering.with_values(values)
    if not base.is_feasible():
        raise InfeasibleSolutionError("raised LP solution infeasible")

    ledger = CostLedger()
    grid = TransmittableGrid.for_n(max(2, covering.num_vars + covering.num_constraints))

    if gradual:
        nonzero = [x for x in values.values() if x > 1e-15]
        r = 1.0 / min(nonzero) if nonzero else 1.0
        iterations = 0
        while r > max(4.0, f_target) and iterations < 32:
            values, colors = _factor_two_covering_step(
                covering, values, eps=eps2, r=r, s=3, grid=grid, config=config
            )
            ledger.charge("lemma3.14-setcover", 3 * max(1, colors))
            base = covering.with_values(values)
            if not base.is_feasible():
                raise InfeasibleSolutionError(
                    f"gradual rounding iteration {iterations} lost feasibility"
                )
            nonzero = [x for x in values.values() if x > 1e-15]
            r_new = 1.0 / min(nonzero) if nonzero else 1.0
            if r_new > r / 1.5:
                break
            r = r_new
            iterations += 1

    pruned = base.prune_to_cover(max_members=None)
    scheme = one_shot_scheme(pruned, delta_tilde=max(2, freq), quantize=grid.up)

    participating = set(scheme.participating())
    coloring = bipartite_distance2_coloring(scheme.instance, restrict=participating)
    ledger.charge("lemma3.12-coloring", coloring.charged_rounds)

    cfg = config or EstimatorConfig(mode="exact-product")
    result = derandomized_rounding_with_coloring(scheme, coloring.colors, cfg)
    ledger.charge("lemma3.10-color-loop", ROUNDS_PER_COLOR * max(1, coloring.num_colors))

    chosen = {
        origin
        for origin, x in result.outcome.projected.items()
        if x >= 1.0 - 1e-9
    }
    if not instance.is_cover(chosen):
        raise InfeasibleSolutionError("derandomized set cover output invalid")
    return SetCoverResult(
        chosen=chosen,
        weight=instance.cover_weight(chosen),
        lp_optimum=lp.optimum,
        initial_estimate=result.initial_estimate,
        num_colors=coloring.num_colors,
        ledger=ledger,
    )
