"""Sparse spanners of cluster graphs ([BS07], derandomized per [GK18]).

Section 4 replaces the spanning tree of ``G_S`` by a sparse connected
spanning subgraph computed by the Baswana-Sen clustering process with
constant sampling probability; the derandomized variant fixes the per-phase
cluster-sampling coins by the method of conditional expectations on a
product-form potential (expected edges added + balance term).
"""

from repro.spanner.baswana_sen import (
    SpannerResult,
    baswana_sen_spanner,
    derandomized_sampler,
    random_sampler,
)

__all__ = [
    "SpannerResult",
    "baswana_sen_spanner",
    "random_sampler",
    "derandomized_sampler",
]
