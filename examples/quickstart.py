"""Quickstart: deterministic dominating set approximation in five lines.

Runs both deterministic CONGEST routes (Theorem 1.1 and Theorem 1.2) on a
small random graph, validates the outputs, and compares them against the
LP lower bound, the greedy baseline, and the paper's guarantee.

Usage:  python examples/quickstart.py [n] [seed]
"""

from __future__ import annotations

import sys

from repro import (
    approx_mds_coloring,
    approx_mds_decomposition,
    greedy_mds,
    is_dominating_set,
    lp_fractional_mds,
)
from repro.analysis.bounds import theorem12_approximation_bound
from repro.graphs import gnp_graph


def main(n: int = 100, seed: int = 42) -> None:
    graph = gnp_graph(n, p=min(0.5, 5.0 / n), seed=seed)
    delta = max(d for _, d in graph.degree())
    print(f"graph: n={n}, m={graph.number_of_edges()}, Delta={delta}")

    lp = lp_fractional_mds(graph)
    print(f"LP lower bound            : {lp.optimum:.2f}")

    greedy = greedy_mds(graph)
    print(f"greedy [Joh74]            : {len(greedy)}")

    coloring = approx_mds_coloring(graph, eps=0.5)
    assert is_dominating_set(graph, coloring.dominating_set)
    print(
        f"Theorem 1.2 (coloring)    : {coloring.size}  "
        f"(ratio {coloring.size / lp.optimum:.3f}, "
        f"rounds sim={coloring.ledger.simulated_rounds} "
        f"charged={coloring.ledger.charged_rounds})"
    )

    decomposition = approx_mds_decomposition(graph, eps=0.5)
    assert is_dominating_set(graph, decomposition.dominating_set)
    print(
        f"Theorem 1.1 (decomposition): {decomposition.size}  "
        f"(ratio {decomposition.size / lp.optimum:.3f})"
    )

    bound = theorem12_approximation_bound(0.5, delta)
    print(f"guarantee (1+eps)(1+ln(D+1)) = {bound:.3f}  ", end="")
    print("[holds]" if coloring.size <= bound * lp.optimum else "[VIOLATED]")

    print("\npipeline trace (coloring route):")
    for stage in coloring.trace:
        print(
            f"  {stage.stage:<24s} size={stage.size:8.3f} "
            f"fractionality={stage.fractionality:.3g} {stage.detail}"
        )

    # Grid sweeps go through the Experiment builder (repro.api): pick
    # programs, axes and an engine; the execution strategy is negotiated
    # per program spec (see examples/experiment_api.py for the full tour).
    from repro.api import Experiment

    sweep = Experiment("greedy").on("gnp").sizes(n).engine("vector").seeds(3).run()
    sizes = [rec.metrics["ds_size"] for rec in sweep]
    print(f"\nsimulated greedy over 3 seeded topologies: |DS| = {sizes}")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    main(*args)
