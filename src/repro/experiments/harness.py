"""Shared experiment harness: suite selection, report container, rendering,
and the engine-comparison grid that CLI, scripts and benchmarks all route
through (see :mod:`repro.experiments.runner` for the execution layer).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Sequence

from repro.graphs.suite import SuiteInstance, benchmark_suite
from repro.util.tables import TableFormatter

#: Families exercised in fast (CI) mode.
FAST_FAMILIES = ("gnp", "geometric", "tree")
FAST_SIZES = (40, 80)
FULL_SIZES = (60, 120, 240)

#: Axes of the engine-comparison grid (quick mode vs full mode).
ENGINE_GRID_FAMILIES = ("gnp", "grid", "tree")
ENGINE_GRID_SIZES_FAST = (60, 120)
ENGINE_GRID_SIZES_FULL = (120, 400, 1000)
ENGINE_GRID_ENGINES = ("reference", "fast", "vector")


def fast_mode() -> bool:
    """Fast unless ``REPRO_FULL=1`` is exported."""
    return os.environ.get("REPRO_FULL", "0") != "1"


def standard_suite(fast: bool | None = None) -> Iterator[SuiteInstance]:
    """The instance sweep shared by the experiment tables."""
    if fast is None:
        fast = fast_mode()
    if fast:
        return benchmark_suite(sizes=FAST_SIZES, families_subset=FAST_FAMILIES)
    return benchmark_suite(sizes=FULL_SIZES)


@dataclass
class ExperimentReport:
    """Structured rows plus a rendered table.

    ``rows`` keeps raw values for assertions in tests; ``checks`` records
    named boolean guarantees so a report can certify itself.
    """

    experiment: str
    claim: str
    columns: Sequence[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    checks: Dict[str, bool] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **values: object) -> None:
        self.rows.append(values)

    def check(self, name: str, ok: bool) -> None:
        self.checks[name] = self.checks.get(name, True) and bool(ok)

    @property
    def all_checks_pass(self) -> bool:
        return all(self.checks.values())

    def render(self) -> str:
        table = TableFormatter(list(self.columns), title=f"[{self.experiment}] {self.claim}")
        for row in self.rows:
            table.add_row([row.get(c, "") for c in self.columns])
        lines = [table.render()]
        if self.checks:
            status = ", ".join(
                f"{name}={'PASS' if ok else 'FAIL'}" for name, ok in sorted(self.checks.items())
            )
            lines.append(f"checks: {status}")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


# -- per-round congestion histograms ------------------------------------------


def congestion_histogram(
    bits_per_round: Sequence[int], buckets: int = 6
) -> List[Dict[str, int]]:
    """Equal-width histogram of a ``bits_per_round`` series.

    Buckets cover ``[min, max]`` of the series; each entry reports the
    inclusive bit range and how many executed rounds fell into it.  Empty
    trailing buckets are trimmed so sparse series stay readable.  The
    bucket counts always sum to ``len(bits_per_round)``.
    """
    if buckets < 1:
        raise ValueError(f"need at least one bucket, got {buckets}")
    series = [int(b) for b in bits_per_round]
    if not series:
        return []
    lo, hi = min(series), max(series)
    width = max(1, -(-(hi - lo + 1) // buckets))  # ceil division
    counts = [0] * buckets
    for bits in series:
        counts[min((bits - lo) // width, buckets - 1)] += 1
    rows = [
        {
            "lo": lo + i * width,
            "hi": min(lo + (i + 1) * width - 1, hi),
            "rounds": count,
        }
        for i, count in enumerate(counts)
    ]
    while rows and rows[-1]["rounds"] == 0:
        rows.pop()
    return rows


def render_congestion(
    bits_per_round: Sequence[int], buckets: int = 4
) -> str:
    """Compact one-cell rendering of :func:`congestion_histogram`.

    ``"0-99:3 100-199:7"`` means 3 rounds put 0..99 bits on the wire and
    7 rounds put 100..199.  Zero-count buckets are omitted.
    """
    rows = congestion_histogram(bits_per_round, buckets=buckets)
    parts = [
        f"{row['lo']}-{row['hi']}:{row['rounds']}"
        for row in rows
        if row["rounds"]
    ]
    return " ".join(parts) if parts else "-"


# -- multi-seed statistical sweeps (the batched-plane workload) ---------------

#: Seed-ensemble widths for the statistical sweeps (fast vs full mode).
SEED_SWEEP_COUNT_FAST = 12
SEED_SWEEP_COUNT_FULL = 50
#: Default axes: one suite cell, many seeds — exactly the shape the
#: ``batch`` strategy stacks into a single message plane.
SEED_SWEEP_FAMILY = "gnp"
SEED_SWEEP_SIZE = 60


def seed_sweep_cells(
    program: str = "greedy",
    family: str = SEED_SWEEP_FAMILY,
    n: int = SEED_SWEEP_SIZE,
    seeds: Sequence[int] | None = None,
    engine: str = "vector",
    fast: bool | None = None,
):
    """Cells for a many-seeds-of-one-family statistical sweep.

    This is the workload behind the paper's ensemble experiments (many
    independent runs of one program family over seeded topologies); the
    experiment modules route it through ``run_grid(strategy="batch")`` so
    all seeds advance as one stacked message plane.
    """
    from repro.api import Experiment

    if seeds is None:
        if fast is None:
            fast = fast_mode()
        seeds = range(SEED_SWEEP_COUNT_FAST if fast else SEED_SWEEP_COUNT_FULL)
    return (
        Experiment(program)
        .on(family)
        .sizes(n)
        .engine(engine)
        .seeds(list(seeds))
        .cells()
    )


def comparable_records(results: Sequence[Mapping[str, object]]):
    """Strip a grid run to its strategy-invariant fields.

    Two runs of the same cells under different execution strategies must
    agree on exactly these fields (cell identity, success flag, the whole
    metrics block); wall-clock and batch annotations may differ.  Both
    ``scripts/run_experiments.py --batched`` and
    ``benchmarks/bench_batched.py`` compare through this single
    definition so the parity contract cannot drift between them.  Accepts
    legacy dict records or typed :class:`~repro.api.records.RunRecord`
    objects.
    """
    from repro.api.records import as_record_dicts

    return [
        {k: v for k, v in rec.items() if k in ("cell", "key", "ok", "metrics")}
        for rec in as_record_dicts(results)
    ]


def simulation_wall(results: Sequence[Mapping[str, object]]) -> float:
    """Total simulation-only wall of a grid run (graph generation excluded).

    Sums the per-record ``wall_s`` the runner measures around simulation;
    both strategies generate each topology exactly once, so this isolates
    the cost the execution strategy controls.
    """
    from repro.api.records import as_record_dicts

    return sum(rec.get("wall_s", 0.0) for rec in as_record_dicts(results))  # type: ignore[misc]


def seed_sweep_report(
    results: Sequence[Mapping[str, object]],
    experiment: str,
    claim: str,
    value_key: str | None = None,
) -> ExperimentReport:
    """Render a seed sweep as an :class:`ExperimentReport`.

    One row per seed with the shared simulation metrics plus the
    program-specific summary value (``value_key``: e.g. ``ds_size`` for
    the greedy MDS program, ``colors`` for color reduction).  Checks
    recorded: ``no_failures`` and ``all_halted`` on every row; callers add
    their own claim-specific checks on the raw rows.  Records carrying a
    certification ``quality`` block (a ``--certify`` run) additionally
    get ``ratio_vs_opt`` / ``ratio_vs_lp`` columns and a
    ``quality_within_bound`` check gating every certified row against its
    spec's documented guarantee.  Accepts legacy dict records or typed
    :class:`~repro.api.records.RunRecord` objects.
    """
    from repro.api.records import as_record_dicts

    results = as_record_dicts(results)
    certified = any("quality" in rec for rec in results)
    columns = ["seed", "n", "Delta", "rounds", "messages", "total_bits"]
    if value_key:
        columns.append(value_key)
    if certified:
        columns += ["ratio_vs_opt", "ratio_vs_lp"]
    columns.append("batched")
    report = ExperimentReport(
        experiment=experiment, claim=claim, columns=columns
    )
    values: List[float] = []
    for rec in results:
        cell = rec["cell"]  # type: ignore[index]
        report.check("no_failures", bool(rec.get("ok")))
        if not rec.get("ok"):
            report.notes.append(f"{rec['key']}: {rec['error']}")  # type: ignore[index]
            continue
        metrics = rec["metrics"]  # type: ignore[index]
        report.check("all_halted", bool(metrics["all_halted"]))  # type: ignore[index]
        row = {
            "seed": cell["seed"],  # type: ignore[index]
            "n": metrics["n"],  # type: ignore[index]
            "Delta": metrics["max_degree"],  # type: ignore[index]
            "rounds": metrics["rounds"],  # type: ignore[index]
            "messages": metrics["total_messages"],  # type: ignore[index]
            "total_bits": metrics["total_bits"],  # type: ignore[index]
            "batched": "yes" if "batch" in rec else "no",
        }
        if value_key:
            row[value_key] = metrics.get(value_key, "")  # type: ignore[index]
            if isinstance(metrics.get(value_key), (int, float)):  # type: ignore[index]
                values.append(float(metrics[value_key]))  # type: ignore[index]
        if certified:
            quality = rec.get("quality") or {}
            ratio_opt = quality.get("ratio_vs_opt")  # type: ignore[union-attr]
            ratio_lp = quality.get("ratio_vs_lp")  # type: ignore[union-attr]
            row["ratio_vs_opt"] = (
                f"{ratio_opt:.3f}" if ratio_opt is not None else "-"
            )
            row["ratio_vs_lp"] = (
                f"{ratio_lp:.3f}" if ratio_lp is not None else "-"
            )
            if "within_bound" in quality:  # type: ignore[operator]
                report.check(
                    "quality_within_bound",
                    bool(quality["within_bound"]),  # type: ignore[index]
                )
        report.add_row(**row)
    if values:
        mean = sum(values) / len(values)
        report.notes.append(
            f"{value_key}: min={min(values):.0f} mean={mean:.2f} "
            f"max={max(values):.0f} over {len(values)} seeds"
        )
    return report


# -- engine comparison grid ---------------------------------------------------


def engine_grid_cells(fast: bool | None = None, seed: int = 7):
    """The standard (graph × program × engine) comparison grid.

    Used by ``scripts/run_experiments.py --quick`` (the ``BENCH_engines``
    artifact), ``python -m repro grid`` defaults, and
    ``benchmarks/bench_engines.py`` — one definition so their numbers are
    comparable.  The program axis covers every registered simulation
    program (all six CONGEST programs since the registry redesign).
    """
    from repro.api import Experiment

    if fast is None:
        fast = fast_mode()
    sizes = ENGINE_GRID_SIZES_FAST if fast else ENGINE_GRID_SIZES_FULL
    return (
        Experiment()
        .on(*ENGINE_GRID_FAMILIES)
        .sizes(*sizes)
        .engines(*ENGINE_GRID_ENGINES)
        .seed(seed)
        .cells()
    )


def engine_grid_report(results: Sequence[Mapping[str, object]]) -> ExperimentReport:
    """Render a grid run as an :class:`ExperimentReport` with parity checks.

    Checks recorded:

    ``no_failures``
        every cell produced a result;
    ``engine_parity``
        for each (family, n, program, seed) work item, all engines agree on
        rounds, message count, bit totals and max message size.

    Accepts legacy dict records or typed ``RunRecord`` objects.
    """
    from repro.api.records import as_record_dicts

    results = as_record_dicts(results)
    report = ExperimentReport(
        experiment="ENGINES",
        claim="pluggable engines: identical metrics, fast-path wall-clock wins",
        columns=[
            "graph", "program", "engine", "rounds", "messages",
            "total_bits", "wall_ms",
        ],
    )
    by_item: Dict[tuple, Dict[str, Mapping[str, object]]] = {}
    for rec in results:
        cell = rec["cell"]  # type: ignore[index]
        report.check("no_failures", bool(rec.get("ok")))
        if not rec.get("ok"):
            report.notes.append(f"{rec['key']}: {rec['error']}")  # type: ignore[index]
            continue
        metrics = rec["metrics"]  # type: ignore[index]
        report.add_row(
            graph=f"{cell['family']}-{cell['n']}",  # type: ignore[index]
            program=cell["program"],  # type: ignore[index]
            engine=cell["engine"],  # type: ignore[index]
            rounds=metrics["rounds"],  # type: ignore[index]
            messages=metrics["total_messages"],  # type: ignore[index]
            total_bits=metrics["total_bits"],  # type: ignore[index]
            wall_ms=round(rec["wall_s"] * 1000, 2),  # type: ignore[operator]
        )
        item = (cell["family"], cell["n"], cell["program"], cell["seed"])  # type: ignore[index]
        by_item.setdefault(item, {})[cell["engine"]] = metrics  # type: ignore[index]
    for item, engines in by_item.items():
        baseline = None
        for metrics in engines.values():
            probe = (
                metrics["rounds"], metrics["total_messages"],
                metrics["total_bits"], metrics["max_message_bits"],
            )
            if baseline is None:
                baseline = probe
            report.check("engine_parity", probe == baseline)
    return report
