"""Distance-2 colorings.

A coloring of a node subset ``S`` is *distance-2* if any two same-colored
nodes of ``S`` are at graph distance greater than 2.  Lemma 3.10 consumes a
distance-2 coloring of the participating variables; Lemma 3.12 provides one
for the right-hand side of a bipartite graph with ``Delta_L * Delta_R``
colors in ``O(Delta_L Delta_R + Delta_L log* n)`` rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set

import networkx as nx

from repro.congest.cost import bek15_coloring_rounds
from repro.coloring.greedy import greedy_coloring, validate_coloring
from repro.domsets.covering import CoveringInstance
from repro.errors import ColoringError
from repro.graphs.powers import square_graph
from repro.util.mathx import log_star


@dataclass(frozen=True)
class Distance2Coloring:
    """A distance-2 coloring plus its charged round cost.

    ``delta_l`` / ``delta_r`` record the bipartite degree parameters the
    Lemma 3.12 charge was computed from (0 when not applicable), so callers
    can re-derive the LOCAL-model cost (Corollary 1.3 pays ``log* n`` once
    instead of ``Delta_L`` times).
    """

    colors: Dict[int, int]
    num_colors: int
    charged_rounds: int
    conflict_edges: int
    delta_l: int = 0
    delta_r: int = 0

    def charged_rounds_for(self, model: str, n: int) -> int:
        """Charge under ``"congest"`` (default) or ``"local"``."""
        if model == "congest" or self.delta_l == 0:
            return self.charged_rounds
        if model != "local":
            raise ColoringError(f"unknown model {model!r}")
        return max(1, self.delta_l * self.delta_r + log_star(max(2, n)))


def distance2_coloring(graph: nx.Graph, subset: Set[int] | None = None) -> Distance2Coloring:
    """Distance-2 coloring of ``subset`` (default: all nodes) of ``graph``.

    Built by properly coloring the square graph restricted to the subset.
    """
    sq = square_graph(graph)
    if subset is not None:
        sq = sq.subgraph(sorted(subset)).copy()
        missing = set(subset) - set(graph.nodes())
        if missing:
            raise ColoringError(f"subset nodes {sorted(missing)[:5]} not in graph")
        sq.add_nodes_from(sorted(subset))
    colors = greedy_coloring(sq)
    num = validate_coloring(sq, colors)
    max_deg = max((d for _, d in sq.degree()), default=0)
    charged = bek15_coloring_rounds(max_deg + 1, graph.number_of_nodes(),
                                    graph.number_of_nodes())
    return Distance2Coloring(
        colors=colors,
        num_colors=num,
        charged_rounds=charged,
        conflict_edges=sq.number_of_edges(),
    )


def bipartite_distance2_coloring(
    instance: CoveringInstance,
    restrict: Set[int] | None = None,
    n_network: int | None = None,
) -> Distance2Coloring:
    """Lemma 3.12: distance-2 coloring of the value side of ``B``.

    Two value variables conflict iff they share a constraint (equivalently,
    they are at distance 2 in the bipartite graph).  Greedy coloring of the
    conflict graph uses at most ``Delta_L * Delta_R`` colors, matching the
    lemma; rounds are charged as
    ``O(Delta_L Delta_R + Delta_L log* n)`` per the lemma statement.
    """
    conflict = instance.value_conflict_graph(restrict)
    colors = greedy_coloring(conflict)
    num = validate_coloring(conflict, colors)
    delta_l = instance.max_constraint_degree
    delta_r = instance.max_var_degree
    bound = delta_l * delta_r
    if num > max(1, bound):
        raise ColoringError(
            f"bipartite distance-2 coloring used {num} colors, exceeding the "
            f"Lemma 3.12 bound Delta_L*Delta_R = {bound}"
        )
    n = n_network if n_network is not None else max(instance.num_vars, 2)
    # Lemma 3.12 (CONGEST): O(Delta_L Delta_R + Delta_L log* n) — simulating
    # one round of the conflict-graph coloring costs O(Delta_L) rounds in B.
    charged = max(1, bound + max(1, delta_l) * log_star(max(2, n)))
    return Distance2Coloring(
        colors=colors,
        num_colors=num,
        charged_rounds=charged,
        conflict_edges=conflict.number_of_edges(),
        delta_l=delta_l,
        delta_r=delta_r,
    )


def validate_distance2(graph: nx.Graph, colors: Dict[int, int]) -> None:
    """Assert that same-colored nodes are at distance > 2 in ``graph``."""
    sq = square_graph(graph)
    for u, v in sq.edges():
        if u in colors and v in colors and colors[u] == colors[v]:
            raise ColoringError(
                f"nodes {u} and {v} share color {colors[u]} at distance <= 2"
            )
