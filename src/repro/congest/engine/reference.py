"""The original dict-of-dicts round loop, kept as the readable baseline.

This is the implementation the simulator shipped with: a direct transcription
of the synchronous model — per round, scan every context for outgoing
traffic, deliver into a fresh dict-of-dicts, and call ``receive`` on every
live node.  It is O(n) per round even when almost every node has halted,
which is exactly the cost profile :class:`~repro.congest.engine.fast.
FastEngine` removes; it stays around as the semantic reference that the
parity suite checks the fast path against, and as the engine of choice when
debugging a node program (plain data structures, obvious control flow).
"""

from __future__ import annotations

from typing import Dict

from repro.congest.engine.base import Engine, SimulationResult, register_engine
from repro.congest.message import Message
from repro.congest.network import Network
from repro.congest.node import Context, NodeProgram
from repro.errors import MessageTooLargeError, SimulationLimitError


@register_engine
class ReferenceEngine(Engine):
    """Straightforward per-node, per-message round loop (the seed semantics).

    See :mod:`repro.congest.engine.base` for the shared contract, including
    the halted-node message-drop rules this engine defines.
    """

    name = "reference"

    def run(
        self,
        network: Network,
        programs: Dict[int, NodeProgram],
        contexts: Dict[int, Context],
        max_rounds: int,
    ) -> SimulationResult:
        budget = network.bit_budget
        total_messages = 0
        total_bits = 0
        max_bits = 0
        messages_per_round: list[int] = []
        bits_per_round: list[int] = []

        for v, program in programs.items():
            ctx = contexts[v]
            ctx.round_number = 0
            program.setup(ctx)

        rounds = 0
        while rounds < max_rounds:
            # Collect and validate this round's traffic.
            in_transit: Dict[int, Dict[int, Message]] = {}
            round_messages = 0
            round_bits = 0
            for v, ctx in contexts.items():
                for to, msg in ctx._drain_outbox().items():
                    if budget is not None and msg.bits > budget:
                        raise MessageTooLargeError(v, to, msg.bits, budget)
                    in_transit.setdefault(to, {})[v] = msg
                    round_messages += 1
                    round_bits += msg.bits
                    if msg.bits > max_bits:
                        max_bits = msg.bits
            total_bits += round_bits

            live = [v for v, ctx in contexts.items() if not ctx._halted]
            if not live:
                # Everyone has halted: any in-flight messages are addressed
                # to halted nodes and are dropped; nothing can change any
                # more, and the aborted round is not counted.
                break

            rounds += 1
            total_messages += round_messages
            messages_per_round.append(round_messages)
            bits_per_round.append(round_bits)

            for v in live:
                ctx = contexts[v]
                ctx.round_number = rounds
                inbox = in_transit.get(v, {})
                programs[v].receive(ctx, inbox)

            if all(ctx._halted for ctx in contexts.values()):
                break
        else:
            raise SimulationLimitError(
                f"simulation did not terminate within {max_rounds} rounds"
            )

        return SimulationResult(
            rounds=rounds,
            total_messages=total_messages,
            total_bits=total_bits,
            max_message_bits=max_bits,
            outputs={v: dict(ctx._outputs) for v, ctx in contexts.items()},
            all_halted=all(ctx._halted for ctx in contexts.values()),
            messages_per_round=messages_per_round,
            bits_per_round=bits_per_round,
        )
