"""Baselines: greedy, exact branch-and-bound, randomized LP rounding."""

import itertools

import networkx as nx
import pytest

from repro.analysis.bounds import greedy_bound
from repro.analysis.verify import is_connected_dominating_set, is_dominating_set
from repro.baselines.exact import exact_cds, exact_mds
from repro.baselines.greedy import greedy_mds, greedy_set_cover_order
from repro.baselines.randomized_lp import randomized_lp_rounding_mds
from repro.errors import GraphError
from repro.fractional.lp import lp_fractional_mds
from repro.graphs.generators import (
    caterpillar_graph,
    clique_graph,
    gnp_graph,
    ring_graph,
    star_graph,
)
from repro.graphs.normalize import normalize_graph


def brute_force_mds_size(graph):
    nodes = sorted(graph.nodes())
    for size in range(0, len(nodes) + 1):
        for cand in itertools.combinations(nodes, size):
            if is_dominating_set(graph, cand):
                return size
    return len(nodes)


class TestGreedy:
    def test_valid_on_zoo(self, zoo_graph):
        assert is_dominating_set(zoo_graph, greedy_mds(zoo_graph))

    def test_star_picks_center(self):
        g = star_graph(8)
        assert len(greedy_mds(g)) == 1

    def test_ratio_within_harmonic_bound(self, small_gnp):
        lp = lp_fractional_mds(small_gnp)
        greedy = greedy_mds(small_gnp)
        delta = max(d for _, d in small_gnp.degree())
        assert len(greedy) <= greedy_bound(delta) * lp.optimum + 1e-9

    def test_matches_slow_reference(self):
        """The lazy-heap greedy must pick the same-size cover as the naive
        quadratic greedy (identical tie-breaks)."""
        for seed in range(4):
            g = gnp_graph(20, 0.2, seed=seed)
            fast = greedy_mds(g)
            slow_order = greedy_set_cover_order(g)
            assert len(fast) == len(slow_order)

    def test_deterministic(self, medium_gnp):
        assert greedy_mds(medium_gnp) == greedy_mds(medium_gnp)

    def test_empty_graph(self):
        assert greedy_mds(nx.Graph()) == set()


class TestExactMDS:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_brute_force(self, seed):
        g = gnp_graph(11, 0.25, seed=seed)
        assert len(exact_mds(g)) == brute_force_mds_size(g)

    def test_known_optima(self):
        assert len(exact_mds(star_graph(7))) == 1
        assert len(exact_mds(clique_graph(6))) == 1
        assert len(exact_mds(ring_graph(9))) == 3  # ceil(9/3)
        cat = caterpillar_graph(4, 2)
        assert len(exact_mds(cat)) == 4  # the spine

    def test_never_beaten_by_greedy(self, zoo_graph):
        if zoo_graph.number_of_nodes() <= 26:
            assert len(exact_mds(zoo_graph)) <= len(greedy_mds(zoo_graph))

    def test_node_limit(self):
        with pytest.raises(GraphError):
            exact_mds(gnp_graph(80, 0.05, seed=1))

    def test_valid_output(self, small_gnp):
        assert is_dominating_set(small_gnp, exact_mds(small_gnp))


class TestExactCDS:
    def test_path_cds_is_interior(self):
        g = normalize_graph(nx.path_graph(5))
        cds = exact_cds(g)
        assert cds == {1, 2, 3}

    def test_star(self):
        assert len(exact_cds(star_graph(5))) == 1

    def test_cycle(self):
        g = ring_graph(6)
        cds = exact_cds(g)
        assert is_connected_dominating_set(g, cds)
        assert len(cds) == 4  # n - 2 for a cycle

    def test_disconnected_returns_none(self):
        g = normalize_graph(nx.Graph([(0, 1), (2, 3)]))
        assert exact_cds(g) is None

    def test_at_least_mds(self):
        g = gnp_graph(12, 0.25, seed=3)
        cds = exact_cds(g)
        assert len(cds) >= len(exact_mds(g))

    def test_node_limit(self):
        with pytest.raises(GraphError):
            exact_cds(gnp_graph(40, 0.1, seed=1))

    def test_singleton(self):
        g = nx.Graph()
        g.add_node(0)
        assert exact_cds(normalize_graph(g)) == {0}


class TestRandomizedLP:
    def test_valid_dominating_set(self, medium_gnp):
        for seed in range(3):
            ds = randomized_lp_rounding_mds(medium_gnp, seed=seed)
            assert is_dominating_set(medium_gnp, ds)

    def test_seeded_reproducible(self, small_gnp):
        assert randomized_lp_rounding_mds(small_gnp, seed=5) == \
            randomized_lp_rounding_mds(small_gnp, seed=5)

    def test_quality_shape(self, medium_gnp):
        """Median randomized size within the ln(D~)+alteration budget."""
        import math
        import statistics

        lp = lp_fractional_mds(medium_gnp)
        delta_tilde = max(d for _, d in medium_gnp.degree()) + 1
        sizes = [
            len(randomized_lp_rounding_mds(medium_gnp, seed=s)) for s in range(7)
        ]
        budget = math.log(delta_tilde) * lp.optimum + \
            medium_gnp.number_of_nodes() / delta_tilde
        assert statistics.median(sizes) <= 2.0 * budget + 2

    def test_empty_graph(self):
        assert randomized_lp_rounding_mds(nx.Graph()) == set()
