"""Batch experiment runner: (graph × program × engine × seed) grids.

The simulator executes one cell at a time; scaling to many scenarios is the
runner's job.  A *cell* pins everything needed to reproduce one simulated
execution — graph family, size, seed, node program, engine — so a grid of
cells can be expanded up front, executed sequentially or across
``multiprocessing`` workers (:func:`run_grid`), streamed as results arrive
(``run_grid(..., stream=True)`` / :func:`iter_grid_records`), and
aggregated into one JSON document (:func:`results_payload` /
:func:`write_results`).

Programs are resolved through the declarative registry
(:mod:`repro.api.registry`): a cell's ``program`` axis names a
:class:`~repro.api.registry.ProgramSpec`, which carries the driver, the
metrics summary and the batched-execution recipe.  All registered
programs — including ``lemma310``, ``rounding-exec``, ``tree-sum`` and the
``cds`` composite — are grid-drivable; nothing is hard-coded here.

Design points:

* **Determinism.** Cells carry their own seed; a grid run with ``jobs=1``
  is bit-for-bit reproducible, and worker parallelism cannot reorder the
  output (results are returned in cell order regardless of completion
  order; only the explicit streaming path exposes completion order).
* **Structured failures.** A cell that raises — bad family, simulation
  limit, oversized message — produces an ``ok=False`` record with the
  exception type and message instead of tearing down the whole grid;
  malformed grid *axes* (unknown program, engine or strategy names) raise
  structured :class:`~repro.errors.UnknownProgramError` /
  :class:`~repro.errors.UnknownEngineError` /
  :class:`~repro.errors.UnknownStrategyError` at expansion/dispatch time.
* **Generate once, share everywhere.** All cells of one (family, n, seed)
  work item run on the same topology.  Sequentially the Network object is
  reused directly; across process workers the parent generates each graph
  once and ships its CSR arrays through ``multiprocessing.shared_memory``
  (:mod:`repro.experiments.sharedmem`), so workers skip graph generation
  entirely and nothing big travels through the pool queue.
* **Batched sweeps, ragged or uniform.** ``strategy="batch"`` groups
  vector-engine cells by (family, program) — sizes *and* seeds stack —
  and executes each group as **one** ragged stacked message plane
  (:func:`repro.congest.engine.batched.iter_stacked`) instead of K
  per-node program instantiations.  Split results are bit-for-bit
  identical to per-cell runs — groups that cannot stack (ineligible
  program, any error) transparently fall back to the per-cell path, so
  the strategy only ever changes wall-clock, never records.
* **Streaming, per record — in-process and across the pool.** Execution
  is organized as *dispatch units* (one cell, or one stacked batch
  group), and the streaming iterators yield record by record in
  completion order.  A stacked group streams *per instance*: the moment
  an instance's termination mask flips, its record surfaces — under
  ``jobs > 1`` the worker pushes each ``(index, record)`` through the
  pool's result channel immediately (a sentinel protocol over per-worker
  pipes, see :func:`_iter_units_pool`), so early finishers of one group
  interleave with records of concurrently-running groups instead of
  crossing the process boundary together at group end.  A worker that
  dies mid-unit is detected through the same protocol (channel EOF, or
  a stall timeout) and its not-yet-yielded cells are transparently
  re-dispatched per cell in-process, annotated with the structured
  :class:`~repro.errors.WorkerLostError` description.
* **Adaptive batch scheduling.** With a ``target_cost`` (an integer, or
  ``"auto"`` to negotiate from the grid and ``jobs``), the fixed
  ``batch_size`` chunking of ``strategy="batch"`` is replaced by the
  cost-model planner (:mod:`repro.experiments.scheduler`): groups split
  at a per-plane cost target derived from plane width, round limits and
  ``MessageSpec`` bit volume, with a tail-steal pass for idle workers;
  ``batch_size`` stays honored as a hard width cap.  Every scheduler
  decision is recorded on the produced records (``plan`` block).
* **Parent-side certification.** With ``certify`` set (an oracle mode,
  see :mod:`repro.oracle`), every success record of a spec that declares
  a ``quality_metric`` gains a ``quality`` block: the certification
  ladder bounds the cell's optimum and the measured approximation ratios
  are stamped on the record, gated against the spec's documented
  ``quality_bound``.  Certification runs in the **parent** as records
  arrive — never in workers — so all cells share one oracle cache
  (repeat topologies certify for free) and records re-dispatched after a
  lost worker are certified exactly like first-try records.

The typed record objects live in :mod:`repro.api.records`; the functions
here keep returning the legacy dict shape for compatibility (it is also
the JSON artifact format).  :func:`expand_grid` and :func:`run_cell` are
deprecation shims for the :class:`repro.api.Experiment` builder surface.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.api.records import RunRecord, as_record_dicts
from repro.api.registry import (
    available_programs,
    batchable_programs,
    program_spec,
)
from repro.congest.engine import available_engines
from repro.congest.network import Network
from repro.errors import (
    UnknownEngineError,
    UnknownStrategyError,
    WorkerLostError,
)
from repro.experiments.scheduler import (
    PlanUnit,
    adaptive_plan,
    resolve_target_cost,
)
from repro.graphs.suite import suite_instance

__all__ = [
    "GridCell",
    "available_programs",
    "available_strategies",
    "batchable_programs",
    "expand_grid",
    "iter_grid_records",
    "run_cell",
    "run_batched_group",
    "run_grid",
    "run_grid_records",
    "summarize_results",
    "results_payload",
    "write_results",
]


@dataclass(frozen=True)
class GridCell:
    """One fully-specified simulated execution."""

    family: str
    n: int
    program: str
    engine: str
    seed: int = 7

    @property
    def key(self) -> str:
        return f"{self.family}-{self.n}/{self.program}/{self.engine}/s{self.seed}"

    @property
    def topology_key(self) -> Tuple[str, int, int]:
        """Cells sharing this key run on the identical generated graph."""
        return (self.family, self.n, self.seed)

    @property
    def group_key(self) -> Tuple[str, str, str]:
        """Cells sharing this key differ only by (n, seed) — one batch group.

        Since the ragged stacked plane, groups span *sizes* as well as
        seeds: mixed-size sweeps of one (family, program, engine) stack
        into a single plane with per-instance offset tables.
        """
        return (self.family, self.program, self.engine)


#: Execution strategies :func:`run_grid` accepts.
STRATEGIES = ("cell", "batch")


def available_strategies() -> List[str]:
    """Names of the grid execution strategies."""
    return list(STRATEGIES)


def _expand_cells(
    families: Sequence[str],
    sizes: Sequence[int],
    programs: Sequence[str] | None = None,
    engines: Sequence[str] | None = None,
    seed: int = 7,
    seeds: Sequence[int] | None = None,
) -> List[GridCell]:
    """Cartesian expansion of the grid axes into concrete cells.

    ``seeds`` sweeps multiple topologies per (family, size) — the axis the
    ``batch`` strategy stacks; it defaults to the single ``seed``.  The
    ``programs`` axis defaults to every registered simulation program
    (composites such as ``cds`` must be requested by name).  Unknown
    program or engine names fail fast with a structured error — one bad
    axis value would otherwise poison every cell it touches.
    """
    programs = list(programs) if programs is not None else available_programs()
    engines = list(engines) if engines is not None else available_engines()
    seed_list = list(seeds) if seeds is not None else [seed]
    for program in programs:
        program_spec(program)  # raises UnknownProgramError on a bad name
    registered = set(available_engines())
    for engine in engines:
        if engine not in registered:
            raise UnknownEngineError(engine, available_engines())
    return [
        GridCell(family=f, n=n, program=p, engine=e, seed=s)
        for f in families
        for n in sizes
        for p in programs
        for e in engines
        for s in seed_list
    ]


def expand_grid(
    families: Sequence[str],
    sizes: Sequence[int],
    programs: Sequence[str] | None = None,
    engines: Sequence[str] | None = None,
    seed: int = 7,
    seeds: Sequence[int] | None = None,
) -> List[GridCell]:
    """Deprecated: build grids with :class:`repro.api.Experiment` instead.

    Identical behaviour to the builder's ``.cells()`` — kept as a shim so
    existing callers and artifacts stay valid (removal planned for 2.0).
    """
    warnings.warn(
        "expand_grid() is deprecated; use repro.api.Experiment(...).cells()",
        DeprecationWarning,
        stacklevel=2,
    )
    return _expand_cells(
        families, sizes, programs=programs, engines=engines, seed=seed, seeds=seeds
    )


def build_network(cell: GridCell) -> Network:
    """Generate the cell's graph and compile it into a CONGEST network."""
    inst = suite_instance(cell.family, cell.n, seed=cell.seed)
    return Network.congest(inst.graph)


def _run_cell_record(
    cell: GridCell, network: Optional[Network] = None
) -> RunRecord:
    """Execute one cell; never raises — failures become structured records.

    ``network`` short-circuits graph generation when the caller already
    holds the cell's topology (sequential reuse or a shared-memory
    reconstruction); the timed section covers simulation only either way.
    """
    try:
        spec = program_spec(cell.program)
        if network is None:
            network = build_network(cell)
        start = time.perf_counter()
        outcome = spec.run(network, cell.engine)
        wall = time.perf_counter() - start
    except Exception as exc:  # noqa: BLE001 - the grid must survive any cell
        return RunRecord(
            cell=cell,
            ok=False,
            error={"type": type(exc).__name__, "message": str(exc)},
        )
    return RunRecord(
        cell=cell,
        ok=True,
        wall_s=wall,
        metrics=spec.cell_metrics(network, outcome),
    )


def run_cell(
    cell: GridCell, network: Optional[Network] = None
) -> Dict[str, object]:
    """Deprecated: run cells through :class:`repro.api.Experiment`.

    Kept as a shim returning the legacy dict record (removal planned for
    2.0); the typed equivalent is a :class:`~repro.api.records.RunRecord`.
    """
    warnings.warn(
        "run_cell() is deprecated; use repro.api.Experiment "
        "(records expose .to_dict() for the legacy shape)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _run_cell_record(cell, network=network).to_dict()


def _attach_plan(
    record: RunRecord,
    meta: Optional[Dict[str, object]],
    wall_s: float,
) -> RunRecord:
    """Stamp a scheduler decision (plus measured wall) onto one record.

    No-op when the fixed planner produced the unit (``meta is None``) —
    legacy records keep their exact shape.
    """
    if meta is not None:
        record.plan = dict(meta, actual_wall_s=round(wall_s, 6))
    return record


def _iter_batched_group_records(
    cells: Sequence[GridCell],
    networks: Optional[Sequence[Optional[Network]]] = None,
    plan_meta: Optional[Dict[str, object]] = None,
) -> Iterator[Tuple[int, RunRecord]]:
    """Execute one batch group (same family/program/engine; any mix of
    sizes and seeds) as a single ragged stacked run, yielding
    ``(index_in_group, record)`` **the moment each instance terminates**.

    This is the in-group streaming path: a small instance that halts
    early surfaces its record while its larger siblings are still
    running, so stacked groups interleave with cell records in completion
    order.  Success records carry identical ``metrics`` blocks to the
    per-cell path (the stacked-plane parity guarantee) plus a ``batch``
    annotation recording the stack width and the record's stream latency
    (seconds from group dispatch to instance termination).  ``wall_s`` is
    the record's *marginal* simulation wall — time since the previous
    record of the group — so per-group and per-engine wall totals still
    sum to the group's shared simulation wall.

    Any error falls back to per-cell execution for the instances not yet
    yielded (already-yielded records are exact solo-parity results and
    stay valid); the per-cell runs reproduce each solo outcome, including
    structured per-cell failures.
    """
    from repro.congest.engine import iter_stacked

    cells = list(cells)
    nets: List[Optional[Network]] = (
        list(networks) if networks is not None else [None] * len(cells)
    )
    done = set()
    try:
        for i, cell in enumerate(cells):
            if nets[i] is None:
                nets[i] = build_network(cell)
        spec = program_spec(cells[0].program)
        inputs = (
            [spec.batch_inputs(net) for net in nets]
            if spec.batch_inputs is not None
            else None
        )
        start = prev = time.perf_counter()
        for k, sim in iter_stacked(
            nets,
            spec.batch_factory,
            inputs=inputs,
            # Per-instance round limits: a ragged group's limits are
            # size-derived, and an instance exceeding its *own* limit must
            # fall back to the per-cell path (where it reproduces its solo
            # SimulationLimitError) instead of borrowing a sibling's slack.
            max_rounds=[spec.batch_max_rounds(net) for net in nets],
        ):
            now = time.perf_counter()
            record = RunRecord(
                cell=cells[k],
                ok=True,
                wall_s=now - prev,
                batch={"k": len(cells), "stream_latency_s": now - start},
                metrics=spec.cell_metrics(nets[k], sim),
            )
            _attach_plan(record, plan_meta, now - start)
            done.add(k)
            yield k, record
            # Restart the marginal-wall clock only after the consumer hands
            # control back: time the consumer spends processing the yielded
            # record must not count as simulation wall.
            prev = time.perf_counter()
    except Exception:  # noqa: BLE001 - stacking is an optimization only
        for i, (cell, net) in enumerate(zip(cells, nets)):
            if i not in done:
                start = time.perf_counter()
                record = _run_cell_record(cell, network=net)
                yield i, _attach_plan(
                    record, plan_meta, time.perf_counter() - start
                )


def _run_batched_group_records(
    cells: Sequence[GridCell],
    networks: Optional[Sequence[Optional[Network]]] = None,
) -> List[RunRecord]:
    """Collected (cell-order) form of :func:`_iter_batched_group_records`."""
    records: List[Optional[RunRecord]] = [None] * len(cells)
    for i, record in _iter_batched_group_records(cells, networks=networks):
        records[i] = record
    return records  # type: ignore[return-value]


def run_batched_group(
    cells: Sequence[GridCell],
    networks: Optional[Sequence[Optional[Network]]] = None,
) -> List[Dict[str, object]]:
    """Legacy dict-record wrapper around the stacked group executor."""
    return [
        rec.to_dict() for rec in _run_batched_group_records(cells, networks=networks)
    ]


def _batch_plan(cells: Sequence[GridCell], batch_size: int) -> List[PlanUnit]:
    """Fixed-chunking dispatch plan for ``strategy="batch"``.

    Returns ``("batch", indices, None)`` units for stackable groups —
    vector engine, registry-batchable program, ≥ 2 cells sharing a
    :attr:`GridCell.group_key` (which spans sizes *and* seeds: mixed-size
    groups stack as one ragged plane), chunked to ``batch_size`` (0 =
    unlimited) — and ``("cell", [index], None)`` units for everything
    else.  Units are emitted in first-occurrence order; record order is
    restored by index afterwards, so the strategy cannot reorder results.
    The ``None`` meta marks the fixed planner: no ``plan`` block is
    attached to the records, keeping the legacy record shape.
    """
    stackable = set(batchable_programs())
    groups: Dict[tuple, List[int]] = {}
    order: List[tuple] = []
    for i, cell in enumerate(cells):
        batchable = cell.engine == "vector" and cell.program in stackable
        key = ("group",) + cell.group_key if batchable else ("solo", i)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(i)
    plan: List[PlanUnit] = []
    for key in order:
        indices = groups[key]
        if key[0] == "solo" or len(indices) < 2:
            plan.extend(("cell", [i], None) for i in indices)
            continue
        step = batch_size if batch_size > 0 else len(indices)
        for lo in range(0, len(indices), step):
            chunk = indices[lo : lo + step]
            if len(chunk) < 2:
                plan.append(("cell", chunk, None))
            else:
                plan.append(("batch", chunk, None))
    return plan


def _plan_units(
    cells: Sequence[GridCell],
    strategy: str,
    batch_size: int,
    target_cost: int | str = 0,
    jobs: int = 1,
) -> List[PlanUnit]:
    """The dispatch units of one grid run under ``strategy``.

    ``target_cost`` selects the planner for ``strategy="batch"``: ``0``
    keeps the fixed ``batch_size`` chunking (the default — records carry
    no ``plan`` block), a positive integer runs the adaptive cost-model
    planner at that per-plane target, and ``"auto"`` negotiates the
    target from the grid's total stackable cost and ``jobs`` (resolving
    to the fixed planner when there is nothing to parallelize).
    """
    if strategy != "batch":
        return [("cell", [i], None) for i in range(len(cells))]
    resolved = (
        resolve_target_cost(cells, jobs) if target_cost == "auto" else int(target_cost)
    )
    if resolved <= 0:
        return _batch_plan(cells, batch_size)
    return adaptive_plan(cells, resolved, batch_size=batch_size, jobs=jobs)


# -- dispatch-unit execution ---------------------------------------------------

#: Parent-side drain poll interval (seconds).  Only bounds how often the
#: stall clock is checked — record delivery itself is event-driven.
_POOL_POLL_S = 0.25


def _test_crash_hook(unit: int, sent: int) -> None:
    """Deterministic worker-crash injection for the pool-loss tests.

    ``REPRO_POOLSTREAM_KILL="<unit>:<after>"`` hard-kills the worker
    (``os._exit``, no cleanup, no exception — exactly what a segfault or
    OOM kill looks like to the parent) right after it has streamed
    ``after`` records of dispatch unit ``unit``.  Unset in production.
    """
    spec = os.environ.get("REPRO_POOLSTREAM_KILL")
    if not spec:
        return
    try:
        kill_unit, after = (int(part) for part in spec.split(":"))
    except ValueError:
        return
    if unit == kill_unit and sent >= after:
        os._exit(1)


def _run_unit_streaming(
    kind: str,
    payload,
    handle,
    meta: Optional[Dict[str, object]],
) -> Iterator[Tuple[int, RunRecord]]:
    """Execute one dispatch unit, yielding ``(local_index, record)``.

    Worker-side unit body: attach the published shared-memory topology
    (regenerate on attach failure), then run — per cell, or through the
    in-group streaming generator so each stacked instance surfaces at its
    termination-mask flip.
    """
    if kind == "cell":
        network = None
        if handle is not None:
            from repro.experiments.sharedmem import attach_network

            try:
                network = attach_network(handle)
            except Exception:  # pragma: no cover - attach races are host-specific
                network = None  # fall back to regenerating in the worker
        start = time.perf_counter()
        record = _run_cell_record(payload, network=network)
        yield 0, _attach_plan(record, meta, time.perf_counter() - start)
        return
    networks: Optional[List[Optional[Network]]] = None
    if handle is not None:
        from repro.experiments.sharedmem import attach_stacked

        try:
            networks = list(attach_stacked(handle))
        except Exception:  # pragma: no cover - attach races are host-specific
            networks = None
    yield from _iter_batched_group_records(
        payload, networks=networks, plan_meta=meta
    )


def _pool_stream_worker(task_queue, conn) -> None:
    """Worker loop: pull dispatch units, push every record immediately.

    The per-record sentinel protocol over the worker's private pipe:

    * ``("unit_start", unit, None)`` — the worker claimed unit ``unit``;
      from here until ``unit_done`` the parent attributes a death of this
      worker to that unit.
    * ``("record", unit, (local, record))`` — one cell's record, sent the
      moment it exists (for stacked groups: at the instance's
      termination-mask flip), never buffered until group end.
    * ``("unit_done", unit, None)`` — the unit's generator is exhausted.
    * ``("worker_done", None, None)`` — clean shutdown (queue drained).

    ``Pipe`` sends are synchronous writes from this process only, so a
    crash cannot interleave with (or corrupt) another worker's stream —
    the reason each worker gets a private channel rather than one shared
    result queue with feeder threads.
    """
    try:
        while True:
            task = task_queue.get()
            if task is None:
                break
            unit, kind, payload, handle, meta = task
            conn.send(("unit_start", unit, None))
            sent = 0
            for local, record in _run_unit_streaming(kind, payload, handle, meta):
                conn.send(("record", unit, (local, record)))
                sent += 1
                _test_crash_hook(unit, sent)
            conn.send(("unit_done", unit, None))
        conn.send(("worker_done", None, None))
    finally:
        conn.close()


def _iter_units_sequential(
    cells: List[GridCell], plan: List[PlanUnit]
) -> Iterator[Tuple[int, RunRecord]]:
    """In-process execution, one record at a time, topologies cached by key.

    Batch groups stream *per instance*: each stacked record is yielded at
    its instance's termination (not when the whole group finishes), so a
    group's early finishers interleave ahead of its stragglers.
    """
    networks: Dict[tuple, Optional[Network]] = {}

    def net_for(cell: GridCell) -> Optional[Network]:
        key = cell.topology_key
        if key not in networks:
            try:
                networks[key] = build_network(cell)
            except Exception:  # noqa: BLE001 - recorded per cell later
                networks[key] = None
        return networks[key]

    for kind, indices, meta in plan:
        if kind == "cell":
            cell = cells[indices[0]]
            start = time.perf_counter()
            record = _run_cell_record(cell, network=net_for(cell))
            yield indices[0], _attach_plan(
                record, meta, time.perf_counter() - start
            )
        else:
            group = [cells[i] for i in indices]
            for local, record in _iter_batched_group_records(
                group, networks=[net_for(c) for c in group], plan_meta=meta
            ):
                yield indices[local], record


def _iter_units_pool(
    cells: List[GridCell],
    plan: List[PlanUnit],
    jobs: int,
) -> Iterator[Tuple[int, RunRecord]]:
    """Worker-pool execution: publish topologies once, stream *per record*.

    Workers pull dispatch units from a shared task queue and push each
    ``(local, record)`` through their private result pipe the moment the
    record exists (see :func:`_pool_stream_worker`), so in-group streaming
    crosses the process boundary: an early-terminating instance of one
    stacked group surfaces here while its siblings — and other groups on
    other workers — are still running.  The parent drains all pipes with
    ``multiprocessing.connection.wait`` and yields records as they
    arrive, interleaved across concurrent units in true completion order.

    **Worker loss.** A pipe hitting EOF (or, with
    ``REPRO_POOLSTREAM_STALL_S`` set, a global stall) means its worker
    died mid-unit.  The parent re-dispatches exactly the cells of that
    unit that have not been yielded yet — per cell, in-process — so the
    record set survives any crash (at-least-once delivery with parent-side
    dedupe); the replacement records carry a ``plan.fallback`` block
    describing the :class:`~repro.errors.WorkerLostError`.  Units the dead
    worker never claimed are still in the queue and migrate to surviving
    workers; if every worker dies, the parent finishes the grid itself.
    """
    import multiprocessing
    from multiprocessing.connection import wait as connection_wait

    from repro.experiments.sharedmem import SharedStackedTopology, SharedTopology

    ctx = multiprocessing.get_context()
    published: Dict[tuple, Optional[SharedTopology]] = {}
    stacks: List[SharedStackedTopology] = []
    procs: Dict[object, object] = {}
    readers: List[object] = []
    task_queue = None
    try:
        tasks = []
        for unit, (kind, indices, meta) in enumerate(plan):
            if kind == "cell":
                cell = cells[indices[0]]
                key = cell.topology_key
                if key not in published:
                    try:
                        published[key] = SharedTopology.publish(build_network(cell))
                    except Exception:  # noqa: BLE001 - cell records the failure
                        published[key] = None
                topology = published[key]
                tasks.append(
                    (unit, "cell", cell, topology.handle if topology else None, meta)
                )
            else:
                group = [cells[i] for i in indices]
                handle = None
                try:
                    stack = SharedStackedTopology.publish(
                        [build_network(c) for c in group]
                    )
                    stacks.append(stack)
                    handle = stack.handle
                except Exception:  # noqa: BLE001 - workers regenerate
                    handle = None
                tasks.append((unit, "batch", group, handle, meta))

        workers = min(jobs, len(tasks))
        task_queue = ctx.Queue()
        for task in tasks:
            task_queue.put(task)
        for _ in range(workers):
            task_queue.put(None)  # one shutdown sentinel per worker
        for _ in range(workers):
            recv_conn, send_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_pool_stream_worker,
                args=(task_queue, send_conn),
                daemon=True,
            )
            proc.start()
            send_conn.close()  # parent keeps only the read end
            readers.append(recv_conn)
            procs[recv_conn] = proc

        # Cells of each unit not yet yielded (by local index).  Records are
        # deduped against this on arrival, making redelivery after a crash
        # re-dispatch safe: at-least-once from workers, exactly-once out.
        pending: Dict[int, set] = {
            unit: set(range(len(plan[unit][1]))) for unit in range(len(plan))
        }
        claimed: Dict[object, set] = {}  # reader -> units started, not done
        stall_s = float(os.environ.get("REPRO_POOLSTREAM_STALL_S", "0") or 0)
        last_progress = time.monotonic()

        def redispatch(
            unit: int, pid: Optional[int], exitcode: Optional[int]
        ) -> Iterator[Tuple[int, RunRecord]]:
            """Finish a lost unit's unfinished cells in-process, per cell."""
            kind, indices, meta = plan[unit]
            fallback = {
                "type": WorkerLostError.__name__,
                "message": str(WorkerLostError(unit, pid, exitcode)),
            }
            for local in sorted(pending[unit]):
                start = time.perf_counter()
                record = _run_cell_record(cells[indices[local]])
                record.plan = dict(
                    meta or {},
                    fallback=dict(fallback),
                    actual_wall_s=round(time.perf_counter() - start, 6),
                )
                yield indices[local], record
            pending[unit].clear()

        def worker_lost(reader) -> Iterator[Tuple[int, RunRecord]]:
            """Handle a dead worker: reap it, re-dispatch its open units."""
            proc = procs.pop(reader)
            readers.remove(reader)
            try:
                reader.close()
            except OSError:  # pragma: no cover - already closed by the OS
                pass
            proc.join(timeout=5)
            for unit in sorted(claimed.pop(reader, set())):
                if pending[unit]:
                    yield from redispatch(unit, proc.pid, proc.exitcode)

        while readers and any(pending.values()):
            ready = connection_wait(readers, timeout=_POOL_POLL_S)
            if not ready:
                if stall_s and time.monotonic() - last_progress > stall_s:
                    # Global stall: treat every live worker as lost.
                    for reader in list(readers):
                        procs[reader].terminate()
                        yield from worker_lost(reader)
                continue
            for reader in ready:
                try:
                    tag, unit, body = reader.recv()
                except EOFError:
                    yield from worker_lost(reader)
                    continue
                last_progress = time.monotonic()
                if tag == "unit_start":
                    claimed.setdefault(reader, set()).add(unit)
                elif tag == "record":
                    local, record = body
                    if local in pending[unit]:
                        pending[unit].discard(local)
                        yield plan[unit][1][local], record
                elif tag == "unit_done":
                    claimed.get(reader, set()).discard(unit)
                    if pending[unit]:  # defensive: done without all records
                        yield from redispatch(unit, procs[reader].pid, None)
                elif tag == "worker_done":
                    proc = procs.pop(reader)
                    readers.remove(reader)
                    reader.close()
                    proc.join(timeout=5)
        # Every worker is gone but cells remain (mass crash): the parent
        # finishes the grid itself so the record set is complete anyway.
        for unit in range(len(plan)):
            if pending[unit]:
                yield from redispatch(unit, None, None)
    finally:
        for proc in list(procs.values()):
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=5)
        for reader in list(readers):
            try:
                reader.close()
            except OSError:  # pragma: no cover
                pass
        if task_queue is not None:
            task_queue.close()
            task_queue.cancel_join_thread()
        for topology in published.values():
            if topology is not None:
                topology.unlink()
        for stack in stacks:
            stack.unlink()


def _iter_units(
    cells: List[GridCell],
    jobs: int,
    strategy: str,
    batch_size: int,
    target_cost: int | str = 0,
) -> Iterator[Tuple[int, RunRecord]]:
    """Yield ``(cell_index, record)`` per record, in completion order."""
    if strategy not in STRATEGIES:
        raise UnknownStrategyError(strategy, available_strategies())
    plan = _plan_units(
        cells, strategy, batch_size, target_cost=target_cost, jobs=jobs
    )
    if jobs <= 1 or len(plan) <= 1:
        yield from _iter_units_sequential(cells, plan)
    else:
        yield from _iter_units_pool(cells, plan, jobs)


# -- parent-side certification -------------------------------------------------


def _certify_record(record: RunRecord, oracle: str) -> RunRecord:
    """Attach the oracle's ``quality`` block to one success record.

    Runs in the parent so every cell of the grid shares one in-process
    oracle cache (cells revisiting a topology at the same solution size —
    another engine, another strategy, a post-crash re-dispatch — reuse
    the certificate instead of re-solving) and so pool workers never
    carry solver state.  Only specs that declare a ``quality_metric``
    whose value is present in the record's metrics are certified; other
    records pass through untouched.  An oracle failure degrades to a
    ``status="failed"`` quality block — certification must never turn a
    measured success record into a grid failure.
    """
    from repro.errors import ReproError
    from repro.oracle import certify, oracle_cache, topology_cache_key

    if not record.ok or record.metrics is None:
        return record
    spec = program_spec(record.cell.program)
    if spec.quality_metric is None or spec.quality_metric not in record.metrics:
        return record
    size = int(record.metrics[spec.quality_metric])  # type: ignore[arg-type]
    cache = oracle_cache()
    hits_before = cache.hits
    try:
        graph = suite_instance(
            record.cell.family, record.cell.n, seed=record.cell.seed
        ).graph
        certificate = certify(
            graph,
            size,
            oracle=oracle,
            cache_key=topology_cache_key(
                record.cell.family, record.cell.n, record.cell.seed
            ),
        )
    except ReproError as exc:
        record.quality = {
            "oracle": oracle,
            "status": "failed",
            "error": {"type": type(exc).__name__, "message": str(exc)},
        }
        return record
    quality: Dict[str, object] = {
        "oracle": oracle,
        "method": certificate.method,
        "status": certificate.status,
        "opt": certificate.opt,
        "lp_bound": round(certificate.lp_bound, 6),
        "ratio_vs_opt": (
            round(certificate.ratio_vs_opt, 6)
            if certificate.ratio_vs_opt is not None
            else None
        ),
        "ratio_vs_lp": round(certificate.ratio_vs_lp, 6),
        "solve_wall_s": round(certificate.solve_wall_s, 6),
        "cache_hit": cache.hits > hits_before,
    }
    if spec.quality_bound is not None:
        max_degree = record.metrics.get("max_degree")
        if max_degree is None:
            max_degree = max((d for _, d in graph.degree()), default=0)
        bound = float(spec.quality_bound(int(max_degree)))  # type: ignore[arg-type]
        # Gate on the proven-optimum ratio when a ladder rung closed the
        # instance; otherwise the LP ratio stands in (conservative: it is
        # never smaller than the true ratio, so within-via-LP is a proof).
        ratio = (
            certificate.ratio_vs_opt
            if certificate.ratio_vs_opt is not None
            else certificate.ratio_vs_lp
        )
        quality["bound"] = round(bound, 6)
        quality["within_bound"] = bool(ratio <= bound + 1e-9)
    record.quality = quality
    return record


def _iter_certified(
    pairs: Iterator[Tuple[int, RunRecord]], certify: Optional[str]
) -> Iterator[Tuple[int, RunRecord]]:
    """Certify records as they stream by (no-op without an oracle mode)."""
    if certify is None:
        yield from pairs
        return
    from repro.oracle import ORACLE_MODES

    if certify not in ORACLE_MODES:
        raise ValueError(
            f"unknown certify mode {certify!r}; choose from "
            f"{', '.join(ORACLE_MODES)}"
        )
    for index, record in pairs:
        yield index, _certify_record(record, certify)


def iter_grid_records(
    cells: Iterable[GridCell],
    jobs: int = 1,
    strategy: str = "cell",
    batch_size: int = 0,
    target_cost: int | str = 0,
    certify: Optional[str] = None,
) -> Iterator[RunRecord]:
    """Stream typed records in *completion* order, record by record.

    ``certify`` (an oracle mode: ``"auto"``, ``"exact"``, ``"ilp"`` or
    ``"lp"``) attaches the certification oracle's ``quality`` block to
    each eligible success record as it streams by — computed parent-side
    against the shared oracle cache (see :func:`_certify_record`).

    Stacked batch groups stream per instance: when an instance's
    termination mask flips inside a ragged group, its record is yielded
    immediately — in-process *and* across pool workers, where each record
    is pushed through the worker's result channel the moment it exists,
    so records of concurrently-running units interleave here in true
    completion order.  The record set is identical to
    :func:`run_grid_records`'s — only the order differs (and only under
    worker parallelism or batching); sort by cell position to restore the
    deterministic order.  Bad axis values raise eagerly, at the call —
    not on first iteration — so the error surfaces at the faulty call
    site even if the iterator is handed off or never consumed.
    """
    cells = list(cells)
    if strategy not in STRATEGIES:
        raise UnknownStrategyError(strategy, available_strategies())
    if certify is not None:
        from repro.oracle import ORACLE_MODES

        if certify not in ORACLE_MODES:
            raise ValueError(
                f"unknown certify mode {certify!r}; choose from "
                f"{', '.join(ORACLE_MODES)}"
            )

    def generate() -> Iterator[RunRecord]:
        pairs = _iter_units(
            cells, jobs, strategy, batch_size, target_cost=target_cost
        )
        for _index, record in _iter_certified(pairs, certify):
            yield record

    return generate()


def run_grid_records(
    cells: Iterable[GridCell],
    jobs: int = 1,
    strategy: str = "cell",
    batch_size: int = 0,
    target_cost: int | str = 0,
    certify: Optional[str] = None,
) -> List[RunRecord]:
    """Run every cell; typed records in deterministic cell order.

    ``strategy="cell"`` executes one simulation per cell;
    ``strategy="batch"`` stacks each group of vector-engine sweep cells —
    seeds and sizes alike, as one ragged multi-instance plane —
    (``batch_size`` caps the stack width; 0 means one stack per group;
    ``target_cost`` switches to the adaptive cost-model planner, see
    :func:`_plan_units`).  Results come back in cell order under every
    combination, and each unique (family, n, seed) topology is generated
    exactly once — reused in-process sequentially, published through
    shared memory to workers.
    """
    cells = list(cells)
    results: List[Optional[RunRecord]] = [None] * len(cells)
    pairs = _iter_units(
        cells, jobs, strategy, batch_size, target_cost=target_cost
    )
    for index, record in _iter_certified(pairs, certify):
        results[index] = record
    return results  # type: ignore[return-value]


def run_grid(
    cells: Iterable[GridCell],
    jobs: int = 1,
    strategy: str = "cell",
    batch_size: int = 0,
    target_cost: int | str = 0,
    certify: Optional[str] = None,
    stream: bool = False,
):
    """Run every cell, optionally across ``jobs`` worker processes.

    Returns legacy dict records (the JSON artifact shape) in cell order.
    With ``stream=True`` it instead returns an iterator that yields each
    record as it completes — per instance inside stacked batch groups,
    across pool workers too, in completion order, incremental — for
    progress rendering and pipelined consumers; the record *set* is
    identical either way.  Typed-record equivalents:
    :func:`run_grid_records` / :func:`iter_grid_records`.
    """
    if stream:
        return (
            rec.to_dict()
            for rec in iter_grid_records(
                cells,
                jobs=jobs,
                strategy=strategy,
                batch_size=batch_size,
                target_cost=target_cost,
                certify=certify,
            )
        )
    return [
        rec.to_dict()
        for rec in run_grid_records(
            cells,
            jobs=jobs,
            strategy=strategy,
            batch_size=batch_size,
            target_cost=target_cost,
            certify=certify,
        )
    ]


def summarize_results(results: Sequence[Mapping[str, object]]) -> Dict[str, object]:
    """Aggregate a grid run: totals per engine plus cross-engine speedups.

    Accepts legacy dict records or typed :class:`RunRecord` objects.  The
    ``speedup_vs_reference`` map reports, for every non-reference engine,
    total-reference-wall / total-engine-wall over the cells where *both*
    engines succeeded on the same (family, n, program, seed) work item —
    the apples-to-apples wall-clock ratio.
    """
    per_engine: Dict[str, Dict[str, float]] = {}
    walls: Dict[tuple, Dict[str, float]] = {}
    failures = []
    for rec in as_record_dicts(results):
        cell = rec["cell"]  # type: ignore[index]
        engine = cell["engine"]  # type: ignore[index]
        agg = per_engine.setdefault(
            engine, {"cells": 0, "ok": 0, "wall_s": 0.0, "rounds": 0, "messages": 0}
        )
        agg["cells"] += 1
        if rec.get("ok"):
            metrics = rec["metrics"]  # type: ignore[index]
            agg["ok"] += 1
            agg["wall_s"] += rec["wall_s"]  # type: ignore[operator]
            agg["rounds"] += metrics["rounds"]  # type: ignore[index]
            agg["messages"] += metrics["total_messages"]  # type: ignore[index]
            item = (cell["family"], cell["n"], cell["program"], cell["seed"])  # type: ignore[index]
            walls.setdefault(item, {})[engine] = rec["wall_s"]  # type: ignore[assignment]
        else:
            failures.append({"key": rec["key"], "error": rec["error"]})
    speedups: Dict[str, float] = {}
    for engine in per_engine:
        if engine == "reference":
            continue
        ref_total = eng_total = 0.0
        for by_engine in walls.values():
            if "reference" in by_engine and engine in by_engine:
                ref_total += by_engine["reference"]
                eng_total += by_engine[engine]
        if eng_total > 0:
            speedups[engine] = round(ref_total / eng_total, 3)
    return {
        "per_engine": per_engine,
        "speedup_vs_reference": speedups,
        "failures": failures,
    }


def results_payload(
    results: Sequence[Mapping[str, object]], meta: Mapping[str, object] | None = None
) -> Dict[str, object]:
    """The canonical JSON document for one grid run."""
    return {
        "generator": "repro.experiments.runner",
        "meta": dict(meta or {}),
        "summary": summarize_results(results),
        "cells": as_record_dicts(results),
    }


def write_results(
    path: str | Path,
    results: Sequence[Mapping[str, object]],
    meta: Mapping[str, object] | None = None,
) -> Path:
    """Write the grid run to ``path`` as pretty-printed JSON."""
    path = Path(path)
    path.write_text(json.dumps(results_payload(results, meta), indent=2) + "\n")
    return path
