"""Shared-memory topology transport for the batch runner.

A grid run executes many (program × engine) cells on the *same* graph.
Re-generating the graph in every worker process is the dominant fixed cost
for large instances — generator plus normalization plus CSR compilation —
and pickling a ``networkx`` graph through the pool queue is no cheaper.
Instead the parent process generates each unique topology **once**,
publishes its flat CSR arrays (``indptr``, ``indices``) into
``multiprocessing.shared_memory`` blocks, and ships only the block *names*
to the workers.  A worker re-attaches by name and reconstructs an
equivalent :class:`~repro.congest.network.Network` via
:meth:`Network.from_csr` — no graph generation, no big pickles.

Lifecycle: the parent owns the blocks (:meth:`SharedTopology.publish` …
:meth:`SharedTopology.unlink`); workers attach, copy the few hundred
kilobytes of CSR data into process-local arrays, and detach immediately
(:func:`attach_network`), so no cross-process lifetime coordination is
needed beyond "the parent unlinks after the pool is done".  The
streaming pool (`runner._iter_units_pool`) relies on exactly that
weak contract: handles ride inside dispatch-unit tasks on the pull
queue, any worker can attach any published handle (which is what lets
an unclaimed unit migrate to a surviving worker after a crash), and
the parent unlinks everything only after the drain loop finishes.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Optional

import numpy as np

from repro.congest.network import Network

__all__ = [
    "SharedTopologyHandle",
    "SharedTopology",
    "attach_network",
    "SharedStackedTopologyHandle",
    "SharedStackedTopology",
    "attach_stacked",
]

_DTYPE = np.int64


@dataclass(frozen=True)
class SharedTopologyHandle:
    """Picklable descriptor of one published topology."""

    indptr_name: str
    indices_name: str
    n: int
    nnz: int
    bit_budget: Optional[int]


class SharedTopology:
    """Parent-side owner of one topology's shared CSR blocks."""

    def __init__(
        self,
        indptr_shm: shared_memory.SharedMemory,
        indices_shm: shared_memory.SharedMemory,
        handle: SharedTopologyHandle,
    ):
        self._indptr_shm = indptr_shm
        self._indices_shm = indices_shm
        self.handle = handle

    @classmethod
    def publish(cls, network: Network) -> "SharedTopology":
        """Copy ``network``'s CSR arrays into fresh shared-memory blocks."""
        indptr, indices = network.csr()
        indptr_arr = np.asarray(indptr, dtype=_DTYPE)
        indices_arr = np.asarray(indices, dtype=_DTYPE)
        indptr_shm = shared_memory.SharedMemory(
            create=True, size=max(1, indptr_arr.nbytes)
        )
        indices_shm = shared_memory.SharedMemory(
            create=True, size=max(1, indices_arr.nbytes)
        )
        np.ndarray(indptr_arr.shape, dtype=_DTYPE, buffer=indptr_shm.buf)[
            :
        ] = indptr_arr
        if indices_arr.size:
            np.ndarray(indices_arr.shape, dtype=_DTYPE, buffer=indices_shm.buf)[
                :
            ] = indices_arr
        handle = SharedTopologyHandle(
            indptr_name=indptr_shm.name,
            indices_name=indices_shm.name,
            n=network.n,
            nnz=int(indices_arr.size),
            bit_budget=network.bit_budget,
        )
        return cls(indptr_shm, indices_shm, handle)

    def close(self) -> None:
        """Detach the parent's mapping (blocks stay alive for workers)."""
        self._indptr_shm.close()
        self._indices_shm.close()

    def unlink(self) -> None:
        """Free the blocks; call exactly once, after every worker is done."""
        self.close()
        self._indptr_shm.unlink()
        self._indices_shm.unlink()


@dataclass(frozen=True)
class SharedStackedTopologyHandle:
    """Picklable descriptor of one published *group* of topologies.

    The batch strategy ships a whole stacked group — K same-family
    topologies of any mix of sizes and seeds (the group is *ragged*: a
    mixed-size sweep stacks too) — to a worker as two shared blocks:
    every instance's ``indptr`` concatenated, and every instance's
    ``indices`` concatenated, with per-instance ``(n, nnz, bit_budget)``
    shapes in the handle.  The per-instance tables are exactly the ragged
    offset information :class:`~repro.congest.engine.batched.StackedPlane`
    rebuilds on the worker side.  One publish/attach round-trip per group
    instead of K.
    """

    indptr_name: str
    indices_name: str
    node_counts: tuple
    nnz_counts: tuple
    bit_budgets: tuple


class SharedStackedTopology:
    """Parent-side owner of one stacked group's shared CSR blocks."""

    def __init__(
        self,
        indptr_shm: shared_memory.SharedMemory,
        indices_shm: shared_memory.SharedMemory,
        handle: SharedStackedTopologyHandle,
    ):
        self._indptr_shm = indptr_shm
        self._indices_shm = indices_shm
        self.handle = handle

    @classmethod
    def publish(cls, networks) -> "SharedStackedTopology":
        """Copy every network's CSR arrays into two shared blocks."""
        indptr_parts = []
        indices_parts = []
        node_counts = []
        nnz_counts = []
        budgets = []
        for net in networks:
            indptr, indices = net.csr()
            indptr_parts.append(np.asarray(indptr, dtype=_DTYPE))
            indices_parts.append(np.asarray(indices, dtype=_DTYPE))
            node_counts.append(net.n)
            nnz_counts.append(int(indices_parts[-1].size))
            budgets.append(net.bit_budget)
        indptr_all = np.concatenate(indptr_parts)
        indices_all = (
            np.concatenate(indices_parts)
            if indices_parts
            else np.zeros(0, dtype=_DTYPE)
        )
        indptr_shm = shared_memory.SharedMemory(
            create=True, size=max(1, indptr_all.nbytes)
        )
        indices_shm = shared_memory.SharedMemory(
            create=True, size=max(1, indices_all.nbytes)
        )
        np.ndarray(indptr_all.shape, dtype=_DTYPE, buffer=indptr_shm.buf)[
            :
        ] = indptr_all
        if indices_all.size:
            np.ndarray(indices_all.shape, dtype=_DTYPE, buffer=indices_shm.buf)[
                :
            ] = indices_all
        handle = SharedStackedTopologyHandle(
            indptr_name=indptr_shm.name,
            indices_name=indices_shm.name,
            node_counts=tuple(node_counts),
            nnz_counts=tuple(nnz_counts),
            bit_budgets=tuple(budgets),
        )
        return cls(indptr_shm, indices_shm, handle)

    def close(self) -> None:
        """Detach the parent's mapping (blocks stay alive for workers)."""
        self._indptr_shm.close()
        self._indices_shm.close()

    def unlink(self) -> None:
        """Free the blocks; call exactly once, after every worker is done."""
        self.close()
        self._indptr_shm.unlink()
        self._indices_shm.unlink()


def attach_stacked(handle: SharedStackedTopologyHandle) -> list:
    """Worker-side reconstruction of a published stacked group.

    Returns the K :class:`Network` instances in published order, each
    owning a copy of its CSR slice (lifetime independent of the blocks).
    """
    total_ptr = sum(n + 1 for n in handle.node_counts)
    total_idx = sum(handle.nnz_counts)
    indptr_shm = shared_memory.SharedMemory(name=handle.indptr_name)
    indices_shm = shared_memory.SharedMemory(name=handle.indices_name)
    try:
        indptr_all = np.ndarray(
            (total_ptr,), dtype=_DTYPE, buffer=indptr_shm.buf
        ).copy()
        indices_all = np.ndarray(
            (total_idx,), dtype=_DTYPE, buffer=indices_shm.buf
        ).copy()
    finally:
        indptr_shm.close()
        indices_shm.close()
    networks = []
    ptr_off = idx_off = 0
    for n, nnz, budget in zip(
        handle.node_counts, handle.nnz_counts, handle.bit_budgets
    ):
        networks.append(
            Network.from_csr(
                indptr_all[ptr_off : ptr_off + n + 1],
                indices_all[idx_off : idx_off + nnz],
                bit_budget=budget,
            )
        )
        ptr_off += n + 1
        idx_off += nnz
    return networks


def attach_network(handle: SharedTopologyHandle) -> Network:
    """Worker-side reconstruction of a published topology.

    Copies the CSR data out of the shared blocks (so the returned network's
    lifetime is independent of the blocks) and detaches immediately.
    """
    indptr_shm = shared_memory.SharedMemory(name=handle.indptr_name)
    indices_shm = shared_memory.SharedMemory(name=handle.indices_name)
    try:
        indptr = np.ndarray(
            (handle.n + 1,), dtype=_DTYPE, buffer=indptr_shm.buf
        ).copy()
        indices = np.ndarray(
            (handle.nnz,), dtype=_DTYPE, buffer=indices_shm.buf
        ).copy()
    finally:
        # Workers only close their mapping; the blocks stay registered with
        # the (pool-shared) resource tracker until the parent unlinks them.
        # Attaching re-registers the same name, but the tracker's cache is a
        # set, so the parent's single unlink still balances the books.
        indptr_shm.close()
        indices_shm.close()
    return Network.from_csr(indptr, indices, bit_budget=handle.bit_budget)
