"""Canonical node labelling.

Every algorithm in this library assumes simple undirected graphs with integer
node labels ``0..n-1`` (node label == unique O(log n)-bit identifier, the
standard CONGEST assumption).  :func:`normalize_graph` converts arbitrary
``networkx`` graphs into that form deterministically (sorted original
labels), so symmetry-breaking by ID is reproducible.
"""

from __future__ import annotations

from typing import Dict, Hashable

import networkx as nx

from repro.errors import GraphError


def relabel_map(graph: nx.Graph) -> Dict[Hashable, int]:
    """Deterministic mapping original-label -> 0..n-1 (sorted by repr order).

    Labels are sorted by ``(type name, label)`` so heterogeneous label types
    (e.g. tuples from grid graphs) still order deterministically.
    """
    labels = sorted(graph.nodes(), key=lambda x: (type(x).__name__, repr(x)))
    return {label: i for i, label in enumerate(labels)}


def normalize_graph(graph: nx.Graph) -> nx.Graph:
    """Return a simple undirected copy with nodes relabelled ``0..n-1``.

    Self-loops are dropped (a self-loop is meaningless for domination since
    neighborhoods are inclusive anyway); multi-edges collapse.
    """
    if graph.is_directed():
        raise GraphError("directed graphs are not supported")
    simple = nx.Graph()
    mapping = relabel_map(graph)
    simple.add_nodes_from(range(graph.number_of_nodes()))
    for u, v in graph.edges():
        if u == v:
            continue
        simple.add_edge(mapping[u], mapping[v])
    return simple


def is_normalized(graph: nx.Graph) -> bool:
    """Whether node labels are exactly ``0..n-1``."""
    n = graph.number_of_nodes()
    return set(graph.nodes()) == set(range(n))


def require_normalized(graph: nx.Graph) -> None:
    """Raise :class:`GraphError` unless the graph is normalized."""
    if not is_normalized(graph):
        raise GraphError(
            "graph must have integer node labels 0..n-1; "
            "call repro.graphs.normalize_graph first"
        )
