"""Flat-array fast path for the round loop.

Observationally identical to :class:`~repro.congest.engine.reference.
ReferenceEngine` (the parity suite proves it on every bundled program), but
engineered so per-round cost scales with the *active* part of the network
instead of with ``n``:

* **Flat, index-addressed planes.** ``Network`` validates ids ``0..n-1``
  and compiles its topology once into flat CSR arrays (``Network.csr()``,
  from which contexts' neighbor tuples derive); the engine exploits the
  same dense-id contract to keep contexts, bound ``receive`` methods and
  inbox buffers in list-indexed records instead of per-round dict lookups.
* **Active set.** The engine maintains the set of non-halted nodes
  incrementally.  Halted nodes are never scanned again — neither for outbox
  draining (only nodes that executed since the last drain can have queued
  traffic) nor for the all-halted termination check, both of which the
  reference engine pays O(n) for every round.
* **Inbox planes.** Delivery writes into a preallocated ``n``-slot buffer;
  only slots that actually received traffic are allocated and reset, so an
  idle node costs one ``None`` check, not a dict construction.
* **Batched accounting.** Per-round message/bit totals, the running
  maximum, and the CONGEST budget check are computed once per round with
  C-level ``sum``/``max`` over the collected sizes instead of branching on
  every message; the offender search for an oversized message only runs on
  the (exceptional) violation path.
* **Event-driven scheduling.** When every program sets
  :attr:`NodeProgram.event_driven` (empty-inbox ``receive`` is a no-op),
  rounds only visit the recipients of actual traffic — O(messages) per
  round, regardless of how many nodes are live but idle.

The semantics-critical steps — outbox draining with its halted-sender
rules, and wire accounting with its budget-check ordering — are shared by
both scheduling modes (:meth:`_collect_traffic`, :meth:`_charge`), so the
contract in :mod:`repro.congest.engine.base` is implemented exactly once.
Messages queued by a node that halts afterwards are still collected,
because the drain set is "everyone whose ``setup``/``receive`` ran since
the last collection", not the live set; messages addressed to halted nodes
are dropped after being charged to the wire totals.  Inboxes handed to
``receive`` must be treated as read-only snapshots (true for all bundled
programs); the engine reuses its delivery buffers across rounds.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.congest.engine.base import Engine, SimulationResult, register_engine
from repro.congest.message import Message
from repro.congest.network import Network
from repro.congest.node import Context, NodeProgram
from repro.errors import MessageTooLargeError, SimulationLimitError

#: Shared inbox for nodes that received nothing this round.  Programs must
#: treat inboxes as read-only (see module docstring), which makes sharing
#: one empty dict safe and saves an allocation per idle live node per round.
_EMPTY_INBOX: Dict[int, Message] = {}

#: Inbox planes: per-node delivery buffer, ``None`` = no traffic.
Inboxes = List[Optional[Dict[int, Message]]]


@register_engine
class FastEngine(Engine):
    """Active-set round loop over flat arrays; the default engine."""

    name = "fast"

    def run(
        self,
        network: Network,
        programs: Dict[int, NodeProgram],
        contexts: Dict[int, Context],
        max_rounds: int,
    ) -> SimulationResult:
        if all(p.event_driven for p in programs.values()):
            return self._run_event_driven(network, programs, contexts, max_rounds)
        return self._run_active_set(network, programs, contexts, max_rounds)

    # -- shared semantics ---------------------------------------------------

    @staticmethod
    def _collect_traffic(
        drain: Sequence[tuple], inboxes: Inboxes
    ) -> Tuple[List[int], List[int]]:
        """Drain the outboxes of ``drain`` (records whose first two slots are
        ``(node id, context)``) into the inbox planes.

        Iterating ``drain`` in ascending id order keeps inbox insertion
        order — and hence dict iteration order inside programs — identical
        to the reference engine's full scan.  Returns the recipients that
        got traffic and the flat list of message sizes for :meth:`_charge`.
        """
        touched: List[int] = []
        sizes: List[int] = []
        for rec in drain:
            ctx = rec[1]
            out = ctx._outbox
            if not out:
                continue
            ctx._outbox = {}
            v = rec[0]
            for to, msg in out.items():
                box = inboxes[to]
                if box is None:
                    inboxes[to] = {v: msg}
                    touched.append(to)
                else:
                    box[v] = msg
                sizes.append(msg.bits)
        return touched, sizes

    @classmethod
    def _charge(
        cls,
        sizes: List[int],
        inboxes: Inboxes,
        touched: List[int],
        budget: Optional[int],
        max_bits: int,
    ) -> Tuple[int, int]:
        """Batched wire accounting for one round's traffic.

        Returns ``(round_bits, max_bits)``; raises
        :class:`MessageTooLargeError` after charging, matching the
        reference engine's "validated and charged even if the round is
        later dropped" ordering.
        """
        if not sizes:
            return 0, max_bits
        round_bits = sum(sizes)
        round_max = max(sizes)
        if round_max > max_bits:
            max_bits = round_max
        if budget is not None and round_max > budget:
            cls._raise_oversized(inboxes, touched, budget)
        return round_bits, max_bits

    @staticmethod
    def _raise_oversized(
        inboxes: Inboxes, touched: List[int], budget: int
    ) -> None:
        """Slow path: locate an over-budget message and raise for it."""
        for to in touched:
            box = inboxes[to]
            if box is None:  # pragma: no cover - defensive
                continue
            for sender, msg in box.items():
                if msg.bits > budget:
                    raise MessageTooLargeError(sender, to, msg.bits, budget)
        raise AssertionError("oversized message vanished")  # pragma: no cover

    # -- scheduling modes ---------------------------------------------------

    def _run_active_set(
        self,
        network: Network,
        programs: Dict[int, NodeProgram],
        contexts: Dict[int, Context],
        max_rounds: int,
    ) -> SimulationResult:
        n = network.n
        budget = network.bit_budget
        # One flat record per node: (id, context, bound receive).  All hot
        # loops walk these records instead of re-indexing dicts per round.
        records = [
            (v, contexts[v], programs[v].receive) for v in range(n)
        ]

        for v, ctx, _ in records:
            ctx.round_number = 0
            programs[v].setup(ctx)

        active = [rec for rec in records if not rec[1]._halted]
        # Nodes whose setup/receive ran since the last collection — the only
        # ones that can hold queued traffic (includes nodes that halted
        # right after sending).
        drain: Sequence[tuple] = records
        inboxes: Inboxes = [None] * n

        total_messages = 0
        total_bits = 0
        max_bits = 0
        messages_per_round: list[int] = []
        bits_per_round: list[int] = []

        rounds = 0
        while rounds < max_rounds:
            touched, sizes = self._collect_traffic(drain, inboxes)
            round_messages = len(sizes)
            round_bits, max_bits = self._charge(
                sizes, inboxes, touched, budget, max_bits
            )
            total_bits += round_bits

            if not active:
                # Everyone has halted: in-flight traffic is dropped (charged
                # to the wire totals above, but the round is not counted).
                for to in touched:
                    inboxes[to] = None
                break

            rounds += 1
            total_messages += round_messages
            messages_per_round.append(round_messages)
            bits_per_round.append(round_bits)

            # Single pass: deliver, run receive, and build next round's
            # active set as halts happen.
            still_active = []
            keep = still_active.append
            for rec in active:
                v, ctx, recv = rec
                ctx.round_number = rounds
                box = inboxes[v]
                if box is None:
                    recv(ctx, _EMPTY_INBOX)
                else:
                    inboxes[v] = None
                    recv(ctx, box)
                if not ctx._halted:
                    keep(rec)
            # Reset planes of recipients that did not consume their traffic
            # (halted nodes: the drop semantics above).
            for to in touched:
                inboxes[to] = None

            drain = active
            active = still_active
            if not active:
                break
        else:
            raise SimulationLimitError(
                f"simulation did not terminate within {max_rounds} rounds"
            )

        return SimulationResult(
            rounds=rounds,
            total_messages=total_messages,
            total_bits=total_bits,
            max_message_bits=max_bits,
            outputs={v: dict(ctx._outputs) for v, ctx in contexts.items()},
            all_halted=not active,
            messages_per_round=messages_per_round,
            bits_per_round=bits_per_round,
        )

    def _run_event_driven(
        self,
        network: Network,
        programs: Dict[int, NodeProgram],
        contexts: Dict[int, Context],
        max_rounds: int,
    ) -> SimulationResult:
        """Traffic-proportional loop for all-``event_driven`` programs.

        When every program guarantees that an empty-inbox ``receive`` is a
        no-op (see :attr:`NodeProgram.event_driven`), idle live nodes need
        not be visited at all: each round only the recipients of actual
        traffic run, so round cost is O(messages) instead of O(live nodes).
        ``ctx.round_number`` is refreshed lazily right before a node runs —
        unobservable, since skipped invocations would have been no-ops.
        """
        n = network.n
        budget = network.bit_budget
        ctxs = [contexts[v] for v in range(n)]
        recvs = [programs[v].receive for v in range(n)]

        for v in range(n):
            ctx = ctxs[v]
            ctx.round_number = 0
            programs[v].setup(ctx)

        live = sum(1 for ctx in ctxs if not ctx._halted)
        drain: Sequence[tuple] = [(v, ctxs[v]) for v in range(n)]
        inboxes: Inboxes = [None] * n

        total_messages = 0
        total_bits = 0
        max_bits = 0
        messages_per_round: list[int] = []
        bits_per_round: list[int] = []

        rounds = 0
        while rounds < max_rounds:
            touched, sizes = self._collect_traffic(drain, inboxes)
            round_messages = len(sizes)
            round_bits, max_bits = self._charge(
                sizes, inboxes, touched, budget, max_bits
            )
            total_bits += round_bits

            if not live:
                for to in touched:
                    inboxes[to] = None
                break

            rounds += 1
            total_messages += round_messages
            messages_per_round.append(round_messages)
            bits_per_round.append(round_bits)

            ran: List[int] = []
            for to in touched:
                box = inboxes[to]
                inboxes[to] = None
                ctx = ctxs[to]
                if ctx._halted:
                    continue  # drop semantics: halted recipients lose traffic
                ctx.round_number = rounds
                recvs[to](ctx, box)
                ran.append(to)
                if ctx._halted:
                    live -= 1
            # Ascending drain order (see _collect_traffic).
            ran.sort()
            drain = [(v, ctxs[v]) for v in ran]
            if not live:
                break
        else:
            raise SimulationLimitError(
                f"simulation did not terminate within {max_rounds} rounds"
            )

        return SimulationResult(
            rounds=rounds,
            total_messages=total_messages,
            total_bits=total_bits,
            max_message_bits=max_bits,
            outputs={v: dict(ctx._outputs) for v, ctx in contexts.items()},
            all_halted=not live,
            messages_per_round=messages_per_round,
            bits_per_round=bits_per_round,
        )
