"""Compatibility shim: enables ``python setup.py develop`` on offline
machines where pip's PEP 660 editable install is unavailable (no ``wheel``
package, no network for build isolation).  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
