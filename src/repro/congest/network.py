"""Network abstraction over a ``networkx`` graph.

Nodes are identified by integers ``0..n-1`` (see
:func:`repro.graphs.normalize_graph`).  The network exposes adjacency and the
CONGEST bit budget; it does not expose any global structure to node programs,
which only ever see their own id, their neighbor list (port numbering) and
``n`` (the standard assumption that nodes know the network size, used by the
paper for transmittable values).
"""

from __future__ import annotations

from array import array
from typing import Dict, Tuple

import networkx as nx

from repro.errors import GraphError
from repro.util.mathx import ceil_log2


def _as_long_array(values) -> array:
    """Copy an int sequence into an ``array('l')`` without a Python loop.

    The shared-memory worker path hands over numpy int64 arrays for graphs
    with up to millions of edges; routing the copy through ``frombytes``
    keeps it a C-level memcpy (numpy ``dtype('l')`` is the same C ``long``
    as the ``array`` typecode) instead of per-element ``int()`` calls.
    """
    if isinstance(values, array) and values.typecode == "l":
        out = array("l")
        out.frombytes(values.tobytes())
        return out
    import numpy as np

    contiguous = np.ascontiguousarray(values, dtype=np.dtype("l"))
    out = array("l")
    out.frombytes(contiguous.tobytes())
    return out


def congest_bit_budget(n: int, factor: int = 16, base: int = 96) -> int:
    """Default CONGEST message budget in bits for an ``n``-node network.

    ``O(log n)`` with explicit constants: ``factor * ceil(log2 n) + base``.
    The base term covers headers and framing; the factor is generous enough
    for a constant number of identifiers plus one transmittable value, which
    is exactly what the paper's algorithms send.
    """
    return factor * max(1, ceil_log2(max(2, n))) + base


class Network:
    """A static network on which node programs execute.

    Parameters
    ----------
    graph:
        Undirected simple graph with nodes labelled ``0..n-1``.
    bit_budget:
        Maximum message size in bits (``None`` = LOCAL model, unbounded).
    """

    def __init__(self, graph: nx.Graph, bit_budget: int | None = None):
        n = graph.number_of_nodes()
        if n == 0:
            raise GraphError("network requires a non-empty graph")
        if set(graph.nodes()) != set(range(n)):
            raise GraphError(
                "network nodes must be labelled 0..n-1; "
                "use repro.graphs.normalize_graph first"
            )
        self._graph: nx.Graph | None = graph
        self.n = n
        self.bit_budget = bit_budget
        # Flat CSR adjacency, compiled once: node v's sorted neighbors are
        # _indices[_indptr[v]:_indptr[v+1]].  This is the representation the
        # fast engine path consumes; neighbor tuples are derived lazily.
        indptr = array("l", [0])
        indices = array("l")
        for v in range(n):
            indices.extend(sorted(graph.neighbors(v)))
            indptr.append(len(indices))
        self._indptr = indptr
        self._indices = indices
        self._neighbors: Dict[int, Tuple[int, ...]] = {}

    @classmethod
    def congest(cls, graph: nx.Graph, factor: int = 16, base: int = 96) -> "Network":
        """Network with the default CONGEST bit budget for its size."""
        return cls(graph, bit_budget=congest_bit_budget(graph.number_of_nodes(), factor, base))

    @classmethod
    def local(cls, graph: nx.Graph) -> "Network":
        """LOCAL-model network (unbounded messages)."""
        return cls(graph, bit_budget=None)

    @classmethod
    def from_csr(
        cls,
        indptr,
        indices,
        bit_budget: int | None = None,
    ) -> "Network":
        """Rebuild a network directly from flat CSR adjacency arrays.

        This is the shared-memory transport path: a worker process receives
        the ``(indptr, indices)`` arrays another process compiled (e.g. via
        ``multiprocessing.shared_memory``) and reconstructs an equivalent
        network without re-generating — or even materializing — the
        ``networkx`` graph.  The ``graph`` property rebuilds one lazily if
        an algorithm outside the simulator needs it.

        ``indptr``/``indices`` may be any int sequences (``array('l')``,
        numpy arrays, lists); they are copied into the canonical ``array``
        representation so the instance owns its topology.
        """
        net = cls.__new__(cls)
        n = len(indptr) - 1
        if n <= 0:
            raise GraphError("network requires a non-empty graph")
        net._graph = None
        net.n = n
        net.bit_budget = bit_budget
        net._indptr = _as_long_array(indptr)
        net._indices = _as_long_array(indices)
        net._neighbors = {}
        if net._indptr[0] != 0 or net._indptr[-1] != len(net._indices):
            raise GraphError("malformed CSR adjacency: bad indptr bounds")
        return net

    @property
    def graph(self) -> nx.Graph:
        """The ``networkx`` view of the topology (rebuilt lazily after
        :meth:`from_csr`; the constructor argument otherwise)."""
        if self._graph is None:
            g = nx.Graph()
            g.add_nodes_from(range(self.n))
            indptr, indices = self._indptr, self._indices
            for v in range(self.n):
                for i in range(indptr[v], indptr[v + 1]):
                    u = indices[i]
                    if u > v:
                        g.add_edge(v, u)
            self._graph = g
        return self._graph

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """Sorted neighbor tuple of ``v`` (the port numbering)."""
        try:
            return self._neighbors[v]
        except KeyError:
            nbrs = tuple(self._indices[self._indptr[v]:self._indptr[v + 1]])
            self._neighbors[v] = nbrs
            return nbrs

    def csr(self) -> Tuple[array, array]:
        """Flat ``(indptr, indices)`` adjacency arrays (built once).

        ``indices[indptr[v]:indptr[v+1]]`` is the sorted neighbor list of
        ``v`` — the zero-copy topology view engines and batch analyses use
        instead of per-node tuples.
        """
        return self._indptr, self._indices

    def degree(self, v: int) -> int:
        return self._indptr[v + 1] - self._indptr[v]

    @property
    def max_degree(self) -> int:
        indptr = self._indptr
        return max(
            (indptr[v + 1] - indptr[v] for v in range(self.n)), default=0
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "LOCAL" if self.bit_budget is None else f"CONGEST({self.bit_budget}b)"
        return f"Network(n={self.n}, {mode})"
