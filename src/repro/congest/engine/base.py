"""Engine interface: the pluggable round loop behind :class:`Simulator`.

An :class:`Engine` owns the synchronous round loop of the textbook model of
Peleg [Pel00]: each round it (1) collects every node's outbox, (2) validates
message sizes against the CONGEST budget, (3) delivers all messages
simultaneously, and (4) invokes ``receive`` on every non-halted node.
Implementations differ only in *how* they schedule that loop (see
:class:`~repro.congest.engine.reference.ReferenceEngine` and
:class:`~repro.congest.engine.fast.FastEngine`); they must be
observationally identical — same :class:`SimulationResult` for the same
network, programs and inputs — which ``tests/test_engine_parity.py``
enforces across the whole bundled program suite.

Shared semantics every engine must implement
--------------------------------------------
* ``setup`` runs on every node with ``round_number == 0`` before round 1;
  messages sent during ``setup`` are delivered in round 1.
* A halted node's ``receive`` is never called again, but messages it queued
  *before* halting are still collected and delivered.
* **Halted-node message drops:** messages addressed to a halted node are
  silently dropped — they are validated against the bit budget and charged
  to ``total_bits`` / ``max_message_bits`` (they were put on the wire), and
  they count towards ``total_messages`` if the round executes.  If *all*
  nodes have halted, the round does not execute at all: in-flight traffic
  is dropped, ``rounds`` is not incremented and the dropped messages appear
  in ``total_bits`` but not in ``total_messages`` or the per-round series.
* The simulation ends when every node has halted (``all_halted=True``) or
  when ``max_rounds`` is exceeded, which raises
  :class:`~repro.errors.SimulationLimitError`.

Engines are stateless between runs; one instance can be shared freely.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Type, Union

from repro.congest.network import Network
from repro.congest.node import Context, NodeProgram
from repro.errors import CongestError, UnknownEngineError


@dataclass
class SimulationResult:
    """Outcome and metrics of one simulated execution."""

    rounds: int
    total_messages: int
    total_bits: int
    max_message_bits: int
    outputs: Dict[int, Dict[str, object]]
    all_halted: bool
    #: messages sent per executed round, for congestion profiles
    messages_per_round: List[int] = field(default_factory=list)
    #: bits sent per executed round, aligned with ``messages_per_round``
    bits_per_round: List[int] = field(default_factory=list)

    def output_map(self, key: str) -> Dict[int, object]:
        """Collect output ``key`` from each node that produced it."""
        return {
            v: outs[key] for v, outs in self.outputs.items() if key in outs
        }


class Engine(ABC):
    """Abstract round-loop scheduler (see module docstring for semantics)."""

    #: Registry key; subclasses override.
    name: str = "abstract"

    @abstractmethod
    def run(
        self,
        network: Network,
        programs: Dict[int, NodeProgram],
        contexts: Dict[int, Context],
        max_rounds: int,
    ) -> SimulationResult:
        """Drive ``programs`` on ``network`` until all halt or the limit."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


#: Anything :func:`resolve_engine` accepts.
EngineSpec = Union[None, str, Engine, Type[Engine]]

_REGISTRY: Dict[str, Type[Engine]] = {}


def register_engine(cls: Type[Engine]) -> Type[Engine]:
    """Class decorator: make ``cls`` selectable by its ``name``."""
    if not cls.name or cls.name == Engine.name:
        raise ValueError(f"engine class {cls.__name__} needs a unique name")
    _REGISTRY[cls.name] = cls
    return cls


def available_engines() -> List[str]:
    """Sorted names of all registered engines."""
    return sorted(_REGISTRY)


#: Name of the engine used when a Simulator is built without an explicit
#: one.  ``REPRO_ENGINE`` overrides the shipped default at import time;
#: :func:`set_default_engine` overrides it at runtime (e.g. from ``--engine``
#: CLI flags, so whole pipelines switch engine without threading a parameter
#: through every call site).
_DEFAULT_ENGINE = os.environ.get("REPRO_ENGINE", "fast")


def set_default_engine(spec: Union[str, Engine, Type[Engine]]) -> None:
    """Set the process-wide default engine (by name, instance, or class)."""
    global _DEFAULT_ENGINE
    if isinstance(spec, str):
        if spec not in _REGISTRY:
            raise UnknownEngineError(spec, available_engines())
        _DEFAULT_ENGINE = spec
    elif isinstance(spec, Engine):
        _DEFAULT_ENGINE = spec.name
    elif isinstance(spec, type) and issubclass(spec, Engine):
        _DEFAULT_ENGINE = spec.name
    else:
        raise CongestError(f"cannot interpret {spec!r} as an engine")


def default_engine_name() -> str:
    """Name of the current process-wide default engine."""
    return _DEFAULT_ENGINE


def resolve_engine(spec: EngineSpec = None) -> Engine:
    """Turn an engine spec into a ready instance.

    ``None`` resolves to the process default (``fast`` unless overridden by
    ``REPRO_ENGINE`` or :func:`set_default_engine`); a string looks up the
    registry; instances pass through; classes are instantiated.
    """
    if spec is None:
        spec = _DEFAULT_ENGINE
    if isinstance(spec, Engine):
        return spec
    if isinstance(spec, type) and issubclass(spec, Engine):
        return spec()
    if isinstance(spec, str):
        try:
            return _REGISTRY[spec]()
        except KeyError:
            raise UnknownEngineError(spec, available_engines()) from None
    raise CongestError(f"cannot interpret {spec!r} as an engine")
