"""Messages and their wire-size accounting.

A message payload is a flat tuple of non-negative integers.  Algorithms that
need to ship fractional values quantize them onto a
:class:`~repro.util.transmittable.TransmittableGrid` first and send the grid
numerator; this mirrors the paper's "CONGEST transmittable" values and makes
bit accounting exact instead of hand-wavy.
"""

from __future__ import annotations

from typing import Iterable, Tuple

#: Fixed per-field framing overhead in bits (length prefix for the
#: self-delimiting encoding; Elias-gamma style framing costs ~2 log of the
#: field width, we charge a flat 8 which dominates at the sizes we use).
FIELD_FRAMING_BITS = 8

#: Per-message header (message type tag).
MESSAGE_HEADER_BITS = 8


def bits_of_int(value: int) -> int:
    """Number of payload bits used by a non-negative integer field."""
    if value < 0:
        raise ValueError(f"message fields must be non-negative, got {value}")
    return max(1, value.bit_length())


def message_bits(fields: Iterable[int]) -> int:
    """Total wire size in bits of a message with the given integer fields."""
    total = MESSAGE_HEADER_BITS
    for field in fields:
        total += FIELD_FRAMING_BITS + bits_of_int(field)
    return total


class Message:
    """An immutable CONGEST message: a tag string plus integer fields.

    The tag is charged as part of the fixed header (programs use a handful of
    distinct tags, so a tag fits in the 8-bit header).  Only integer fields
    travel on the wire; use :meth:`Message.pack_value` /
    :meth:`Message.unpack_value` helpers for grid-quantized fractions.
    """

    __slots__ = ("tag", "fields", "bits")

    def __init__(self, tag: str, *fields: int):
        self.tag = tag
        self.fields: Tuple[int, ...] = tuple(int(f) for f in fields)
        self.bits = message_bits(self.fields)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Message({self.tag!r}, {', '.join(map(str, self.fields))})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Message)
            and self.tag == other.tag
            and self.fields == other.fields
        )

    def __hash__(self) -> int:
        return hash((self.tag, self.fields))
