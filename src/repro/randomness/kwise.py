"""k-wise independent biased coins from a short shared seed (Lemma 3.3).

Construction: a seed of ``K = k * m`` fair bits is split into ``k``
coefficients of a polynomial ``h`` of degree ``k-1`` over ``GF(2^m)``.  The
value for index ``i`` is ``h(alpha_i)`` where ``alpha_i`` is the ``i``-th
field element; any ``k`` evaluations of a random degree-``(k-1)`` polynomial
at distinct points are independent and uniform, so the derived coins
``coin_i = [h(alpha_i) < p_i * 2^m]`` are ``k``-wise independent with
``Pr(coin_i = 1) = p_i`` exactly, for probabilities ``p_i`` that are
multiples of ``2^-m`` (transmittable values with ``iota <= m``).

This module is used by the randomized executors (to validate Lemmas 3.6/3.7
under limited independence, experiment E4) and documents the seed-length
accounting for Lemma 3.4.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.errors import RandomnessError
from repro.randomness.gf2 import GF2m


def seed_bits_required(k: int, m: int) -> int:
    """Seed length ``K = k * m`` in fair bits (Lemma 3.3's ``O(k log^2 N)``
    with the polynomial construction's exact constant)."""
    return k * m


class KWiseCoins:
    """A family of ``k``-wise independent biased coins on indices
    ``0..capacity-1``.

    Parameters
    ----------
    k:
        Independence parameter (any ``k`` coins are jointly independent).
    m:
        Field degree; probabilities live on the ``2^-m`` grid and
        ``capacity <= 2^m`` indices are supported.
    seed_bits:
        Optional explicit seed as a sequence of 0/1 ints of length ``k*m``;
        if omitted, ``rng`` (or a fresh :class:`random.Random`) draws it.
    """

    def __init__(
        self,
        k: int,
        m: int = 16,
        seed_bits: Sequence[int] | None = None,
        rng: random.Random | None = None,
    ):
        if k < 1:
            raise RandomnessError(f"independence k must be >= 1, got {k}")
        self.k = k
        self.field = GF2m(m)
        self.m = m
        if seed_bits is None:
            rng = rng or random.Random()
            seed_bits = [rng.randrange(2) for _ in range(seed_bits_required(k, m))]
        seed_bits = list(seed_bits)
        if len(seed_bits) != seed_bits_required(k, m):
            raise RandomnessError(
                f"seed must have {seed_bits_required(k, m)} bits, got {len(seed_bits)}"
            )
        if any(b not in (0, 1) for b in seed_bits):
            raise RandomnessError("seed bits must be 0/1")
        self.seed_bits: List[int] = seed_bits
        self.coefficients = [
            self._bits_to_int(seed_bits[i * m : (i + 1) * m]) for i in range(k)
        ]

    @staticmethod
    def _bits_to_int(bits: Sequence[int]) -> int:
        value = 0
        for b in bits:
            value = (value << 1) | b
        return value

    @property
    def seed_length(self) -> int:
        """Seed length in bits (the quantity Lemma 3.4 fixes one by one)."""
        return len(self.seed_bits)

    def uniform_value(self, index: int) -> int:
        """The ``m``-bit uniform value for ``index`` (k-wise independent)."""
        point = self.field.element(index)
        return self.field.eval_poly(self.coefficients, point)

    def coin(self, index: int, probability_numerator: int) -> bool:
        """Biased coin for ``index`` with ``Pr(1) = numerator / 2^m``.

        ``numerator`` must be in ``[0, 2^m]``.
        """
        if not 0 <= probability_numerator <= self.field.order:
            raise RandomnessError(
                f"probability numerator {probability_numerator} outside "
                f"[0, {self.field.order}]"
            )
        return self.uniform_value(index) < probability_numerator

    def coin_float(self, index: int, probability: float) -> bool:
        """Biased coin with a float probability snapped *down* onto the
        ``2^-m`` grid (so the realized probability never exceeds the
        requested one)."""
        numerator = int(probability * self.field.order)
        return self.coin(index, numerator)
