"""Benchmark E4: Lemmas 3.6/3.7 uncovered-probability table.

Regenerates the Lemmas 3.6/3.7 uncovered-probability (see DESIGN.md Section 2) and certifies
every guarantee check recorded by the experiment.
"""

from benchmarks.conftest import run_experiment
from repro.experiments import e04_uncovered


def bench_e04_uncovered(benchmark):
    run_experiment(benchmark, e04_uncovered.run)
