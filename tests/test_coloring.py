"""Colorings: greedy, distance-2, bipartite (Lemma 3.12), reduction, Linial."""

import networkx as nx
import pytest

from repro.coloring.distance2 import (
    bipartite_distance2_coloring,
    distance2_coloring,
    validate_distance2,
)
from repro.coloring.greedy import (
    color_classes,
    greedy_coloring,
    restrict_coloring,
    validate_coloring,
)
from repro.coloring.linial import linial_coloring, linial_one_round
from repro.coloring.reduction import reduce_coloring
from repro.domsets.covering import CoveringInstance
from repro.errors import ColoringError
from repro.graphs.generators import regular_graph
from repro.graphs.normalize import normalize_graph


class TestGreedy:
    def test_proper_and_bounded(self, zoo_graph):
        colors = greedy_coloring(zoo_graph)
        used = validate_coloring(zoo_graph, colors)
        delta = max((d for _, d in zoo_graph.degree()), default=0)
        assert used <= delta + 1

    def test_validate_rejects_monochromatic(self):
        g = normalize_graph(nx.path_graph(2))
        with pytest.raises(ColoringError):
            validate_coloring(g, {0: 0, 1: 0})

    def test_validate_rejects_uncolored(self):
        g = normalize_graph(nx.path_graph(2))
        with pytest.raises(ColoringError):
            validate_coloring(g, {0: 0})

    def test_color_classes_sorted(self):
        classes = color_classes({0: 1, 1: 0, 2: 1})
        assert classes == [[1], [0, 2]]

    def test_restrict_densifies(self):
        restricted = restrict_coloring({0: 5, 1: 9, 2: 5}, keep={0, 1})
        assert restricted == {0: 0, 1: 1}


class TestDistance2:
    def test_distance2_is_valid(self, small_gnp):
        result = distance2_coloring(small_gnp)
        validate_distance2(small_gnp, result.colors)

    def test_subset_only(self, small_gnp):
        subset = set(list(small_gnp.nodes())[:10])
        result = distance2_coloring(small_gnp, subset=subset)
        assert set(result.colors) == subset
        validate_distance2(small_gnp, result.colors)

    def test_color_count_bound(self, small_regular):
        result = distance2_coloring(small_regular)
        delta = max(d for _, d in small_regular.degree())
        assert result.num_colors <= delta * delta + 1

    def test_validate_distance2_catches_violation(self, path5):
        with pytest.raises(ColoringError):
            validate_distance2(path5, {0: 0, 2: 0})


class TestBipartiteLemma312:
    def test_colors_within_deltaL_deltaR(self, medium_gnp):
        inst = CoveringInstance.from_graph(
            medium_gnp, {v: 0.5 for v in medium_gnp.nodes()}
        )
        result = bipartite_distance2_coloring(inst)
        assert result.num_colors <= inst.max_constraint_degree * inst.max_var_degree
        assert result.charged_rounds >= 1

    def test_coloring_is_conflict_proper(self, small_gnp):
        inst = CoveringInstance.from_graph(
            small_gnp, {v: 0.5 for v in small_gnp.nodes()}
        )
        result = bipartite_distance2_coloring(inst)
        conflict = inst.value_conflict_graph()
        validate_coloring(conflict, result.colors)

    def test_restricted_coloring(self, small_gnp):
        inst = CoveringInstance.from_graph(
            small_gnp, {v: 0.5 for v in small_gnp.nodes()}
        )
        keep = set(list(inst.value_vars)[:8])
        result = bipartite_distance2_coloring(inst, restrict=keep)
        assert set(result.colors) == keep


class TestReduction:
    def test_reduces_to_delta_plus_one(self, small_gnp):
        initial = {v: v for v in small_gnp.nodes()}  # IDs as colors
        result = reduce_coloring(small_gnp, initial)
        delta = max(d for _, d in small_gnp.degree())
        assert result.num_colors <= delta + 1
        validate_coloring(small_gnp, result.colors)

    def test_rounds_counted(self, small_gnp):
        initial = {v: v for v in small_gnp.nodes()}
        result = reduce_coloring(small_gnp, initial)
        assert result.rounds >= 1

    def test_already_small_untouched(self, path5):
        colors = greedy_coloring(path5)
        result = reduce_coloring(path5, colors)
        assert result.num_colors <= 2 + 1


class TestLinial:
    def test_one_round_shrinks_and_stays_proper(self):
        g = regular_graph(64, 4, seed=2)
        colors = {v: v for v in g.nodes()}
        new = linial_one_round(g, colors)
        validate_coloring(g, new)
        assert max(new.values()) < 64 * 64  # in [q^2]

    def test_full_run_polylog_palette(self):
        g = regular_graph(128, 4, seed=3)
        result = linial_coloring(g)
        validate_coloring(g, result.colors)
        delta = 4
        # O(Delta^2 log^2-ish) palette: generous explicit cap.
        assert result.num_colors <= (10 * delta) ** 2
        assert result.rounds <= 10
        # Palette shrinks monotonically across iterations.
        assert all(
            b <= a for a, b in zip(result.color_counts, result.color_counts[1:])
        )

    def test_rejects_improper_input(self, path5):
        with pytest.raises(ColoringError):
            linial_one_round(path5, {v: 0 for v in path5.nodes()})

    def test_respects_initial_coloring(self, small_regular):
        initial = greedy_coloring(small_regular)
        result = linial_coloring(small_regular, initial=initial)
        validate_coloring(small_regular, result.colors)
        assert result.num_colors <= max(initial.values()) + 1
