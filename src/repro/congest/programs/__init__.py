"""Concrete node programs for the primitives the paper's algorithms use:
BFS trees, tree convergecast/broadcast, execution of the abstract rounding
process, and the Lemma 3.10 conditional-expectation color loop.
"""

from repro.congest.programs.bfs import BFSTreeProgram, run_bfs_forest
from repro.congest.programs.aggregate import (
    TreeAggregationProgram,
    run_tree_sum,
)
from repro.congest.programs.rounding_exec import (
    RoundingExecutionProgram,
    run_rounding_execution,
)
from repro.congest.programs.greedy_mds import (
    DistributedGreedyProgram,
    run_distributed_greedy,
)
from repro.congest.programs.color_reduction import (
    ColorReductionProgram,
    run_color_reduction,
)
from repro.congest.programs.lemma310 import (
    Lemma310Program,
    run_lemma310_on_graph,
)

__all__ = [
    "BFSTreeProgram",
    "run_bfs_forest",
    "TreeAggregationProgram",
    "run_tree_sum",
    "RoundingExecutionProgram",
    "run_rounding_execution",
    "DistributedGreedyProgram",
    "run_distributed_greedy",
    "ColorReductionProgram",
    "run_color_reduction",
    "Lemma310Program",
    "run_lemma310_on_graph",
]
