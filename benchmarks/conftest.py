"""Shared helpers for the benchmark suite.

Every benchmark target runs one experiment module (DESIGN.md Section 2),
prints its table (visible with ``-s`` or in the captured output), asserts
all of the experiment's guarantee checks, and reports wall-clock through
pytest-benchmark (single round — these are end-to-end pipeline runs, not
micro-benchmarks).

``REPRO_FULL=1`` switches from the CI grid to the full sweep.
"""

from __future__ import annotations

import pytest

from repro.experiments.harness import (
    ExperimentReport,
    engine_grid_report,
    fast_mode,
)
from repro.experiments.runner import run_grid


def run_experiment(benchmark, run_fn, **kwargs) -> ExperimentReport:
    """Benchmark one experiment run and certify its checks."""
    kwargs.setdefault("fast", fast_mode())
    report = benchmark.pedantic(
        run_fn, kwargs=kwargs, iterations=1, rounds=1, warmup_rounds=0
    )
    print()
    print(report.render())
    failed = [name for name, ok in report.checks.items() if not ok]
    assert not failed, f"{report.experiment} guarantee checks failed: {failed}"
    return report


def run_engine_grid(benchmark, cells, jobs: int = 1) -> ExperimentReport:
    """Benchmark one batch-runner grid and certify its parity checks."""
    results = benchmark.pedantic(
        run_grid, args=(cells,), kwargs={"jobs": jobs},
        iterations=1, rounds=1, warmup_rounds=0,
    )
    report = engine_grid_report(results)
    print()
    print(report.render())
    failed = [name for name, ok in report.checks.items() if not ok]
    assert not failed, f"engine grid checks failed: {failed}"
    return report


@pytest.fixture
def experiment(benchmark):
    """Fixture flavor of :func:`run_experiment`."""

    def _run(run_fn, **kwargs):
        return run_experiment(benchmark, run_fn, **kwargs)

    return _run
