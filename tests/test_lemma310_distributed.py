"""The distributed Lemma 3.10 program vs the centralized engine.

The strongest fidelity check in the suite: on the graph instance ``B_G``
the simulator-run protocol must make the *same coin decisions* as the
centralized conditional-expectation engine, round for round, under the
CONGEST bit budget.
"""

import pytest

from repro.analysis.verify import is_dominating_set
from repro.coloring.distance2 import distance2_coloring
from repro.congest.network import Network
from repro.congest.programs.lemma310 import run_lemma310_on_graph
from repro.derand.coloring_based import schedule_from_colors
from repro.derand.conditional import ConditionalExpectationEngine
from repro.derand.estimators import EstimatorConfig
from repro.domsets.cfds import CFDS, fractionality_of
from repro.domsets.covering import CoveringInstance
from repro.fractional.raising import kmw06_initial_fds
from repro.graphs.generators import gnp_graph, random_tree, regular_graph
from repro.rounding.schemes import factor_two_scheme, one_shot_scheme
from repro.util.transmittable import TransmittableGrid


def one_shot_setup(graph):
    initial = kmw06_initial_fds(graph, eps=0.5)
    delta_tilde = max(d for _, d in graph.degree()) + 1
    grid = TransmittableGrid.for_n(graph.number_of_nodes())
    base = CoveringInstance.from_graph(graph, initial.fds.values)
    scheme = one_shot_scheme(base, delta_tilde, quantize=grid.up)
    coloring = distance2_coloring(graph, subset=set(scheme.participating()))
    return scheme, coloring, grid


@pytest.mark.parametrize("seed", [3, 7, 11])
def test_one_shot_decisions_match_engine(seed):
    graph = gnp_graph(36, 0.12, seed=seed)
    scheme, coloring, grid = one_shot_setup(graph)
    values = {u: var.x for u, var in scheme.instance.value_vars.items()}

    final, coins, sim = run_lemma310_on_graph(
        graph, values, scheme.p, coloring.colors, mode="exact-product", grid=grid
    )
    engine = ConditionalExpectationEngine(
        scheme, EstimatorConfig(mode="exact-product")
    )
    central = engine.run(schedule_from_colors(scheme, coloring.colors))

    assert coins == {u: int(b) for u, b in central.decisions.items()}
    ds = {v for v, x in final.items() if x >= 1 - 1e-9}
    assert is_dominating_set(graph, ds)
    assert len(ds) <= central.initial_estimate + 1e-6


def test_round_and_bit_budgets():
    graph = gnp_graph(40, 0.1, seed=2)
    scheme, coloring, grid = one_shot_setup(graph)
    values = {u: var.x for u, var in scheme.instance.value_vars.items()}
    network = Network.congest(graph)
    _, _, sim = run_lemma310_on_graph(
        graph, values, scheme.p, coloring.colors, mode="exact-product",
        grid=grid, network=network,
    )
    assert sim.rounds <= 3 * coloring.num_colors + 4
    assert sim.max_message_bits <= network.bit_budget
    assert sim.all_halted


def test_factor_two_mode_on_tree():
    graph = random_tree(30, seed=4)
    delta_tilde = max(d for _, d in graph.degree()) + 1
    values = {v: min(1.0, 2.0 / delta_tilde) for v in graph.nodes()}
    cfds = CFDS.fds(graph, values)
    if not cfds.is_feasible():
        values = {v: 0.5 for v in graph.nodes()}
    r = 1.0 / fractionality_of(values)
    grid = TransmittableGrid.for_n(30)
    base = CoveringInstance.from_graph(graph, values)
    scheme = factor_two_scheme(base, eps=0.4, r=max(4.0, r), quantize=grid.up)
    participating = set(scheme.participating())
    if not participating:
        pytest.skip("instance has no participants")
    coloring = distance2_coloring(graph, subset=participating)
    sch_values = {u: var.x for u, var in scheme.instance.value_vars.items()}
    final, coins, sim = run_lemma310_on_graph(
        graph, sch_values, scheme.p, coloring.colors, mode="chernoff", grid=grid
    )
    out = CFDS.fds(graph, final)
    assert out.is_feasible()


def test_uniform_regular_instance_matches():
    graph = regular_graph(24, 5, seed=6)
    delta_tilde = 6
    values = {v: 1.0 / delta_tilde for v in graph.nodes()}
    grid = TransmittableGrid.for_n(24)
    base = CoveringInstance.from_graph(graph, values)
    scheme = one_shot_scheme(base, delta_tilde, quantize=grid.up)
    coloring = distance2_coloring(graph, subset=set(scheme.participating()))
    sch_values = {u: var.x for u, var in scheme.instance.value_vars.items()}
    final, coins, sim = run_lemma310_on_graph(
        graph, sch_values, scheme.p, coloring.colors, mode="exact-product", grid=grid
    )
    engine = ConditionalExpectationEngine(scheme, EstimatorConfig(mode="exact-product"))
    central = engine.run(schedule_from_colors(scheme, coloring.colors))
    assert coins == {u: int(b) for u, b in central.decisions.items()}
    ds = {v for v, x in final.items() if x >= 1 - 1e-9}
    assert is_dominating_set(graph, ds)
