"""Tour of the unified experiment API (``repro.api``).

Four stops:

1. the **program registry** — every CONGEST node program (and the CDS
   composite pipeline) is a named, self-registered :class:`ProgramSpec`;
2. the **Experiment builder** — declarative grid construction, with the
   execution strategy negotiated per spec;
3. **streaming** — records arrive the moment each cell / batch group
   finishes, not when the whole grid returns;
4. the **composite spec** — the Theorem 1.4 CDS pipeline driven through
   the exact same surface as the single-program workloads.

Usage:  python examples/experiment_api.py [n] [seeds]
"""

from __future__ import annotations

import sys

from repro.api import (
    Experiment,
    available_programs,
    batchable_programs,
    program_spec,
    registered_specs,
)


def main(n: int = 40, seeds: int = 4) -> None:
    # -- 1. the registry ------------------------------------------------------
    print("registered programs:")
    for spec in registered_specs():
        tags = []
        if spec.batchable:
            tags.append("batchable")
        if spec.composite:
            tags.append("composite")
        suffix = f"  [{', '.join(tags)}]" if tags else ""
        print(f"  {spec.name:<16s} {spec.description}{suffix}")
    print(f"grid-default axis : {', '.join(available_programs())}")
    print(f"stackable         : {', '.join(batchable_programs())}")

    # -- 2. the builder -------------------------------------------------------
    # A seed ensemble of two stackable programs on the vector engine;
    # strategy "auto" (the default) negotiates to "batch" here, so all
    # seeds of each (family, program) advance as one stacked message plane.
    experiment = (
        Experiment("greedy", "color-reduction")
        .on("gnp", "tree")
        .sizes(n)
        .engine("vector")
        .seeds(seeds)
    )
    print(f"\nnegotiated strategy: {experiment.resolved_strategy()}")
    sweep = experiment.run()
    assert sweep.ok, sweep.failures()
    stacked = sum(1 for rec in sweep if rec.batch)
    print(f"sweep: {len(sweep)} records, {stacked} from stacked planes")
    for rec in sweep.records[:3]:
        value = rec.metrics.get("ds_size", rec.metrics.get("colors"))
        print(
            f"  {rec.key:<40s} rounds={rec.metrics['rounds']:<4d} "
            f"result={value}"
        )

    # -- 3. streaming ---------------------------------------------------------
    print("\nstreaming a BFS grid (records in completion order):")
    stream = Experiment("bfs").on("tree", "gnp").sizes(n).seeds(2).stream()
    for i, rec in enumerate(stream, start=1):
        print(f"  record {i}: {rec.key} reached={rec.metrics['reached']}")

    # -- 4. the composite spec ------------------------------------------------
    spec = program_spec("cds")
    print(f"\ncomposite spec {spec.name!r}: {spec.description}")
    cds = Experiment("cds").on("tree").sizes(n).run()
    assert cds.ok, cds.failures()
    metrics = cds.records[0].metrics
    print(
        f"  cds_size={metrics['cds_size']} mds_size={metrics['mds_size']} "
        f"overhead={metrics['overhead']}"
    )

    # Typed records convert losslessly to the legacy dict shape.
    record = cds.records[0].to_dict()
    print(f"  legacy record keys: {sorted(record)}")


if __name__ == "__main__":
    main(
        n=int(sys.argv[1]) if len(sys.argv) > 1 else 40,
        seeds=int(sys.argv[2]) if len(sys.argv) > 2 else 4,
    )
