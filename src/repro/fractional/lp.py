"""LP relaxation of minimum dominating set / generic covering instances.

``min sum w(u) x(u)`` subject to ``sum_{u in members(v)} x(u) >= c(v)`` and
``0 <= x <= 1``, solved with HiGHS through ``scipy.optimize.linprog`` on a
sparse constraint matrix.  The LP optimum lower-bounds the integral optimum,
so every experiment reports approximation ratios against it (exact OPT is
also available for small instances via :mod:`repro.baselines.exact`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import networkx as nx
import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.domsets.covering import CoveringInstance
from repro.errors import LPError, LPInfeasibleError


@dataclass(frozen=True)
class LPSolution:
    """A feasible fractional covering solution and its objective value."""

    values: Dict[int, float]
    optimum: float

    def fractionality(self, tol: float = 1e-9) -> float:
        nonzero = [x for x in self.values.values() if x > tol]
        return min(nonzero) if nonzero else float("inf")


def solve_covering_lp(instance: CoveringInstance) -> LPSolution:
    """Solve the covering LP of a :class:`CoveringInstance` exactly."""
    var_ids = sorted(instance.value_vars)
    index = {u: i for i, u in enumerate(var_ids)}
    num_vars = len(var_ids)
    cons = sorted(instance.constraints)
    rows, cols, data = [], [], []
    b = []
    for row, cid in enumerate(cons):
        cn = instance.constraints[cid]
        for u in cn.members:
            rows.append(row)
            cols.append(index[u])
            data.append(-1.0)
        b.append(-cn.c)
    a_ub = sparse.csr_matrix(
        (data, (rows, cols)), shape=(len(cons), num_vars)
    )
    cost = np.array(
        [instance.value_vars[u].weight for u in var_ids], dtype=float
    )
    result = linprog(
        c=cost,
        A_ub=a_ub,
        b_ub=np.array(b, dtype=float),
        bounds=[(0.0, 1.0)] * num_vars,
        method="highs",
    )
    if not result.success:
        # linprog/HiGHS status codes: 1 iteration limit, 2 infeasible,
        # 3 unbounded, 4 numerical difficulties.  Infeasibility is a fact
        # about the instance and gets its own type; everything else is a
        # solver failure the certification oracle may fall back from.
        if result.status == 2:
            raise LPInfeasibleError(
                f"covering LP is infeasible (HiGHS status {result.status}): "
                f"{result.message}",
                status=result.status,
            )
        raise LPError(
            f"LP solver failed (HiGHS status {result.status}): "
            f"{result.message}",
            status=result.status,
        )
    values = {u: float(max(0.0, result.x[index[u]])) for u in var_ids}
    return LPSolution(values=values, optimum=float(result.fun))


def lp_fractional_mds(graph: nx.Graph) -> LPSolution:
    """LP-optimal fractional dominating set of a graph.

    The returned values are nudged up slightly and clipped so the covering
    constraints hold with a strict margin despite solver tolerance (the
    downstream pruning step of Lemma 3.13 requires honest feasibility).
    """
    instance = CoveringInstance.from_graph(
        graph, {v: 0.0 for v in graph.nodes()}
    )
    solution = solve_covering_lp(instance)
    safe = {
        u: min(1.0, x * (1.0 + 1e-7) + (1e-12 if x > 0 else 0.0))
        for u, x in solution.values.items()
    }
    return LPSolution(values=safe, optimum=solution.optimum)
