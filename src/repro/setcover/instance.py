"""Set cover instances and their covering-instance view."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Set

from repro.domsets.covering import Constraint, CoveringInstance, ValueVar
from repro.errors import InfeasibleSolutionError


@dataclass(frozen=True)
class SetCoverInstance:
    """A finite universe and a family of subsets (optionally weighted)."""

    sets: Dict[int, FrozenSet[int]]
    universe: FrozenSet[int]
    weights: Dict[int, float] | None = None

    def __post_init__(self) -> None:
        covered: Set[int] = set()
        for sid, members in self.sets.items():
            covered |= members
        if not self.universe <= covered:
            missing = sorted(self.universe - covered)
            raise InfeasibleSolutionError(
                f"universe elements {missing[:5]} covered by no set"
            )

    @classmethod
    def from_iterables(
        cls,
        sets: Mapping[int, Iterable[int]],
        universe: Iterable[int] | None = None,
        weights: Mapping[int, float] | None = None,
    ) -> "SetCoverInstance":
        frozen = {int(k): frozenset(v) for k, v in sets.items()}
        if universe is None:
            uni: Set[int] = set()
            for members in frozen.values():
                uni |= members
        else:
            uni = set(universe)
        return cls(
            sets=frozen,
            universe=frozenset(uni),
            weights=dict(weights) if weights else None,
        )

    @property
    def max_element_frequency(self) -> int:
        """Largest number of sets covering one element (the ``Delta~``
        analogue for the rounding boost)."""
        freq: Dict[int, int] = {}
        for members in self.sets.values():
            for e in members:
                freq[e] = freq.get(e, 0) + 1
        return max((freq[e] for e in self.universe), default=1)

    @property
    def max_set_size(self) -> int:
        return max((len(s) for s in self.sets.values()), default=0)

    def weight_of(self, sid: int) -> float:
        return self.weights.get(sid, 1.0) if self.weights else 1.0

    def cover_weight(self, chosen: Iterable[int]) -> float:
        return sum(self.weight_of(s) for s in set(chosen))

    def is_cover(self, chosen: Iterable[int]) -> bool:
        covered: Set[int] = set()
        for sid in chosen:
            covered |= self.sets[sid]
        return self.universe <= covered

    def to_covering(self) -> CoveringInstance:
        """Sets become value variables, elements become constraints.

        The constraint of element ``e`` designates the smallest-ID covering
        set as its repair origin (phase two of the rounding).
        """
        value_vars = [
            ValueVar(id=sid, x=0.0, origin=sid, weight=self.weight_of(sid))
            for sid in sorted(self.sets)
        ]
        constraints: List[Constraint] = []
        covering_sets: Dict[int, List[int]] = {e: [] for e in self.universe}
        for sid in sorted(self.sets):
            for e in self.sets[sid]:
                if e in covering_sets:
                    covering_sets[e].append(sid)
        for idx, e in enumerate(sorted(self.universe)):
            members = tuple(sorted(covering_sets[e]))
            origin = members[0]
            constraints.append(
                Constraint(
                    id=idx,
                    c=1.0,
                    members=members,
                    origin=origin,
                    join_weight=self.weight_of(origin),
                )
            )
        return CoveringInstance(value_vars, constraints)


def random_setcover_instance(
    num_elements: int,
    num_sets: int,
    set_size: int,
    seed: int = 0,
    weighted: bool = False,
) -> SetCoverInstance:
    """Random instance where every element is guaranteed coverable."""
    rng = random.Random(seed)
    elements = list(range(num_elements))
    sets: Dict[int, Set[int]] = {
        sid: set(rng.sample(elements, min(set_size, num_elements)))
        for sid in range(num_sets)
    }
    # Guarantee coverage: sprinkle missing elements round-robin.
    covered: Set[int] = set()
    for members in sets.values():
        covered |= members
    for i, e in enumerate(sorted(set(elements) - covered)):
        sets[i % num_sets].add(e)
    weights = (
        {sid: 1.0 + rng.random() * 9.0 for sid in sets} if weighted else None
    )
    return SetCoverInstance.from_iterables(sets, elements, weights)
