"""Graph generators, normalization, powers and the benchmark suite."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GraphError
from repro.graphs.generators import (
    caterpillar_graph,
    clique_graph,
    dumbbell_graph,
    geometric_graph,
    gnp_graph,
    grid_graph,
    preferential_attachment_graph,
    random_tree,
    regular_graph,
    ring_graph,
    star_graph,
)
from repro.graphs.normalize import is_normalized, normalize_graph, require_normalized
from repro.graphs.powers import (
    ball,
    graph_power,
    nodes_within,
    shortest_path_within,
    square_graph,
)
from repro.graphs.suite import benchmark_suite, families, suite_instance
from repro.graphs.validation import degree_stats, require_connected


class TestNormalize:
    def test_relabels_to_range(self):
        g = nx.Graph([("b", "a"), ("a", "c")])
        n = normalize_graph(g)
        assert set(n.nodes()) == {0, 1, 2}
        assert is_normalized(n)

    def test_drops_self_loops(self):
        g = nx.Graph([(0, 0), (0, 1)])
        n = normalize_graph(g)
        assert n.number_of_edges() == 1

    def test_rejects_directed(self):
        with pytest.raises(GraphError):
            normalize_graph(nx.DiGraph([(0, 1)]))

    def test_deterministic(self):
        g = nx.Graph([("x", "y"), ("y", "z")])
        assert nx.utils.graphs_equal(normalize_graph(g), normalize_graph(g))

    def test_require_normalized_raises(self):
        g = nx.Graph()
        g.add_node(5)
        with pytest.raises(GraphError):
            require_normalized(g)


class TestGenerators:
    def test_gnp_connected_and_seeded(self):
        a = gnp_graph(50, 0.05, seed=3)
        b = gnp_graph(50, 0.05, seed=3)
        assert nx.is_connected(a)
        assert nx.utils.graphs_equal(a, b)

    def test_gnp_rejects_bad_n(self):
        with pytest.raises(GraphError):
            gnp_graph(0, 0.5)

    def test_geometric_default_radius_connected(self):
        g = geometric_graph(60, seed=1)
        assert nx.is_connected(g)
        assert is_normalized(g)

    def test_preferential_attachment(self):
        g = preferential_attachment_graph(40, m=2, seed=2)
        assert g.number_of_edges() == pytest.approx(2 * 38, abs=4)
        with pytest.raises(GraphError):
            preferential_attachment_graph(2, m=3)

    def test_grid_shape(self):
        g = grid_graph(3, 4)
        assert g.number_of_nodes() == 12
        assert max(d for _, d in g.degree()) <= 4

    def test_ring(self):
        g = ring_graph(7)
        assert all(d == 2 for _, d in g.degree())

    def test_random_tree_is_tree(self):
        for n in (1, 2, 3, 20):
            g = random_tree(n, seed=5)
            assert nx.is_tree(g)
            assert g.number_of_nodes() == n

    def test_caterpillar(self):
        g = caterpillar_graph(4, legs_per_node=2)
        assert g.number_of_nodes() == 4 + 8
        assert nx.is_tree(g)

    def test_regular_degree(self):
        g = regular_graph(20, 6, seed=1)
        assert all(d == 6 for _, d in g.degree())
        with pytest.raises(GraphError):
            regular_graph(7, 3)

    def test_star_and_clique(self):
        assert max(d for _, d in star_graph(5).degree()) == 5
        assert clique_graph(5).number_of_edges() == 10

    def test_dumbbell_connected(self):
        g = dumbbell_graph(4, 3)
        assert nx.is_connected(g)
        assert g.number_of_nodes() == 11


class TestPowers:
    def test_square_of_path(self):
        g = normalize_graph(nx.path_graph(5))
        sq = square_graph(g)
        assert sq.has_edge(0, 2)
        assert not sq.has_edge(0, 3)

    def test_power_matches_distance(self, small_gnp):
        k = 3
        p = graph_power(small_gnp, k)
        lengths = dict(nx.all_pairs_shortest_path_length(small_gnp))
        for u in small_gnp.nodes():
            for v in small_gnp.nodes():
                if u == v:
                    continue
                expect = lengths[u].get(v, 10 ** 9) <= k
                assert p.has_edge(u, v) == expect

    def test_power_rejects_bad_k(self, path5):
        with pytest.raises(GraphError):
            graph_power(path5, 0)

    def test_ball_restricted(self, path5):
        b = ball(path5, 0, 2, within={0, 1})
        assert set(b) == {0, 1}

    def test_nodes_within_multi_source(self, path5):
        assert nodes_within(path5, [0, 4], 1) == {0, 1, 3, 4}

    def test_shortest_path_within(self, path5):
        assert shortest_path_within(path5, 0, 3, 3) == [0, 1, 2, 3]
        assert shortest_path_within(path5, 0, 4, 3) is None
        assert shortest_path_within(path5, 2, 2, 0) == [2]


class TestSuite:
    def test_families_stable(self):
        assert "gnp" in families()
        assert "geometric" in families()

    def test_instance_reproducible(self):
        a = suite_instance("gnp", 40, seed=1)
        b = suite_instance("gnp", 40, seed=1)
        assert nx.utils.graphs_equal(a.graph, b.graph)
        assert a.name == "gnp-40"

    def test_unknown_family(self):
        with pytest.raises(GraphError):
            suite_instance("nope", 10)

    def test_benchmark_suite_covers_families(self):
        instances = list(benchmark_suite(sizes=(20,), families_subset=("gnp", "tree")))
        assert {i.family for i in instances} == {"gnp", "tree"}


class TestValidation:
    def test_degree_stats(self, small_gnp):
        stats = degree_stats(small_gnp)
        assert stats.n == 30
        assert stats.delta_tilde == stats.max_degree + 1
        assert stats.min_degree <= stats.avg_degree <= stats.max_degree

    def test_require_connected(self):
        g = normalize_graph(nx.Graph([(0, 1), (2, 3)]))
        with pytest.raises(GraphError):
            require_connected(g)
        with pytest.raises(GraphError):
            require_connected(nx.Graph())


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 40), st.integers(0, 10))
def test_gnp_always_normalized_connected(n, seed):
    g = gnp_graph(n, 3.0 / n, seed=seed)
    assert is_normalized(g)
    assert nx.is_connected(g)
