"""Plain-text table formatting for experiment harnesses.

The benchmark suite prints each reproduced "table" of the paper's claims as an
aligned ASCII table so `pytest benchmarks/ --benchmark-only -s` output reads
like the evaluation section of a systems paper.
"""

from __future__ import annotations

from typing import Iterable, Sequence


class TableFormatter:
    """Accumulates rows and renders an aligned ASCII table.

    Example
    -------
    >>> t = TableFormatter(["graph", "n", "ratio"])
    >>> t.add_row(["gnp", 100, 1.25])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, columns: Sequence[str], title: str | None = None):
        self.columns = list(columns)
        self.title = title
        self._rows: list[list[str]] = []

    @staticmethod
    def _fmt(value: object) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000 or abs(value) < 0.001:
                return f"{value:.3g}"
            return f"{value:.3f}"
        return str(value)

    def add_row(self, values: Iterable[object]) -> None:
        row = [self._fmt(v) for v in values]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.columns)} columns"
            )
        self._rows.append(row)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(header)
        lines.append(sep)
        for row in self._rows:
            lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._rows)
