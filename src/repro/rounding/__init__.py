"""The abstract randomized rounding process (Section 3.1) and its two
instantiations: one-shot rounding and factor-two rounding (Section 3.2).
"""

from repro.rounding.abstract import (
    RoundingOutcome,
    RoundingScheme,
    execute_rounding,
    expected_output_size,
)
from repro.rounding.schemes import factor_two_scheme, one_shot_scheme
from repro.rounding.coins import independent_coins, kwise_coins

__all__ = [
    "RoundingOutcome",
    "RoundingScheme",
    "execute_rounding",
    "expected_output_size",
    "factor_two_scheme",
    "one_shot_scheme",
    "independent_coins",
    "kwise_coins",
]
