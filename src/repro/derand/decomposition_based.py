"""Derandomization via network decompositions (Section 3.2, Lemma 3.4).

The engine's schedule is derived from a 2-hop network decomposition of the
graph: colors are processed in order; within one color class, the j-th
member of every cluster forms one simultaneous batch (clusters of the same
color are 2-separated, so their inclusive neighborhoods — hence the
constraints their members touch — are disjoint, exactly the paper's "bits of
distinct clusters with the same color can be fixed at the same time").
Within a cluster, members are fixed sequentially in ID order, mirroring the
per-cluster seed-bit fixing (one coin per member substitutes the seed; see
DESIGN.md Section 3 item 3 for why the guarantee is preserved verbatim).

Round accounting per the paper: fixing one coin costs one aggregation over
the cluster tree (O(depth) rounds), clusters of one color run in parallel,
and constructing the decomposition is charged at the [GK18] rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping

import networkx as nx

from repro.congest.cost import CostLedger, gk18_decomposition_rounds
from repro.decomposition.ball_carving import carve_decomposition
from repro.decomposition.cluster_graph import NetworkDecomposition
from repro.derand.conditional import ConditionalExpectationEngine, DerandResult
from repro.derand.estimators import EstimatorConfig
from repro.domsets.covering import CoveringInstance
from repro.errors import DerandomizationError
from repro.rounding.abstract import RoundingScheme
from repro.rounding.schemes import factor_two_scheme, one_shot_scheme
from repro.util.transmittable import TransmittableGrid


@dataclass
class DecompositionDerandOutput:
    """Result of one decomposition-route rounding step."""

    values: Dict[int, float]
    result: DerandResult
    decomposition: NetworkDecomposition
    ledger: CostLedger
    scheme_name: str


def schedule_from_decomposition(
    scheme: RoundingScheme, decomposition: NetworkDecomposition
) -> List[List[int]]:
    """Batches: per color, the j-th participating member of every cluster.

    Participating variables must be graph nodes (the scheme's instance must
    come from :meth:`CoveringInstance.from_graph`, where variable ids are
    node ids), since cluster membership is by node.
    """
    participants = set(scheme.participating())
    placed = set()
    schedule: List[List[int]] = []
    for color_class in decomposition.color_classes():
        member_lists = []
        for cluster in color_class:
            inside = sorted(u for u in cluster.members if u in participants)
            if inside:
                member_lists.append(inside)
            placed.update(inside)
        longest = max((len(lst) for lst in member_lists), default=0)
        for j in range(longest):
            batch = [lst[j] for lst in member_lists if j < len(lst)]
            if batch:
                schedule.append(sorted(batch))
    missing = participants - placed
    if missing:
        raise DerandomizationError(
            f"{len(missing)} participating variables not covered by the "
            f"decomposition (e.g. {sorted(missing)[:5]}); variable ids must "
            "be graph node ids"
        )
    return schedule


def charge_cluster_loop(
    ledger: CostLedger,
    scheme: RoundingScheme,
    decomposition: NetworkDecomposition,
) -> None:
    """Charge the Lemma 3.4 seed-fixing cost: per color, the largest
    per-cluster coin count times one tree aggregation (2*depth + 2)."""
    participants = set(scheme.participating())
    total = 0
    for color_class in decomposition.color_classes():
        worst = 0
        for cluster in color_class:
            coins = sum(1 for u in cluster.members if u in participants)
            cost = coins * (2 * cluster.depth + 2)
            worst = max(worst, cost)
        total += worst
    ledger.charge("lemma3.4-seed-fixing", total)


def derandomized_rounding_with_decomposition(
    scheme: RoundingScheme,
    decomposition: NetworkDecomposition,
    config: EstimatorConfig | None = None,
) -> DerandResult:
    """Lemma 3.4: run the engine over the decomposition-derived schedule."""
    engine = ConditionalExpectationEngine(scheme, config)
    return engine.run(schedule_from_decomposition(scheme, decomposition))


def _prepare(graph: nx.Graph, decomposition: NetworkDecomposition | None,
             ledger: CostLedger) -> NetworkDecomposition:
    if decomposition is None:
        decomposition = carve_decomposition(graph, separation_k=2)
    ledger.charge(
        "gk18-decomposition",
        gk18_decomposition_rounds(graph.number_of_nodes(), k=2),
    )
    return decomposition


def one_shot_via_decomposition(
    graph: nx.Graph,
    values: Mapping[int, float],
    decomposition: NetworkDecomposition | None = None,
    config: EstimatorConfig | None = None,
    grid: TransmittableGrid | None = None,
) -> DecompositionDerandOutput:
    """Lemma 3.8: deterministic one-shot rounding, decomposition route.

    Output: an integral dominating set of size at most
    ``ln(Delta~) A + n/Delta~`` plus quantization slack.
    """
    n = graph.number_of_nodes()
    grid = grid or TransmittableGrid.for_n(n)
    delta_tilde = max((d for _, d in graph.degree()), default=0) + 1
    ledger = CostLedger()
    decomposition = _prepare(graph, decomposition, ledger)

    base = CoveringInstance.from_graph(graph, values)
    scheme = one_shot_scheme(base, delta_tilde, quantize=grid.up)

    cfg = config or EstimatorConfig(mode="exact-product")
    result = derandomized_rounding_with_decomposition(scheme, decomposition, cfg)
    charge_cluster_loop(ledger, scheme, decomposition)
    ledger.charge("rounding-execution", 2)

    return DecompositionDerandOutput(
        values=result.outcome.projected,
        result=result,
        decomposition=decomposition,
        ledger=ledger,
        scheme_name="one-shot/decomposition",
    )


def factor_two_via_decomposition(
    graph: nx.Graph,
    values: Mapping[int, float],
    eps: float,
    r: float,
    decomposition: NetworkDecomposition | None = None,
    config: EstimatorConfig | None = None,
    grid: TransmittableGrid | None = None,
) -> DecompositionDerandOutput:
    """Lemma 3.9: deterministic factor-two rounding, decomposition route.

    Doubles the fractionality ``1/r -> 2/r`` at a ``(1+eps)`` size factor
    plus the uncovered-probability penalty (``n/Delta~^4`` when ``r >= 256
    eps^-3 ln Delta~``; the Chernoff estimator realizes whatever the actual
    instance admits).
    """
    n = graph.number_of_nodes()
    grid = grid or TransmittableGrid.for_n(n)
    ledger = CostLedger()
    decomposition = _prepare(graph, decomposition, ledger)

    base = CoveringInstance.from_graph(graph, values)
    scheme = factor_two_scheme(base, eps, r, quantize=grid.up)

    cfg = config or EstimatorConfig(mode="chernoff")
    result = derandomized_rounding_with_decomposition(scheme, decomposition, cfg)
    charge_cluster_loop(ledger, scheme, decomposition)
    ledger.charge("rounding-execution", 2)

    return DecompositionDerandOutput(
        values=result.outcome.projected,
        result=result,
        decomposition=decomposition,
        ledger=ledger,
        scheme_name="factor-two/decomposition",
    )


def charged_rounds_formula_theorem11(n: int, delta: int, eps: float) -> int:
    """The Theorem 1.1 round bound ``O(eps^-4 log^2 Delta) +
    2^O(sqrt(log n log log n))`` with unit constants."""
    log_delta = max(1.0, math.log2(max(2, delta)))
    return int(
        math.ceil(log_delta ** 2 / eps ** 4)
    ) + gk18_decomposition_rounds(n, k=2)
