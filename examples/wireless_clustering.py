"""Wireless sensor-network clustering — the paper's motivating application.

A random geometric (unit-disk) graph models sensors with a fixed radio
range.  A dominating set is a set of *cluster heads*: every sensor is a
head or hears one directly.  The deterministic CONGEST algorithm matters
here precisely because sensor nodes cannot rely on shared randomness and
must bound worst-case convergence time.

The script computes cluster heads with Theorem 1.2, assigns every sensor
to its nearest head, and reports cluster-size statistics and the radio
efficiency (heads vs the LP lower bound).

Usage:  python examples/wireless_clustering.py [n] [seed]
"""

from __future__ import annotations

import statistics
import sys

from repro import approx_mds_coloring, lp_fractional_mds
from repro.analysis.verify import require_dominating_set
from repro.graphs import geometric_graph


def main(n: int = 150, seed: int = 7) -> None:
    graph = geometric_graph(n, seed=seed)
    delta = max(d for _, d in graph.degree())
    print(f"sensor field: {n} sensors, {graph.number_of_edges()} links, Delta={delta}")

    result = approx_mds_coloring(graph, eps=0.5)
    heads = require_dominating_set(graph, result.dominating_set, "cluster heads")
    lp = lp_fractional_mds(graph)
    print(
        f"cluster heads: {len(heads)} "
        f"({100.0 * len(heads) / n:.1f}% of sensors, LP bound {lp.optimum:.1f}, "
        f"ratio {len(heads) / lp.optimum:.3f})"
    )

    # Assign each sensor to its smallest-ID adjacent head.
    cluster: dict[int, list[int]] = {h: [] for h in heads}
    for v in graph.nodes():
        if v in heads:
            cluster[v].append(v)
            continue
        head = min(u for u in graph.neighbors(v) if u in heads)
        cluster[head].append(v)

    sizes = sorted(len(members) for members in cluster.values())
    print(
        f"cluster sizes: min={sizes[0]} median={sizes[len(sizes) // 2]} "
        f"max={sizes[-1]} mean={statistics.mean(sizes):.2f}"
    )

    # Energy proxy: every non-head sensor transmits one hop to its head.
    uplinks = sum(len(m) - (1 if h in m else 0) for h, m in cluster.items())
    print(f"one-hop uplinks per round: {uplinks} (= n - heads = {n - len(heads)})")

    print("\nlargest clusters:")
    for head, members in sorted(cluster.items(), key=lambda kv: -len(kv[1]))[:5]:
        print(f"  head {head:>4d}: {len(members)} sensors")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    main(*args)
