"""The randomized counterpart of the pipeline.

Runs the same Part I / II / III cascade but executes the abstract rounding
process with actual coins — fully independent or ``k``-wise independent from
a shared seed (Lemma 3.3).  Used by experiment E4 (validating the
Lemma 3.6/3.7 uncovered-probability bounds under limited independence) and
E7 (randomized-vs-deterministic comparison); a failed phase (leaving some
constraint uncovered) is *not* retried — phase two repairs it, exactly as in
the paper's process.
"""

from __future__ import annotations

import math
import random

import networkx as nx

from repro.analysis.verify import require_dominating_set
from repro.congest.cost import CostLedger
from repro.domsets.cfds import CFDS, fractionality_of
from repro.domsets.covering import CoveringInstance
from repro.fractional.raising import kmw06_initial_fds
from repro.mds.pipeline import MDSResult, PipelineParams, StageTrace
from repro.rounding.abstract import execute_rounding
from repro.rounding.coins import independent_coins, kwise_coins
from repro.rounding.schemes import factor_two_scheme, one_shot_scheme


def approx_mds_randomized(
    graph: nx.Graph,
    eps: float = 0.5,
    seed: int = 0,
    kwise: int | None = None,
    params: PipelineParams | None = None,
) -> MDSResult:
    """Randomized MDS via the abstract rounding process.

    ``kwise=None`` uses fully independent coins; an integer ``k`` draws all
    coins of each phase from one shared ``k``-wise independent seed.
    """
    params = params or PipelineParams(eps=eps)
    rng = random.Random(seed)
    max_degree = max((d for _, d in graph.degree()), default=0)
    consts = params.derived(max_degree)
    ledger = CostLedger()
    trace = []

    initial = kmw06_initial_fds(graph, eps=consts.eps1, provider=params.part1_provider)
    ledger.merge(initial.ledger, prefix="part1/")
    values = dict(initial.fds.values)
    trace.append(
        StageTrace("part1-fractional", initial.raised_size, initial.fds.fractionality)
    )

    def make_coins(scheme):
        if kwise is None:
            return independent_coins(scheme, rng)
        m = max(12, math.ceil(math.log2(max(2, graph.number_of_nodes()))) + 2)
        return kwise_coins(scheme, k=kwise, m=m, rng=rng)

    r = 1.0 / fractionality_of(values)
    iterations = 0
    while r > consts.f_target and iterations < params.max_factor_two_iterations:
        base = CoveringInstance.from_graph(graph, values)
        scheme = factor_two_scheme(base, consts.eps2, r)
        outcome = execute_rounding(scheme, make_coins(scheme))
        values = outcome.projected
        ledger.charge("part2-rounding", 2)
        cfds = CFDS.fds(graph, values)
        cfds.require_feasible(f"randomized Part II iteration {iterations}")
        r_new = 1.0 / fractionality_of(values)
        trace.append(
            StageTrace(
                f"part2-factor-two-{iterations}", cfds.size, cfds.fractionality
            )
        )
        if r_new > r / 1.5:
            r = r_new
            break
        r = r_new
        iterations += 1

    base = CoveringInstance.from_graph(graph, values)
    scheme = one_shot_scheme(base, max_degree + 1)
    outcome = execute_rounding(scheme, make_coins(scheme))
    ledger.charge("part3-rounding", 2)
    ds = {v for v, x in outcome.projected.items() if x >= 1.0 - 1e-9}
    require_dominating_set(graph, ds, "randomized pipeline output")
    trace.append(StageTrace("part3-one-shot", float(len(ds)), 1.0))

    return MDSResult(
        graph=graph,
        dominating_set=ds,
        ledger=ledger,
        trace=trace,
        params={
            "eps": params.eps,
            "eps1": consts.eps1,
            "eps2": consts.eps2,
            "seed": float(seed),
            "kwise": float(kwise) if kwise is not None else -1.0,
            "part2_iterations": float(iterations),
        },
        route="randomized" + (f"/k={kwise}" if kwise else "/independent"),
    )
