"""Math helpers and table formatting."""

import math

import pytest

from repro.util.mathx import (
    H_harmonic,
    ceil_log2,
    clamp01,
    ilog2,
    ln_tilde_delta,
    log_star,
)
from repro.util.tables import TableFormatter


class TestHarmonic:
    def test_small_values(self):
        assert H_harmonic(1) == 1.0
        assert H_harmonic(2) == pytest.approx(1.5)
        assert H_harmonic(4) == pytest.approx(1 + 0.5 + 1 / 3 + 0.25)

    def test_zero(self):
        assert H_harmonic(0) == 0.0

    def test_large_matches_asymptotic(self):
        # Exact sum vs the expansion at the switch point.
        exact = sum(1.0 / i for i in range(1, 1001))
        assert H_harmonic(1000) == pytest.approx(exact, abs=1e-9)

    def test_upper_bounded_by_one_plus_ln(self):
        for k in (1, 5, 50, 500):
            assert H_harmonic(k) <= 1.0 + math.log(k) + 1e-12


class TestLogs:
    def test_ilog2(self):
        assert ilog2(1) == 0
        assert ilog2(2) == 1
        assert ilog2(3) == 1
        assert ilog2(1024) == 10

    def test_ilog2_rejects_zero(self):
        with pytest.raises(ValueError):
            ilog2(0)

    def test_ceil_log2(self):
        assert ceil_log2(1) == 0
        assert ceil_log2(2) == 1
        assert ceil_log2(3) == 2
        assert ceil_log2(1025) == 11

    def test_log_star(self):
        assert log_star(1) == 0
        assert log_star(2) == 1
        assert log_star(4) == 2
        assert log_star(16) == 3
        assert log_star(65536) == 4

    def test_clamp01(self):
        assert clamp01(-1.0) == 0.0
        assert clamp01(0.5) == 0.5
        assert clamp01(2.0) == 1.0

    def test_ln_tilde(self):
        assert ln_tilde_delta(0) == 0.0
        assert ln_tilde_delta(math.e ** 2 - 1) == pytest.approx(2.0, abs=0.1)


class TestTableFormatter:
    def test_renders_aligned(self):
        t = TableFormatter(["a", "bb"], title="T")
        t.add_row(["x", 1])
        t.add_row(["longer", 2.5])
        out = t.render()
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len({len(line) for line in lines[2:]}) <= 2  # aligned rows

    def test_rejects_bad_row(self):
        t = TableFormatter(["a"])
        with pytest.raises(ValueError):
            t.add_row([1, 2])

    def test_float_formatting(self):
        t = TableFormatter(["v"])
        t.add_row([0.00001234])
        t.add_row([12345.6])
        t.add_row([0.5])
        out = t.render()
        assert "1.23e-05" in out
        assert "0.500" in out

    def test_len(self):
        t = TableFormatter(["v"])
        assert len(t) == 0
        t.add_row([1])
        assert len(t) == 1
