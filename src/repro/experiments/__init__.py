"""Experiment implementations E1-E12 (see DESIGN.md Section 2).

Each module exposes ``run(fast: bool = True) -> ExperimentReport``; the
``benchmarks/`` tree wraps them in pytest-benchmark targets and prints the
tables.  ``fast=True`` sweeps a reduced grid suitable for CI; the full grid
is selected by ``REPRO_FULL=1`` in the environment.
"""

from repro.experiments.harness import (
    ExperimentReport,
    engine_grid_cells,
    engine_grid_report,
    fast_mode,
    standard_suite,
)

__all__ = [
    "ExperimentReport",
    "engine_grid_cells",
    "engine_grid_report",
    "standard_suite",
    "fast_mode",
]
