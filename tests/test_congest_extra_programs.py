"""Distributed greedy MDS, distributed color reduction, and the LOCAL-model
pipeline (Corollary 1.3)."""

import pytest

from repro.analysis.verify import is_dominating_set
from repro.baselines.greedy import greedy_mds
from repro.coloring.greedy import validate_coloring
from repro.congest.network import Network
from repro.congest.programs.color_reduction import run_color_reduction
from repro.congest.programs.greedy_mds import run_distributed_greedy
from repro.graphs.generators import regular_graph, star_graph
from repro.mds.local_model import approx_mds_local, corollary13_round_formula
from repro.mds.deterministic import approx_mds_coloring


class TestDistributedGreedy:
    def test_valid_on_zoo(self, zoo_graph):
        ds, _ = run_distributed_greedy(zoo_graph)
        assert is_dominating_set(zoo_graph, ds)

    def test_star_picks_center(self):
        g = star_graph(7)
        ds, sim = run_distributed_greedy(g)
        center = max(g.nodes(), key=g.degree)
        assert ds == {center}
        assert sim.rounds <= 12

    def test_quality_tracks_sequential_greedy(self, medium_gnp):
        ds, _ = run_distributed_greedy(medium_gnp)
        sequential = greedy_mds(medium_gnp)
        assert len(ds) <= 2 * len(sequential) + 2

    def test_deterministic(self, small_gnp):
        a, _ = run_distributed_greedy(small_gnp)
        b, _ = run_distributed_greedy(small_gnp)
        assert a == b

    def test_messages_within_budget(self, small_gnp):
        network = Network.congest(small_gnp)
        _, sim = run_distributed_greedy(small_gnp, network=network)
        assert sim.max_message_bits <= network.bit_budget

    def test_phase_structure(self, small_tree):
        _, sim = run_distributed_greedy(small_tree)
        # 4 rounds per phase, at least one phase.
        assert sim.rounds >= 4


class TestDistributedColorReduction:
    def test_reaches_delta_plus_one(self, zoo_graph):
        colors, _ = run_color_reduction(zoo_graph)
        used = validate_coloring(zoo_graph, colors)
        delta = max((d for _, d in zoo_graph.degree()), default=0)
        assert used <= delta + 1

    def test_rounds_linear_in_n(self, small_gnp):
        _, sim = run_color_reduction(small_gnp)
        assert sim.rounds <= small_gnp.number_of_nodes() + 2

    def test_custom_initial_coloring(self, path5):
        initial = {v: v + 1 for v in path5.nodes()}
        colors, _ = run_color_reduction(path5, initial=initial)
        used = validate_coloring(path5, colors)
        assert used <= 3

    def test_matches_centralized_palette_size(self, small_regular):
        from repro.coloring.reduction import reduce_coloring

        distributed, _ = run_color_reduction(small_regular)
        central = reduce_coloring(
            small_regular, {v: v for v in small_regular.nodes()}
        )
        delta = max(d for _, d in small_regular.degree())
        assert len(set(distributed.values())) <= delta + 1
        assert central.num_colors <= delta + 1


class TestLocalModel:
    def test_same_output_as_congest_route(self, medium_gnp):
        local = approx_mds_local(medium_gnp, eps=0.5)
        congest = approx_mds_coloring(medium_gnp, eps=0.5)
        assert local.dominating_set == congest.dominating_set
        assert local.route == "local"

    def test_local_coloring_charge_never_higher(self):
        """Corollary 1.3: the LOCAL coloring pays log* n once, so with left
        degree > 1 the LOCAL charge is strictly below CONGEST's."""
        g = regular_graph(24, 5, seed=8)
        values = {v: 1.0 / 6.0 for v in g.nodes()}
        from repro.derand.coloring_based import one_shot_via_coloring

        congest = one_shot_via_coloring(g, values, model="congest")
        local = one_shot_via_coloring(g, values, model="local")
        c_rounds = congest.ledger.by_stage()["lemma3.12-coloring"]
        l_rounds = local.ledger.by_stage()["lemma3.12-coloring"]
        assert l_rounds < c_rounds

    def test_charged_rounds_for_validation(self):
        from repro.coloring.distance2 import Distance2Coloring
        from repro.errors import ColoringError

        col = Distance2Coloring({}, 0, 10, 0, delta_l=3, delta_r=4)
        assert col.charged_rounds_for("congest", 100) == 10
        assert col.charged_rounds_for("local", 100) < 3 * 4 + 10
        with pytest.raises(ColoringError):
            col.charged_rounds_for("quantum", 100)

    def test_formula_monotone(self):
        assert corollary13_round_formula(100, 20, 0.5) > corollary13_round_formula(
            100, 5, 0.5
        )
        assert corollary13_round_formula(100, 10, 0.25) > corollary13_round_formula(
            100, 10, 0.5
        )

    def test_dominating_and_bounded(self, small_geometric):
        from repro.analysis.bounds import theorem11_approximation_bound
        from repro.fractional.lp import lp_fractional_mds

        result = approx_mds_local(small_geometric, eps=0.5)
        assert is_dominating_set(small_geometric, result.dominating_set)
        lp = lp_fractional_mds(small_geometric)
        delta = max(d for _, d in small_geometric.degree())
        assert result.size <= theorem11_approximation_bound(0.5, delta) * lp.optimum + 1e-9
