"""Weighted minimum dominating set (Section 5 outlook).

The paper notes the rounding method "would also work more or less in the
same way for the weighted dominating set problem"; this package implements
that extension for the one-shot route: the LP carries node weights, and the
conditional-expectation objective weighs both the kept values and the
phase-two join penalties by the node weights (the estimator machinery in
:mod:`repro.derand` is weight-aware throughout).
"""

from repro.weighted.mds import WeightedMDSResult, approx_weighted_mds, greedy_weighted_mds

__all__ = ["WeightedMDSResult", "approx_weighted_mds", "greedy_weighted_mds"]
