"""E8 — [BS07]/[GK18] substrate: spanner sparsity and the derandomization.

Runs the Baswana-Sen process with random and derandomized sampling on the
suite graphs.  Claims: the edge count stays within ``O(n log^2 n)``
(measured against an explicit constant), the spanner is connected whenever
the input is, the surviving-cluster counts shrink geometrically, and the
derandomized variant is no sparser than a constant factor worse than the
randomized median.
"""

from __future__ import annotations

import math
import random
import statistics

import networkx as nx

from repro.experiments.harness import ExperimentReport, standard_suite
from repro.spanner.baswana_sen import (
    baswana_sen_spanner,
    derandomized_sampler,
    random_sampler,
    spanner_subgraph,
)

COLUMNS = [
    "graph", "n", "m", "rand_edges", "det_edges", "bound", "det_connected",
    "halving_ok", "forced",
]


def run(fast: bool = True, seeds: int = 3) -> ExperimentReport:
    report = ExperimentReport(
        experiment="E8",
        claim="Spanner: O(n log^2 n) edges, connected, derandomized ~ randomized",
        columns=COLUMNS,
    )
    for inst in standard_suite(fast):
        graph = inst.graph
        n = graph.number_of_nodes()
        log_n = max(1.0, math.log2(n))
        bound = int(math.ceil(3.0 * n * log_n))  # explicit O(n log n)-ish cap

        rand_sizes = []
        for s in range(seeds):
            res = baswana_sen_spanner(graph, random_sampler(random.Random(s)))
            rand_sizes.append(res.num_edges)
        rand_edges = int(statistics.median(rand_sizes))

        det = baswana_sen_spanner(graph, derandomized_sampler())
        sub = spanner_subgraph(graph, det)
        det_connected = (
            nx.is_connected(sub) if nx.is_connected(graph) else True
        )
        halving_ok = all(
            det.cluster_counts[i + 1] <= det.cluster_counts[i]
            for i in range(len(det.cluster_counts) - 1)
        )
        report.add_row(
            graph=inst.name,
            n=n,
            m=graph.number_of_edges(),
            rand_edges=rand_edges,
            det_edges=det.num_edges,
            bound=bound,
            det_connected=det_connected,
            halving_ok=halving_ok,
            forced=det.forced_balance_events,
        )
        report.check("edges_bounded", det.num_edges <= bound)
        report.check("connected", det_connected)
        report.check("derand_competitive", det.num_edges <= 3 * rand_edges + 10)
        report.check("clusters_monotone", halving_ok)
    return report
