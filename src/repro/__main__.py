"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``mds``     run a dominating-set algorithm on a generated graph
``cds``     run the Theorem 1.4 connected-dominating-set pipeline
``suite``   list the benchmark suite instances
``bench``   run one experiment (E1..E12) and print its table
``grid``    run a (graph x program x engine x seed) batch grid across workers
``serve``   run the always-on JSON-lines simulation service
``submit``  submit a grid to a running service as one tenant

``mds``, ``cds``, ``bench`` and ``grid`` accept ``--engine`` to pick the
simulation engine (``fast`` flat-array default, ``reference`` baseline,
``vector`` numpy message plane); ``grid`` additionally takes ``--jobs``
for shared-memory multiprocessing workers, ``--seeds`` for seed-ensemble
sweeps (``--seeds 0..9`` expands the inclusive range, ``--seeds 0,1,2``
the explicit list), ``--strategy batch`` to execute sweeps as stacked
multi-instance message planes — mixed ``--sizes`` stack too, as one
*ragged* plane (``--batch-size`` caps the stack width, ``auto``
negotiates per program; ``--target-cost N|auto`` switches to the
adaptive cost-model scheduler, splitting groups at a per-plane cost
target instead of a fixed width) — and ``--stream`` to print each record
as a JSON line the moment it finishes: inside a stacked group, each
record surfaces at its instance's termination — also across ``--jobs``
workers, where records cross the pool boundary one at a time — so early
finishers of a ragged group print while larger siblings still run
(``--quick`` runs a small self-contained mixed-size batched smoke
grid; ``--no-report`` suppresses the buffered report after ``--stream``
so service-style consumers get pure record lines).  ``--certify
[MODE]`` routes every eligible record through the
certification oracle (:mod:`repro.oracle`): the record gains a
``quality`` block with the certified optimum bound and measured
approximation ratios (bare ``--certify`` means ``--certify auto``, the
exact → ILP → LP bound ladder).  The ``grid`` command is a thin shell
over :class:`repro.api.Experiment`; its ``--programs`` axis accepts
every registered program, including ``lemma310``, ``rounding-exec``,
``tree-sum`` and the ``cds`` composite.

``serve`` starts the multi-tenant simulation service
(:mod:`repro.service`): concurrent tenants' cells coalesce into ragged
stacked planes per batch window, backed by the two-tier deterministic
cache; ``--port 0`` binds an OS-assigned port and announces it on
stdout.  ``submit`` is the matching one-shot tenant: it sends a grid
(same axis flags as ``grid``) to a running service and prints each
record as a JSON line the moment the service streams it back.

Examples
--------
    python -m repro mds --family geometric -n 120 --algorithm coloring
    python -m repro cds --family gnp -n 80 --eps 0.5
    python -m repro bench E7 --engine reference
    python -m repro grid --families gnp,tree --sizes 80,160 --jobs 4
    python -m repro grid --families gnp --sizes 60 --programs greedy \
        --engines vector --seeds 0,1,2,3,4,5,6,7 --strategy batch
    python -m repro grid --quick --strategy batch
    python -m repro grid --quick --stream
    python -m repro grid --families gnp --sizes 40 --programs greedy \
        --engines vector --seeds 0..4 --certify
    python -m repro serve --port 7464 --window 0.05
    python -m repro submit --port 7464 --families gnp --sizes 40,60 \
        --programs greedy --engines vector --seeds 0..4
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.bounds import theorem11_approximation_bound
from repro.baselines.greedy import greedy_mds
from repro.cds.pipeline import approx_cds
from repro.congest.engine import available_engines, set_default_engine
from repro.fractional.lp import lp_fractional_mds
from repro.graphs.suite import families, suite_instance
from repro.mds.deterministic import approx_mds_coloring, approx_mds_decomposition
from repro.mds.local_model import approx_mds_local
from repro.mds.randomized import approx_mds_randomized

_MDS_ALGORITHMS = {
    "coloring": approx_mds_coloring,
    "decomposition": approx_mds_decomposition,
    "local": approx_mds_local,
}


def _add_graph_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--family", default="gnp", choices=families())
    parser.add_argument("-n", type=int, default=100, help="graph size")
    parser.add_argument("--seed", type=int, default=0)


def _build_graph(args):
    return suite_instance(args.family, args.n, seed=args.seed).graph


def _add_engine_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine",
        choices=available_engines(),
        help="simulation engine for simulated primitives "
        "(default: fast; vector = numpy message plane)",
    )


def _apply_engine(args) -> None:
    if getattr(args, "engine", None):
        set_default_engine(args.engine)


def cmd_mds(args) -> int:
    _apply_engine(args)
    graph = _build_graph(args)
    delta = max((d for _, d in graph.degree()), default=0)
    if args.algorithm == "randomized":
        result = approx_mds_randomized(graph, eps=args.eps, seed=args.seed)
    else:
        result = _MDS_ALGORITHMS[args.algorithm](graph, eps=args.eps)
    lp = lp_fractional_mds(graph)
    payload = {
        "algorithm": args.algorithm,
        "family": args.family,
        "n": graph.number_of_nodes(),
        "delta": delta,
        "size": result.size,
        "lp_optimum": round(lp.optimum, 4),
        "ratio_vs_lp": round(result.size / max(lp.optimum, 1e-9), 4),
        "bound": round(theorem11_approximation_bound(args.eps, delta), 4),
        "greedy": len(greedy_mds(graph)),
        "rounds_simulated": result.ledger.simulated_rounds,
        "rounds_charged": result.ledger.charged_rounds,
    }
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        for key, value in payload.items():
            print(f"{key:<18s} {value}")
        if args.verbose:
            print("\nstage ledger:")
            print(result.ledger.summary())
    return 0


def cmd_cds(args) -> int:
    _apply_engine(args)
    graph = _build_graph(args)
    result = approx_cds(graph, eps=args.eps)
    payload = {
        "family": args.family,
        "n": graph.number_of_nodes(),
        "mds_size": len(result.dominating_set),
        "cds_size": result.size,
        "overhead": round(result.overhead, 4),
        "route": result.route,
        **{k: v for k, v in sorted(result.stats.items())},
    }
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        for key, value in payload.items():
            print(f"{key:<24s} {value}")
    return 0


def cmd_suite(args) -> int:
    sizes = [int(s) for s in args.sizes.split(",")]
    print(f"{'name':<20s} {'n':>6s} {'m':>7s} {'Delta':>6s}")
    for family in families():
        for n in sizes:
            inst = suite_instance(family, n, seed=args.seed)
            print(
                f"{inst.name:<20s} {inst.n:>6d} "
                f"{inst.graph.number_of_edges():>7d} {inst.max_degree:>6d}"
            )
    return 0


def cmd_bench(args) -> int:
    import importlib

    _apply_engine(args)
    registry = {
        "E1": "e01_theorem11", "E2": "e02_theorem12", "E3": "e03_fractional",
        "E4": "e04_uncovered", "E5": "e05_factor_two", "E6": "e06_cds",
        "E7": "e07_baselines", "E8": "e08_spanner", "E9": "e09_decomposition",
        "E10": "e10_congest", "E11": "e11_setcover", "E12": "e12_ablation",
    }
    key = args.experiment.upper()
    if key not in registry:
        print(f"unknown experiment {args.experiment!r}; choose from "
              f"{', '.join(sorted(registry))}", file=sys.stderr)
        return 2
    module = importlib.import_module(f"repro.experiments.{registry[key]}")
    report = module.run(fast=not args.full)
    print(report.render())
    return 0 if report.all_checks_pass else 1


def _parse_seeds(spec: str) -> list:
    """Parse the ``--seeds`` axis: ``0,1,2`` list or ``0..9`` inclusive range."""
    spec = spec.strip()
    if ".." in spec:
        lo, hi = spec.split("..", 1)
        return list(range(int(lo), int(hi) + 1))
    return [int(s) for s in spec.split(",") if s]


def cmd_grid(args) -> int:
    import json as _json

    from repro.api import Experiment, available_programs, batchable_programs
    from repro.errors import ReproError
    from repro.experiments.harness import engine_grid_report

    if args.no_report and not args.stream:
        print("error: --no-report requires --stream", file=sys.stderr)
        return 2
    if args.quick:
        # A small self-contained smoke grid exercising the batched path:
        # two families, *mixed* sizes (so `--strategy batch` stacks a
        # ragged plane), the stackable programs, a seed ensemble.
        families_list = ["gnp", "tree"]
        sizes = [40, 60]
        programs = batchable_programs()
        engines = ["vector"]
        seeds = list(range(5))
    else:
        families_list = [f for f in args.families.split(",") if f]
        sizes = [int(s) for s in args.sizes.split(",")]
        programs = (
            [p for p in args.programs.split(",") if p]
            if args.programs
            else available_programs()
        )
        engines = [e for e in args.engines.split(",") if e]
        seeds = _parse_seeds(args.seeds) if args.seeds else [args.seed]
    target_cost = (
        args.target_cost if args.target_cost == "auto" else int(args.target_cost)
    )
    experiment = (
        Experiment(*programs)
        .on(*families_list)
        .sizes(*sizes)
        .engines(*engines)
        .seeds(seeds)
        .strategy(args.strategy)
        .batch_size(args.batch_size)
        .target_cost(target_cost)
        .jobs(args.jobs)
    )
    if args.certify is not None:
        experiment.certify(args.certify)
    try:
        if args.stream:
            # Emit one JSON line per record the moment its dispatch unit
            # finishes, then restore deterministic cell order for the report.
            records = []
            for record in experiment.stream():
                print(_json.dumps(record.to_dict()), flush=True)
                records.append(record)
            if args.no_report:
                # Pure record lines for pipeline/service-style consumers:
                # no buffered report, exit code from the records alone.
                return 0 if all(rec.ok for rec in records) else 1
            sweep = experiment.collect(records)
        else:
            sweep = experiment.run()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = engine_grid_report(sweep.to_dicts())
    if args.json_out:
        # sweep.meta already records the *resolved* strategy (what actually
        # ran — "auto" never reaches the artifact).
        sweep.write(args.json_out)
        print(f"wrote {args.json_out}")
    print(report.render())
    return 0 if report.all_checks_pass else 1


def cmd_serve(args) -> int:
    import asyncio

    from repro.service import ServiceConfig, run_server

    config = ServiceConfig(
        window_s=args.window,
        max_window_cost=args.max_window_cost,
        max_window_width=args.max_window_width,
        batch_size=args.batch_size,
        max_pending_per_client=args.max_pending,
        max_inflight_per_client=args.max_inflight,
        oracle_cache_path=args.oracle_cache or None,
    )
    try:
        asyncio.run(run_server(host=args.host, port=args.port, config=config))
    except KeyboardInterrupt:
        pass
    return 0


def cmd_submit(args) -> int:
    import json as _json

    from repro.api import available_programs
    from repro.errors import ReproError
    from repro.experiments.runner import GridCell
    from repro.service.client import ServiceClient

    families_list = [f for f in args.families.split(",") if f]
    sizes = [int(s) for s in args.sizes.split(",")]
    programs = (
        [p for p in args.programs.split(",") if p]
        if args.programs
        else available_programs()
    )
    engines = [e for e in args.engines.split(",") if e]
    seeds = _parse_seeds(args.seeds) if args.seeds else [args.seed]
    cells = [
        GridCell(family=f, n=n, program=p, engine=e, seed=s)
        for f in families_list
        for n in sizes
        for p in programs
        for e in engines
        for s in seeds
    ]
    ok = True
    try:
        with ServiceClient(
            host=args.host, port=args.port, client=args.client, timeout=args.timeout
        ) as client:
            records = [None] * len(cells)
            for index, record, meta in client.stream(
                cells, use_cache=not args.no_cache, certify=args.certify
            ):
                line = dict(record)
                if args.meta:
                    line["service"] = meta
                print(_json.dumps(line), flush=True)
                records[index] = record
            ok = all(rec is not None and rec.get("ok") for rec in records)
            if args.stats:
                print(_json.dumps({"stats": client.stats()}), flush=True)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0 if ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_mds = sub.add_parser("mds", help="approximate minimum dominating set")
    _add_graph_args(p_mds)
    p_mds.add_argument(
        "--algorithm",
        default="coloring",
        choices=sorted(_MDS_ALGORITHMS) + ["randomized"],
    )
    p_mds.add_argument("--eps", type=float, default=0.5)
    p_mds.add_argument("--json", action="store_true")
    p_mds.add_argument("--verbose", action="store_true")
    _add_engine_arg(p_mds)
    p_mds.set_defaults(func=cmd_mds)

    p_cds = sub.add_parser("cds", help="approximate connected dominating set")
    _add_graph_args(p_cds)
    p_cds.add_argument("--eps", type=float, default=0.5)
    p_cds.add_argument("--json", action="store_true")
    _add_engine_arg(p_cds)
    p_cds.set_defaults(func=cmd_cds)

    p_suite = sub.add_parser("suite", help="list benchmark suite instances")
    p_suite.add_argument("--sizes", default="60,120,240")
    p_suite.add_argument("--seed", type=int, default=7)
    p_suite.set_defaults(func=cmd_suite)

    p_bench = sub.add_parser("bench", help="run one experiment (E1..E12)")
    p_bench.add_argument("experiment")
    p_bench.add_argument("--full", action="store_true")
    _add_engine_arg(p_bench)
    p_bench.set_defaults(func=cmd_bench)

    p_grid = sub.add_parser(
        "grid", help="batch (graph x program x engine x seed) grid via the runner"
    )
    p_grid.add_argument("--families", default="gnp,tree")
    p_grid.add_argument("--sizes", default="60,120")
    p_grid.add_argument(
        "--programs", default="", help="comma list (default: all runner programs)"
    )
    p_grid.add_argument("--engines", default="reference,fast,vector")
    p_grid.add_argument("--seed", type=int, default=7)
    p_grid.add_argument(
        "--seeds", default="",
        help="seeds to sweep: a comma list (0,1,2) or an inclusive range "
        "(0..9); default just --seed — the axis the batch strategy stacks",
    )
    p_grid.add_argument(
        "--strategy", default="cell", choices=["cell", "batch", "auto"],
        help="cell = one simulation per cell; batch = stack vector-engine "
        "sweeps (seeds and mixed sizes alike, as one ragged multi-instance "
        "message plane); auto = negotiate per the registry (batch exactly "
        "when a stackable multi-instance sweep is present)",
    )
    p_grid.add_argument(
        "--batch-size", type=int, default=0,
        help="max instances per stacked run (0 = one stack per group)",
    )
    p_grid.add_argument(
        "--target-cost", default="0",
        help="adaptive scheduler: per-plane cost target (integer), 'auto' "
        "to negotiate from the grid and --jobs, or 0 (default) to keep "
        "fixed --batch-size chunking; decisions land on records as 'plan'",
    )
    p_grid.add_argument(
        "--stream", action="store_true",
        help="print each record as a JSON line the moment it finishes "
        "(completion order; per instance inside stacked batch groups), "
        "then the ordered report",
    )
    p_grid.add_argument(
        "--no-report", action="store_true",
        help="with --stream: suppress the buffered report after the record "
        "lines — pure JSON-lines output for pipeline consumers; the exit "
        "code reflects record ok status",
    )
    p_grid.add_argument(
        "--certify", nargs="?", const="auto", default=None,
        choices=["auto", "exact", "ilp", "lp"],
        help="certify each eligible record against the oracle's bound "
        "ladder (exact B&B / HiGHS ILP / covering-LP lower bound); "
        "records gain a 'quality' block with the measured ratios — "
        "bare --certify means --certify auto",
    )
    p_grid.add_argument(
        "--quick", action="store_true",
        help="ignore axis flags and run the small mixed-size batched "
        "smoke grid",
    )
    p_grid.add_argument("--jobs", type=int, default=1)
    p_grid.add_argument("--json-out", default="", help="write full results JSON here")
    p_grid.set_defaults(func=cmd_grid)

    p_serve = sub.add_parser(
        "serve", help="run the always-on multi-tenant simulation service"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=7464,
        help="listening port (0 = OS-assigned; announced on stdout)",
    )
    p_serve.add_argument(
        "--window", type=float, default=0.05,
        help="batch-window deadline in seconds: how long a lone request "
        "waits for concurrent tenants to coalesce",
    )
    p_serve.add_argument(
        "--max-window-cost", type=int, default=0,
        help="close a window once its accumulated cost-model estimate "
        "reaches this (0 = unbounded)",
    )
    p_serve.add_argument(
        "--max-window-width", type=int, default=64,
        help="close a window at this many admitted cells",
    )
    p_serve.add_argument(
        "--batch-size", type=int, default=0,
        help="stack width cap inside one window dispatch (0 = uncapped)",
    )
    p_serve.add_argument(
        "--max-pending", type=int, default=256,
        help="per-tenant pending-queue bound (backpressure: an "
        "overflowing submission is rejected whole)",
    )
    p_serve.add_argument(
        "--max-inflight", type=int, default=32,
        help="per-tenant cap on cells admitted to one window (fairness)",
    )
    p_serve.add_argument(
        "--oracle-cache", default="",
        help="persist the certification memo here (loaded on start, "
        "dumped on stop) — the result cache's quality twin",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="submit a grid to a running service as one tenant"
    )
    p_submit.add_argument("--host", default="127.0.0.1")
    p_submit.add_argument("--port", type=int, default=7464)
    p_submit.add_argument("--client", default="cli", help="tenant name")
    p_submit.add_argument("--timeout", type=float, default=120.0)
    p_submit.add_argument("--families", default="gnp")
    p_submit.add_argument("--sizes", default="60")
    p_submit.add_argument(
        "--programs", default="greedy", help="comma list (default: greedy)"
    )
    p_submit.add_argument("--engines", default="vector")
    p_submit.add_argument("--seed", type=int, default=7)
    p_submit.add_argument(
        "--seeds", default="",
        help="seeds to sweep: comma list or inclusive range (0..9)",
    )
    p_submit.add_argument(
        "--no-cache", action="store_true",
        help="opt this submission out of result-cache reads "
        "(fresh execution guaranteed)",
    )
    p_submit.add_argument(
        "--certify", nargs="?", const="auto", default=None,
        choices=["auto", "exact", "ilp", "lp"],
        help="ask the service to certify each record (quality block)",
    )
    p_submit.add_argument(
        "--meta", action="store_true",
        help="embed the service's per-delivery meta (window, cache_hit, "
        "stack_width, latency_s) in each printed line",
    )
    p_submit.add_argument(
        "--stats", action="store_true",
        help="print the service stats as a final JSON line",
    )
    p_submit.set_defaults(func=cmd_submit)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output truncated by a closed pipe (e.g. `| head`): not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
