"""The conditional-expectation engine.

Given a rounding scheme and a *schedule* — an ordered list of batches of
participating variables such that no two variables in the same batch share a
constraint — the engine fixes each batch's coins simultaneously (against a
snapshot of the state before the batch), choosing for every variable the
outcome that minimizes the objective estimate

``U(theta) = sum_u w(u) E[X_u | theta] + sum_v jw(v) phi_v(theta)``.

Batch-disjointness is exactly what the paper's distance-2 colorings
(Lemma 3.10) and 2-separated same-color clusters (Lemma 3.4) provide; the
engine validates it and raises otherwise.  Because each variable's choice
minimizes its own additive slice of ``U`` and slices within a batch touch
disjoint constraints, ``U`` is non-increasing across batches — the
supermartingale invariant, checked after every batch.

The final objective value upper-bounds the realized per-copy solution size,
so the deterministic output inherits the randomized process's expectation
bound (Lemmas 3.8/3.9/3.13/3.14).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set

from repro.derand.estimators import ConstraintEstimator, EstimatorConfig
from repro.errors import DerandomizationError
from repro.rounding.abstract import RoundingOutcome, RoundingScheme, execute_rounding
from repro.rounding.coins import fixed_coins

#: Tolerance for the non-increase check on the objective estimate.  The
#: incremental log-product updates drift by O(machine eps) per update.
_MONOTONE_TOL = 1e-7


@dataclass
class DerandResult:
    """Deterministic rounding outcome plus the estimator trajectory."""

    outcome: RoundingOutcome
    decisions: Dict[int, bool]
    initial_estimate: float
    final_estimate: float
    trajectory: List[float] = field(default_factory=list)
    batches: int = 0

    @property
    def realized_size(self) -> float:
        """Per-copy accounted size of the deterministic output."""
        return self.outcome.accounted_size


class ConditionalExpectationEngine:
    """Runs the method of conditional expectations over a schedule."""

    def __init__(self, scheme: RoundingScheme, config: EstimatorConfig | None = None):
        self.scheme = scheme
        self.config = config or EstimatorConfig()
        inst = scheme.instance

        #: free coins per variable: success value w and probability p
        self._coin: Dict[int, tuple] = {}
        #: expectation contribution of every variable under theta
        self._ex: Dict[int, float] = {}
        self._weight: Dict[int, float] = {}
        for u, var in inst.value_vars.items():
            pu = scheme.p.get(u, 1.0)
            self._weight[u] = var.weight
            if var.x <= 0.0:
                self._ex[u] = 0.0
            elif pu >= 1.0:
                self._ex[u] = var.x
            else:
                self._coin[u] = (var.x / pu, pu)
                self._ex[u] = var.x  # p * (x/p)

        self.estimators: Dict[int, ConstraintEstimator] = {}
        for cid, cn in inst.constraints.items():
            deterministic = 0.0
            free: Dict[int, tuple] = {}
            for u in cn.members:
                var = inst.value_vars[u]
                pu = scheme.p.get(u, 1.0)
                if var.x <= 0.0:
                    continue
                if pu >= 1.0:
                    deterministic += var.x
                else:
                    free[u] = (var.x / pu, pu)
            self.estimators[cid] = ConstraintEstimator(
                cid, cn.c, deterministic, free, self.config
            )

        self.decisions: Dict[int, bool] = {}

    # -- objective ------------------------------------------------------------

    def objective(self) -> float:
        """Current value of the estimate ``U(theta)``."""
        inst = self.scheme.instance
        total = sum(self._weight[u] * ex for u, ex in self._ex.items())
        for cid, est in self.estimators.items():
            total += inst.constraints[cid].join_weight * est.phi()
        return total

    def _decision_scores(self, u: int) -> tuple:
        """(score if success, score if failure) for variable ``u``: only the
        additive terms of ``U`` that depend on ``u``'s coin."""
        inst = self.scheme.instance
        w, _p = self._coin[u]
        succ = self._weight[u] * w
        fail = 0.0
        for cid in inst.var_constraints[u]:
            jw = inst.constraints[cid].join_weight
            est = self.estimators[cid]
            succ += jw * est.phi_if(u, True)
            fail += jw * est.phi_if(u, False)
        return succ, fail

    # -- schedule validation ----------------------------------------------------

    def _validate_batch(self, batch: Sequence[int]) -> None:
        inst = self.scheme.instance
        seen: Set[int] = set()
        for u in batch:
            if u not in self._coin:
                raise DerandomizationError(
                    f"variable {u} has no free coin (already fixed, p in {{0,1}}, or x=0)"
                )
            if u in self.decisions:
                raise DerandomizationError(f"variable {u} scheduled twice")
            for cid in inst.var_constraints[u]:
                if cid in seen:
                    raise DerandomizationError(
                        f"batch members share constraint {cid}; the schedule "
                        "violates the distance-2 / separation requirement"
                    )
                seen.add(cid)

    # -- main loop ---------------------------------------------------------------

    def run(self, schedule: Iterable[Sequence[int]]) -> DerandResult:
        """Fix all coins batch by batch and execute the rounding."""
        initial = self.objective()
        trajectory = [initial]
        prev = initial
        batches = 0
        for batch in schedule:
            batch = list(batch)
            if not batch:
                continue
            self._validate_batch(batch)
            # Snapshot semantics: compute all decisions against the state
            # before the batch, then commit them together.
            chosen: List[tuple] = []
            for u in batch:
                succ, fail = self._decision_scores(u)
                chosen.append((u, succ < fail))
            for u, success in chosen:
                self._commit(u, success)
            batches += 1
            now = self.objective()
            if now > prev + _MONOTONE_TOL * max(1.0, abs(prev)):
                raise DerandomizationError(
                    f"objective increased across batch {batches}: "
                    f"{prev:.9g} -> {now:.9g}; supermartingale invariant violated"
                )
            trajectory.append(now)
            prev = now

        undecided = [u for u in self._coin if u not in self.decisions]
        if undecided:
            raise DerandomizationError(
                f"{len(undecided)} participating variables never scheduled "
                f"(e.g. {undecided[:5]})"
            )

        outcome = execute_rounding(self.scheme, fixed_coins(self.decisions))
        final = self.objective()
        if outcome.accounted_size > final + _MONOTONE_TOL * max(1.0, final):
            raise DerandomizationError(
                f"realized size {outcome.accounted_size:.9g} exceeds final "
                f"estimate {final:.9g}"
            )
        return DerandResult(
            outcome=outcome,
            decisions=dict(self.decisions),
            initial_estimate=initial,
            final_estimate=final,
            trajectory=trajectory,
            batches=batches,
        )

    def _commit(self, u: int, success: bool) -> None:
        self.decisions[u] = success
        w, _p = self._coin[u]
        self._ex[u] = w if success else 0.0
        for cid in self.scheme.instance.var_constraints[u]:
            self.estimators[cid].fix(u, success)
