"""Verification of solutions and the paper's analytic bounds."""

from repro.analysis.verify import (
    domination_deficit,
    is_connected_dominating_set,
    is_dominating_set,
    require_dominating_set,
)
from repro.analysis.bounds import (
    greedy_bound,
    theorem11_approximation_bound,
    theorem12_approximation_bound,
    theorem14_cds_bound,
)

__all__ = [
    "is_dominating_set",
    "require_dominating_set",
    "is_connected_dominating_set",
    "domination_deficit",
    "theorem11_approximation_bound",
    "theorem12_approximation_bound",
    "theorem14_cds_bound",
    "greedy_bound",
]
