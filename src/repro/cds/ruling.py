"""Ruling sets ([ALGP89, HKN16] substitute).

A ``(beta, gamma)``-ruling subset ``S'`` of candidates: chosen nodes are
pairwise at distance >= ``beta`` (in the given graph) and every candidate
has a chosen node within distance ``gamma``.  The deterministic greedy
by-ID construction yields ``gamma <= beta - 1`` (stronger than the paper's
``O(log^3 n)`` reach, which is fine — Lemma 4.2 only needs an upper bound);
the CONGEST cost of the distributed construction is charged at the
``O(log^3 n)`` rate by callers.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List

import networkx as nx

from repro.errors import GraphError


@dataclass(frozen=True)
class RulingSet:
    """Chosen nodes plus the realized quality parameters."""

    chosen: List[int]
    beta: int
    max_candidate_distance: int


def ruling_set(graph: nx.Graph, candidates: Iterable[int], beta: int) -> RulingSet:
    """Greedy ruling set: scan candidates by ID, keep those at distance
    >= ``beta`` (in ``graph``) from everything already kept."""
    if beta < 1:
        raise GraphError(f"ruling distance beta must be >= 1, got {beta}")
    cand = sorted(set(candidates))
    missing = [v for v in cand if v not in graph]
    if missing:
        raise GraphError(f"candidates {missing[:5]} not in graph")
    dist_to_chosen: Dict[int, int] = {}
    chosen: List[int] = []

    def absorb(source: int) -> None:
        """Multi-source incremental BFS to depth beta-1 from a new pick."""
        frontier = deque([(source, 0)])
        if dist_to_chosen.get(source, beta) > 0:
            dist_to_chosen[source] = 0
        while frontier:
            v, d = frontier.popleft()
            if d == beta - 1:
                continue
            for u in graph.neighbors(v):
                if dist_to_chosen.get(u, beta) > d + 1:
                    dist_to_chosen[u] = d + 1
                    frontier.append((u, d + 1))

    for v in cand:
        if dist_to_chosen.get(v, beta) >= beta:
            chosen.append(v)
            absorb(v)

    worst = 0
    for v in cand:
        worst = max(worst, dist_to_chosen.get(v, beta))
    return RulingSet(chosen=chosen, beta=beta, max_candidate_distance=worst)
