"""Covering instances: bipartite representation, pruning, splitting."""

import networkx as nx
import pytest

from repro.domsets.covering import Constraint, CoveringInstance, ValueVar
from repro.errors import InfeasibleSolutionError
from repro.graphs.generators import gnp_graph
from repro.graphs.normalize import normalize_graph


@pytest.fixture
def path4_instance():
    g = normalize_graph(nx.path_graph(4))
    values = {0: 0.5, 1: 0.5, 2: 0.5, 3: 0.5}
    return CoveringInstance.from_graph(g, values)


class TestConstruction:
    def test_from_graph_structure(self, path4_instance):
        inst = path4_instance
        assert inst.num_vars == 4
        assert inst.num_constraints == 4
        assert inst.constraints[0].members == (0, 1)
        assert inst.constraints[1].members == (0, 1, 2)
        assert inst.var_constraints[0] == (0, 1)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(InfeasibleSolutionError):
            CoveringInstance(
                [ValueVar(0, 0.5, 0), ValueVar(0, 0.5, 0)],
                [],
            )

    def test_unknown_member_rejected(self):
        with pytest.raises(InfeasibleSolutionError):
            CoveringInstance(
                [ValueVar(0, 0.5, 0)],
                [Constraint(0, 1.0, (0, 7), 0)],
            )

    def test_degrees(self, path4_instance):
        assert path4_instance.max_constraint_degree == 3
        assert path4_instance.max_var_degree == 3


class TestBookkeeping:
    def test_size_weighted(self):
        inst = CoveringInstance(
            [ValueVar(0, 0.5, 0, weight=2.0), ValueVar(1, 1.0, 1, weight=3.0)],
            [],
        )
        assert inst.size() == pytest.approx(0.5 * 2 + 1.0 * 3)

    def test_member_sum_and_violations(self, path4_instance):
        assert path4_instance.member_sum(1) == pytest.approx(1.5)
        assert path4_instance.is_feasible()
        low = path4_instance.with_values({v: 0.1 for v in range(4)})
        assert set(low.violations()) == {0, 1, 2, 3}

    def test_boost_caps_and_quantizes(self, path4_instance):
        boosted = path4_instance.boost_values(3.0, quantize=lambda x: round(x, 1))
        assert all(var.x == 1.0 for var in boosted.value_vars.values())


class TestPrune:
    def test_prune_keeps_cover(self):
        g = normalize_graph(nx.star_graph(5))
        center = max(g.nodes(), key=g.degree)
        values = {v: (1.0 if v == center else 0.5) for v in g.nodes()}
        inst = CoveringInstance.from_graph(g, values)
        pruned = inst.prune_to_cover(max_members=1)
        # Every constraint can be covered by the center alone.
        for cn in pruned.constraints.values():
            assert pruned.member_sum(cn.id) >= cn.c - 1e-9
            assert len(cn.members) == 1

    def test_prune_respects_limit(self, path4_instance):
        # Fractionality 1/2 -> at most 2 members needed.
        pruned = path4_instance.prune_to_cover(max_members=2)
        assert pruned.max_constraint_degree <= 2
        with pytest.raises(InfeasibleSolutionError):
            path4_instance.prune_to_cover(max_members=1)

    def test_prune_requires_feasible(self):
        g = normalize_graph(nx.path_graph(3))
        inst = CoveringInstance.from_graph(g, {v: 0.1 for v in g.nodes()})
        with pytest.raises(InfeasibleSolutionError):
            inst.prune_to_cover()


class TestSplit:
    def _uniform_instance(self, n=16, d=5, x=None):
        import networkx as nx

        from repro.graphs.generators import regular_graph

        g = regular_graph(n, d, seed=3)
        x = x if x is not None else 1.0 / (d + 1)
        values = {v: x for v in g.nodes()}
        return g, CoveringInstance.from_graph(g, values), values

    def test_split_partitions_members(self):
        g, inst, values = self._uniform_instance()
        split = inst.split_constraints(values, participation_threshold=1.0, s=2)
        # All members participate (threshold 1.0 > any value): every original
        # constraint of degree 6 splits into 3 chunks of 2.
        assert split.num_constraints == inst.num_constraints * 3
        originals = {}
        for cn in split.constraints.values():
            originals.setdefault(cn.origin, []).append(cn.members)
        for origin, groups in originals.items():
            flattened = sorted(u for grp in groups for u in grp)
            assert flattened == list(inst.constraints[origin].members)

    def test_split_demands_sum_to_coverage(self):
        g, inst, values = self._uniform_instance()
        split = inst.split_constraints(values, participation_threshold=1.0, s=2)
        for origin in inst.constraints:
            parts = [cn for cn in split.constraints.values() if cn.origin == origin]
            total = sum(cn.c for cn in parts)
            assert total >= min(1.0, inst.member_sum(origin)) - 1e-9

    def test_split_feasible_with_original_values(self):
        g, inst, values = self._uniform_instance()
        split = inst.split_constraints(values, participation_threshold=1.0, s=2)
        assert split.is_feasible(values)

    def test_high_values_stay_on_first_copy(self):
        g = normalize_graph(nx.star_graph(7))
        center = max(g.nodes(), key=g.degree)
        values = {v: (0.9 if v == center else 0.05) for v in g.nodes()}
        inst = CoveringInstance.from_graph(g, values)
        split = inst.split_constraints(values, participation_threshold=0.5, s=2)
        center_constraints = [
            cn for cn in split.constraints.values() if cn.origin == center
        ]
        # The center's high-value copy exists and contains only the center.
        assert any(cn.members == (center,) for cn in center_constraints)

    def test_chunk_sizes_in_s_2s(self):
        g, inst, values = self._uniform_instance(n=30, d=9)
        split = inst.split_constraints(values, participation_threshold=1.0, s=3)
        for cn in split.constraints.values():
            assert 1 <= len(cn.members) <= 6

    def test_invalid_s(self, path4_instance):
        with pytest.raises(InfeasibleSolutionError):
            path4_instance.split_constraints({}, 0.5, s=0)


class TestConflictAndProjection:
    def test_value_conflict_graph(self, path4_instance):
        conflict = path4_instance.value_conflict_graph()
        # Vars 0 and 2 share constraint 1 -> conflict edge.
        assert conflict.has_edge(0, 2)
        assert not conflict.has_edge(0, 3)

    def test_conflict_restriction(self, path4_instance):
        conflict = path4_instance.value_conflict_graph(restrict={0, 3})
        assert set(conflict.nodes()) == {0, 3}
        assert conflict.number_of_edges() == 0

    def test_projection_max_and_joins(self):
        vars_ = [ValueVar(0, 0.5, origin=10), ValueVar(1, 0.5, origin=10)]
        cons = [Constraint(0, 1.0, (0, 1), origin=11)]
        inst = CoveringInstance(vars_, cons)
        projected = inst.project({0: 0.2, 1: 0.7}, joined_origins=[11])
        assert projected[10] == pytest.approx(0.7)
        assert projected[11] == 1.0


def test_round_trip_on_random_graph():
    g = gnp_graph(25, 0.2, seed=11)
    values = {v: 0.3 for v in g.nodes()}
    inst = CoveringInstance.from_graph(g, values)
    assert inst.values() == values
    new = inst.with_values({v: 0.4 for v in g.nodes()})
    assert new.size() == pytest.approx(0.4 * 25)
    assert inst.size() == pytest.approx(0.3 * 25)
