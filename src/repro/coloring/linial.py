"""Linial-style iterated color reduction via cover-free set families.

One communication round maps a proper ``C``-coloring to a proper
``O((Delta log_q C)^2)``-coloring: color ``c`` is encoded as a polynomial
``f_c`` of degree ``d`` over ``GF(q)`` (its base-``q`` digits), represented
by the point set ``S_c = {(a, f_c(a)) : a in GF(q)}``.  Distinct polynomials
agree on at most ``d`` points, so if ``q > d * Delta`` each node finds a
point of its own set covered by no neighbor's set and adopts it as its new
color in ``[q^2]``.  Iterating shrinks ``n`` initial colors (the IDs) to
``O(Delta^2 log^2 Delta)`` in ``O(log* n)`` rounds — the [Lin92] bound the
[BEK15] coloring of Lemma 3.12 builds on.

The implementation is node-local: each step uses only a node's own color and
its neighbors' colors, exactly one CONGEST round of information.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

import networkx as nx

from repro.coloring.greedy import validate_coloring
from repro.errors import ColoringError


def _is_prime(n: int) -> bool:
    if n < 2:
        return False
    if n % 2 == 0:
        return n == 2
    f = 3
    while f * f <= n:
        if n % f == 0:
            return False
        f += 2
    return True


def _next_prime(n: int) -> int:
    candidate = max(2, n)
    while not _is_prime(candidate):
        candidate += 1
    return candidate


def _family_parameters(num_colors: int, max_degree: int) -> tuple[int, int]:
    """Smallest prime ``q`` and degree ``d`` with ``q^(d+1) >= num_colors``
    and ``q > d * Delta`` (so the cover-free property holds)."""
    delta = max(1, max_degree)
    q = _next_prime(delta + 1)
    while True:
        if q >= num_colors:
            d = 0
        else:
            d = max(1, math.ceil(math.log(num_colors) / math.log(q)) - 1)
            while q ** (d + 1) < num_colors:
                d += 1
        if q > d * delta:
            return q, d
        q = _next_prime(q + 1)


def _poly_digits(color: int, q: int, d: int) -> List[int]:
    digits = []
    value = color
    for _ in range(d + 1):
        digits.append(value % q)
        value //= q
    return digits


def _point_set(color: int, q: int, d: int) -> List[int]:
    """``S_color``: points ``a*q + f_color(a)`` for all ``a`` in GF(q)."""
    coeffs = _poly_digits(color, q, d)
    points = []
    for a in range(q):
        acc = 0
        for coef in reversed(coeffs):
            acc = (acc * a + coef) % q
        points.append(a * q + acc)
    return points


@dataclass(frozen=True)
class LinialResult:
    """Final coloring with per-iteration color counts (one round each)."""

    colors: Dict[int, int]
    num_colors: int
    rounds: int
    color_counts: List[int]


def linial_one_round(
    graph: nx.Graph, colors: Dict[int, int], max_degree: int | None = None
) -> Dict[int, int]:
    """One Linial reduction round: every node recolors simultaneously."""
    if not colors:
        return {}
    delta = max_degree if max_degree is not None else max(
        (d for _, d in graph.degree()), default=0
    )
    num_colors = max(colors.values()) + 1
    q, d = _family_parameters(num_colors, delta)
    new_colors: Dict[int, int] = {}
    for v in graph.nodes():
        own = set(_point_set(colors[v], q, d))
        for u in graph.neighbors(v):
            if colors[u] == colors[v]:
                raise ColoringError(
                    f"input coloring improper at edge ({v}, {u})"
                )
            own -= set(_point_set(colors[u], q, d))
        if not own:
            raise ColoringError(
                f"cover-free property failed at node {v} (q={q}, d={d})"
            )
        new_colors[v] = min(own)
    return new_colors


def linial_coloring(
    graph: nx.Graph, initial: Dict[int, int] | None = None, max_rounds: int = 64
) -> LinialResult:
    """Iterate one-round reductions until the palette stops shrinking.

    Starts from unique IDs (the trivially proper ``n``-coloring) unless an
    ``initial`` proper coloring is supplied.
    """
    colors = dict(initial) if initial is not None else {v: v for v in graph.nodes()}
    validate_coloring(graph, colors)
    counts = [max(colors.values()) + 1 if colors else 0]
    rounds = 0
    delta = max((d for _, d in graph.degree()), default=0)
    for _ in range(max_rounds):
        num_colors = max(colors.values()) + 1 if colors else 0
        if num_colors <= 1:
            break
        q, d = _family_parameters(num_colors, delta)
        if q * q >= num_colors:
            break  # no further shrink possible
        colors = linial_one_round(graph, colors, max_degree=delta)
        rounds += 1
        counts.append(max(colors.values()) + 1 if colors else 0)
    validate_coloring(graph, colors)
    # Densify color indices for downstream consumers.
    used = sorted(set(colors.values()))
    remap = {c: i for i, c in enumerate(used)}
    colors = {v: remap[c] for v, c in colors.items()}
    return LinialResult(
        colors=colors,
        num_colors=len(used),
        rounds=rounds,
        color_counts=counts,
    )
