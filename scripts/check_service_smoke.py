"""CI smoke gate: the always-on service coalesces tenants and caches results.

Boots ``python -m repro serve --port 0`` as a subprocess (the OS assigns
the port; the gate parses it from the announce line), then drives the
real JSON-lines protocol through :class:`repro.service.ServiceClient`:

1. **Coalescing.**  Two clients connect and submit *overlapping* greedy
   sweeps at the same instant (barrier-released threads).  Both must get
   their full record sets back, field-complete and ``ok`` — and the
   server's stats must show at least one **coalesced window** (a ragged
   stacked plane that mixed both tenants' cells).
2. **Result cache.**  One client then resubmits its cells; every record
   must come back flagged ``cache_hit`` and the stats must show result
   cache hits — nothing re-simulates.

The coalescing assertion is timing-dependent (both submissions must land
inside one batch window), so the whole probe retries (``--retries``,
default 3) against a fresh server before declaring failure; the window
deadline (``--window``, default 0.25 s) is generous next to the
microseconds the two submissions are apart.

Usage (the CI invocation)::

    python scripts/check_service_smoke.py
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import threading
import time

ANNOUNCE_PREFIX = "repro service listening on "


def start_server(window_s: float) -> tuple:
    """Boot ``repro serve --port 0``; returns ``(process, port)``."""
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--window",
            str(window_s),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        bufsize=1,
    )
    assert proc.stdout is not None
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise RuntimeError(
                f"server exited before announcing (rc={proc.poll()})"
            )
        if line.startswith(ANNOUNCE_PREFIX):
            port = int(line.rsplit(":", 1)[1])
            return proc, port
    raise RuntimeError("server never announced its port")


def check_once(port: int) -> list:
    """One probe against a running server; returns failure messages."""
    from repro.experiments.runner import GridCell
    from repro.service import ServiceClient

    def cells(seeds) -> list:
        return [
            GridCell("gnp", n, "greedy", "vector", seed=s)
            for n in (40, 60)
            for s in seeds
        ]

    failures: list = []
    results: dict = {}
    errors: dict = {}
    barrier = threading.Barrier(2)

    def tenant(name: str, seeds) -> None:
        try:
            with ServiceClient(port=port, client=name, timeout=60) as client:
                barrier.wait()
                results[name] = client.run(cells(seeds))
        except Exception as exc:  # noqa: BLE001 - report, don't crash the gate
            errors[name] = repr(exc)

    threads = [
        threading.Thread(target=tenant, args=("tenant-a", (0, 1, 2))),
        threading.Thread(target=tenant, args=("tenant-b", (1, 2, 3))),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    if errors:
        return [f"client {name} failed: {err}" for name, err in errors.items()]
    for name, seeds in (("tenant-a", (0, 1, 2)), ("tenant-b", (1, 2, 3))):
        records = results.get(name, [])
        if len(records) != len(cells(seeds)):
            failures.append(
                f"{name}: {len(records)} of {len(cells(seeds))} records"
            )
        bad = [rec["key"] for rec in records if not rec.get("ok")]
        if bad:
            failures.append(f"{name}: failed records {bad}")

    # Refresh round: everything must come from the result cache.
    with ServiceClient(port=port, client="tenant-a", timeout=60) as client:
        metas = [meta for _i, _rec, meta in client.stream(cells((0, 1, 2)))]
        stats = client.stats()
    misses = sum(1 for meta in metas if not meta.get("cache_hit"))
    if misses:
        failures.append(f"refresh: {misses} records re-simulated (not cached)")

    coalesced = stats.get("coalesced_windows", 0)
    hits = (stats.get("result_cache") or {}).get("hits", 0)
    print(
        f"  stats: windows={stats.get('windows')} coalesced={coalesced} "
        f"cache_hits={hits} records_served={stats.get('records_served')}"
    )
    if coalesced < 1:
        failures.append(
            "no coalesced window — the two tenants' cells never shared a "
            "stacked plane (submissions may have missed one window)"
        )
    if hits < 1:
        failures.append("no result-cache hit recorded")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--retries",
        type=int,
        default=3,
        help="probe attempts (each against a fresh server) before failing",
    )
    parser.add_argument(
        "--window",
        type=float,
        default=0.25,
        help="server batch-window deadline in seconds",
    )
    args = parser.parse_args()

    failures: list = []
    for attempt in range(1, args.retries + 1):
        proc, port = start_server(args.window)
        print(f"attempt {attempt}/{args.retries}: server on port {port}")
        try:
            failures = check_once(port)
        finally:
            proc.terminate()
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        if not failures:
            print(
                "service smoke gate: PASS (tenants coalesced, cache served "
                "the refresh)"
            )
            return 0
        for failure in failures:
            print(f"  {failure}")
    print("service smoke gate: FAIL", file=sys.stderr)
    for failure in failures:
        print(f"  {failure}", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
