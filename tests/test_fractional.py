"""Part-I substrate: LP oracle, water-filling solver, Lemma 2.1 raising."""

import networkx as nx
import pytest

from repro.domsets.cfds import CFDS
from repro.domsets.covering import CoveringInstance
from repro.errors import GraphError
from repro.fractional.distributed import distributed_fractional_mds
from repro.fractional.lp import lp_fractional_mds, solve_covering_lp
from repro.fractional.raising import (
    kmw06_initial_fds,
    raise_fractionality,
    repair_feasibility,
)
from repro.graphs.generators import clique_graph, star_graph
from repro.graphs.normalize import normalize_graph


class TestLP:
    def test_star_optimum_is_one(self):
        lp = lp_fractional_mds(star_graph(6))
        assert lp.optimum == pytest.approx(1.0, abs=1e-6)

    def test_clique_optimum_is_one(self):
        lp = lp_fractional_mds(clique_graph(5))
        assert lp.optimum == pytest.approx(1.0, abs=1e-6)

    def test_cycle_optimum(self):
        # C_6 LP optimum: uniform 1/3 -> 2.0.
        g = normalize_graph(nx.cycle_graph(6))
        lp = lp_fractional_mds(g)
        assert lp.optimum == pytest.approx(2.0, abs=1e-6)

    def test_solution_feasible(self, medium_gnp):
        lp = lp_fractional_mds(medium_gnp)
        assert CFDS.fds(medium_gnp, lp.values).is_feasible()

    def test_lower_bounds_integral(self, small_gnp):
        from repro.baselines.exact import exact_mds

        lp = lp_fractional_mds(small_gnp)
        assert lp.optimum <= len(exact_mds(small_gnp)) + 1e-6

    def test_generic_covering_with_weights(self):
        g = normalize_graph(nx.path_graph(3))
        inst = CoveringInstance.from_graph(
            g, {v: 0.0 for v in g.nodes()}, weights={0: 10.0, 1: 1.0, 2: 10.0}
        )
        solution = solve_covering_lp(inst)
        # The cheap middle node covers everything.
        assert solution.optimum == pytest.approx(1.0, abs=1e-6)
        assert solution.values[1] == pytest.approx(1.0, abs=1e-6)


class TestWaterFilling:
    def test_feasible_everywhere(self, zoo_graph):
        result = distributed_fractional_mds(zoo_graph)
        assert CFDS.fds(zoo_graph, result.values).is_feasible()

    def test_quality_vs_lp(self, medium_gnp):
        lp = lp_fractional_mds(medium_gnp)
        result = distributed_fractional_mds(medium_gnp, gamma=0.25)
        # Water-filling is a ln-style greedy; a loose factor certifies shape.
        assert result.size <= 3.0 * lp.optimum + 1.0

    def test_round_counter_positive(self, small_gnp):
        result = distributed_fractional_mds(small_gnp)
        assert result.rounds >= 2
        assert result.iterations >= 1
        assert result.threshold_trace[0] >= result.threshold_trace[-1]

    def test_finer_gamma_not_worse_much(self, small_gnp):
        coarse = distributed_fractional_mds(small_gnp, gamma=1.0)
        fine = distributed_fractional_mds(small_gnp, gamma=0.1)
        assert fine.size <= coarse.size * 1.5 + 1.0

    def test_gamma_validation(self, small_gnp):
        with pytest.raises(GraphError):
            distributed_fractional_mds(small_gnp, gamma=0.0)
        with pytest.raises(GraphError):
            distributed_fractional_mds(small_gnp, gamma=2.0)


class TestRepairAndRaise:
    def test_repair_fixes_near_miss(self):
        g = normalize_graph(nx.path_graph(3))
        values = {0: 0.0, 1: 1.0 - 1e-9, 2: 0.0}
        repaired = repair_feasibility(g, values)
        assert CFDS.fds(g, repaired).is_feasible()

    def test_repair_keeps_feasible_untouched(self, small_gnp):
        values = {v: 1.0 for v in small_gnp.nodes()}
        assert repair_feasibility(small_gnp, values) == values

    def test_raise_levels(self):
        raised = raise_fractionality({0: 0.0, 1: 0.005, 2: 0.5}, lam=0.01)
        assert raised == {0: 0.01, 1: 0.01, 2: 0.5}

    def test_raise_validation(self):
        with pytest.raises(Exception):
            raise_fractionality({0: 0.5}, lam=0.0)


class TestLemma21Contract:
    @pytest.mark.parametrize("provider", ["lp", "distributed"])
    def test_contract(self, medium_gnp, provider):
        eps = 0.5
        initial = kmw06_initial_fds(medium_gnp, eps=eps, provider=provider)
        delta_tilde = max(d for _, d in medium_gnp.degree()) + 1
        assert initial.fds.is_feasible()
        # eps/(2 Delta~)-fractional.
        assert initial.fds.fractionality >= eps / (2 * delta_tilde) - 1e-12
        # Raising cost: at most n * lambda above the provider's size.
        lam = eps / (2 * delta_tilde)
        assert initial.raised_size <= (
            initial.provider_size + medium_gnp.number_of_nodes() * lam + 1e-6
        )

    def test_lp_provider_charges_rounds(self, small_gnp):
        initial = kmw06_initial_fds(small_gnp, eps=0.5, provider="lp")
        assert initial.ledger.charged_rounds > 0
        assert initial.ledger.simulated_rounds == 0

    def test_distributed_provider_simulates_rounds(self, small_gnp):
        initial = kmw06_initial_fds(small_gnp, eps=0.5, provider="distributed")
        assert initial.ledger.simulated_rounds > 0

    def test_unknown_provider(self, small_gnp):
        with pytest.raises(GraphError):
            kmw06_initial_fds(small_gnp, eps=0.5, provider="quantum")

    def test_eps_validation(self, small_gnp):
        with pytest.raises(GraphError):
            kmw06_initial_fds(small_gnp, eps=0.0)
        with pytest.raises(GraphError):
            kmw06_initial_fds(small_gnp, eps=1.5)
