"""Per-record streaming across the pool boundary (``jobs > 1``).

The contract under test: a stacked batch group executed by a pool worker
pushes **each** record through the worker's result channel the moment
its instance's termination mask flips — never buffered until group end —
and a worker dying mid-unit costs nothing but wall-clock: the parent
re-dispatches exactly the not-yet-yielded cells in-process, so the
record set (and every metrics block) is identical to the sequential
run's.

The decisive no-buffering probe is the deterministic crash hook
(``REPRO_POOLSTREAM_KILL``): hard-kill a worker right after it streamed
one record of a group.  If records were buffered worker-side until group
end, the parent would have received *nothing* before the crash and every
cell of the unit would come back as a fallback record; with true
per-record streaming, exactly the pre-crash records survive and only the
remainder is re-dispatched.  Timing-free, so it cannot flake.
"""

import time

import pytest

from repro.experiments.runner import (
    GridCell,
    _plan_units,
    iter_grid_records,
    run_grid_records,
)


def _sweep_cells(sizes=(20, 30), seeds=(0, 1, 2), family="gnp"):
    return [
        GridCell(family, n, "greedy", "vector", seed=s) for n in sizes for s in seeds
    ]


def _metrics_by_key(records):
    assert all(rec.ok for rec in records), [
        rec.error for rec in records if not rec.ok
    ]
    return {rec.key: rec.metrics for rec in records}


class TestPoolParity:
    def test_pool_batch_matches_sequential(self):
        cells = _sweep_cells()
        seq = _metrics_by_key(run_grid_records(cells, jobs=1, strategy="batch"))
        pool = _metrics_by_key(
            run_grid_records(cells, jobs=2, strategy="batch", batch_size=3)
        )
        assert pool == seq

    def test_pool_adaptive_matches_sequential(self):
        cells = _sweep_cells(sizes=(20, 30, 40))
        seq = _metrics_by_key(run_grid_records(cells, jobs=1, strategy="batch"))
        pool = _metrics_by_key(
            run_grid_records(cells, jobs=2, strategy="batch", target_cost="auto")
        )
        assert pool == seq

    def test_default_records_carry_no_plan_block(self):
        # target_cost=0 (the default) must keep the legacy record shape:
        # jobs/strategy parity comparisons rely on it.
        cells = _sweep_cells()
        for rec in run_grid_records(cells, jobs=2, strategy="batch", batch_size=3):
            assert rec.plan is None
            assert "plan" not in rec.to_dict()


class TestPoolInGroupStreaming:
    def test_records_stream_individually_across_pool(self, monkeypatch):
        """Kill a worker after 1 streamed record: with per-record delivery
        the parent already holds that record, so exactly width-1 cells of
        the unit come back as crash-fallback records — group-at-a-time
        buffering would have lost all of them."""
        cells = _sweep_cells(sizes=(20,), seeds=(0, 1, 2, 3))
        plan = _plan_units(cells, "batch", 0)
        assert plan[0][0] == "batch" and len(plan[0][1]) == 4
        # A second unit so the pool path engages (len(plan) > 1).
        cells.append(GridCell("gnp", 20, "greedy", "fast", seed=0))

        seq = _metrics_by_key(run_grid_records(cells, jobs=1, strategy="batch"))
        monkeypatch.setenv("REPRO_POOLSTREAM_KILL", "0:1")
        pool = run_grid_records(cells, jobs=2, strategy="batch")
        assert _metrics_by_key(pool) == seq

        fallbacks = [
            rec for rec in pool if rec.plan and "fallback" in rec.plan
        ]
        streamed = [
            rec
            for rec in pool
            if rec.batch is not None and (rec.plan is None or "fallback" not in rec.plan)
        ]
        # One record crossed the boundary before the crash ...
        assert len(streamed) == 1
        # ... and only the remaining three were re-dispatched.
        assert len(fallbacks) == 3
        for rec in fallbacks:
            assert rec.plan["fallback"]["type"] == "WorkerLostError"
            assert "dispatch unit 0" in rec.plan["fallback"]["message"]

    def test_stream_latency_monotone_within_unit(self):
        """Records of one stacked unit carry non-decreasing stream
        latencies in arrival order — each was stamped at its own
        termination flip, not at group teardown."""
        cells = _sweep_cells(sizes=(20, 30, 40), seeds=(0, 1))
        arrivals = []
        for rec in iter_grid_records(
            cells, jobs=2, strategy="batch", target_cost="auto"
        ):
            assert rec.ok
            arrivals.append(rec)
        by_unit = {}
        for rec in arrivals:
            if rec.batch is not None:
                assert rec.plan is not None
                by_unit.setdefault(rec.plan["unit"], []).append(
                    rec.batch["stream_latency_s"]
                )
        assert by_unit, "expected at least one stacked unit"
        for latencies in by_unit.values():
            assert latencies == sorted(latencies)


class TestWorkerLoss:
    def test_worker_kill_preserves_record_set(self, monkeypatch):
        cells = _sweep_cells(sizes=(20, 30), seeds=(0, 1, 2))
        seq = _metrics_by_key(run_grid_records(cells, jobs=1, strategy="batch"))
        monkeypatch.setenv("REPRO_POOLSTREAM_KILL", "0:1")
        pool = run_grid_records(cells, jobs=2, strategy="batch", batch_size=3)
        assert _metrics_by_key(pool) == seq

    def test_kill_on_adaptive_plan_keeps_scheduler_meta(self, monkeypatch):
        # Enough seeds that the calibrated cost model still packs several
        # cells per plane at the auto target — the kill must land on a
        # batch unit with records left to re-dispatch.
        cells = _sweep_cells(sizes=(20, 30), seeds=(0, 1, 2, 3, 4, 5))
        monkeypatch.setenv("REPRO_POOLSTREAM_KILL", "0:1")
        pool = run_grid_records(
            cells, jobs=2, strategy="batch", target_cost="auto"
        )
        assert all(rec.ok for rec in pool)
        fallbacks = [rec for rec in pool if rec.plan and "fallback" in rec.plan]
        assert fallbacks
        for rec in fallbacks:
            assert rec.plan["scheduler"] == "adaptive"
            assert rec.plan["actual_wall_s"] >= 0

    def test_worker_kill_with_certify_keeps_quality_blocks(self, monkeypatch):
        """Certification happens in the parent as records stream by, so a
        re-dispatched record after ``WorkerLostError`` must carry the same
        quality block as an undisturbed run — exactly one certified record
        per cell, no duplicates, none uncertified."""
        cells = _sweep_cells(sizes=(20, 30), seeds=(0, 1, 2))
        seq = {
            rec.key: rec.quality
            for rec in run_grid_records(
                cells, jobs=1, strategy="batch", certify="auto"
            )
        }
        monkeypatch.setenv("REPRO_POOLSTREAM_KILL", "0:1")
        pool = run_grid_records(
            cells, jobs=2, strategy="batch", batch_size=3, certify="auto"
        )
        assert sorted(rec.key for rec in pool) == sorted(seq)
        fallbacks = [rec for rec in pool if rec.plan and "fallback" in rec.plan]
        assert fallbacks, "kill hook should have produced re-dispatched records"
        for rec in pool:
            quality = rec.quality
            assert quality is not None, rec.key
            assert quality["status"] != "failed", (rec.key, quality)
            assert quality["within_bound"], (rec.key, quality)
            # Everything but the wall-clock and the cache's warmth is
            # deterministic across runs.
            stable = {
                k: v
                for k, v in quality.items()
                if k not in ("solve_wall_s", "cache_hit")
            }
            expected = {
                k: v
                for k, v in seq[rec.key].items()
                if k not in ("solve_wall_s", "cache_hit")
            }
            assert stable == expected, rec.key

    def test_unclaimed_units_migrate_to_survivors(self, monkeypatch):
        """Units the dead worker never pulled stay in the queue and run on
        the surviving worker — every record still arrives."""
        cells = _sweep_cells(sizes=(20, 30, 40), seeds=(0, 1, 2))
        seq = _metrics_by_key(run_grid_records(cells, jobs=1, strategy="batch"))
        monkeypatch.setenv("REPRO_POOLSTREAM_KILL", "0:2")
        pool = run_grid_records(cells, jobs=2, strategy="batch", batch_size=3)
        assert _metrics_by_key(pool) == seq


class TestConsumerIndependence:
    def test_slow_consumer_gets_complete_set(self):
        """A consumer slower than the producers must not stall workers or
        drop records: the parent's drain loop buffers arrivals, workers
        never block on the consumer."""
        cells = _sweep_cells(sizes=(20, 30), seeds=(0, 1, 2))
        expected = {cell.key for cell in cells}
        seen = []
        for rec in iter_grid_records(
            cells, jobs=2, strategy="batch", batch_size=3
        ):
            time.sleep(0.02)  # slower than any single instance's sim time
            seen.append(rec)
        assert {rec.key for rec in seen} == expected
        assert all(rec.ok for rec in seen)

    def test_abandoned_iterator_cleans_up(self):
        """Closing the streaming iterator mid-run terminates workers and
        unlinks shared memory (the finally path) without hanging."""
        cells = _sweep_cells(sizes=(20, 30), seeds=(0, 1, 2))
        it = iter_grid_records(cells, jobs=2, strategy="batch", batch_size=3)
        first = next(it)
        assert first.ok
        it.close()  # must not hang or leak


@pytest.mark.parametrize("target_cost", [0, "auto"])
def test_stream_and_run_record_sets_match(target_cost):
    cells = _sweep_cells(sizes=(20, 30), seeds=(0, 1))
    ran = _metrics_by_key(
        run_grid_records(
            cells, jobs=2, strategy="batch", target_cost=target_cost
        )
    )
    streamed = _metrics_by_key(
        list(
            iter_grid_records(
                cells, jobs=2, strategy="batch", target_cost=target_cost
            )
        )
    )
    assert streamed == ran
