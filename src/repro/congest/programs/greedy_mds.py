"""Distributed locally-maximal greedy dominating set.

The classic CONGEST baseline predating the paper's techniques: in each
phase every node computes its *span* (uncovered nodes in its inclusive
neighborhood) and joins the dominating set iff its ``(span, -id)`` pair is
maximal within its 2-hop neighborhood.  At least the globally best node
always joins, so the process terminates; quality empirically tracks
sequential greedy (E7/E10 report it), though the phase count can be
``Theta(n)`` in the worst case — exactly the behaviour that motivated the
LP-rounding approach the paper derandomizes.

Each phase costs four CONGEST rounds:

1. nodes announce their covered bit (so neighbors can compute spans),
2. nodes announce ``(span, id)``,
3. nodes forward the best pair seen in their inclusive neighborhood
   (making the 2-hop maximum visible),
4. locally-maximal nodes join and announce it.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

import networkx as nx
import numpy as np

from repro.congest.engine import (
    EngineSpec,
    MessageSpec,
    PendingBroadcast,
    VectorKernel,
    register_kernel,
)
from repro.congest.message import Message
from repro.congest.network import Network
from repro.congest.node import Context, NodeProgram
from repro.congest.simulator import SimulationResult, Simulator


class DistributedGreedyProgram(NodeProgram):
    """Output per node: ``in_ds`` (0/1).  No per-node input needed."""

    #: All four phase steps are fixed-shape broadcasts, so the whole
    #: program runs on the vector engine's message plane.
    message_specs = (
        MessageSpec("cov", "covered"),
        MessageSpec("span", "span", "node"),
        MessageSpec("best", "span", "node"),
        MessageSpec("join", "joined"),
    )

    def __init__(self, input_value: object = None):
        super().__init__(input_value)
        self.covered = False
        self.in_ds = False
        self.neighbor_covered: Dict[int, bool] = {}
        self.neighbor_pairs: Dict[int, Tuple[int, int]] = {}
        self.best_seen: Tuple[int, int] | None = None

    def _span(self, ctx: Context) -> int:
        span = 0 if self.covered else 1
        span += sum(
            1 for u in ctx.neighbors if not self.neighbor_covered.get(u, False)
        )
        return span

    def _own_pair(self, ctx: Context) -> Tuple[int, int]:
        return (self._span(ctx), -ctx.node)

    def setup(self, ctx: Context) -> None:
        ctx.broadcast(Message("cov", 0))

    def receive(self, ctx: Context, inbox: Dict[int, Message]) -> None:
        step = (ctx.round_number - 1) % 4
        if step == 0:
            # Covered bits arrive; announce span.
            for sender, msg in inbox.items():
                if msg.tag == "cov":
                    self.neighbor_covered[sender] = bool(msg.fields[0])
            span, _ = self._own_pair(ctx)
            if self.covered and span == 0:
                # Nothing left to contribute or learn.
                ctx.output("in_ds", int(self.in_ds))
                ctx.halt()
                return
            ctx.broadcast(Message("span", span, ctx.node))
        elif step == 1:
            # Spans arrive; forward the best pair in the inclusive
            # neighborhood (2-hop max construction).
            self.neighbor_pairs = {}
            for sender, msg in inbox.items():
                if msg.tag == "span":
                    self.neighbor_pairs[sender] = (msg.fields[0], -msg.fields[1])
            best = max(
                list(self.neighbor_pairs.values()) + [self._own_pair(ctx)]
            )
            self.best_seen = best
            ctx.broadcast(Message("best", best[0], -best[1]))
        elif step == 2:
            # 1-hop maxima arrive; decide membership.
            two_hop_best = self.best_seen or self._own_pair(ctx)
            for msg in inbox.values():
                if msg.tag == "best":
                    pair = (msg.fields[0], -msg.fields[1])
                    if pair > two_hop_best:
                        two_hop_best = pair
            mine = self._own_pair(ctx)
            if mine[0] > 0 and mine >= two_hop_best:
                self.in_ds = True
                self.covered = True
            ctx.broadcast(Message("join", int(self.in_ds)))
        else:
            # Joins arrive; update coverage and start the next phase.
            for sender, msg in inbox.items():
                if msg.tag == "join" and msg.fields[0]:
                    self.neighbor_covered[sender] = True
                    self.covered = True
            ctx.broadcast(Message("cov", int(self.covered)))


@register_kernel(DistributedGreedyProgram)
class DistributedGreedyKernel(VectorKernel):
    """Vector transcription of the four-step greedy phase.

    Per-node dicts become flat planes: ``ncov`` keeps the last-heard
    covered bit per CSR edge slot (the ``neighbor_covered`` map), spans are
    CSR row sums, and the 2-hop maximum runs on a packed integer key that
    orders exactly like the scalar ``(span, -id)`` pair:
    ``key = span * n + (n - 1 - id)``.

    All id arithmetic uses ``plane.local_ids`` / ``plane.local_n_of``
    (equal to the global ids / ``n`` on a solo plane), which is what makes
    the kernel *stackable*: on a stacked plane — uniform or ragged — every
    instance broadcasts and compares its own local ids against its own
    packed-key base ``n``, bit-for-bit like a solo run.  Key comparisons
    never cross instances (the 2-hop max is a CSR row reduction and rows
    stay inside their instance), so per-instance bases are sound.
    """

    _SPEC = {spec.tag: spec for spec in DistributedGreedyProgram.message_specs}

    def __init__(self, plane, network, programs, contexts):
        super().__init__(plane, network, programs, contexts)
        n = plane.n
        self.ids = plane.local_ids
        self.covered = np.fromiter(
            (programs[v].covered for v in range(n)), dtype=bool, count=n
        )
        self.in_ds = np.fromiter(
            (programs[v].in_ds for v in range(n)), dtype=bool, count=n
        )
        #: Last-heard covered bit per edge slot; unheard counts as uncovered,
        #: like ``neighbor_covered.get(u, False)``.
        self.ncov = np.zeros(plane.nnz, dtype=np.int64)
        self.span = np.zeros(n, dtype=np.int64)
        self.best_key = np.zeros(n, dtype=np.int64)

    @classmethod
    def stacked_setup(cls, plane, inputs):
        """Vectorized boot: the scalar ``setup`` is one fixed broadcast.

        Every node starts uncovered and broadcasts ``Message("cov", 0)``
        to its neighbors, so the round-1 traffic is exactly "all nodes
        with at least one neighbor send a zero covered-bit" — no program
        objects needed.  ``inputs`` is unused (the program takes none).
        """
        kernel = cls._blank(plane)
        n = plane.n
        kernel.ids = plane.local_ids
        kernel.covered = np.zeros(n, dtype=bool)
        kernel.in_ds = np.zeros(n, dtype=bool)
        kernel.ncov = np.zeros(plane.nnz, dtype=np.int64)
        kernel.span = np.zeros(n, dtype=np.int64)
        kernel.best_key = np.zeros(n, dtype=np.int64)
        spec = cls._SPEC["cov"]
        column = np.zeros(n, dtype=np.int64)
        pending = PendingBroadcast(
            spec, plane.degrees > 0, (column,), spec.bits_array((column,))
        )
        return kernel, pending

    def _own_key(self) -> np.ndarray:
        base = self.plane.local_n_of
        return self.span * base + (base - 1 - self.ids)

    def _received_key_max(
        self, inbound: Optional[PendingBroadcast]
    ) -> np.ndarray:
        """Per-node max packed key over this round's (span, id) messages."""
        plane = self.plane
        if inbound is None:
            return np.full(plane.n, -1, dtype=np.int64)
        sent = plane.sent_slots(inbound)
        span_slot = inbound.columns[0][plane.indices]
        id_slot = inbound.columns[1][plane.indices]
        # Per-slot packed-key base: the sender's instance's n (a slot and
        # its peer always live in the same instance, so this is also the
        # receiving row's base).
        base = plane.local_n_of[plane.indices]
        key_slot = span_slot * base + (base - 1 - id_slot)
        return plane.row_max(np.where(sent, key_slot, -1), empty=-1)

    def _broadcast(self, tag: str, *columns: np.ndarray) -> PendingBroadcast:
        spec = self._SPEC[tag]
        return PendingBroadcast(
            spec, self.live.copy(), columns, spec.bits_array(columns)
        )

    def step(
        self, round_no: int, inbound: Optional[PendingBroadcast]
    ) -> Optional[PendingBroadcast]:
        plane = self.plane
        step = (round_no - 1) % 4
        if step == 0:
            # Covered bits arrive; halt exhausted nodes, announce spans.
            if inbound is not None:
                sent = plane.sent_slots(inbound)
                self.ncov[sent] = inbound.columns[0][plane.indices[sent]]
            self.span = (
                (~self.covered).astype(np.int64)
                + plane.degrees
                - plane.row_sum(self.ncov)
            )
            halting = self.live & self.covered & (self.span == 0)
            if halting.any():
                for v in np.flatnonzero(halting):
                    self.output(int(v), "in_ds", int(self.in_ds[v]))
                self.live &= ~halting
            if not self.live.any():
                return None
            return self._broadcast("span", self.span, self.ids)
        if step == 1:
            # Spans arrive; forward the inclusive-neighborhood maximum.
            self.best_key = np.maximum(
                self._received_key_max(inbound), self._own_key()
            )
            base = plane.local_n_of
            return self._broadcast(
                "best", self.best_key // base, base - 1 - self.best_key % base
            )
        if step == 2:
            # 1-hop maxima arrive; locally maximal uncovered-span nodes join.
            two_hop = np.maximum(self._received_key_max(inbound), self.best_key)
            joining = self.live & (self.span > 0) & (self._own_key() >= two_hop)
            self.in_ds |= joining
            self.covered |= joining
            return self._broadcast("join", self.in_ds.astype(np.int64))
        # Joins arrive; fold coverage and start the next phase.
        if inbound is not None:
            sent = plane.sent_slots(inbound)
            joined = sent & (inbound.columns[0][plane.indices] == 1)
            self.ncov[joined] = 1
            self.covered |= self.live & plane.row_any(joined)
        return self._broadcast("cov", self.covered.astype(np.int64))


def run_distributed_greedy(
    graph: nx.Graph | None,
    network: Network | None = None,
    engine: EngineSpec = None,
) -> Tuple[Set[int], SimulationResult]:
    """Run the program; returns the dominating set and simulator metrics.

    ``graph`` may be ``None`` when ``network`` is given.
    """
    network = network or Network.congest(graph)
    sim = Simulator(network, DistributedGreedyProgram, engine=engine)
    result = sim.run(max_rounds=8 * network.n + 16)
    ds = {v for v, out in result.outputs.items() if out.get("in_ds")}
    return ds, result


# -- experiment-surface registration ------------------------------------------

from repro.analysis.bounds import greedy_bound  # noqa: E402
from repro.api.registry import ProgramSpec, register_program  # noqa: E402


def _drive(network: Network, engine: str) -> SimulationResult:
    return run_distributed_greedy(None, network=network, engine=engine)[-1]


def _summary(sim: SimulationResult) -> Dict[str, object]:
    return {"ds_size": sum(1 for v in sim.output_map("in_ds").values() if v)}


register_program(
    ProgramSpec(
        name="greedy",
        description="locally-maximal greedy dominating set (4-round phases)",
        program=DistributedGreedyProgram,
        drive=_drive,
        summarize=_summary,
        batch_factory=DistributedGreedyProgram,
        batch_max_rounds=lambda net: 8 * net.n + 16,
        quality_metric="ds_size",
        quality_bound=greedy_bound,
    )
)
