"""Engine parity: all registered engines must be indistinguishable.

Every bundled node program is driven over the graph zoo under the full
3-way engine matrix (reference / fast / vector) and the complete
:class:`SimulationResult` (rounds, outputs, message/bit totals, per-round
series) is compared field for field — the contract that makes the fast
path a drop-in default and the numpy message plane a drop-in opt-in.
Also covers engine selection/registry plumbing and the CSR topology arrays
the fast path consumes.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.coloring.distance2 import distance2_coloring
from repro.congest.engine import (
    Engine,
    FastEngine,
    ReferenceEngine,
    VectorEngine,
    available_engines,
    default_engine_name,
    resolve_engine,
    set_default_engine,
)
from repro.congest.network import Network
from repro.congest.programs.aggregate import run_tree_sum
from repro.congest.programs.bfs import run_bfs_forest
from repro.congest.programs.color_reduction import run_color_reduction
from repro.congest.programs.greedy_mds import run_distributed_greedy
from repro.congest.programs.lemma310 import run_lemma310_on_graph
from repro.congest.programs.rounding_exec import run_rounding_execution
from repro.congest.simulator import Simulator
from repro.domsets.covering import CoveringInstance
from repro.errors import CongestError
from repro.fractional.raising import kmw06_initial_fds
from repro.rounding.schemes import one_shot_scheme
from repro.util.transmittable import TransmittableGrid


def _spanning_forest(graph: nx.Graph) -> dict:
    """Well-formed parent pointers covering every connected component."""
    parents: dict = {}
    for comp in nx.connected_components(graph):
        root = min(comp)
        parents[root] = -1
        for u, v in nx.bfs_edges(graph, root):
            parents[v] = u
    return parents


def _drive_bfs(graph, engine):
    return run_bfs_forest(graph, roots=[0], engine=engine)[-1]


def _drive_greedy(graph, engine):
    return run_distributed_greedy(graph, engine=engine)[-1]


def _drive_color_reduction(graph, engine):
    return run_color_reduction(graph, engine=engine)[-1]


def _drive_aggregate(graph, engine):
    parents = _spanning_forest(graph)
    vectors = {v: (1, v % 5) for v in graph.nodes()}
    return run_tree_sum(graph, parents, vectors, engine=engine)[-1]


def _drive_rounding_exec(graph, engine):
    values = {v: 0.8 if v % 2 else 0.3 for v in graph.nodes()}
    constraints = {v: 1.0 for v in graph.nodes()}
    return run_rounding_execution(graph, values, constraints, engine=engine)[-1]


def _drive_lemma310(graph, engine):
    n = graph.number_of_nodes()
    delta_tilde = max(d for _, d in graph.degree()) + 1
    grid = TransmittableGrid.for_n(n)
    initial = kmw06_initial_fds(graph, eps=0.5)
    base = CoveringInstance.from_graph(graph, initial.fds.values)
    scheme = one_shot_scheme(base, delta_tilde, quantize=grid.up)
    coloring = distance2_coloring(graph, subset=set(scheme.participating()))
    values = {u: var.x for u, var in scheme.instance.value_vars.items()}
    return run_lemma310_on_graph(
        graph, values, scheme.p, coloring.colors,
        mode="exact-product", grid=grid, engine=engine,
    )[-1]


def _drive_lemma310_canonical(graph, engine):
    """The canonical uniform workload (``x = p = 1/2``, ``c = 1``, mode
    auto): exactly the regime where the vector kernel takes over at round
    1 and runs the color-class rounds in-plane, so this driver pins the
    vectorized protocol — targeted alphas, decides, folds — against the
    scalar engines bit for bit."""
    from repro.congest.network import Network

    network = Network.congest(graph)
    coloring = distance2_coloring(graph)
    values = {v: 0.5 for v in graph.nodes()}
    p = {v: 0.5 for v in graph.nodes()}
    return run_lemma310_on_graph(
        None, values, p, coloring.colors, network=network, engine=engine
    )[-1]


#: Every program in repro/congest/programs, with realistic inputs.
DRIVERS = {
    "bfs": _drive_bfs,
    "greedy-mds": _drive_greedy,
    "color-reduction": _drive_color_reduction,
    "tree-aggregation": _drive_aggregate,
    "rounding-exec": _drive_rounding_exec,
    "lemma310": _drive_lemma310,
    "lemma310-canonical": _drive_lemma310_canonical,
}

#: The full engine matrix; every non-reference engine is compared against
#: the reference run field for field.
ENGINES = ("reference", "fast", "vector")

#: Programs the vector engine executes on its numpy message plane (the
#: rest fall back to FastEngine semantics inside VectorEngine).
VECTOR_ELIGIBLE = ("greedy-mds", "color-reduction", "rounding-exec", "lemma310")


@pytest.mark.parametrize("engine", [e for e in ENGINES if e != "reference"])
@pytest.mark.parametrize("program", sorted(DRIVERS))
def test_engine_parity_full_suite(zoo_graph, program, engine):
    ref = DRIVERS[program](zoo_graph, "reference")
    other = DRIVERS[program](zoo_graph, engine)
    # Dataclass equality covers every field; spell out the load-bearing ones
    # so a failure names the diverging metric.
    assert ref.rounds == other.rounds
    assert ref.outputs == other.outputs
    assert ref.total_messages == other.total_messages
    assert ref.total_bits == other.total_bits
    assert ref.max_message_bits == other.max_message_bits
    assert ref.messages_per_round == other.messages_per_round
    assert ref.bits_per_round == other.bits_per_round
    assert ref == other


@pytest.mark.parametrize("program", sorted(VECTOR_ELIGIBLE))
def test_vector_eligible_programs_declare_specs(program):
    """The vector-path programs opt in via non-empty ``message_specs``."""
    from repro.congest.engine import kernel_for
    from repro.congest.programs.color_reduction import ColorReductionProgram
    from repro.congest.programs.greedy_mds import DistributedGreedyProgram
    from repro.congest.programs.lemma310 import Lemma310Program
    from repro.congest.programs.rounding_exec import RoundingExecutionProgram

    classes = {
        "greedy-mds": DistributedGreedyProgram,
        "color-reduction": ColorReductionProgram,
        "rounding-exec": RoundingExecutionProgram,
        "lemma310": Lemma310Program,
    }
    cls = classes[program]
    assert cls.message_specs, f"{cls.__name__} must declare MessageSpecs"
    assert kernel_for(cls) is not None


@pytest.mark.parametrize("engine", ENGINES)
def test_malformed_forest_fails_identically(engine):
    """A parent cycle never terminates: both engines raise the limit error.

    This pins the event-driven contract: TreeAggregationProgram must not
    hide non-termination behind an empty-inbox round cutoff (which the
    event-driven scheduler would never execute).
    """
    from repro.errors import SimulationLimitError

    g = nx.path_graph(2)
    with pytest.raises(SimulationLimitError):
        run_tree_sum(g, {0: 1, 1: 0}, {0: (1,), 1: (1,)}, engine=engine)


@pytest.mark.parametrize("engine", ENGINES)
def test_per_round_series_consistency(zoo_graph, engine):
    for driver in (_drive_bfs, _drive_greedy):
        result = driver(zoo_graph, engine)
        assert len(result.messages_per_round) == result.rounds
        assert len(result.bits_per_round) == result.rounds
        assert sum(result.messages_per_round) == result.total_messages
        assert sum(result.bits_per_round) == result.total_bits
        assert all(isinstance(b, int) for b in result.bits_per_round)


class TestEngineSelection:
    def test_available(self):
        assert {"reference", "fast", "vector"} <= set(available_engines())

    def test_resolve_by_name_instance_class(self):
        assert isinstance(resolve_engine("reference"), ReferenceEngine)
        assert isinstance(resolve_engine(FastEngine), FastEngine)
        assert isinstance(resolve_engine("vector"), VectorEngine)
        inst = FastEngine()
        assert resolve_engine(inst) is inst

    def test_resolve_unknown_raises(self):
        with pytest.raises(CongestError):
            resolve_engine("warp-drive")

    def test_default_is_fast(self):
        g = nx.path_graph(3)
        sim = Simulator(Network.congest(g), _NoopProgram)
        assert isinstance(sim.engine, FastEngine)

    def test_set_default_engine_round_trip(self):
        original = default_engine_name()
        try:
            set_default_engine("reference")
            g = nx.path_graph(3)
            sim = Simulator(Network.congest(g), _NoopProgram)
            assert isinstance(sim.engine, ReferenceEngine)
        finally:
            set_default_engine(original)

    def test_set_default_engine_unknown_raises(self):
        with pytest.raises(CongestError):
            set_default_engine("warp-drive")

    def test_engine_is_abstract(self):
        with pytest.raises(TypeError):
            Engine()  # type: ignore[abstract]


class _NoopProgram:
    """Minimal program factory for construction-only tests."""

    event_driven = False

    def __init__(self, input_value=None):
        self.input = input_value

    def setup(self, ctx):
        ctx.halt()

    def receive(self, ctx, inbox):  # pragma: no cover - never runs
        ctx.halt()


class TestNetworkCsr:
    def test_csr_matches_neighbors(self, small_gnp):
        net = Network.congest(small_gnp)
        indptr, indices = net.csr()
        assert len(indptr) == net.n + 1
        assert len(indices) == 2 * small_gnp.number_of_edges()
        for v in range(net.n):
            span = tuple(indices[indptr[v]:indptr[v + 1]])
            assert span == net.neighbors(v)
            assert span == tuple(sorted(span))
            assert net.degree(v) == len(span)

    def test_max_degree_from_csr(self, small_gnp):
        net = Network.congest(small_gnp)
        assert net.max_degree == max(d for _, d in small_gnp.degree())
