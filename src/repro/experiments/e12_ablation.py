"""E12 — ablations behind Section 1.2's design discussion.

(a) *Why not one iteration of rounding?*  Compare the full pipeline (with
scaled constants so Part II engages) against a one-shot-only pipeline on
instances with low fractionality.  The paper's answer: gradual doubling is
what keeps the coloring small (Theorem 1.2 route) and the independence
requirement polylogarithmic (Theorem 1.1 route); quality-wise both land
within the same guarantee, which the table confirms, while the one-shot-only
route needs ``F * Delta``-color schedules (reported).

(b) *Estimator ablation*: Chernoff pessimistic estimator vs exact
enumeration on a small factor-two instance — the exact estimator's initial
value is no larger, and both derandomizations stay within their budgets.
"""

from __future__ import annotations

from repro.derand.coloring_based import one_shot_via_coloring
from repro.derand.conditional import ConditionalExpectationEngine
from repro.derand.estimators import EstimatorConfig
from repro.derand.coloring_based import schedule_from_colors
from repro.coloring.distance2 import bipartite_distance2_coloring
from repro.domsets.covering import CoveringInstance
from repro.experiments.harness import ExperimentReport
from repro.fractional.raising import kmw06_initial_fds
from repro.graphs.generators import gnp_graph, random_tree, regular_graph
from repro.mds.deterministic import approx_mds_coloring
from repro.mds.pipeline import PipelineParams
from repro.rounding.schemes import factor_two_scheme

COLUMNS = ["case", "graph", "variant", "size", "estimate", "colors", "iters"]


def run(fast: bool = True, seed: int = 21) -> ExperimentReport:
    report = ExperimentReport(
        experiment="E12",
        claim="Ablations: gradual doubling vs one-shot-only; chernoff vs exact",
        columns=COLUMNS,
    )
    graphs = [
        ("gnp-60", gnp_graph(60, 0.1, seed=seed)),
        ("tree-50", random_tree(50, seed=seed)),
    ]

    # (a) pipeline ablation -------------------------------------------------
    for name, graph in graphs:
        full = approx_mds_coloring(
            graph,
            params=PipelineParams(
                eps=0.5, eps2_override=0.3, f_target_override=8.0,
                constants_scale=1e-3,
            ),
        )
        one_shot_only = approx_mds_coloring(
            graph,
            params=PipelineParams(eps=0.5, max_factor_two_iterations=0),
        )
        initial = kmw06_initial_fds(graph, eps=0.5 / 16.0)
        direct = one_shot_via_coloring(graph, initial.fds.values)
        report.add_row(
            case="pipeline", graph=name, variant="full(scaled)",
            size=full.size, estimate="-",
            colors="-", iters=int(full.params["part2_iterations"]),
        )
        report.add_row(
            case="pipeline", graph=name, variant="one-shot-only",
            size=one_shot_only.size, estimate="-",
            colors=direct.num_colors, iters=0,
        )
        report.check(
            "both_within_2x",
            full.size <= 2 * one_shot_only.size + 2
            and one_shot_only.size <= 2 * full.size + 2,
        )

    # (b) estimator ablation --------------------------------------------------
    # Uniform tight fractional solution on a regular graph: every variable
    # participates and constraints carry real uncovered-probability mass, so
    # the exact and Chernoff estimators genuinely differ.
    graph = regular_graph(24, 5, seed=seed + 1)
    delta_tilde = 6
    values = {v: 1.0 / delta_tilde for v in graph.nodes()}
    r = float(delta_tilde)
    base = CoveringInstance.from_graph(graph, values)
    scheme = factor_two_scheme(base, eps=0.5, r=r)
    participating = set(scheme.participating())
    coloring = bipartite_distance2_coloring(scheme.instance, restrict=participating)
    schedule = schedule_from_colors(scheme, coloring.colors)
    for mode in ("chernoff", "exact-enum"):
        engine = ConditionalExpectationEngine(
            scheme, EstimatorConfig(mode=mode, enum_limit=22)
        )
        result = engine.run([list(batch) for batch in schedule])
        report.add_row(
            case="estimator", graph="regular-24", variant=mode,
            size=round(result.realized_size, 3),
            estimate=round(result.initial_estimate, 3),
            colors=coloring.num_colors, iters="-",
        )
        report.check(
            f"{mode}_budget", result.realized_size <= result.initial_estimate + 1e-6
        )

    # (c) seed-level vs coin-level fixing (Lemma 3.4 verbatim vs the
    # documented substitution), on a one-shot instance.
    from repro.decomposition.ball_carving import carve_decomposition
    from repro.derand.decomposition_based import one_shot_via_decomposition
    from repro.derand.seed_level import SeedLevelDerandomizer
    from repro.rounding.schemes import one_shot_scheme

    graph = gnp_graph(30, 0.12, seed=seed + 2)
    initial = kmw06_initial_fds(graph, eps=0.5)
    delta_tilde = max(d for _, d in graph.degree()) + 1
    decomposition = carve_decomposition(graph, separation_k=2)
    scheme = one_shot_scheme(
        CoveringInstance.from_graph(graph, initial.fds.values), delta_tilde
    )
    seed_run = SeedLevelDerandomizer(
        scheme, decomposition, config=EstimatorConfig(mode="exact-product")
    ).run()
    coin_run = one_shot_via_decomposition(
        graph, initial.fds.values, decomposition=decomposition
    )
    size_seed = sum(1 for x in seed_run.outcome.projected.values() if x >= 1 - 1e-9)
    size_coin = sum(1 for x in coin_run.values.values() if x >= 1 - 1e-9)
    report.add_row(
        case="lemma3.4", graph="gnp-30",
        variant=f"seed-level ({seed_run.clusters_via_seed} seeded)",
        size=size_seed, estimate=round(seed_run.initial_estimate, 3),
        colors="-", iters="-",
    )
    report.add_row(
        case="lemma3.4", graph="gnp-30", variant="coin-level",
        size=size_coin, estimate=round(coin_run.result.initial_estimate, 3),
        colors="-", iters="-",
    )
    report.check("seed_budget", seed_run.realized_size <= seed_run.initial_estimate + 1e-6)
    report.check("seed_close_to_coin", abs(size_seed - size_coin) <= max(3, size_coin))
    return report


def run_strategy_ablation(
    fast: bool = True, family: str = "gnp", n: int = 60
) -> ExperimentReport:
    """(c) Execution-strategy ablation: per-cell vs stacked seed sweeps.

    The same seed ensemble of the simulated greedy MDS program is executed
    twice — once one cell at a time on the vector engine, once as a single
    stacked message plane (``strategy="batch"``) — and the records are
    compared field for field.  The check certifies the stacked plane is an
    *execution* strategy, not an algorithmic change: every metric
    (rounds, messages, bits, outputs-derived sizes) must be identical, and
    only wall-clock may differ (the table reports both).
    """
    from repro.api import Experiment
    from repro.experiments.harness import (
        SEED_SWEEP_COUNT_FAST,
        SEED_SWEEP_COUNT_FULL,
        fast_mode,
    )

    if fast is None:
        fast = fast_mode()
    seeds = SEED_SWEEP_COUNT_FAST if fast else SEED_SWEEP_COUNT_FULL
    experiment = (
        Experiment("greedy").on(family).sizes(n).engine("vector").seeds(seeds)
    )
    report = ExperimentReport(
        experiment="E12-strategy",
        claim="stacked execution changes wall-clock only, never results",
        columns=["strategy", "seeds", "ok", "wall_ms", "speedup"],
    )
    walls = {}
    metrics = {}
    for strategy in ("cell", "batch"):
        sweep = experiment.strategy(strategy).run()
        walls[strategy] = sum(rec.wall_s or 0.0 for rec in sweep)
        metrics[strategy] = [rec.metrics for rec in sweep]
        report.check("no_failures", sweep.ok)
    report.check("identical_records", metrics["cell"] == metrics["batch"])
    speedup = walls["cell"] / walls["batch"] if walls["batch"] > 0 else 0.0
    for strategy in ("cell", "batch"):
        report.add_row(
            strategy=strategy,
            seeds=seeds,
            ok="yes",
            wall_ms=round(walls[strategy] * 1000, 2),
            speedup=round(speedup, 2) if strategy == "batch" else "1.0",
        )
    report.notes.append(
        "identical_records compares every per-seed metrics block between "
        "the two strategies; speedup is total-cell-wall / batched-wall"
    )
    return report
