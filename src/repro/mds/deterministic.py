"""The two deterministic CONGEST MDS algorithms.

:func:`approx_mds_decomposition` is Theorem 1.1 (runtime a function of
``n``): Part II/III rounding is derandomized inside the clusters of a 2-hop
network decomposition (Lemmas 3.4, 3.8, 3.9).

:func:`approx_mds_coloring` is Theorem 1.2 / Corollary 1.3 (runtime a
function of ``Delta``): rounding is derandomized through distance-2
colorings of the (pruned / split) bipartite representation (Lemmas 3.10,
3.12, 3.13, 3.14).

Both guarantee an ``(1+eps)(1 + ln(Delta+1))``-approximation; every call
verifies domination and the per-step estimator budgets.
"""

from __future__ import annotations

from typing import Dict

import networkx as nx

from repro.decomposition.ball_carving import carve_decomposition
from repro.decomposition.cluster_graph import NetworkDecomposition
from repro.derand.coloring_based import (
    factor_two_via_coloring,
    one_shot_via_coloring,
)
from repro.derand.decomposition_based import (
    factor_two_via_decomposition,
    one_shot_via_decomposition,
)
from repro.derand.estimators import EstimatorConfig
from repro.mds.pipeline import MDSResult, PipelineParams, run_pipeline


def approx_mds_coloring(
    graph: nx.Graph,
    eps: float = 0.5,
    params: PipelineParams | None = None,
    estimator: EstimatorConfig | None = None,
) -> MDSResult:
    """Theorem 1.2: deterministic ``(1+eps)(1+ln(Delta+1))``-approximate MDS
    in ``O(Delta polylog Delta + polylog Delta log* n)`` CONGEST rounds."""
    params = params or PipelineParams(eps=eps)

    def factor_two_step(values: Dict[int, float], eps2: float, r: float):
        out = factor_two_via_coloring(
            graph,
            values,
            eps=eps2,
            r=r,
            constants_scale=params.constants_scale,
            config=estimator,
        )
        return out.values, out.ledger

    def one_shot_step(values: Dict[int, float]):
        out = one_shot_via_coloring(graph, values, config=estimator)
        return out.values, out.ledger

    return run_pipeline(
        graph, params, factor_two_step, one_shot_step, route="coloring"
    )


def approx_mds_decomposition(
    graph: nx.Graph,
    eps: float = 0.5,
    params: PipelineParams | None = None,
    decomposition: NetworkDecomposition | None = None,
    estimator: EstimatorConfig | None = None,
) -> MDSResult:
    """Theorem 1.1: deterministic ``(1+eps)(1+ln(Delta+1))``-approximate MDS
    in ``2^O(sqrt(log n log log n))`` CONGEST rounds.

    The same decomposition is reused across all rounding steps, as in the
    paper ("using the same network decomposition").
    """
    params = params or PipelineParams(eps=eps)
    shared = decomposition or carve_decomposition(graph, separation_k=2)

    def factor_two_step(values: Dict[int, float], eps2: float, r: float):
        out = factor_two_via_decomposition(
            graph, values, eps=eps2, r=r, decomposition=shared, config=estimator
        )
        return out.values, out.ledger

    def one_shot_step(values: Dict[int, float]):
        out = one_shot_via_decomposition(
            graph, values, decomposition=shared, config=estimator
        )
        return out.values, out.ledger

    return run_pipeline(
        graph, params, factor_two_step, one_shot_step, route="decomposition"
    )
