"""The unified experiment API: registry, builder, records, streaming, shims."""

from __future__ import annotations

import copy
import json

import pytest

from repro.api import (
    Experiment,
    ProgramSpec,
    RunRecord,
    SweepResult,
    available_programs,
    batchable_programs,
    program_spec,
    register_program,
    registered_specs,
)
from repro.congest.node import NodeProgram
from repro.errors import (
    UnknownEngineError,
    UnknownProgramError,
    UnknownStrategyError,
)
from repro.experiments.runner import (
    GridCell,
    iter_grid_records,
    run_grid,
    run_grid_records,
)


def _strip(records):
    """Drop the wall/batch fields that legitimately differ between runs."""
    stripped = copy.deepcopy(records)
    for rec in stripped:
        rec.pop("wall_s", None)
        rec.pop("batch", None)
    return stripped


class TestRegistry:
    def test_every_node_program_has_a_spec(self):
        """Registry completeness: each concrete NodeProgram is registered."""
        import repro.congest.programs  # noqa: F401 - triggers registration

        registered = {spec.program for spec in registered_specs()}
        program_classes = [
            cls
            for cls in NodeProgram.__subclasses__()
            if cls.__module__.startswith("repro.congest.programs")
        ]
        assert len(program_classes) == 6
        for cls in program_classes:
            assert cls in registered, f"{cls.__name__} has no ProgramSpec"

    def test_available_programs_covers_all_six(self):
        """The old hard-coded list silently omitted three programs."""
        assert available_programs() == [
            "bfs",
            "color-reduction",
            "greedy",
            "lemma310",
            "rounding-exec",
            "tree-sum",
        ]

    def test_composite_listed_only_on_request(self):
        assert "cds" not in available_programs()
        assert "cds" in available_programs(include_composite=True)
        assert program_spec("cds").composite is True

    def test_batchable_programs_derive_from_registry(self):
        assert batchable_programs() == [
            "color-reduction",
            "greedy",
            "lemma310",
            "rounding-exec",
        ]
        for name in batchable_programs():
            assert program_spec(name).batch_factory is not None

    def test_unknown_program_is_structured(self):
        with pytest.raises(UnknownProgramError) as exc:
            program_spec("quicksort")
        assert "cds" in str(exc.value)  # the error lists composites too

    def test_duplicate_registration_rejected(self):
        spec = program_spec("greedy")
        with pytest.raises(ValueError):
            register_program(spec)
        # replace=True is the explicit override
        register_program(spec, replace=True)

    def test_simulation_spec_requires_program_class(self):
        with pytest.raises(ValueError):
            register_program(
                ProgramSpec(name="broken", description="", drive=lambda n, e: None)
            )


class TestAllProgramsGridDrivable:
    """Acceptance: all 6 CONGEST programs + the CDS composite run via the grid."""

    def test_six_programs_on_every_engine(self):
        cells = (
            Experiment()
            .on("tree")
            .sizes(16)
            .engines("reference", "fast", "vector")
            .seed(3)
            .cells()
        )
        assert {c.program for c in cells} == set(available_programs())
        records = run_grid_records(cells)
        assert all(rec.ok for rec in records), [
            (rec.key, rec.error) for rec in records if not rec.ok
        ]
        # Engine parity on the full metrics block per (program, seed) item.
        by_program = {}
        for rec in records:
            by_program.setdefault(rec.cell.program, set()).add(
                json.dumps(rec.metrics, sort_keys=True)
            )
        for program, blocks in by_program.items():
            assert len(blocks) == 1, f"{program} metrics diverge across engines"

    def test_cds_composite_runs_through_grid(self):
        sweep = Experiment("cds").on("tree").sizes(20).run()
        assert sweep.ok
        metrics = sweep.records[0].metrics
        assert metrics["cds_size"] >= metrics["mds_size"] >= 1
        for key in ("rounds", "total_messages", "total_bits", "all_halted"):
            assert key in metrics  # standard block keys, summary-compatible

    def test_program_specific_summaries(self):
        sweep = Experiment("lemma310", "rounding-exec", "tree-sum").on(
            "gnp"
        ).sizes(20).seed(1).run()
        assert sweep.ok
        by_program = {rec.cell.program: rec.metrics for rec in sweep}
        assert by_program["lemma310"]["decided"] == 20
        assert 0 < by_program["lemma310"]["joined"] <= 20
        assert 0 < by_program["rounding-exec"]["joined"] <= 20
        assert by_program["tree-sum"]["tree_total"] == by_program["tree-sum"]["reached"]


class TestBuilder:
    def test_builder_matches_legacy_run_grid(self):
        """Parity: builder output record-for-record equal to the legacy path."""
        cells = [
            GridCell(family=f, n=16, program=p, engine=e, seed=3)
            for f in ("tree", "gnp")
            for p in ("bfs", "greedy")
            for e in ("reference", "fast")
        ]
        legacy = run_grid(cells, strategy="cell")
        sweep = (
            Experiment("bfs", "greedy")
            .on("tree", "gnp")
            .sizes(16)
            .engines("reference", "fast")
            .seed(3)
            .strategy("cell")
            .run()
        )
        assert sweep.cells() if False else True  # builder object stays reusable
        assert _strip(sweep.to_dicts()) == _strip(legacy)

    def test_builder_batch_matches_legacy_batch(self):
        cells = (
            Experiment("greedy")
            .on("gnp")
            .sizes(24)
            .engine("vector")
            .seeds(4)
            .cells()
        )
        legacy = run_grid(cells, strategy="batch")
        sweep = (
            Experiment("greedy")
            .on("gnp")
            .sizes(24)
            .engine("vector")
            .seeds(4)
            .strategy("batch")
            .run()
        )
        assert _strip(sweep.to_dicts()) == _strip(legacy)
        assert all(rec.batch for rec in sweep)

    def test_auto_strategy_negotiation(self):
        stackable = Experiment("greedy").engine("vector").seeds(4)
        assert stackable.resolved_strategy() == "batch"
        assert Experiment("bfs").engine("vector").seeds(4).resolved_strategy() == "cell"
        assert Experiment("greedy").engine("fast").seeds(4).resolved_strategy() == "cell"
        assert Experiment("greedy").engine("vector").seed(7).resolved_strategy() == "cell"
        # auto-batch produces the same records as forced per-cell execution
        auto = stackable.on("gnp").sizes(20).run()
        forced = (
            Experiment("greedy").on("gnp").sizes(20).engine("vector").seeds(4)
            .strategy("cell").run()
        )
        assert _strip(auto.to_dicts()) == _strip(forced.to_dicts())

    def test_auto_negotiates_batch_for_mixed_size_sweeps(self):
        """Ragged planes made size an instance axis: a mixed-size
        single-seed sweep batches just like a seed ensemble."""
        mixed = Experiment("greedy").engine("vector").sizes(16, 24).seed(7)
        assert mixed.resolved_strategy() == "batch"
        solo = Experiment("greedy").engine("vector").sizes(16).seed(7)
        assert solo.resolved_strategy() == "cell"
        auto = mixed.on("gnp").run()
        forced = (
            Experiment("greedy").on("gnp").sizes(16, 24).engine("vector")
            .seed(7).strategy("cell").run()
        )
        assert _strip(auto.to_dicts()) == _strip(forced.to_dicts())
        assert all(rec.batch for rec in auto)  # the ragged group stacked

    def test_engine_restriction_enforced_in_negotiation(self):
        """A spec's ``engines`` tuple is a hard gate at expansion time."""
        import dataclasses

        from repro.api.registry import _REGISTRY
        from repro.errors import EngineRestrictionError

        restricted = dataclasses.replace(
            program_spec("greedy"), name="greedy-fast-only", engines=("fast",)
        )
        register_program(restricted)
        try:
            with pytest.raises(EngineRestrictionError) as exc:
                Experiment("greedy-fast-only").engine("vector").cells()
            assert exc.value.program == "greedy-fast-only"
            assert exc.value.engine == "vector"
            assert exc.value.allowed == ["fast"]
            assert "fast" in str(exc.value)
            # The allowed engine still runs end to end.
            sweep = (
                Experiment("greedy-fast-only")
                .on("tree").sizes(12).engine("fast").run()
            )
            assert sweep.ok and sweep.records[0].metrics["ds_size"] >= 1
            # Defaulted all-programs grids drop the restricted pairs
            # instead of failing: one restricted spec must never make
            # the engine-comparison grids unbuildable.
            cells = (
                Experiment().on("tree").sizes(12)
                .engines("fast", "vector").cells()
            )
            pairs = {(c.program, c.engine) for c in cells}
            assert ("greedy-fast-only", "fast") in pairs
            assert ("greedy-fast-only", "vector") not in pairs
            assert ("greedy", "vector") in pairs  # unrestricted untouched
        finally:
            _REGISTRY.pop("greedy-fast-only", None)

    def test_unknown_axes_fail_fast(self):
        with pytest.raises(UnknownProgramError):
            Experiment("dijkstra").cells()
        with pytest.raises(UnknownEngineError):
            Experiment("bfs").engine("warp").cells()
        with pytest.raises(UnknownStrategyError):
            Experiment("bfs").strategy("warp")

    def test_seeds_int_expands_to_range(self):
        cells = Experiment("bfs").engine("fast").seeds(3).cells()
        assert [c.seed for c in cells] == [0, 1, 2]

    def test_sweep_result_surface(self, tmp_path):
        sweep = Experiment("bfs").on("tree").sizes(12).engine("fast").run()
        assert len(sweep) == 1 and sweep.ok and not sweep.failures()
        assert sweep[0] is sweep.records[0]
        assert sweep.meta["strategy"] == "cell"
        summary = sweep.summary()
        assert summary["per_engine"]["fast"]["ok"] == 1
        out = sweep.write(tmp_path / "sweep.json", meta={"extra": 1})
        payload = json.loads(out.read_text())
        assert payload["meta"]["extra"] == 1
        assert payload["cells"] == sweep.to_dicts()
        assert sweep.report().all_checks_pass


class TestStreaming:
    CELLS = [
        GridCell(family=f, n=16, program=p, engine="fast", seed=s)
        for f in ("tree", "gnp")
        for p in ("bfs", "greedy")
        for s in (0, 1)
    ]

    def test_streamed_records_sorted_equal_batch_records(self):
        """Order independence: streamed set == ordered run, any strategy."""
        order = {cell.key: i for i, cell in enumerate(self.CELLS)}
        for strategy in ("cell", "batch"):
            ordered = run_grid(self.CELLS, strategy=strategy)
            streamed = list(
                run_grid(self.CELLS, strategy=strategy, stream=True)
            )
            streamed.sort(key=lambda rec: order[rec["key"]])
            assert _strip(streamed) == _strip(ordered)

    def test_streamed_batch_groups_match_cell_records(self):
        cells = (
            Experiment("greedy", "color-reduction")
            .on("gnp")
            .sizes(20)
            .engine("vector")
            .seeds(3)
            .cells()
        )
        order = {cell.key: i for i, cell in enumerate(cells)}
        streamed = sorted(
            iter_grid_records(cells, strategy="batch"),
            key=lambda rec: order[rec.key],
        )
        ordered = run_grid_records(cells, strategy="cell")
        assert _strip([r.to_dict() for r in streamed]) == _strip(
            [r.to_dict() for r in ordered]
        )

    def test_stream_is_lazy_and_incremental(self):
        stream = run_grid(self.CELLS, stream=True)
        assert not isinstance(stream, list)
        first = next(stream)
        assert first["key"] == self.CELLS[0].key  # sequential = plan order
        rest = list(stream)
        assert len(rest) == len(self.CELLS) - 1

    def test_stream_with_workers_matches_sequential_set(self):
        order = {cell.key: i for i, cell in enumerate(self.CELLS)}
        parallel = sorted(
            iter_grid_records(self.CELLS, jobs=2),
            key=lambda rec: order[rec.key],
        )
        sequential = run_grid_records(self.CELLS)
        assert _strip([r.to_dict() for r in parallel]) == _strip(
            [r.to_dict() for r in sequential]
        )

    def test_experiment_stream_matches_run(self):
        experiment = (
            Experiment("bfs", "greedy").on("tree").sizes(16).engine("fast").seeds(2)
        )
        order = {cell.key: i for i, cell in enumerate(experiment.cells())}
        streamed = sorted(experiment.stream(), key=lambda rec: order[rec.key])
        assert _strip([r.to_dict() for r in streamed]) == _strip(
            experiment.run().to_dicts()
        )

    def test_collect_restores_cell_order_and_meta(self):
        experiment = (
            Experiment("greedy").on("gnp").sizes(20).engine("vector").seeds(3)
        )
        sweep = experiment.collect(experiment.stream())
        assert [rec.key for rec in sweep] == [c.key for c in experiment.cells()]
        assert sweep.meta["streamed"] is True
        assert sweep.meta["strategy"] == "batch"  # the *resolved* strategy
        assert _strip(sweep.to_dicts()) == _strip(experiment.run().to_dicts())

    def test_bad_strategy_raises_eagerly_even_when_streaming(self):
        with pytest.raises(UnknownStrategyError):
            run_grid(self.CELLS, strategy="warp", stream=True)
        with pytest.raises(UnknownStrategyError):
            iter_grid_records(self.CELLS, strategy="warp")

    def test_cli_stream_emits_record_lines(self, capsys):
        from repro.__main__ import main

        assert main(["grid", "--quick", "--stream"]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line.startswith("{")]
        records = [json.loads(line) for line in lines]
        # 2 families x 2 sizes (mixed: the ragged smoke) x 4 stackable
        # programs x 5 seeds
        assert len(records) == 80
        assert all(rec["ok"] for rec in records)
        assert "no_failures=PASS" in out and "engine_parity=PASS" in out

    def test_batch_groups_stream_per_instance(self):
        """In-group streaming: a ragged group's records arrive in instance
        completion order, not all at once in cell order.

        Color reduction runs exactly n rounds, so in a mixed-size group
        the 12-node instances *must* surface before any 40-node instance
        even though the 40-node cells come first in cell order.
        """
        cells = (
            Experiment("color-reduction")
            .on("gnp")
            .sizes(40, 12)
            .engine("vector")
            .seeds(3)
            .cells()
        )
        streamed = list(iter_grid_records(cells, strategy="batch"))
        sizes_in_arrival_order = [rec.cell.n for rec in streamed]
        assert sizes_in_arrival_order == [12, 12, 12, 40, 40, 40]
        assert all(rec.batch["k"] == 6 for rec in streamed)
        assert all("stream_latency_s" in rec.batch for rec in streamed)
        latencies = [rec.batch["stream_latency_s"] for rec in streamed]
        assert latencies == sorted(latencies)  # monotone completion times


class TestRecords:
    def test_run_record_round_trip(self):
        rec = run_grid_records(
            [GridCell(family="tree", n=12, program="bfs", engine="fast")]
        )[0]
        clone = RunRecord.from_dict(rec.to_dict())
        assert clone == rec
        failure = run_grid_records(
            [GridCell(family="nope", n=12, program="bfs", engine="fast")]
        )[0]
        assert not failure.ok and failure.error["type"] == "GraphError"
        assert RunRecord.from_dict(failure.to_dict()) == failure

    def test_to_dict_matches_legacy_shape(self):
        cell = GridCell(family="tree", n=12, program="bfs", engine="fast")
        [typed] = run_grid_records([cell])
        with pytest.warns(DeprecationWarning):
            from repro.experiments.runner import run_cell

            legacy = run_cell(cell)
        assert _strip([typed.to_dict()]) == _strip([legacy])

    def test_sweep_result_iterates_in_cell_order(self):
        sweep = SweepResult(
            records=run_grid_records(TestStreaming.CELLS), meta={}
        )
        assert [rec.key for rec in sweep] == [c.key for c in TestStreaming.CELLS]

    def test_quality_block_round_trips(self):
        sweep = (
            Experiment("greedy")
            .on("tree")
            .sizes(16)
            .engine("vector")
            .certify("lp")
            .run()
        )
        [rec] = sweep.records
        assert rec.quality is not None
        assert rec.quality["oracle"] == "lp"
        payload = rec.to_dict()
        assert "quality" in payload
        clone = RunRecord.from_dict(payload)
        assert clone == rec and clone.quality == rec.quality
        assert sweep.meta["certify"] == "lp"

    def test_uncertified_records_keep_legacy_shape(self):
        """Without ``certify`` nothing about a record or the sweep meta may
        change — the quality block is strictly opt-in."""
        experiment = Experiment("greedy").on("tree").sizes(16).engine("vector")
        sweep = experiment.run()
        [rec] = sweep.records
        assert rec.quality is None
        assert "quality" not in rec.to_dict()
        assert "certify" not in sweep.meta
        certified = json.dumps(
            experiment.certify("lp").run().records[0].to_dict(), sort_keys=True
        )
        assert json.dumps(rec.to_dict(), sort_keys=True) != certified


class TestDeprecationShims:
    def test_expand_grid_warns_but_works(self):
        from repro.experiments.runner import expand_grid

        with pytest.warns(DeprecationWarning, match="Experiment"):
            cells = expand_grid(("tree",), (12,), programs=("bfs",), engines=("fast",))
        assert cells == Experiment("bfs").on("tree").sizes(12).engine("fast").cells()

    def test_run_cell_warns_but_works(self):
        from repro.experiments.runner import run_cell

        with pytest.warns(DeprecationWarning, match="Experiment"):
            rec = run_cell(GridCell(family="tree", n=12, program="bfs", engine="fast"))
        assert rec["ok"] is True and rec["metrics"]["reached"] == 12

    def test_builder_surface_does_not_warn(self, recwarn):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            Experiment("bfs").on("tree").sizes(12).engine("fast").run()
