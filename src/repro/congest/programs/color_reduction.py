"""Distributed iterative color reduction as a node program.

The message-passing realization of :func:`repro.coloring.reduction.
reduce_coloring`: starting from unique IDs (a proper ``n``-coloring), color
classes are eliminated top-down, one class per round — the [BEK15]-style
final stage the paper's Lemma 3.12 builds on.  Node with color ``c`` acts
in round ``n - c``: it picks the smallest color unused in its neighborhood
and announces it.  After ``n`` rounds at most ``Delta + 1`` colors remain.

Every message is a single color value (``O(log n)`` bits).
"""

from __future__ import annotations

from typing import Dict, Tuple

import networkx as nx

from repro.congest.engine import EngineSpec
from repro.congest.message import Message
from repro.congest.network import Network
from repro.congest.node import Context, NodeProgram
from repro.congest.simulator import SimulationResult, Simulator
from repro.errors import ColoringError


class ColorReductionProgram(NodeProgram):
    """Input per node: its initial color (defaults to its id).

    Output: ``color`` — the final color, at most ``Delta + 1`` distinct
    values across the network.
    """

    def __init__(self, input_value: object = None):
        super().__init__(input_value)
        self.color: int | None = (
            int(input_value) if input_value is not None else None
        )
        self.neighbor_colors: Dict[int, int] = {}

    def setup(self, ctx: Context) -> None:
        if self.color is None:
            self.color = ctx.node
        ctx.broadcast(Message("color", self.color))

    def receive(self, ctx: Context, inbox: Dict[int, Message]) -> None:
        for sender, msg in inbox.items():
            if msg.tag == "color":
                self.neighbor_colors[sender] = msg.fields[0]

        # Round r eliminates color class n - r; nodes of that color recolor.
        acting_color = ctx.n - ctx.round_number
        assert self.color is not None
        if self.color == acting_color and acting_color > 0:
            taken = set(self.neighbor_colors.values())
            new_color = 0
            while new_color in taken:
                new_color += 1
            if new_color in taken:  # pragma: no cover - defensive
                raise ColoringError("no free color found")
            self.color = new_color
            ctx.broadcast(Message("color", self.color))

        if acting_color <= 0:
            ctx.output("color", self.color)
            ctx.halt()


def run_color_reduction(
    graph: nx.Graph,
    initial: Dict[int, int] | None = None,
    network: Network | None = None,
    engine: EngineSpec = None,
) -> Tuple[Dict[int, int], SimulationResult]:
    """Run distributed color reduction; returns (colors, metrics)."""
    network = network or Network.congest(graph)
    inputs = dict(initial) if initial is not None else {}
    sim = Simulator(network, ColorReductionProgram, inputs=inputs, engine=engine)
    result = sim.run(max_rounds=network.n + 4)
    return result.output_map("color"), result
