"""Benchmark E8: Baswana-Sen spanner substrate table.

Regenerates the Baswana-Sen spanner substrate (see DESIGN.md Section 2) and certifies
every guarantee check recorded by the experiment.
"""

from benchmarks.conftest import run_experiment
from repro.experiments import e08_spanner


def bench_e08_spanner(benchmark):
    run_experiment(benchmark, e08_spanner.run)
