"""VectorEngine internals: exact bit accounting, specs, fallback paths.

Cross-engine observational equivalence lives in ``test_engine_parity.py``;
this module pins the pieces that make the numpy message plane *exact* —
vectorized bit lengths, :class:`MessageSpec` wire accounting, the CSR row
reductions — and the fallback ladder (no spec, no kernel, mixed program
classes, non-conforming traffic at handover).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.congest.engine import (
    MessageSpec,
    VectorEngine,
    VectorKernel,
    register_kernel,
)
from repro.congest.engine.vector import CsrPlane, bit_length_array
from repro.congest.message import Message, bits_of_int, message_bits
from repro.congest.network import Network
from repro.congest.node import NodeProgram
from repro.congest.programs.greedy_mds import DistributedGreedyProgram
from repro.congest.simulator import Simulator
from repro.errors import CongestError, MessageTooLargeError
from repro.graphs.generators import gnp_graph, star_graph


class TestBitLengthArray:
    def test_matches_scalar_accounting(self):
        values = [0, 1, 2, 3, 4, 7, 8, 255, 256, 1023, 1 << 40, (1 << 52) + 1]
        got = bit_length_array(np.array(values, dtype=np.int64))
        assert got.tolist() == [bits_of_int(v) for v in values]

    def test_powers_of_two_are_exact(self):
        # The frexp trick must not be off by one at the boundaries.
        values = [1 << k for k in range(52)] + [(1 << k) - 1 for k in range(1, 52)]
        got = bit_length_array(np.array(values, dtype=np.int64))
        assert got.tolist() == [bits_of_int(v) for v in values]

    def test_negative_field_rejected(self):
        with pytest.raises(CongestError):
            bit_length_array(np.array([3, -1], dtype=np.int64))

    def test_oversized_field_rejected(self):
        with pytest.raises(CongestError):
            bit_length_array(np.array([1 << 53], dtype=np.int64))


class TestMessageSpec:
    def test_bits_array_matches_message_bits(self):
        spec = MessageSpec("probe", "a", "b", "c")
        rng = np.random.default_rng(11)
        cols = tuple(rng.integers(0, 1 << 20, size=64) for _ in range(3))
        got = spec.bits_array(cols)
        for i in range(64):
            fields = (int(cols[0][i]), int(cols[1][i]), int(cols[2][i]))
            assert int(got[i]) == message_bits(fields)
            assert int(got[i]) == Message("probe", *fields).bits

    def test_column_count_must_match_arity(self):
        spec = MessageSpec("probe", "a", "b")
        with pytest.raises(CongestError):
            spec.bits_array((np.zeros(3, dtype=np.int64),))


class TestCsrPlane:
    def test_row_reductions_match_python(self, small_gnp):
        net = Network.congest(small_gnp)
        plane = CsrPlane(net)
        rng = np.random.default_rng(5)
        slot_values = rng.integers(0, 1000, size=plane.nnz)
        expect_sum = [
            sum(
                int(slot_values[i])
                for i in range(plane.indptr[v], plane.indptr[v + 1])
            )
            for v in range(net.n)
        ]
        assert plane.row_sum(slot_values).tolist() == expect_sum
        expect_max = [
            max(
                (
                    int(slot_values[i])
                    for i in range(plane.indptr[v], plane.indptr[v + 1])
                ),
                default=-7,
            )
            for v in range(net.n)
        ]
        assert plane.row_max(slot_values, empty=-7).tolist() == expect_max

    def test_isolated_nodes_use_empty_value(self):
        import networkx as nx

        g = nx.empty_graph(4)
        net = Network.local(g)
        plane = CsrPlane(net)
        assert plane.row_sum(np.zeros(0, dtype=np.int64)).tolist() == [0] * 4
        assert plane.row_max(np.zeros(0, dtype=np.int64), empty=9).tolist() == [9] * 4


class _PlainProgram(NodeProgram):
    """No message_specs: VectorEngine must fall back to FastEngine."""

    def setup(self, ctx):
        ctx.broadcast(Message("ping", ctx.node))

    def receive(self, ctx, inbox):
        ctx.output("heard", len(inbox))
        ctx.halt()


class _TargetedProgram(NodeProgram):
    """Declares a spec but sends to a single neighbor: traffic at the
    takeover round is not a full broadcast, so the engine must stay on
    scalar semantics for the whole run."""

    message_specs = (MessageSpec("one", "value"),)

    def setup(self, ctx):
        if ctx.neighbors:
            ctx.send(ctx.neighbors[0], Message("one", ctx.node))

    def receive(self, ctx, inbox):
        ctx.output("heard", sorted(inbox))
        ctx.halt()


@register_kernel(_TargetedProgram)
class _TargetedKernel(VectorKernel):
    def step(self, round_no, inbound):  # pragma: no cover - never reached
        raise AssertionError("non-conforming traffic must not reach the kernel")


class TestFallbackLadder:
    def test_program_without_specs_falls_back(self, small_gnp):
        net = Network.congest(small_gnp)
        vec = Simulator(net, _PlainProgram, engine="vector").run()
        fast = Simulator(net, _PlainProgram, engine="fast").run()
        assert vec == fast

    def test_nonconforming_traffic_stays_scalar(self, small_gnp):
        net = Network.congest(small_gnp)
        vec = Simulator(net, _TargetedProgram, engine="vector").run()
        fast = Simulator(net, _TargetedProgram, engine="fast").run()
        assert vec == fast

    def test_mixed_program_classes_fall_back(self):
        programs = {0: _PlainProgram(), 1: DistributedGreedyProgram()}
        assert VectorEngine._kernel_class(programs) is None

    def test_homogeneous_greedy_gets_kernel(self):
        programs = {0: DistributedGreedyProgram(), 1: DistributedGreedyProgram()}
        kernel_cls = VectorEngine._kernel_class(programs)
        assert kernel_cls is not None
        assert kernel_cls.program_class is DistributedGreedyProgram


class TestBudgetEnforcement:
    def test_oversized_broadcast_raises_like_scalar(self):
        g = star_graph(6)
        net = Network(g, bit_budget=10)  # below any real message size
        for engine in ("reference", "fast", "vector"):
            sim = Simulator(net, DistributedGreedyProgram, engine=engine)
            with pytest.raises(MessageTooLargeError):
                sim.run(max_rounds=50)

    def test_vector_offender_matches_reference(self):
        g = gnp_graph(12, 0.4, seed=3)
        net = Network(g, bit_budget=17)  # admits "cov"/"join", rejects "span"
        errors = {}
        for engine in ("reference", "vector"):
            sim = Simulator(net, DistributedGreedyProgram, engine=engine)
            with pytest.raises(MessageTooLargeError) as exc:
                sim.run(max_rounds=50)
            errors[engine] = (exc.value.sender, exc.value.bits, exc.value.budget)
        assert errors["reference"] == errors["vector"]
