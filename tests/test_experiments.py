"""Every experiment module runs in fast mode and certifies its own checks.

These are the same entry points the ``benchmarks/`` tree wraps; running them
here ensures the reproduction tables regenerate and all recorded guarantees
hold, independent of pytest-benchmark.
"""

import pytest

from repro.experiments import (
    e01_theorem11,
    e02_theorem12,
    e03_fractional,
    e04_uncovered,
    e05_factor_two,
    e06_cds,
    e07_baselines,
    e08_spanner,
    e09_decomposition,
    e10_congest,
    e11_setcover,
    e12_ablation,
)
from repro.experiments.harness import ExperimentReport

ALL_EXPERIMENTS = [
    ("E1", e01_theorem11.run),
    ("E2", e02_theorem12.run),
    ("E3", e03_fractional.run),
    ("E4", e04_uncovered.run),
    ("E5", e05_factor_two.run),
    ("E6", e06_cds.run),
    ("E7", e07_baselines.run),
    ("E8", e08_spanner.run),
    ("E9", e09_decomposition.run),
    ("E10", e10_congest.run),
    ("E11", e11_setcover.run),
    ("E12", e12_ablation.run),
]


@pytest.mark.parametrize("name,run", ALL_EXPERIMENTS, ids=[n for n, _ in ALL_EXPERIMENTS])
def test_experiment_checks_pass(name, run):
    report = run(fast=True)
    assert isinstance(report, ExperimentReport)
    assert report.rows, f"{name} produced no rows"
    failed = [k for k, ok in report.checks.items() if not ok]
    assert not failed, f"{name} failed checks: {failed}"
    rendered = report.render()
    assert report.experiment in rendered


def test_delta_sweep_checks():
    report = e02_theorem12.run_delta_sweep(n=48, degrees=(4, 8, 12))
    failed = [k for k, ok in report.checks.items() if not ok]
    assert not failed


def test_report_helpers():
    report = ExperimentReport("EX", "claim", ["a", "b"])
    report.add_row(a=1, b=2)
    report.check("ok", True)
    report.check("ok", True)  # conjunctive
    assert report.all_checks_pass
    report.check("bad", False)
    assert not report.all_checks_pass
    assert "EX" in report.render()


def test_standard_suite_fast_selection(monkeypatch):
    from repro.experiments.harness import fast_mode, standard_suite

    monkeypatch.setenv("REPRO_FULL", "0")
    assert fast_mode()
    fast_instances = list(standard_suite(True))
    assert all(inst.n <= 90 for inst in fast_instances)
    monkeypatch.setenv("REPRO_FULL", "1")
    assert not fast_mode()
