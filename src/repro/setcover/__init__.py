"""Minimum set cover via the dominating-set machinery (Section 5).

"It is not hard to see that our algorithms can also be (almost directly)
applied to the more general set cover problem": a set-cover instance *is* a
:class:`~repro.domsets.covering.CoveringInstance` with sets as value
variables and elements as constraints, so the LP + derandomized one-shot
rounding pipeline applies verbatim.  A violated element constraint is
repaired by its smallest covering set (the constraint's ``origin``).
"""

from repro.setcover.instance import SetCoverInstance, random_setcover_instance
from repro.setcover.solve import (
    SetCoverResult,
    approx_min_set_cover,
    greedy_set_cover,
)

__all__ = [
    "SetCoverInstance",
    "random_setcover_instance",
    "SetCoverResult",
    "approx_min_set_cover",
    "greedy_set_cover",
]
