"""Transmittable fixed-point values (paper, Section 2).

The paper calls a value in ``[0, 1]`` *CONGEST transmittable* if it is a
multiple of ``2**-iota`` where ``iota`` is the smallest integer with
``2**-iota <= 1/n**10``.  Such a value fits in ``O(log n)`` bits and a biased
coin with a transmittable success probability can be built from
polylogarithmically many fair coins.

At laptop scale ``n**10`` is needlessly fine; the grid resolution is therefore
configurable.  :class:`TransmittableGrid` encapsulates one resolution and the
rounding directions the paper uses (values are rounded *up* so that
feasibility of covering constraints is preserved; conditional expectations are
rounded up as in Lemma 3.4 / 3.10).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def iota_for(n: int, power: int = 10) -> int:
    """Smallest ``iota`` with ``2**-iota <= 1/n**power`` (paper default)."""
    if n < 2:
        return 1
    return max(1, math.ceil(power * math.log2(n)))


def quantize_up(value: float, iota: int) -> float:
    """Round ``value`` up to the next multiple of ``2**-iota``, capped at 1."""
    if value <= 0.0:
        return 0.0
    scale = 1 << iota
    return min(1.0, math.ceil(value * scale - 1e-12) / scale)


def quantize_down(value: float, iota: int) -> float:
    """Round ``value`` down to the previous multiple of ``2**-iota``."""
    if value <= 0.0:
        return 0.0
    scale = 1 << iota
    return max(0.0, math.floor(value * scale + 1e-12) / scale)


@dataclass(frozen=True)
class TransmittableGrid:
    """A fixed-point grid of multiples of ``2**-iota`` inside ``[0, 1]``.

    Parameters
    ----------
    iota:
        Number of fractional bits.  A grid value costs ``iota`` bits on the
        wire (plus framing); the paper's choice is ``iota = ceil(10 log2 n)``.
    """

    iota: int = 40

    @classmethod
    def for_n(cls, n: int, power: int = 10, max_iota: int = 48) -> "TransmittableGrid":
        """Paper-faithful grid for an ``n``-node network, capped for floats.

        The cap keeps grid steps representable exactly in IEEE doubles
        (``2**-48`` is fine, ``2**-200`` is not); the quantization error terms
        in Lemmas 3.4/3.10 only shrink when the grid gets finer, so capping is
        conservative in the right direction at the scales we simulate.
        """
        return cls(iota=min(max_iota, iota_for(n, power)))

    @property
    def step(self) -> float:
        """Grid resolution ``2**-iota``."""
        return 2.0 ** (-self.iota)

    @property
    def bits(self) -> int:
        """Wire cost of one grid value in bits."""
        return self.iota

    def up(self, value: float) -> float:
        """Round up onto the grid (feasibility preserving for constraints)."""
        return quantize_up(value, self.iota)

    def down(self, value: float) -> float:
        """Round down onto the grid."""
        return quantize_down(value, self.iota)

    def is_on_grid(self, value: float, tol: float = 1e-12) -> bool:
        """Whether ``value`` is (numerically) a multiple of the grid step."""
        if value < -tol or value > 1.0 + tol:
            return False
        scaled = value * (1 << self.iota)
        return abs(scaled - round(scaled)) <= tol * (1 << self.iota)

    def to_int(self, value: float) -> int:
        """Integer numerator of a grid value (``value * 2**iota``)."""
        return round(value * (1 << self.iota))

    def from_int(self, numerator: int) -> float:
        """Grid value from its integer numerator."""
        return numerator / (1 << self.iota)
