"""End-to-end Theorem 1.1 / 1.2 pipelines and the randomized counterpart."""

import pytest

from repro.analysis.bounds import theorem11_approximation_bound
from repro.analysis.verify import is_dominating_set
from repro.errors import GraphError
from repro.fractional.lp import lp_fractional_mds
from repro.mds.deterministic import approx_mds_coloring, approx_mds_decomposition
from repro.mds.pipeline import PipelineParams
from repro.mds.randomized import approx_mds_randomized


class TestGuarantees:
    @pytest.mark.parametrize("route", ["coloring", "decomposition"])
    def test_theorem_bound_on_zoo(self, zoo_graph, route):
        runner = (
            approx_mds_coloring if route == "coloring" else approx_mds_decomposition
        )
        result = runner(zoo_graph, eps=0.5)
        assert is_dominating_set(zoo_graph, result.dominating_set)
        lp = lp_fractional_mds(zoo_graph)
        delta = max((d for _, d in zoo_graph.degree()), default=0)
        bound = theorem11_approximation_bound(0.5, delta)
        assert result.size <= bound * max(lp.optimum, 1.0) + 1e-9

    @pytest.mark.parametrize("eps", [0.25, 0.5, 1.0])
    def test_eps_sweep(self, medium_gnp, eps):
        result = approx_mds_coloring(medium_gnp, eps=eps)
        lp = lp_fractional_mds(medium_gnp)
        delta = max(d for _, d in medium_gnp.degree())
        assert result.size <= theorem11_approximation_bound(eps, delta) * lp.optimum + 1e-9

    def test_approximation_bound_method(self, small_gnp):
        result = approx_mds_coloring(small_gnp, eps=0.5)
        delta = max(d for _, d in small_gnp.degree())
        assert result.approximation_bound() == pytest.approx(
            theorem11_approximation_bound(0.5, delta)
        )


class TestDeterminism:
    def test_coloring_route_deterministic(self, medium_gnp):
        a = approx_mds_coloring(medium_gnp, eps=0.5)
        b = approx_mds_coloring(medium_gnp, eps=0.5)
        assert a.dominating_set == b.dominating_set

    def test_decomposition_route_deterministic(self, medium_gnp):
        a = approx_mds_decomposition(medium_gnp, eps=0.5)
        b = approx_mds_decomposition(medium_gnp, eps=0.5)
        assert a.dominating_set == b.dominating_set


class TestTrace:
    def test_trace_stages(self, medium_gnp):
        result = approx_mds_coloring(medium_gnp, eps=0.5)
        stages = [t.stage for t in result.trace]
        assert stages[0] == "part1-fractional"
        assert stages[-1] == "part3-one-shot"
        assert result.trace[-1].fractionality == 1.0

    def test_part2_engages_with_overrides(self, medium_gnp):
        params = PipelineParams(
            eps=0.5, eps2_override=0.3, f_target_override=8.0
        )
        result = approx_mds_coloring(medium_gnp, params=params)
        assert result.params["part2_iterations"] >= 1
        frac_trace = [
            t.fractionality for t in result.trace if t.stage.startswith("part2")
        ]
        assert all(b >= a for a, b in zip(frac_trace, frac_trace[1:]))

    def test_part2_skipped_with_paper_constants(self, medium_gnp):
        result = approx_mds_coloring(medium_gnp, eps=0.5)
        assert result.params["part2_iterations"] == 0  # F astronomically big

    def test_ledger_nonempty(self, medium_gnp):
        result = approx_mds_decomposition(medium_gnp, eps=0.5)
        assert result.ledger.total_rounds > 0
        assert "part1/kmw06-lp" in result.ledger.by_stage()


class TestParams:
    def test_eps_validation(self):
        with pytest.raises(GraphError):
            PipelineParams(eps=0.0)
        with pytest.raises(GraphError):
            PipelineParams(eps=2.0)

    def test_distributed_part1(self, small_gnp):
        params = PipelineParams(eps=0.5, part1_provider="distributed")
        result = approx_mds_coloring(small_gnp, params=params)
        assert is_dominating_set(small_gnp, result.dominating_set)
        assert result.ledger.simulated_rounds > 0

    def test_empty_graph_rejected(self):
        import networkx as nx

        with pytest.raises(GraphError):
            approx_mds_coloring(nx.Graph())


class TestRandomizedPipeline:
    def test_valid_output(self, medium_gnp):
        result = approx_mds_randomized(medium_gnp, eps=0.5, seed=1)
        assert is_dominating_set(medium_gnp, result.dominating_set)

    def test_seed_reproducible(self, medium_gnp):
        a = approx_mds_randomized(medium_gnp, eps=0.5, seed=9)
        b = approx_mds_randomized(medium_gnp, eps=0.5, seed=9)
        assert a.dominating_set == b.dominating_set

    def test_kwise_variant(self, small_gnp):
        result = approx_mds_randomized(small_gnp, eps=0.5, seed=2, kwise=8)
        assert is_dominating_set(small_gnp, result.dominating_set)
        assert "k=8" in result.route

    def test_quality_sane(self, medium_gnp):
        from repro.baselines.greedy import greedy_mds

        result = approx_mds_randomized(medium_gnp, eps=0.5, seed=3)
        assert result.size <= 3 * len(greedy_mds(medium_gnp)) + 3
