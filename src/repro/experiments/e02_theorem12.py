"""E2 — Theorem 1.2 / Corollary 1.3: deterministic MDS via colorings.

Two parts: (a) the quality table over the suite (guarantee must hold on
every row); (b) the round-scaling series over random regular graphs of
growing degree at fixed ``n`` — Theorem 1.2's complexity is
``O(Delta polylog Delta + polylog Delta log* n)``, so charged rounds should
grow roughly linearly in ``Delta`` (shape check: super-linear but
sub-quadratic growth window).
"""

from __future__ import annotations

from repro.analysis.bounds import theorem12_approximation_bound
from repro.analysis.verify import is_dominating_set
from repro.baselines.greedy import greedy_mds
from repro.experiments.harness import ExperimentReport, standard_suite
from repro.fractional.lp import lp_fractional_mds
from repro.graphs.generators import regular_graph
from repro.mds.deterministic import approx_mds_coloring

COLUMNS = [
    "graph", "n", "Delta", "lp_opt", "ds", "greedy", "ratio", "bound",
    "colors_rounds", "total_rounds",
]


def run(fast: bool = True, eps: float = 0.5) -> ExperimentReport:
    report = ExperimentReport(
        experiment="E2",
        claim="Theorem 1.2: (1+eps)(1+ln(D+1))-approx MDS via colorings",
        columns=COLUMNS,
    )
    for inst in standard_suite(fast):
        lp = lp_fractional_mds(inst.graph)
        result = approx_mds_coloring(inst.graph, eps=eps)
        greedy = greedy_mds(inst.graph)
        bound = theorem12_approximation_bound(eps, inst.max_degree)
        ratio = result.size / max(lp.optimum, 1e-9)
        stages = result.ledger.by_stage()
        color_rounds = sum(
            rounds for stage, rounds in stages.items() if "coloring" in stage
        )
        report.add_row(
            graph=inst.name,
            n=inst.n,
            Delta=inst.max_degree,
            lp_opt=round(lp.optimum, 2),
            ds=result.size,
            greedy=len(greedy),
            ratio=round(ratio, 3),
            bound=round(bound, 3),
            colors_rounds=color_rounds,
            total_rounds=result.ledger.total_rounds,
        )
        report.check("dominating", is_dominating_set(inst.graph, result.dominating_set))
        report.check("within_bound", ratio <= bound + 1e-9)
    return report


def run_seed_sweep(
    fast: bool = True,
    strategy: str = "batch",
    family: str = "gnp",
    n: int = 60,
) -> ExperimentReport:
    """E2's coloring-substrate ensemble over many seeded topologies.

    Theorem 1.2 rests on the final [BEK15]-style color-reduction stage
    producing at most ``Delta + 1`` colors; this sweep runs the simulated
    color-reduction program over the whole seed ensemble through the batch
    runner (all seeds as one stacked message plane) and checks the color
    bound on every seed.
    """
    from repro.api import Experiment
    from repro.experiments.harness import (
        SEED_SWEEP_COUNT_FAST,
        SEED_SWEEP_COUNT_FULL,
        fast_mode,
        seed_sweep_report,
    )

    if fast is None:
        fast = fast_mode()
    sweep = (
        Experiment("color-reduction")
        .on(family)
        .sizes(n)
        .engine("vector")
        .seeds(SEED_SWEEP_COUNT_FAST if fast else SEED_SWEEP_COUNT_FULL)
        .strategy(strategy)
        .run()
    )
    report = seed_sweep_report(
        sweep.records,
        experiment="E2-seeds",
        claim="color reduction ensemble: <= Delta + 1 colors on every seed",
        value_key="colors",
    )
    for rec in sweep:
        if not rec.ok:
            continue
        report.check(
            "colors_le_delta_plus_1",
            rec.metrics["colors"] <= rec.metrics["max_degree"] + 1,
        )
    return report


def run_delta_sweep(
    n: int = 96, degrees=(4, 8, 16, 24), eps: float = 0.5, seed: int = 11
) -> ExperimentReport:
    """The figure-style series: rounds as a function of Delta at fixed n.

    ``alg_rounds`` excludes the Part-I [KMW06] charge, which is a
    Delta-insensitive formula constant; the Theorem 1.2 shape
    (``~ Delta * polylog Delta``) lives in the coloring + derandomization
    stages.
    """
    report = ExperimentReport(
        experiment="E2-sweep",
        claim="Theorem 1.2 rounds scale ~ Delta * polylog(Delta) at fixed n",
        columns=["Delta", "n", "ds", "ratio", "alg_rounds", "rounds_per_delta"],
    )
    previous = None
    for d in degrees:
        graph = regular_graph(n, d, seed=seed)
        lp = lp_fractional_mds(graph)
        result = approx_mds_coloring(graph, eps=eps)
        part1 = sum(
            rounds
            for stage, rounds in result.ledger.by_stage().items()
            if stage.startswith("part1/")
        )
        rounds = result.ledger.total_rounds - part1
        report.add_row(
            Delta=d,
            n=graph.number_of_nodes(),
            ds=result.size,
            ratio=round(result.size / max(lp.optimum, 1e-9), 3),
            alg_rounds=rounds,
            rounds_per_delta=round(rounds / d, 1),
        )
        if previous is not None:
            prev_d, prev_rounds = previous
            growth = rounds / max(1, prev_rounds)
            degree_growth = d / prev_d
            # Shape: grows with Delta, at most ~quadratically.
            report.check("grows_with_delta", rounds >= prev_rounds)
            report.check(
                "sub_quadratic", growth <= degree_growth ** 2 * 4.0
            )
        previous = (d, rounds)
    return report
