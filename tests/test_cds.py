"""Section 4: G_S graph (Claim 4.1), clustering, paths, Theorem 1.4 pipeline."""

import networkx as nx
import pytest

from repro.analysis.verify import (
    is_connected_dominating_set,
    require_connected_dominating_set,
)
from repro.baselines.exact import exact_cds
from repro.baselines.greedy import greedy_mds
from repro.cds.clustering import cluster_dominating_set
from repro.cds.connector import cds_from_spanning_tree
from repro.cds.gs_graph import build_gs_graph, verify_claim_41
from repro.cds.paths import select_connection_paths
from repro.cds.pipeline import approx_cds, default_ruling_beta
from repro.cds.ruling import ruling_set
from repro.errors import GraphError
from repro.graphs.generators import (
    geometric_graph,
    gnp_graph,
    grid_graph,
    random_tree,
    ring_graph,
)
from repro.graphs.normalize import normalize_graph


class TestGSGraph:
    def test_edges_iff_distance_at_most_3(self, medium_gnp):
        s = greedy_mds(medium_gnp)
        gsg = build_gs_graph(medium_gnp, s)
        lengths = dict(nx.all_pairs_shortest_path_length(medium_gnp))
        for u in s:
            for v in s:
                if u >= v:
                    continue
                expected = lengths[u].get(v, 10 ** 9) <= 3
                assert gsg.gs.has_edge(u, v) == expected

    def test_witness_paths_valid(self, medium_gnp):
        s = greedy_mds(medium_gnp)
        gsg = build_gs_graph(medium_gnp, s)
        for u, v in gsg.gs.edges():
            path = gsg.witness_path(u, v)
            assert path[0] == u and path[-1] == v
            assert len(path) <= 4
            for a, b in zip(path, path[1:]):
                assert medium_gnp.has_edge(a, b)

    def test_claim_41(self, zoo_graph):
        if not nx.is_connected(zoo_graph):
            return
        s = greedy_mds(zoo_graph)
        gsg = build_gs_graph(zoo_graph, s)
        assert verify_claim_41(gsg)
        assert nx.is_connected(gsg.gs)

    def test_claim_41_disconnected(self):
        g = normalize_graph(nx.Graph([(0, 1), (2, 3)]))
        gsg = build_gs_graph(g, {0, 2})
        assert verify_claim_41(gsg)
        assert not nx.is_connected(gsg.gs)

    def test_rejects_non_dominating_input(self, path5):
        with pytest.raises(Exception):
            build_gs_graph(path5, {0})


class TestSpanningTreeCDS:
    def test_bound_3s(self, zoo_graph):
        if not nx.is_connected(zoo_graph):
            return
        s = greedy_mds(zoo_graph)
        gsg = build_gs_graph(zoo_graph, s)
        cds = cds_from_spanning_tree(gsg)
        assert is_connected_dominating_set(zoo_graph, cds)
        assert len(cds) <= 3 * len(s)

    def test_single_node_set(self):
        g = normalize_graph(nx.star_graph(4))
        center = max(g.nodes(), key=g.degree)
        gsg = build_gs_graph(g, {center})
        assert cds_from_spanning_tree(gsg) == {center}

    def test_disconnected_rejected(self):
        g = normalize_graph(nx.Graph([(0, 1), (2, 3)]))
        gsg = build_gs_graph(g, {0, 2})
        with pytest.raises(GraphError):
            cds_from_spanning_tree(gsg)


class TestRulingSet:
    def test_pairwise_separation(self, medium_gnp):
        s = sorted(greedy_mds(medium_gnp))
        gsg = build_gs_graph(medium_gnp, s)
        result = ruling_set(gsg.gs, s, beta=2)
        for i, u in enumerate(result.chosen):
            for v in result.chosen[i + 1 :]:
                assert nx.shortest_path_length(gsg.gs, u, v) >= 2

    def test_coverage_radius(self, medium_gnp):
        s = sorted(greedy_mds(medium_gnp))
        gsg = build_gs_graph(medium_gnp, s)
        result = ruling_set(gsg.gs, s, beta=3)
        assert result.max_candidate_distance <= 2  # beta - 1

    def test_beta_one_takes_all(self, path5):
        result = ruling_set(path5, [0, 1, 2], beta=1)
        assert result.chosen == [0, 1, 2]

    def test_validation(self, path5):
        with pytest.raises(GraphError):
            ruling_set(path5, [0], beta=0)
        with pytest.raises(GraphError):
            ruling_set(path5, [99], beta=2)

    def test_greedy_by_id(self, path5):
        result = ruling_set(path5, [0, 1, 2, 3, 4], beta=3)
        assert result.chosen == [0, 3]


class TestClustering:
    def _setup(self, graph):
        s = greedy_mds(graph)
        gsg = build_gs_graph(graph, s)
        beta = 2
        centers = ruling_set(gsg.gs, sorted(s), beta=beta).chosen
        return s, centers

    def test_all_s_clustered(self, medium_gnp):
        s, centers = self._setup(medium_gnp)
        clustering = cluster_dominating_set(medium_gnp, s, centers)
        assert set(clustering.cluster_of_s) == set(s)
        assert len(clustering.trees) == len(centers)

    def test_trees_are_connected_subgraphs(self, medium_gnp):
        s, centers = self._setup(medium_gnp)
        clustering = cluster_dominating_set(medium_gnp, s, centers)
        for tree in clustering.trees:
            nodes = tree.nodes
            if len(nodes) > 1:
                assert nx.is_connected(medium_gnp.subgraph(nodes))
            for v, p in tree.parent.items():
                if p != -1:
                    assert medium_gnp.has_edge(v, p)

    def test_pruning_removes_barren_connectors(self, medium_gnp):
        s, centers = self._setup(medium_gnp)
        clustering = cluster_dominating_set(medium_gnp, s, centers)
        for tree in clustering.trees:
            children = {v: 0 for v in tree.parent}
            for v, p in tree.parent.items():
                if p != -1:
                    children[p] += 1
            for v in tree.parent:
                if v not in tree.members_s:
                    assert children[v] > 0  # every connector supports someone

    def test_centers_must_be_in_s(self, medium_gnp):
        s = greedy_mds(medium_gnp)
        outside = next(v for v in medium_gnp.nodes() if v not in s)
        with pytest.raises(GraphError):
            cluster_dominating_set(medium_gnp, s, [outside])
        with pytest.raises(GraphError):
            cluster_dominating_set(medium_gnp, s, [])

    def test_stalls_on_disconnected(self):
        g = normalize_graph(nx.Graph([(0, 1), (2, 3)]))
        with pytest.raises(GraphError):
            cluster_dominating_set(g, {0, 2}, [0])


class TestPathSelection:
    def test_cluster_graph_connected(self, medium_gnp):
        s = greedy_mds(medium_gnp)
        gsg = build_gs_graph(medium_gnp, s)
        centers = ruling_set(gsg.gs, sorted(s), beta=2).chosen
        if len(centers) < 2:
            return
        clustering = cluster_dominating_set(medium_gnp, s, centers)
        selection = select_connection_paths(medium_gnp, s, clustering)
        cg = selection.cluster_graph()
        cg.add_nodes_from(range(len(clustering.trees)))
        assert nx.is_connected(cg)

    def test_paths_are_graph_paths_with_s_endpoints(self, medium_gnp):
        s = greedy_mds(medium_gnp)
        gsg = build_gs_graph(medium_gnp, s)
        centers = ruling_set(gsg.gs, sorted(s), beta=2).chosen
        clustering = cluster_dominating_set(medium_gnp, s, centers)
        selection = select_connection_paths(medium_gnp, s, clustering)
        for (a, b), path in selection.cluster_edges.items():
            assert path[0] in s and path[-1] in s
            assert len(path) <= 4
            for u, v in zip(path, path[1:]):
                assert medium_gnp.has_edge(u, v)
            assert clustering.cluster_of_s[path[0]] == a
            assert clustering.cluster_of_s[path[-1]] == b

    def test_congestion_small(self, medium_gnp):
        s = greedy_mds(medium_gnp)
        gsg = build_gs_graph(medium_gnp, s)
        centers = ruling_set(gsg.gs, sorted(s), beta=2).chosen
        clustering = cluster_dominating_set(medium_gnp, s, centers)
        selection = select_connection_paths(medium_gnp, s, clustering)
        # Deduplicated selection: one path per cluster pair; congestion is
        # reported and should stay tiny at this scale.
        assert selection.max_congestion <= 4


class TestTheorem14Pipeline:
    def test_valid_on_families(self):
        for graph in (
            gnp_graph(50, 0.1, seed=1),
            geometric_graph(60, seed=2),
            random_tree(40, seed=3),
            grid_graph(6, 6),
            ring_graph(24),
        ):
            result = approx_cds(graph, eps=0.5)
            require_connected_dominating_set(graph, result.cds)
            assert result.size <= 3 * len(result.dominating_set) + 2

    def test_against_exact_small(self):
        for seed in range(3):
            g = gnp_graph(13, 0.25, seed=seed)
            result = approx_cds(g, eps=0.5)
            opt = exact_cds(g)
            assert opt is not None
            import math

            delta = max(d for _, d in g.degree())
            assert len(result.cds) <= 6 * max(1.0, math.log(delta + 1)) * len(opt) + 3

    def test_precomputed_mds_reused(self, medium_gnp):
        s = greedy_mds(medium_gnp)
        result = approx_cds(medium_gnp, mds=s)
        assert result.dominating_set == s
        assert result.mds_result is None

    def test_spanner_route_engages(self):
        g = random_tree(80, seed=5)
        result = approx_cds(g, eps=0.5, ruling_beta=2)
        assert result.route in ("spanner", "tree")
        if result.route == "spanner":
            assert result.stats["clusters"] >= 3

    def test_disconnected_rejected(self):
        g = normalize_graph(nx.Graph([(0, 1), (2, 3)]))
        with pytest.raises(GraphError):
            approx_cds(g)

    def test_default_ruling_beta_monotone(self):
        assert default_ruling_beta(1000) >= default_ruling_beta(10)

    def test_mds_route_decomposition(self):
        g = gnp_graph(40, 0.12, seed=4)
        result = approx_cds(g, mds_route="decomposition")
        assert is_connected_dominating_set(g, result.cds)
        with pytest.raises(GraphError):
            approx_cds(g, mds_route="bogus")

    def test_overhead_property(self, small_gnp):
        result = approx_cds(small_gnp)
        assert result.overhead == len(result.cds) / len(result.dominating_set)
