"""Vectorized numpy message-plane engine.

The paper's algorithms are dominated by *fixed-shape broadcast rounds*:
every sending node broadcasts the same small message — one tag plus a few
bounded integer fields — to all of its neighbors.  For that traffic pattern
the round loop does not need per-message ``dict`` work at all: a round is
fully described by a **sender mask** plus one numpy column per declared
field, and both delivery (gather through the CSR topology) and wire
accounting (bit lengths, per-round totals, the CONGEST budget check) become
O(1) array operations over the edge slots.

Three pieces cooperate:

* :class:`MessageSpec` — a program's declaration that one of its phases
  broadcasts a fixed ``tag`` with named small-int fields.  The spec can
  compute the *exact* wire size of a whole column of messages at once
  (:meth:`MessageSpec.bits_array` replicates
  :func:`repro.congest.message.message_bits` bit for bit), which is what
  keeps ``bits_per_round`` / ``messages_per_round`` identical to the
  reference engine.
* :class:`VectorKernel` — a per-program-class state machine over flat numpy
  arrays.  A kernel re-expresses the program's ``receive`` transition as
  scatter/gather over the :class:`CsrPlane`; program modules register their
  kernel with :func:`register_kernel`.
* :class:`VectorEngine` — the engine.  It runs ``setup`` and any
  non-conforming prefix of rounds through the exact
  :class:`~repro.congest.engine.fast.FastEngine` scalar mechanics, then
  hands the live state to the kernel at its declared ``takeover_round`` and
  finishes the run with vectorized rounds.  Runs whose programs declare no
  :attr:`~repro.congest.node.NodeProgram.message_specs`, have no registered
  kernel, or queue non-broadcast traffic at the handover point fall back to
  ``FastEngine`` semantics — the parity suite
  (``tests/test_engine_parity.py``) proves all three engines
  observationally identical either way.

The handover is one-directional (scalar → vector) and happens at most
once per run: fully-broadcast programs (greedy MDS, rounding execution,
color reduction) take over at round 1, while the Lemma 3.10 loop runs its
color-class rounds — targeted ``alpha`` sends, at most one decider per
2-neighborhood — under scalar semantics and vectorizes the final
execution-phase broadcasts.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from array import array
from typing import Dict, List, Optional, Sequence, Tuple, Type

import numpy as np

from repro.congest.engine.base import Engine, SimulationResult, register_engine
from repro.congest.engine.fast import _EMPTY_INBOX, FastEngine, Inboxes
from repro.congest.message import (
    FIELD_FRAMING_BITS,
    MESSAGE_HEADER_BITS,
)
from repro.congest.network import Network
from repro.congest.node import Context, NodeProgram
from repro.errors import (
    CongestError,
    MessageTooLargeError,
    SimulationLimitError,
)

__all__ = [
    "CsrPlane",
    "MessageSpec",
    "PendingBroadcast",
    "VectorEngine",
    "VectorKernel",
    "kernel_for",
    "register_kernel",
]

#: Largest field value whose bit length the float64 ``frexp`` trick recovers
#: exactly.  CONGEST fields are O(log n)-bit by design, so this is purely a
#: guard against kernel bugs.
_MAX_EXACT_FIELD = 1 << 53


def bit_length_array(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.congest.message.bits_of_int`.

    ``frexp`` returns the binary exponent of each value, which for positive
    integers below 2**53 is exactly the bit length; zeros are charged one
    bit, matching the scalar accounting.
    """
    values = np.asarray(values, dtype=np.int64)
    if values.size and int(values.min()) < 0:
        raise CongestError("message fields must be non-negative")
    if values.size and int(values.max()) >= _MAX_EXACT_FIELD:
        raise CongestError("message field too large for vectorized accounting")
    _, exponents = np.frexp(values.astype(np.float64))
    return np.where(values > 0, exponents, 1).astype(np.int64)


class MessageSpec:
    """Shape declaration for one fixed-form broadcast message family.

    ``tag`` is the message tag; ``fields`` are the names of its integer
    fields, in wire order.  A program lists the specs of its vector-eligible
    broadcast phases in :attr:`NodeProgram.message_specs`; kernels use them
    to build outbound columns and to account wire bits exactly.
    """

    __slots__ = ("tag", "fields")

    def __init__(self, tag: str, *fields: str):
        self.tag = tag
        self.fields = fields

    @property
    def arity(self) -> int:
        return len(self.fields)

    def bits_array(self, columns: Sequence[np.ndarray]) -> np.ndarray:
        """Exact per-sender wire size for one column of messages.

        Replicates ``MESSAGE_HEADER_BITS + sum(FIELD_FRAMING_BITS +
        bit_length(field))`` over whole arrays.
        """
        if len(columns) != self.arity:
            raise CongestError(
                f"spec {self.tag!r} expects {self.arity} fields, "
                f"got {len(columns)} columns"
            )
        if not columns:
            raise CongestError(f"spec {self.tag!r} declares no fields")
        base = MESSAGE_HEADER_BITS + FIELD_FRAMING_BITS * self.arity
        total = np.full(columns[0].shape, base, dtype=np.int64)
        for column in columns:
            total += bit_length_array(column)
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MessageSpec({self.tag!r}, fields={self.fields!r})"


class PendingBroadcast:
    """One round's in-flight broadcast traffic, in columnar form.

    ``mask[v]`` says whether node ``v`` broadcast this round; ``columns``
    holds one full-length int64 array per spec field (entries of
    non-senders are ignored); ``bits`` is the exact per-sender message
    size.  Messages physically exist only on the wires of senders with at
    least one neighbor — accounting and delivery both respect that.
    """

    __slots__ = ("spec", "mask", "columns", "bits")

    def __init__(
        self,
        spec: MessageSpec,
        mask: np.ndarray,
        columns: Tuple[np.ndarray, ...],
        bits: np.ndarray,
    ):
        self.spec = spec
        self.mask = mask
        self.columns = columns
        self.bits = bits


class CsrPlane:
    """Numpy view of a network's CSR topology plus exact row reductions.

    ``indices[indptr[v]:indptr[v+1]]`` are the neighbors of ``v`` (the
    *slots* of row ``v``).  Row reductions use ``ufunc.reduceat`` over the
    non-empty rows only, so isolated nodes are handled without branching
    and all arithmetic stays in int64 (bit-exact, unlike float matvecs).
    """

    __slots__ = (
        "n",
        "nnz",
        "indptr",
        "indices",
        "degrees",
        "local_n",
        "local_ids",
        "local_n_of",
        "_nonempty",
        "_starts",
    )

    def __init__(self, network: Network):
        indptr, indices = network.csr()
        self._init_arrays(_as_int64(indptr), _as_int64(indices))
        # A solo plane is its own single instance: local identifiers and the
        # locally-known network size coincide with the global ones.  The
        # stacked plane (engine/batched.py) overrides both so kernels keep
        # computing with per-instance semantics (packed-key bases, id fields
        # on the wire) no matter how many instances share the arrays.
        # ``local_n_of`` is the per-node view of "the n my instance believes
        # it runs on" — the quantity stackable kernels must base packed keys
        # and round schedules on, because a *ragged* stacked plane holds
        # instances of different sizes (``local_n`` is then ``None``).
        self.local_n = self.n
        self.local_ids = np.arange(self.n, dtype=np.int64)
        self.local_n_of = np.full(self.n, self.n, dtype=np.int64)

    def _init_arrays(self, indptr: np.ndarray, indices: np.ndarray) -> None:
        self.indptr = indptr
        self.indices = indices
        self.n = int(indptr.shape[0]) - 1
        self.nnz = int(self.indices.shape[0])
        self.degrees = np.diff(self.indptr)
        self._nonempty = self.degrees > 0
        self._starts = self.indptr[:-1][self._nonempty]

    def row_sum(self, slot_values: np.ndarray) -> np.ndarray:
        """Per-node sum of ``slot_values`` over each node's slots."""
        out = np.zeros(self.n, dtype=np.int64)
        if self._starts.size:
            values = np.asarray(slot_values).astype(np.int64, copy=False)
            out[self._nonempty] = np.add.reduceat(values, self._starts)
        return out

    def row_max(self, slot_values: np.ndarray, empty: int) -> np.ndarray:
        """Per-node max of ``slot_values``; ``empty`` for isolated nodes."""
        out = np.full(self.n, empty, dtype=np.int64)
        if self._starts.size:
            values = np.asarray(slot_values).astype(np.int64, copy=False)
            out[self._nonempty] = np.maximum.reduceat(values, self._starts)
        return out

    def row_any(self, slot_flags: np.ndarray) -> np.ndarray:
        """Per-node "any slot true" as a boolean array."""
        return self.row_sum(slot_flags) > 0

    def sent_slots(self, pending: Optional[PendingBroadcast]) -> np.ndarray:
        """Slot-level sender flags for one round of broadcast traffic."""
        if pending is None:
            return np.zeros(self.nnz, dtype=bool)
        return pending.mask[self.indices]

    def gather(self, per_node: np.ndarray) -> np.ndarray:
        """Slot-level view of a per-node array (value of each slot's peer)."""
        return per_node[self.indices]


def _as_int64(values) -> np.ndarray:
    if isinstance(values, array) and values.itemsize == 8:
        return np.frombuffer(values, dtype=np.int64)
    return np.asarray(values, dtype=np.int64)


class VectorKernel(ABC):
    """Vectorized state machine for one node-program class.

    A kernel is constructed at handover time with the plane and the live
    per-node program/context state; from then on :meth:`step` is the whole
    round: consume the inbound :class:`PendingBroadcast`, update state,
    record outputs/halts, and return the next round's outbound broadcast
    (or ``None`` for a silent round).  The engine owns accounting and
    termination; the kernel owns semantics.
    """

    #: Filled in by :func:`register_kernel`.
    program_class: Type[NodeProgram]

    #: Stacking contract (see :mod:`repro.congest.engine.batched`): ``True``
    #: iff K independent instances of this kernel may execute as one stacked
    #: message plane.  Requires (a) a constant ``takeover_round`` of 1 — all
    #: instances enter the plane in lockstep with no scalar prefix — and
    #: (b) per-node transitions that consult only intra-instance data:
    #: ``plane.local_n_of`` / ``plane.local_ids`` instead of global ids and
    #: the global ``plane.n``, and never ``self.network`` (a stacked run has
    #: no single network).  Stacked planes may be *ragged* — instances of
    #: different sizes — so per-instance quantities (packed-key bases, round
    #: schedules) must come from the per-node ``local_n_of`` array, never
    #: from a single scalar ``n``.
    stackable = True

    @classmethod
    def _blank(cls, plane: "CsrPlane") -> "VectorKernel":
        """Bare kernel shell for :meth:`stacked_setup` implementations.

        Bypasses ``__init__`` (there are no per-node program objects to
        read state from); every node starts live with no outputs, exactly
        the state after a setup phase that neither outputs nor halts.
        """
        self = cls.__new__(cls)
        self.plane = plane
        self.network = None
        self.live = np.ones(plane.n, dtype=bool)
        self._outputs = {}
        return self

    #: Vectorized boot (optional, stacked runs only): subclasses may bind a
    #: classmethod ``stacked_setup(plane, inputs) -> (kernel, pending)``
    #: that replaces per-node program instantiation, scalar ``setup`` and
    #: handover collection with direct array initialization.  ``inputs`` is
    #: one optional ``{node: input}`` mapping per instance (local ids);
    #: implementations translate local to global ids through the plane's
    #: ragged offset tables (``plane.node_offsets[k]`` is instance ``k``'s
    #: first global node, ``plane.local_ns[k]`` its size — instances need
    #: not share one size).  The implementation must reproduce the scalar
    #: boot bit for bit: same initial state, same round-1 broadcast
    #: mask/columns/bits.  ``None`` means the stacked runner boots through
    #: the scalar path.
    stacked_setup = None

    def __init__(
        self,
        plane: CsrPlane,
        network: Network,
        programs: Dict[int, NodeProgram],
        contexts: Dict[int, Context],
    ):
        self.plane = plane
        self.network = network
        self.live = np.fromiter(
            (not contexts[v]._halted for v in range(plane.n)),
            dtype=bool,
            count=plane.n,
        )
        self._outputs: Dict[int, Dict[str, object]] = {}

    @classmethod
    def eligible(
        cls, network: Network, programs: Dict[int, NodeProgram]
    ) -> bool:
        """Whether this run's inputs fit the vectorized implementation."""
        return True

    @classmethod
    def takeover_round(
        cls, network: Network, programs: Dict[int, NodeProgram]
    ) -> int:
        """First round to execute vectorized (rounds before it run scalar)."""
        return 1

    @property
    def live_count(self) -> int:
        return int(self.live.sum())

    def output(self, node: int, key: str, value: object) -> None:
        """Record one node's local output (mirrors ``Context.output``)."""
        self._outputs.setdefault(node, {})[key] = value

    def write_outputs(self, outputs: Dict[int, Dict[str, object]]) -> None:
        """Merge kernel-recorded outputs over the scalar-phase outputs."""
        for node, values in self._outputs.items():
            outputs[node].update(values)

    @abstractmethod
    def step(
        self, round_no: int, inbound: Optional[PendingBroadcast]
    ) -> Optional[PendingBroadcast]:
        """Execute one delivered round; return next round's sends."""


_KERNELS: Dict[Type[NodeProgram], Type[VectorKernel]] = {}


def register_kernel(program_cls: Type[NodeProgram]):
    """Class decorator: attach a kernel to a node-program class."""

    def decorate(kernel_cls: Type[VectorKernel]) -> Type[VectorKernel]:
        kernel_cls.program_class = program_cls
        _KERNELS[program_cls] = kernel_cls
        return kernel_cls

    return decorate


def kernel_for(program_cls: Type[NodeProgram]) -> Optional[Type[VectorKernel]]:
    """The registered kernel for a program class, if any."""
    return _KERNELS.get(program_cls)


#: Sentinel: the queued traffic at the handover point was not a conforming
#: single-tag full broadcast, so the run must stay on scalar semantics.
_NONCONFORMING = object()


@register_engine
class VectorEngine(Engine):
    """Numpy message-plane engine with scalar fallback (see module doc)."""

    name = "vector"

    def __init__(self) -> None:
        self._scalar = FastEngine()

    def run(
        self,
        network: Network,
        programs: Dict[int, NodeProgram],
        contexts: Dict[int, Context],
        max_rounds: int,
    ) -> SimulationResult:
        kernel_cls = self._kernel_class(programs)
        if kernel_cls is None or not kernel_cls.eligible(network, programs):
            return self._scalar.run(network, programs, contexts, max_rounds)
        return self._run_hybrid(
            kernel_cls, network, programs, contexts, max_rounds
        )

    # -- eligibility ---------------------------------------------------------

    @staticmethod
    def _kernel_class(
        programs: Dict[int, NodeProgram],
    ) -> Optional[Type[VectorKernel]]:
        """The kernel to use, or ``None`` when the run must stay scalar.

        Requires a homogeneous program population whose class both declares
        :attr:`NodeProgram.message_specs` (the per-phase opt-in) and has a
        registered kernel.
        """
        if not programs:
            return None
        cls = type(programs[0])
        if not getattr(cls, "message_specs", ()):
            return None
        kernel_cls = _KERNELS.get(cls)
        if kernel_cls is None:
            return None
        if any(type(p) is not cls for p in programs.values()):
            return None
        return kernel_cls

    # -- hybrid loop ---------------------------------------------------------

    def _run_hybrid(
        self,
        kernel_cls: Type[VectorKernel],
        network: Network,
        programs: Dict[int, NodeProgram],
        contexts: Dict[int, Context],
        max_rounds: int,
    ) -> SimulationResult:
        n = network.n
        budget = network.bit_budget
        records = [(v, contexts[v], programs[v].receive) for v in range(n)]

        for v, ctx, _ in records:
            ctx.round_number = 0
            programs[v].setup(ctx)

        active = [rec for rec in records if not rec[1]._halted]
        drain: Sequence[tuple] = records
        inboxes: Inboxes = [None] * n

        total_messages = 0
        total_bits = 0
        max_bits = 0
        messages_per_round: List[int] = []
        bits_per_round: List[int] = []

        takeover: Optional[int] = kernel_cls.takeover_round(network, programs)
        pending: Optional[PendingBroadcast] = None
        handover = False
        rounds = 0

        # Scalar prefix: exact FastEngine mechanics until the kernel's
        # takeover round (round 1 for fully-broadcast programs).
        while rounds < max_rounds:
            if takeover is not None and rounds + 1 >= takeover:
                collected = self._collect_handover(
                    drain, kernel_cls.program_class.message_specs, n
                )
                if collected is _NONCONFORMING:
                    takeover = None  # stay scalar for the whole run
                else:
                    pending = collected
                    handover = True
                    break

            touched, sizes = FastEngine._collect_traffic(drain, inboxes)
            round_messages = len(sizes)
            round_bits, max_bits = FastEngine._charge(
                sizes, inboxes, touched, budget, max_bits
            )
            total_bits += round_bits

            if not active:
                for to in touched:
                    inboxes[to] = None
                break

            rounds += 1
            total_messages += round_messages
            messages_per_round.append(round_messages)
            bits_per_round.append(round_bits)

            still_active = []
            keep = still_active.append
            for rec in active:
                v, ctx, recv = rec
                ctx.round_number = rounds
                box = inboxes[v]
                if box is None:
                    recv(ctx, _EMPTY_INBOX)
                else:
                    inboxes[v] = None
                    recv(ctx, box)
                if not ctx._halted:
                    keep(rec)
            for to in touched:
                inboxes[to] = None

            drain = active
            active = still_active
            if not active:
                break
        else:
            raise SimulationLimitError(
                f"simulation did not terminate within {max_rounds} rounds"
            )

        kernel: Optional[VectorKernel] = None
        if handover:
            plane = CsrPlane(network)
            kernel = kernel_cls(plane, network, programs, contexts)
            while rounds < max_rounds:
                round_messages, round_bits, wire_max = self._account(
                    plane, pending, budget
                )
                total_bits += round_bits
                if wire_max > max_bits:
                    max_bits = wire_max

                if kernel.live_count == 0:
                    break  # in-flight traffic charged, round not executed

                rounds += 1
                total_messages += round_messages
                messages_per_round.append(round_messages)
                bits_per_round.append(round_bits)

                pending = kernel.step(rounds, pending)
                if kernel.live_count == 0:
                    # Mirrors the scalar engines' bottom-of-loop break: when
                    # a round ends with every node halted, traffic queued
                    # during that round is discarded *uncharged* (the scalar
                    # loops never reach their next top-of-loop collection).
                    break
            else:
                raise SimulationLimitError(
                    f"simulation did not terminate within {max_rounds} rounds"
                )

        outputs = {v: dict(ctx._outputs) for v, ctx in contexts.items()}
        if kernel is not None:
            kernel.write_outputs(outputs)
            all_halted = kernel.live_count == 0
        else:
            all_halted = not active
        return SimulationResult(
            rounds=rounds,
            total_messages=total_messages,
            total_bits=total_bits,
            max_message_bits=max_bits,
            outputs=outputs,
            all_halted=all_halted,
            messages_per_round=messages_per_round,
            bits_per_round=bits_per_round,
        )

    # -- message plane -------------------------------------------------------

    @staticmethod
    def _collect_handover(
        drain: Sequence[tuple],
        specs: Sequence[MessageSpec],
        n: int,
    ):
        """Drain queued outboxes into one :class:`PendingBroadcast`.

        Returns the pending traffic (possibly with an all-false mask), or
        :data:`_NONCONFORMING` when any queued outbox is not a full
        single-message broadcast with a declared tag — partial sends,
        per-neighbor messages and unknown tags all disqualify the round,
        in which case no outbox is touched and scalar execution continues.
        """
        spec_by_tag = {spec.tag: spec for spec in specs}
        senders: List[tuple] = []
        spec: Optional[MessageSpec] = None
        for rec in drain:
            ctx = rec[1]
            out = ctx._outbox
            if not out:
                continue
            if len(out) != ctx.degree:
                return _NONCONFORMING
            messages = iter(out.values())
            first = next(messages)
            for msg in messages:
                if msg is not first and msg != first:
                    return _NONCONFORMING
            if spec is None:
                spec = spec_by_tag.get(first.tag)
                if spec is None or len(first.fields) != spec.arity:
                    return _NONCONFORMING
            elif first.tag != spec.tag or len(first.fields) != spec.arity:
                return _NONCONFORMING
            senders.append((rec[0], ctx, first))

        mask = np.zeros(n, dtype=bool)
        if spec is None:
            spec = specs[0]  # silent handover round: any spec will do
        columns = tuple(
            np.zeros(n, dtype=np.int64) for _ in range(spec.arity)
        )
        bits = np.zeros(n, dtype=np.int64)
        for v, ctx, msg in senders:
            ctx._outbox = {}
            mask[v] = True
            for i, field in enumerate(msg.fields):
                columns[i][v] = field
            bits[v] = msg.bits
        return PendingBroadcast(spec, mask, columns, bits)

    @staticmethod
    def _account(
        plane: CsrPlane,
        pending: Optional[PendingBroadcast],
        budget: Optional[int],
    ) -> Tuple[int, int, int]:
        """Exact wire totals ``(messages, bits, max_bits)`` for one round.

        A broadcast puts ``degree`` copies of the sender's message on the
        wire, so per-round counts are degree-weighted sums over the sender
        mask — no per-edge materialization.  Raises
        :class:`MessageTooLargeError` for the lowest-id over-budget sender,
        matching the scalar engines' ascending scan.
        """
        if pending is None:
            return 0, 0, 0
        on_wire = pending.mask & (plane.degrees > 0)
        if not on_wire.any():
            return 0, 0, 0
        degrees = plane.degrees[on_wire]
        bits = pending.bits[on_wire]
        wire_max = int(bits.max())
        if budget is not None and wire_max > budget:
            sender = int(np.flatnonzero(on_wire & (pending.bits > budget))[0])
            receiver = int(plane.indices[plane.indptr[sender]])
            raise MessageTooLargeError(
                sender, receiver, int(pending.bits[sender]), budget
            )
        return int(degrees.sum()), int((degrees * bits).sum()), wire_max
