"""Watch the CONGEST derandomization run message by message.

Executes the Lemma 3.10 conditional-expectation loop as an actual
synchronous message-passing computation on the simulator (every node is a
program; the simulator enforces the O(log n)-bit message budget) and
cross-checks the distributed decisions against the centralized engine.

Usage:  python examples/congest_simulation.py [n] [seed]
"""

from __future__ import annotations

import sys

from repro.coloring.distance2 import distance2_coloring
from repro.congest.network import Network, congest_bit_budget
from repro.congest.programs.lemma310 import run_lemma310_on_graph
from repro.derand.coloring_based import schedule_from_colors
from repro.derand.conditional import ConditionalExpectationEngine
from repro.derand.estimators import EstimatorConfig
from repro.domsets.covering import CoveringInstance
from repro.fractional.raising import kmw06_initial_fds
from repro.graphs import gnp_graph
from repro.analysis.verify import require_dominating_set
from repro.rounding.schemes import one_shot_scheme
from repro.util.transmittable import TransmittableGrid


def main(n: int = 60, seed: int = 4) -> None:
    graph = gnp_graph(n, p=min(0.5, 5.0 / n), seed=seed)
    delta_tilde = max(d for _, d in graph.degree()) + 1
    grid = TransmittableGrid.for_n(n)

    initial = kmw06_initial_fds(graph, eps=0.5)
    base = CoveringInstance.from_graph(graph, initial.fds.values)
    scheme = one_shot_scheme(base, delta_tilde, quantize=grid.up)
    participating = set(scheme.participating())
    coloring = distance2_coloring(graph, subset=participating)
    print(
        f"n={n} Delta~={delta_tilde}: {len(participating)} participating "
        f"nodes, {coloring.num_colors} distance-2 color classes"
    )

    network = Network.congest(graph)
    values = {u: var.x for u, var in scheme.instance.value_vars.items()}
    final, coins, sim = run_lemma310_on_graph(
        graph, values, scheme.p, coloring.colors,
        mode="exact-product", grid=grid, network=network,
    )
    ds = require_dominating_set(
        graph, {v for v, x in final.items() if x >= 1 - 1e-9}, "distributed output"
    )
    print(
        f"distributed run : |DS|={len(ds)}, rounds={sim.rounds} "
        f"(budget {3 * coloring.num_colors + 4}), messages={sim.total_messages}, "
        f"max message={sim.max_message_bits} bits "
        f"(budget {congest_bit_budget(n)} bits)"
    )

    engine = ConditionalExpectationEngine(scheme, EstimatorConfig(mode="exact-product"))
    central = engine.run(schedule_from_colors(scheme, coloring.colors))
    ds_central = {o for o, x in central.outcome.projected.items() if x >= 1 - 1e-9}
    agree = coins == {u: int(b) for u, b in central.decisions.items()}
    print(
        f"centralized run : |DS|={len(ds_central)}, initial estimate "
        f"{central.initial_estimate:.3f}, decisions identical: {agree}"
    )
    print("\nper-round message histogram (first 20 rounds):")
    for rnd, count in enumerate(sim.messages_per_round[:20], start=1):
        print(f"  round {rnd:>3d}: {'#' * max(1, count // max(1, n // 20))} {count}")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    main(*args)
