"""Corollary 1.3: the LOCAL-model variant of the coloring route.

"By substituting a vertex coloring subroutine in the algorithm of
Theorem 1.2 by its LOCAL model counterpart this directly also leads to an
improved and slightly more efficient deterministic distributed MDS
algorithm in the LOCAL model": the pipeline is identical — only the
distance-2 coloring subroutine is charged at the LOCAL rate
``O(Delta_L Delta_R + log* n)`` (the ``log* n`` term is paid once instead
of ``Delta_L`` times), giving ``O(Delta polylog Delta + log* n)`` rounds.

The computed dominating set is *identical* to the CONGEST route's — the
derandomization itself never exploited the bandwidth bound — so the LOCAL
route is realized by threading ``model="local"`` through the rounding
steps; only the ledger differs, exactly how the paper states the corollary.
"""

from __future__ import annotations

import math
from typing import Dict

import networkx as nx

from repro.derand.coloring_based import (
    factor_two_via_coloring,
    one_shot_via_coloring,
)
from repro.derand.estimators import EstimatorConfig
from repro.mds.pipeline import MDSResult, PipelineParams, run_pipeline
from repro.util.mathx import log_star


def approx_mds_local(
    graph: nx.Graph,
    eps: float = 0.5,
    params: PipelineParams | None = None,
    estimator: EstimatorConfig | None = None,
) -> MDSResult:
    """Corollary 1.3: ``(1+eps) ln(Delta+1)``-approximate MDS in the LOCAL
    model in ``O(Delta polylog Delta + log* n)`` rounds."""
    params = params or PipelineParams(eps=eps)

    def factor_two_step(values: Dict[int, float], eps2: float, r: float):
        out = factor_two_via_coloring(
            graph,
            values,
            eps=eps2,
            r=r,
            constants_scale=params.constants_scale,
            config=estimator,
            model="local",
        )
        return out.values, out.ledger

    def one_shot_step(values: Dict[int, float]):
        out = one_shot_via_coloring(
            graph, values, config=estimator, model="local"
        )
        return out.values, out.ledger

    return run_pipeline(
        graph, params, factor_two_step, one_shot_step, route="local"
    )


def corollary13_round_formula(n: int, delta: int, eps: float) -> int:
    """``O(Delta polylog Delta + log* n)`` with unit constants."""
    log_delta = max(1.0, math.log2(max(2, delta)))
    return int(math.ceil(delta * log_delta ** 2 / (eps * eps))) + log_star(max(2, n))
