"""Certification oracle: exact/ILP/LP quality bounds for dominating sets.

The experiment layer measures ``ds_size``; this package certifies it.
:func:`certify` walks a bound ladder — budgeted branch-and-bound, HiGHS
ILP, covering-LP lower bound — and returns a typed
:class:`Certificate` with the measured approximation ratios, memoized
per topology identity in the shared :mod:`~repro.oracle.cache`.
"""

from repro.oracle.cache import (
    OracleCache,
    clear_oracle_cache,
    oracle_cache,
    topology_cache_key,
)
from repro.oracle.certificate import (
    Certificate,
    ORACLE_MODES,
    certify,
    lp_lower_bound,
)
from repro.oracle.ilp import ILPSolution, solve_mds_ilp

__all__ = [
    "Certificate",
    "ILPSolution",
    "ORACLE_MODES",
    "OracleCache",
    "certify",
    "clear_oracle_cache",
    "lp_lower_bound",
    "oracle_cache",
    "solve_mds_ilp",
    "topology_cache_key",
]
