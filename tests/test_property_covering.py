"""Hypothesis property tests for the Section 3.3 covering transformations."""

import math
import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.domsets.covering import CoveringInstance
from repro.fractional.raising import repair_feasibility
from repro.graphs.generators import gnp_graph

slow = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def feasible_instance(n: int, p: float, seed: int, level: float):
    """A graph instance with random feasible fractional values >= level."""
    graph = gnp_graph(n, p, seed=seed)
    rng = random.Random(seed * 7 + 1)
    values = {v: min(1.0, level + rng.random() * 0.4) for v in graph.nodes()}
    values = repair_feasibility(graph, values)
    return graph, CoveringInstance.from_graph(graph, values), values


@slow
@given(st.integers(4, 24), st.integers(0, 30))
def test_prune_preserves_feasibility_and_shrinks_degree(n, seed):
    graph, inst, values = feasible_instance(n, 0.3, seed, level=0.2)
    pruned = inst.prune_to_cover()
    assert pruned.is_feasible()
    assert pruned.max_constraint_degree <= inst.max_constraint_degree
    # Pruning never adds members.
    for cid, cn in pruned.constraints.items():
        assert set(cn.members) <= set(inst.constraints[cid].members)


@slow
@given(st.integers(4, 24), st.integers(0, 30))
def test_prune_member_count_respects_fractionality(n, seed):
    graph, inst, values = feasible_instance(n, 0.3, seed, level=0.25)
    nonzero = [x for x in values.values() if x > 0]
    f = math.ceil(1.0 / min(nonzero))
    pruned = inst.prune_to_cover(max_members=f)
    assert pruned.max_constraint_degree <= f


@slow
@given(
    st.integers(5, 22),
    st.integers(0, 20),
    st.integers(1, 4),
    st.floats(0.1, 0.9),
)
def test_split_partition_and_feasibility(n, seed, s, threshold):
    graph, inst, values = feasible_instance(n, 0.35, seed, level=0.15)
    split = inst.split_constraints(
        values, participation_threshold=threshold, s=s
    )
    # Same variables; constraints partition each original's member set.
    assert set(split.value_vars) == set(inst.value_vars)
    regrouped = {}
    for cn in split.constraints.values():
        regrouped.setdefault(cn.origin, []).extend(cn.members)
    for origin, members in regrouped.items():
        assert sorted(members) == sorted(inst.constraints[origin].members)
    # Demands are satisfiable by the original values.
    assert split.is_feasible(values)
    # Total demand per origin covers the (capped) original demand.
    for origin in inst.constraints:
        parts = [c for c in split.constraints.values() if c.origin == origin]
        assert sum(p.c for p in parts) >= min(
            1.0, inst.constraints[origin].c
        ) - 1e-9 or any(p.c >= 1.0 - 1e-9 for p in parts)


@slow
@given(st.integers(4, 20), st.integers(0, 20), st.floats(1.01, 3.0))
def test_boost_monotone_and_capped(n, seed, factor):
    graph, inst, values = feasible_instance(n, 0.3, seed, level=0.1)
    boosted = inst.boost_values(factor)
    for u, var in boosted.value_vars.items():
        assert var.x >= inst.value_vars[u].x - 1e-12
        assert var.x <= 1.0 + 1e-12
    assert boosted.is_feasible()


@slow
@given(st.integers(4, 20), st.integers(0, 20))
def test_conflict_graph_matches_shared_constraints(n, seed):
    graph, inst, _ = feasible_instance(n, 0.3, seed, level=0.2)
    conflict = inst.value_conflict_graph()
    for u in inst.value_vars:
        for w in inst.value_vars:
            if u >= w:
                continue
            shares = bool(
                set(inst.var_constraints[u]) & set(inst.var_constraints[w])
            )
            assert conflict.has_edge(u, w) == shares
