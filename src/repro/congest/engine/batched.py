"""Batched multi-instance execution: K seeds as one stacked message plane.

Statistical sweeps — the Theorem 1.1/1.2 style experiments — are many
independent runs of the *same* program family over different seeded
topologies.  Solo, each run pays the vector engine's per-round fixed cost
(a few dozen numpy dispatches) on arrays that are tiny for suite-sized
graphs, so a 50-seed sweep pays that overhead 50 times over.  This module
stacks the K instances into **one** columnar message plane so each numpy
kernel invocation advances every seed at once:

* :class:`StackedPlane` — K per-instance CSR topologies concatenated
  block-diagonally in instance-major order (instance ``k`` owns global
  nodes ``k*n .. (k+1)*n - 1`` and the matching slice of the edge-slot
  arrays).  Because no row ever references another instance's slots, all
  of :class:`~repro.congest.engine.vector.CsrPlane`'s row reductions are
  exactly the per-instance reductions, computed in one call.
* :func:`run_stacked` — the batched run loop.  It instantiates programs
  and contexts *per instance with local ids* (so every message field, bit
  length and packed comparison key is identical to a solo run), performs
  the scalar ``setup`` + handover per instance, then drives the registered
  :class:`~repro.congest.engine.vector.VectorKernel` over the union plane
  with **per-instance accounting**: each instance has its own round
  counter, per-round series, wire totals and termination mask, and the
  returned :class:`SimulationResult` list is bit-for-bit what K solo
  ``vector``-engine runs would have produced (the parity suite in
  ``tests/test_batched_engine.py`` enforces this across the graph zoo).

Eligibility is deliberately narrow and fails loudly
(:class:`~repro.errors.BatchEligibilityError`) so callers can fall back to
per-cell execution:

* every instance has the same node count and bit budget (seeds of one
  (family, size) grid group satisfy this by construction);
* the program class declares :attr:`NodeProgram.message_specs` and has a
  registered kernel whose :attr:`VectorKernel.stackable` flag is set —
  the kernel promises to use ``plane.local_n`` / ``plane.local_ids`` and
  to never consult ``self.network``;
* the kernel's ``takeover_round`` is 1 for every instance, so all
  instances enter the plane in lockstep with no scalar prefix.  This is
  exactly why the Lemma 3.10 program does not qualify: its takeover round
  is ``2 + 3 * num_colors``, a per-instance quantity, and its color-class
  rounds are targeted scalar sends that cannot share a broadcast plane.
* the traffic queued by ``setup`` is a conforming single-tag broadcast
  with the *same* tag across instances (a silent instance joins any tag).

Instances terminate independently: a finished instance's nodes leave the
kernel's live mask, so its portion of every later broadcast mask is empty
— zero messages, zero bits, no leakage into the siblings' accounting —
and its per-round series simply stops growing while the others run on.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.congest.engine.base import SimulationResult
from repro.congest.engine.vector import (
    _NONCONFORMING,
    CsrPlane,
    PendingBroadcast,
    VectorEngine,
    _as_int64,
    kernel_for,
)
from repro.congest.network import Network
from repro.congest.node import Context, NodeProgram
from repro.errors import (
    BatchEligibilityError,
    MessageTooLargeError,
    SimulationLimitError,
)

__all__ = ["StackedPlane", "run_stacked", "stack_ineligibility"]


class StackedPlane(CsrPlane):
    """K same-size instance topologies as one block-diagonal CSR plane.

    Instance ``k`` owns global node ids ``k * local_n .. (k+1) * local_n - 1``
    and the slot range ``slot_offsets[k] .. slot_offsets[k+1]``.
    ``local_ids`` maps every global node back to its per-instance id and
    ``instance_of`` to its instance index; ``local_n`` is the (shared)
    per-instance node count — the ``n`` every node program believes it is
    running on.
    """

    __slots__ = ("instances", "node_offsets", "slot_offsets", "instance_of")

    def __init__(self, networks: Sequence[Network]):
        if not networks:
            raise BatchEligibilityError("cannot stack zero instances")
        sizes = {net.n for net in networks}
        if len(sizes) != 1:
            raise BatchEligibilityError(
                f"stacked instances must share one node count, got {sorted(sizes)}"
            )
        local_n = networks[0].n
        k_count = len(networks)
        indptr_parts: List[np.ndarray] = []
        indices_parts: List[np.ndarray] = []
        slot_offsets = np.zeros(k_count + 1, dtype=np.int64)
        for k, net in enumerate(networks):
            indptr, indices = net.csr()
            indptr = _as_int64(indptr)
            indices = _as_int64(indices)
            # Globalize: shift row starts by the slots already emitted and
            # neighbor ids into instance k's node range.
            start = indptr[1:] if k else indptr
            indptr_parts.append(start + slot_offsets[k])
            indices_parts.append(indices + k * local_n)
            slot_offsets[k + 1] = slot_offsets[k] + indices.shape[0]
        self._init_arrays(
            np.concatenate(indptr_parts), np.concatenate(indices_parts)
        )
        self.instances = k_count
        self.local_n = local_n
        self.local_ids = np.tile(
            np.arange(local_n, dtype=np.int64), k_count
        )
        self.node_offsets = np.arange(k_count + 1, dtype=np.int64) * local_n
        self.slot_offsets = slot_offsets
        self.instance_of = np.repeat(
            np.arange(k_count, dtype=np.int64), local_n
        )

    def live_per_instance(self, live: np.ndarray) -> np.ndarray:
        """Per-instance count of set flags in a global node mask."""
        return live.reshape(self.instances, self.local_n).sum(axis=1)


def stack_ineligibility(program_cls: type) -> Optional[str]:
    """Why ``program_cls`` cannot run stacked, or ``None`` if it can.

    This is the *static* half of eligibility (specs declared, kernel
    registered and stackable); :func:`run_stacked` additionally verifies
    the per-instance conditions (uniform sizes/budgets, round-1 takeover,
    conforming handover) at run time.
    """
    if not getattr(program_cls, "message_specs", ()):
        return f"{program_cls.__name__} declares no message_specs"
    kernel_cls = kernel_for(program_cls)
    if kernel_cls is None:
        return f"{program_cls.__name__} has no registered vector kernel"
    if not kernel_cls.stackable:
        return f"{kernel_cls.__name__} is not stackable"
    return None


def _accumulate_round(
    plane: StackedPlane,
    pending: Optional[PendingBroadcast],
    budget: Optional[int],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-instance exact wire totals ``(messages, bits, max_bits)``.

    The instance-wise analogue of ``VectorEngine._account``: a broadcast
    puts ``degree`` copies of the sender's message on the wire, so the
    per-instance counts are degree-weighted sums over that instance's
    senders.  Raises :class:`MessageTooLargeError` for the lowest-global-id
    over-budget sender (reported with its *local* ids, matching what the
    corresponding solo run would raise).
    """
    k_count = plane.instances
    messages = np.zeros(k_count, dtype=np.int64)
    bits_total = np.zeros(k_count, dtype=np.int64)
    wire_max = np.zeros(k_count, dtype=np.int64)
    if pending is None:
        return messages, bits_total, wire_max
    on_wire = pending.mask & (plane.degrees > 0)
    if not on_wire.any():
        return messages, bits_total, wire_max
    inst = plane.instance_of[on_wire]
    degrees = plane.degrees[on_wire]
    bits = pending.bits[on_wire]
    if budget is not None and int(bits.max()) > budget:
        sender = int(np.flatnonzero(on_wire & (pending.bits > budget))[0])
        receiver = int(plane.indices[plane.indptr[sender]])
        raise MessageTooLargeError(
            int(plane.local_ids[sender]),
            int(plane.local_ids[receiver]),
            int(pending.bits[sender]),
            budget,
        )
    # float64 bincount weights are exact here: per-round per-instance wire
    # totals are far below 2**53 for any CONGEST-budgeted workload.
    messages = np.bincount(inst, weights=degrees, minlength=k_count)
    bits_total = np.bincount(
        inst, weights=degrees * bits, minlength=k_count
    )
    np.maximum.at(wire_max, inst, bits)
    return (
        messages.astype(np.int64),
        bits_total.astype(np.int64),
        wire_max,
    )


def _stitch_handover(
    plane: StackedPlane,
    collected: Sequence[PendingBroadcast],
) -> Optional[PendingBroadcast]:
    """Combine per-instance handover traffic into one stacked broadcast."""
    specs = {p.spec.tag: p.spec for p in collected if p.mask.any()}
    if len(specs) > 1:
        raise BatchEligibilityError(
            f"instances handed over mixed tags: {sorted(specs)}"
        )
    spec = next(iter(specs.values())) if specs else collected[0].spec
    mask = np.concatenate([p.mask for p in collected])
    # A silent instance may have defaulted to a different spec; its column
    # values are never read (empty mask), only their shape must line up.
    per_instance_columns = [
        p.columns
        if p.spec.arity == spec.arity
        else tuple(np.zeros_like(p.bits) for _ in range(spec.arity))
        for p in collected
    ]
    columns = tuple(
        np.concatenate([cols[i] for cols in per_instance_columns])
        for i in range(spec.arity)
    )
    bits = np.concatenate([p.bits for p in collected])
    return PendingBroadcast(spec, mask, columns, bits)


def _scalar_boot(
    plane: StackedPlane,
    networks: Sequence[Network],
    program_factory: type,
    inputs: Optional[Sequence[Optional[Mapping[int, object]]]],
    kernel_cls: type,
):
    """Object-level boot for kernels without a vectorized ``stacked_setup``.

    Instantiates programs and contexts per instance with *local* ids (so
    every message field and bit length matches the solo run), runs the
    scalar round 0 (``setup``) and the handover collection instance by
    instance — identical mechanics to ``VectorEngine``'s scalar prefix at
    takeover round 1 — and stitches the per-instance traffic into one
    stacked broadcast.
    """
    specs = program_factory.message_specs
    collected: List[PendingBroadcast] = []
    union_programs: Dict[int, NodeProgram] = {}
    union_contexts: Dict[int, Context] = {}
    local_n = plane.local_n
    for k, net in enumerate(networks):
        node_inputs = inputs[k] if inputs and inputs[k] else {}
        base = k * local_n
        contexts: Dict[int, Context] = {}
        programs: Dict[int, NodeProgram] = {}
        records = []
        for v in range(net.n):
            ctx = Context(v, net.neighbors(v), net.n)
            prog = program_factory(node_inputs.get(v))
            contexts[v] = ctx
            programs[v] = prog
            ctx.round_number = 0
            prog.setup(ctx)
            records.append((v, ctx, prog.receive))
            union_programs[base + v] = prog
            union_contexts[base + v] = ctx
        if not kernel_cls.eligible(net, programs):
            raise BatchEligibilityError(
                f"{kernel_cls.__name__} declined an instance of the group"
            )
        if kernel_cls.takeover_round(net, programs) != 1:
            raise BatchEligibilityError(
                f"{kernel_cls.__name__} takes over after round 1; "
                "stacked instances must enter the plane in lockstep"
            )
        pending = VectorEngine._collect_handover(records, specs, net.n)
        if pending is _NONCONFORMING:
            raise BatchEligibilityError(
                "an instance queued non-conforming traffic during setup"
            )
        collected.append(pending)
    # Stackable kernels never consult the network argument (there is no
    # single network to hand them) — part of the `stackable` contract.
    kernel = kernel_cls(plane, None, union_programs, union_contexts)
    return kernel, _stitch_handover(plane, collected), union_contexts


def run_stacked(
    networks: Sequence[Network],
    program_factory: type,
    inputs: Optional[Sequence[Optional[Mapping[int, object]]]] = None,
    max_rounds: int = 10_000,
) -> List[SimulationResult]:
    """Run one program family on K instance networks as one stacked plane.

    Returns one :class:`SimulationResult` per instance, bit-for-bit equal
    to K solo ``vector``-engine runs of the same (network, inputs) pairs.
    Raises :class:`~repro.errors.BatchEligibilityError` when the instances
    cannot be stacked (see the module docstring for the rules) — callers
    such as the batch runner fall back to per-cell execution.
    """
    k_count = len(networks)
    if k_count == 0:
        raise BatchEligibilityError("cannot stack zero instances")
    budgets = {net.bit_budget for net in networks}
    if len(budgets) != 1:
        raise BatchEligibilityError(
            f"stacked instances must share one bit budget, got {sorted(map(str, budgets))}"
        )
    budget = networks[0].bit_budget
    reason = stack_ineligibility(program_factory)
    if reason is not None:
        raise BatchEligibilityError(reason)
    kernel_cls = kernel_for(program_factory)

    plane = StackedPlane(networks)
    local_n = plane.local_n
    union_contexts: Optional[Dict[int, Context]] = None
    if kernel_cls.stacked_setup is not None:
        # Vectorized boot: no per-node program or context objects at all —
        # the kernel initializes its planes and the round-1 broadcast
        # directly from the instance inputs.  This is where batched sweeps
        # stop paying O(K * n) Python object construction.
        kernel, pending = kernel_cls.stacked_setup(
            plane, list(inputs) if inputs else [None] * k_count
        )
    else:
        kernel, pending, union_contexts = _scalar_boot(
            plane, networks, program_factory, inputs, kernel_cls
        )

    # -- the stacked loop: VectorEngine._run_hybrid with K ledgers ----------
    #
    # Per-instance accounting is kept as per-round *history rows* (one
    # int64 vector of length K per round) and folded into the K ledgers
    # once at the end — the loop itself stays free of per-instance Python.
    # ``finished`` is monotone, so each instance's counted rounds form a
    # prefix of the history: exactly its solo per-round series.
    hist_msgs: List[np.ndarray] = []
    hist_bits: List[np.ndarray] = []
    hist_wmax: List[np.ndarray] = []
    #: charge[r][k]: round r's in-flight traffic hit instance k's wire
    #: totals (solo semantics: charged even if the round never executes).
    hist_charge: List[np.ndarray] = []
    #: count[r][k]: instance k actually executed round r (rounds counter,
    #: total_messages and the per-round series advance).
    hist_count: List[np.ndarray] = []
    finished = np.zeros(k_count, dtype=bool)
    live_k = plane.live_per_instance(kernel.live)

    rounds = 0
    while rounds < max_rounds:
        msgs_k, bits_k, wmax_k = _accumulate_round(plane, pending, budget)
        hist_msgs.append(msgs_k)
        hist_bits.append(bits_k)
        hist_wmax.append(wmax_k)
        hist_charge.append(~finished)
        # Solo top-of-loop break: an instance with no live nodes has its
        # in-flight traffic charged but does not execute the round.
        finished |= live_k == 0
        hist_count.append(~finished)
        if finished.all():
            break

        rounds += 1
        pending = kernel.step(rounds, pending)
        live_k = plane.live_per_instance(kernel.live)
        # Solo bottom-of-loop break: traffic an instance queued during its
        # final round is discarded *uncharged*.
        finished |= live_k == 0
        if finished.all():
            break
    else:
        raise SimulationLimitError(
            f"stacked simulation did not terminate within {max_rounds} rounds"
        )

    if union_contexts is None:
        outputs: Dict[int, Dict[str, object]] = {
            g: {} for g in range(plane.n)
        }
    else:
        outputs = {g: dict(ctx._outputs) for g, ctx in union_contexts.items()}
    kernel.write_outputs(outputs)
    live_k = plane.live_per_instance(kernel.live)

    executed = len(hist_msgs)
    msgs2d = np.array(hist_msgs, dtype=np.int64).reshape(executed, k_count)
    bits2d = np.array(hist_bits, dtype=np.int64).reshape(executed, k_count)
    wmax2d = np.array(hist_wmax, dtype=np.int64).reshape(executed, k_count)
    charge2d = np.array(hist_charge, dtype=bool).reshape(executed, k_count)
    count2d = np.array(hist_count, dtype=bool).reshape(executed, k_count)
    total_bits = (bits2d * charge2d).sum(axis=0)
    total_messages = (msgs2d * count2d).sum(axis=0)
    max_bits = (
        np.where(charge2d, wmax2d, 0).max(axis=0)
        if executed
        else np.zeros(k_count, dtype=np.int64)
    )
    inst_rounds = count2d.sum(axis=0)

    results: List[SimulationResult] = []
    for k in range(k_count):
        base = k * local_n
        r_k = int(inst_rounds[k])
        results.append(
            SimulationResult(
                rounds=r_k,
                total_messages=int(total_messages[k]),
                total_bits=int(total_bits[k]),
                max_message_bits=int(max_bits[k]),
                outputs={v: outputs[base + v] for v in range(local_n)},
                all_halted=bool(live_k[k] == 0),
                messages_per_round=msgs2d[:r_k, k].tolist(),
                bits_per_round=bits2d[:r_k, k].tolist(),
            )
        )
    return results
