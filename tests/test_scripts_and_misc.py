"""The EXPERIMENTS.md generator script and remaining small helpers."""

import runpy
import sys
from pathlib import Path

import networkx as nx
import pytest

from repro.congest.cost import bits_for_id
from repro.graphs.normalize import normalize_graph
from repro.graphs.powers import pairwise_distance_at_most
from repro.spanner.baswana_sen import PhaseView


def test_run_experiments_script_fast(tmp_path, capsys):
    """The generator runs end to end in fast mode and reports all-pass."""
    script = Path(__file__).resolve().parent.parent / "scripts" / "run_experiments.py"
    out_file = tmp_path / "EXP.md"
    old_argv = sys.argv
    sys.argv = ["run_experiments.py", "--fast", "--out", str(out_file)]
    try:
        with pytest.raises(SystemExit) as exc:
            runpy.run_path(str(script), run_name="__main__")
        assert exc.value.code == 0
    finally:
        sys.argv = old_argv
    text = out_file.read_text()
    assert "# EXPERIMENTS" in text
    assert "## E1" in text and "## E12" in text
    assert "ALL PASS" in text
    assert "FAILED" not in text
    assert "## Summary" in text


def test_run_experiments_script_quick_bench(tmp_path, capsys):
    """``--quick`` emits the BENCH_engines.json artifact with parity PASS."""
    import json

    script = Path(__file__).resolve().parent.parent / "scripts" / "run_experiments.py"
    out_file = tmp_path / "BENCH_engines.json"
    old_argv = sys.argv
    sys.argv = [
        "run_experiments.py", "--quick", "--fast",
        "--bench-out", str(out_file),
    ]
    try:
        with pytest.raises(SystemExit) as exc:
            runpy.run_path(str(script), run_name="__main__")
        assert exc.value.code == 0
    finally:
        sys.argv = old_argv
    text = capsys.readouterr().out
    assert "engine_parity=PASS" in text
    payload = json.loads(out_file.read_text())
    assert payload["summary"]["failures"] == []
    assert payload["summary"]["speedup_vs_reference"].get("fast", 0) > 0
    assert payload["meta"]["cells"] == len(payload["cells"])


def test_bits_for_id():
    assert bits_for_id(2) == 1
    assert bits_for_id(1024) == 10
    assert bits_for_id(1) >= 1


def test_pairwise_distance_at_most():
    g = normalize_graph(nx.path_graph(6))
    assert pairwise_distance_at_most(g, 0, 3, 3)
    assert not pairwise_distance_at_most(g, 0, 4, 3)
    assert pairwise_distance_at_most(g, 2, 2, 0)


def test_phase_view_dataclass():
    view = PhaseView(
        clusters={0: {1, 2}},
        adjacent_clusters={1: set(), 2: set()},
        cluster_of={1: 0, 2: 0},
    )
    assert view.clusters[0] == {1, 2}


def test_errors_hierarchy():
    """Every library error derives from ReproError and is catchable as one."""
    from repro import errors

    subclasses = [
        errors.GraphError,
        errors.CongestError,
        errors.MessageTooLargeError,
        errors.SimulationLimitError,
        errors.InfeasibleSolutionError,
        errors.DerandomizationError,
        errors.DecompositionError,
        errors.ColoringError,
        errors.RandomnessError,
        errors.LPError,
    ]
    for cls in subclasses:
        assert issubclass(cls, errors.ReproError)
    err = errors.MessageTooLargeError(1, 2, 100, 64)
    assert err.bits == 100 and err.budget == 64
    assert "100 bits" in str(err)


def test_package_version_and_api():
    import repro

    assert repro.__version__ == "1.1.0"
    for name in repro.__all__:
        assert hasattr(repro, name), f"__all__ exports missing {name}"
