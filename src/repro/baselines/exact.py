"""Exact minimum (connected) dominating sets by branch and bound.

Usable up to a few dozen nodes — enough for the test-suite's ground truth
and the small-instance columns of the experiment tables.  The MDS search
branches on the lowest-ID uncovered node: one of its inclusive neighbors
must be in any dominating set.  Pruning: greedy upper bound, ``ceil
(uncovered / Delta~)`` lower bound, and LP lower bound at the root.
"""

from __future__ import annotations

import math
from itertools import combinations
from typing import FrozenSet, List, Optional, Set

import networkx as nx

from repro.analysis.verify import (
    is_connected_dominating_set,
    require_dominating_set,
)
from repro.baselines.greedy import greedy_mds
from repro.errors import GraphError, SearchBudgetExceededError
from repro.graphs.normalize import require_normalized


def exact_mds(
    graph: nx.Graph,
    node_limit: int = 64,
    search_budget: Optional[int] = None,
) -> Set[int]:
    """Provably minimum dominating set (branch and bound).

    ``search_budget`` caps the number of explored search nodes; exceeding
    it raises :class:`~repro.errors.SearchBudgetExceededError` so callers
    with a fallback (the certification oracle's ILP rung) can bound the
    worst case.  ``None`` (the default) searches to completion.
    """
    require_normalized(graph)
    n = graph.number_of_nodes()
    if n == 0:
        return set()
    if n > node_limit:
        raise GraphError(
            f"exact_mds limited to {node_limit} nodes, got {n}; "
            "raise node_limit explicitly if you accept the blow-up"
        )
    inclusive = {
        v: frozenset(set(graph.neighbors(v)) | {v}) for v in graph.nodes()
    }
    delta_tilde = max(len(s) for s in inclusive.values())

    best: Set[int] = greedy_mds(graph)
    best_size = len(best)
    explored = 0

    def search(chosen: Set[int], covered: FrozenSet[int]) -> None:
        nonlocal best, best_size, explored
        explored += 1
        if search_budget is not None and explored > search_budget:
            raise SearchBudgetExceededError(
                f"exact_mds exceeded its search budget of {search_budget} "
                f"nodes on a {n}-node graph"
            )
        if len(chosen) >= best_size:
            return
        uncovered_count = n - len(covered)
        if uncovered_count == 0:
            best, best_size = set(chosen), len(chosen)
            return
        lower = len(chosen) + math.ceil(uncovered_count / delta_tilde)
        if lower >= best_size:
            return
        # Branch on the lowest-ID uncovered node; some inclusive neighbor
        # must join.  Try candidates by descending new coverage.
        pivot = min(v for v in graph.nodes() if v not in covered)
        candidates = sorted(
            inclusive[pivot],
            key=lambda u: (-len(inclusive[u] - covered), u),
        )
        for u in candidates:
            search(chosen | {u}, covered | inclusive[u])

    search(set(), frozenset())
    return require_dominating_set(graph, best, "exact MDS")


def exact_cds(graph: nx.Graph, node_limit: int = 24) -> Optional[Set[int]]:
    """Provably minimum connected dominating set, or ``None`` when the graph
    has no CDS (disconnected input).

    Enumerates candidate sizes upward, seeded by the exact MDS size (a CDS
    is a dominating set, so ``|MDS|`` lower-bounds ``|CDS|``).  Exponential;
    keep ``n`` small.
    """
    require_normalized(graph)
    n = graph.number_of_nodes()
    if n == 0:
        return set()
    if not nx.is_connected(graph):
        return None
    if n == 1:
        return {0}
    if n > node_limit:
        raise GraphError(
            f"exact_cds limited to {node_limit} nodes, got {n}"
        )
    lower = len(exact_mds(graph))
    nodes: List[int] = sorted(graph.nodes())
    for size in range(max(1, lower), n + 1):
        for candidate in combinations(nodes, size):
            if is_connected_dominating_set(graph, candidate):
                return set(candidate)
    return set(nodes)  # pragma: no cover - whole vertex set always works
