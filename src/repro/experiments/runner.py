"""Batch experiment runner: (graph × program × engine) grids across workers.

The simulator executes one cell at a time; scaling to many scenarios is the
runner's job.  A *cell* pins everything needed to reproduce one simulated
execution — graph family, size, seed, node program, engine — so a grid of
cells can be expanded up front (:func:`expand_grid`), executed sequentially
or across ``multiprocessing`` workers (:func:`run_grid`), and aggregated
into one JSON document (:func:`results_payload` / :func:`write_results`).

Design points:

* **Determinism.** Cells carry their own seed; a grid run with ``jobs=1``
  is bit-for-bit reproducible, and worker parallelism cannot reorder the
  output (results are returned in cell order regardless of completion
  order).
* **Structured failures.** A cell that raises — bad family, simulation
  limit, oversized message — produces an ``ok=False`` record with the
  exception type and message instead of tearing down the whole grid.
* **Process workers.** Cells are independent (no shared state), so
  ``multiprocessing.Pool`` gives real CPU parallelism; cells and results
  are plain picklable dicts/dataclasses.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Mapping, Sequence

import networkx as nx

from repro.congest.engine import available_engines
from repro.congest.network import Network
from repro.congest.programs import (
    run_bfs_forest,
    run_color_reduction,
    run_distributed_greedy,
)
from repro.congest.simulator import SimulationResult
from repro.graphs.suite import suite_instance

__all__ = [
    "GridCell",
    "available_programs",
    "expand_grid",
    "run_cell",
    "run_grid",
    "summarize_results",
    "results_payload",
    "write_results",
]


@dataclass(frozen=True)
class GridCell:
    """One fully-specified simulated execution."""

    family: str
    n: int
    program: str
    engine: str
    seed: int = 7

    @property
    def key(self) -> str:
        return f"{self.family}-{self.n}/{self.program}/{self.engine}/s{self.seed}"


def _drive_bfs(graph: nx.Graph, network: Network, engine: str) -> SimulationResult:
    return run_bfs_forest(graph, roots=[0], network=network, engine=engine)[-1]


def _drive_greedy(graph: nx.Graph, network: Network, engine: str) -> SimulationResult:
    return run_distributed_greedy(graph, network=network, engine=engine)[-1]


def _drive_color(graph: nx.Graph, network: Network, engine: str) -> SimulationResult:
    return run_color_reduction(graph, network=network, engine=engine)[-1]


#: Named node-program drivers a cell can select.  Each takes
#: ``(graph, network, engine)`` and returns the :class:`SimulationResult`.
_PROGRAMS: Dict[str, Callable[[nx.Graph, Network, str], SimulationResult]] = {
    "bfs": _drive_bfs,
    "greedy": _drive_greedy,
    "color-reduction": _drive_color,
}


def available_programs() -> List[str]:
    """Sorted names of the node programs the runner can drive."""
    return sorted(_PROGRAMS)


def expand_grid(
    families: Sequence[str],
    sizes: Sequence[int],
    programs: Sequence[str] | None = None,
    engines: Sequence[str] | None = None,
    seed: int = 7,
) -> List[GridCell]:
    """Cartesian expansion of the grid axes into concrete cells."""
    programs = list(programs) if programs is not None else available_programs()
    engines = list(engines) if engines is not None else available_engines()
    return [
        GridCell(family=f, n=n, program=p, engine=e, seed=seed)
        for f in families
        for n in sizes
        for p in programs
        for e in engines
    ]


def run_cell(cell: GridCell) -> Dict[str, object]:
    """Execute one cell; never raises — failures become structured records."""
    record: Dict[str, object] = {"cell": asdict(cell), "key": cell.key}
    try:
        if cell.program not in _PROGRAMS:
            raise KeyError(
                f"unknown program {cell.program!r}; "
                f"available: {', '.join(available_programs())}"
            )
        inst = suite_instance(cell.family, cell.n, seed=cell.seed)
        network = Network.congest(inst.graph)
        start = time.perf_counter()
        sim = _PROGRAMS[cell.program](inst.graph, network, cell.engine)
        wall = time.perf_counter() - start
    except Exception as exc:  # noqa: BLE001 - the grid must survive any cell
        record["ok"] = False
        record["error"] = {"type": type(exc).__name__, "message": str(exc)}
        return record
    record["ok"] = True
    record["wall_s"] = wall
    record["metrics"] = {
        "n": inst.n,
        "rounds": sim.rounds,
        "total_messages": sim.total_messages,
        "total_bits": sim.total_bits,
        "max_message_bits": sim.max_message_bits,
        "all_halted": sim.all_halted,
    }
    return record


def run_grid(
    cells: Iterable[GridCell], jobs: int = 1
) -> List[Dict[str, object]]:
    """Run every cell, optionally across ``jobs`` worker processes.

    Results come back in cell order either way; ``jobs <= 1`` runs inline
    (deterministic and debugger-friendly).
    """
    cells = list(cells)
    if jobs <= 1 or len(cells) <= 1:
        return [run_cell(cell) for cell in cells]
    import multiprocessing

    with multiprocessing.Pool(processes=min(jobs, len(cells))) as pool:
        return pool.map(run_cell, cells)


def summarize_results(results: Sequence[Mapping[str, object]]) -> Dict[str, object]:
    """Aggregate a grid run: totals per engine plus cross-engine speedups.

    The ``speedup_vs_reference`` map reports, for every non-reference
    engine, total-reference-wall / total-engine-wall over the cells where
    *both* engines succeeded on the same (family, n, program, seed) work
    item — the apples-to-apples wall-clock ratio.
    """
    per_engine: Dict[str, Dict[str, float]] = {}
    walls: Dict[tuple, Dict[str, float]] = {}
    failures = []
    for rec in results:
        cell = rec["cell"]  # type: ignore[index]
        engine = cell["engine"]  # type: ignore[index]
        agg = per_engine.setdefault(
            engine, {"cells": 0, "ok": 0, "wall_s": 0.0, "rounds": 0, "messages": 0}
        )
        agg["cells"] += 1
        if rec.get("ok"):
            metrics = rec["metrics"]  # type: ignore[index]
            agg["ok"] += 1
            agg["wall_s"] += rec["wall_s"]  # type: ignore[operator]
            agg["rounds"] += metrics["rounds"]  # type: ignore[index]
            agg["messages"] += metrics["total_messages"]  # type: ignore[index]
            item = (cell["family"], cell["n"], cell["program"], cell["seed"])  # type: ignore[index]
            walls.setdefault(item, {})[engine] = rec["wall_s"]  # type: ignore[assignment]
        else:
            failures.append({"key": rec["key"], "error": rec["error"]})
    speedups: Dict[str, float] = {}
    for engine in per_engine:
        if engine == "reference":
            continue
        ref_total = eng_total = 0.0
        for by_engine in walls.values():
            if "reference" in by_engine and engine in by_engine:
                ref_total += by_engine["reference"]
                eng_total += by_engine[engine]
        if eng_total > 0:
            speedups[engine] = round(ref_total / eng_total, 3)
    return {
        "per_engine": per_engine,
        "speedup_vs_reference": speedups,
        "failures": failures,
    }


def results_payload(
    results: Sequence[Mapping[str, object]], meta: Mapping[str, object] | None = None
) -> Dict[str, object]:
    """The canonical JSON document for one grid run."""
    return {
        "generator": "repro.experiments.runner",
        "meta": dict(meta or {}),
        "summary": summarize_results(results),
        "cells": list(results),
    }


def write_results(
    path: str | Path,
    results: Sequence[Mapping[str, object]],
    meta: Mapping[str, object] | None = None,
) -> Path:
    """Write the grid run to ``path`` as pretty-printed JSON."""
    path = Path(path)
    path.write_text(json.dumps(results_payload(results, meta), indent=2) + "\n")
    return path
