"""repro — deterministic distributed dominating set approximation in the
CONGEST model.

A from-scratch reproduction of Deurer, Kuhn & Maus (PODC 2019,
arXiv:1905.10775): deterministic ``(1+eps)(1+ln(Delta+1))``-approximate
minimum dominating sets and ``O(log Delta)``-approximate connected
dominating sets via derandomized rounding, together with every substrate the
paper relies on (CONGEST simulator, fractional LP solvers, k-wise
independent randomness, network decompositions, distance-2 colorings,
spanners) and the baselines it is measured against.

Quickstart
----------
>>> from repro import approx_mds_coloring, greedy_mds
>>> from repro.graphs import gnp_graph
>>> g = gnp_graph(80, 0.08, seed=1)
>>> result = approx_mds_coloring(g, eps=0.5)
>>> len(result.dominating_set) <= len(greedy_mds(g)) * 3
True
"""

from repro.mds import (
    MDSResult,
    PipelineParams,
    approx_mds_coloring,
    approx_mds_decomposition,
    approx_mds_local,
    approx_mds_randomized,
)
from repro.cds import CDSResult, approx_cds
from repro.baselines import (
    exact_cds,
    exact_mds,
    greedy_mds,
    randomized_lp_rounding_mds,
)
from repro.fractional import kmw06_initial_fds, lp_fractional_mds
from repro.setcover import SetCoverInstance, approx_min_set_cover, greedy_set_cover
from repro.weighted import approx_weighted_mds
from repro.analysis import (
    is_connected_dominating_set,
    is_dominating_set,
)
from repro.domsets import CFDS, CoveringInstance

#: 1.1.0: unified experiment API (``repro.api``) — ProgramSpec registry,
#: Experiment builder, streaming grid results; legacy dict-record functions
#: (``expand_grid``, ``run_cell``) are deprecation shims until 2.0.
__version__ = "1.1.0"

__all__ = [
    "MDSResult",
    "PipelineParams",
    "approx_mds_coloring",
    "approx_mds_decomposition",
    "approx_mds_local",
    "approx_mds_randomized",
    "CDSResult",
    "approx_cds",
    "greedy_mds",
    "exact_mds",
    "exact_cds",
    "randomized_lp_rounding_mds",
    "kmw06_initial_fds",
    "lp_fractional_mds",
    "SetCoverInstance",
    "approx_min_set_cover",
    "greedy_set_cover",
    "approx_weighted_mds",
    "is_dominating_set",
    "is_connected_dominating_set",
    "CFDS",
    "CoveringInstance",
    "__version__",
]
