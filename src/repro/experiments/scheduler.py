"""Adaptive batch scheduler: cost-model planning for ``strategy="batch"``.

The fixed ``batch_size`` chunking the runner shipped with treats every
cell as equally expensive: a width cap of 10 makes one plane out of ten
20-node instances and another out of ten 150-node instances, and under
worker parallelism the second plane stragglers the pool while the first
worker idles.  This module replaces the cap with a **cost model**: each
cell's estimated execution cost is its plane width (``n``), times its
registry round limit, times its program's widest ``MessageSpec`` wire
size — the exact quantity :func:`repro.congest.engine.batched.plane_cost`
defines, chosen because it is deterministic, additive across instances
and strictly monotone in width, rounds and bits.  Groups are then split
to a **target cost** instead of a target width, so every plane carries
roughly the same amount of work regardless of how sizes are mixed.

Three decisions, all deterministic functions of their inputs:

* :func:`estimate_cell_cost` — the per-cell cost.  Round limits come
  from the spec's ``batch_max_rounds`` recipe evaluated on a size proxy
  (the registered recipes are functions of ``n`` only); message bits
  from the program's declared :class:`~repro.congest.engine.vector.
  MessageSpec` list with every field charged ``bit_length(n)``.
* :func:`resolve_target_cost` — what ``target_cost="auto"`` negotiates:
  the total stackable cost divided over ``2 * jobs`` planes (the factor
  of two oversubscribes the pool so an early-finishing worker always
  finds another plane instead of idling), and ``0`` — scheduling
  disabled, one plane per group — when there is nothing to parallelize
  (``jobs <= 1`` or no stackable group).
* :func:`adaptive_plan` — the planner.  Cells are grouped exactly like
  the fixed planner (same :attr:`~repro.experiments.runner.GridCell.
  group_key` stacking rules), each group is split greedily at the target
  cost **in cell order** (plans never reorder results), ``batch_size``
  remains honored as a hard width cap for back-compat, and a final
  **tail-steal pass** halves the costliest plane while the pool has
  fewer planes than workers — the static form of stealing an oversized
  group's tail onto an idle worker.

Every unit of the resulting plan carries a scheduler-decision meta block
``{scheduler, target_cost, est_cost, splits, unit}`` which the runner
attaches to each produced record as ``plan`` (plus the measured
``actual_wall_s``), so grid payloads and BENCH artifacts record what the
scheduler decided next to what it cost.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.registry import batchable_programs, program_spec
from repro.congest.engine.batched import plane_cost
from repro.congest.message import FIELD_FRAMING_BITS, MESSAGE_HEADER_BITS

__all__ = [
    "PlanUnit",
    "adaptive_plan",
    "estimate_cell_cost",
    "estimate_message_bits",
    "estimate_round_limit",
    "resolve_target_cost",
]

#: A dispatch unit: kind ("cell" | "batch"), cell indices, scheduler meta
#: (``None`` when the fixed planner produced the unit).
PlanUnit = Tuple[str, List[int], Optional[Dict[str, object]]]

#: ``resolve_target_cost`` plans this many planes per worker, so a worker
#: finishing its plane early always finds another instead of idling.
OVERSUBSCRIBE = 2

#: Round-limit fallback (per instance) when a spec carries no recipe.
_FALLBACK_ROUND_FACTOR = 4


class _SizeProxy:
    """Stand-in for a :class:`~repro.congest.network.Network` of size ``n``.

    The registered ``batch_max_rounds`` recipes are arithmetic in
    ``net.n`` (``8 * net.n + 16`` and the like); evaluating them on this
    proxy prices a cell without generating its graph — planning must stay
    O(cells), not O(edges).
    """

    __slots__ = ("n",)

    def __init__(self, n: int):
        self.n = int(n)


def estimate_round_limit(program: str, n: int) -> int:
    """The cell's registry round limit, evaluated on a size proxy."""
    spec = program_spec(program)
    if spec.batch_max_rounds is not None:
        try:
            return int(spec.batch_max_rounds(_SizeProxy(n)))
        except Exception:  # noqa: BLE001 - a recipe needing a real Network
            pass
    return _FALLBACK_ROUND_FACTOR * int(n) + 16


def estimate_message_bits(program: str, n: int) -> int:
    """Widest per-message wire size of the program's declared specs.

    Every integer field is charged ``bit_length(n)`` — node ids and
    n-bounded counters dominate the registered message families — on top
    of the exact header/framing constants.  Programs without
    ``message_specs`` (non-vectorized) are charged a single one-field
    message; their cells never stack, so the value only prices solo
    fallback units.
    """
    spec = program_spec(program)
    cls = spec.batch_factory or spec.program
    field_bits = max(1, int(n)).bit_length()
    specs = getattr(cls, "message_specs", ()) or ()
    if not specs:
        return MESSAGE_HEADER_BITS + FIELD_FRAMING_BITS + field_bits
    return max(
        MESSAGE_HEADER_BITS + m.arity * (FIELD_FRAMING_BITS + field_bits)
        for m in specs
    )


def estimate_cell_cost(cell) -> int:
    """Estimated execution cost of one grid cell (exact integer)."""
    n = int(cell.n)
    return plane_cost(
        [n],
        [estimate_round_limit(cell.program, n)],
        [estimate_message_bits(cell.program, n)],
    )


def _stackable_groups(cells) -> Tuple[Dict[tuple, List[int]], List[tuple]]:
    """Group cell indices exactly like the fixed planner does."""
    stackable = set(batchable_programs())
    groups: Dict[tuple, List[int]] = {}
    order: List[tuple] = []
    for i, cell in enumerate(cells):
        batchable = cell.engine == "vector" and cell.program in stackable
        key = ("group",) + cell.group_key if batchable else ("solo", i)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(i)
    return groups, order


def resolve_target_cost(cells, jobs: int) -> int:
    """The per-plane cost target ``target_cost="auto"`` negotiates.

    Total stackable cost spread over ``OVERSUBSCRIBE * jobs`` planes;
    ``0`` (adaptive scheduling disabled — one plane per group, the
    in-process optimum) when ``jobs <= 1`` or no group can stack.
    """
    if jobs <= 1:
        return 0
    groups, order = _stackable_groups(cells)
    total = 0
    for key in order:
        if key[0] == "group" and len(groups[key]) >= 2:
            total += sum(estimate_cell_cost(cells[i]) for i in groups[key])
    if total == 0:
        return 0
    planes = OVERSUBSCRIBE * jobs
    return max(1, -(-total // planes))


def _chunk_by_cost(
    indices: List[int],
    costs: List[int],
    target_cost: int,
    batch_size: int,
) -> List[List[int]]:
    """Split one group's indices (in order) at the cost target.

    A chunk closes when adding the next cell would push it past
    ``target_cost`` — a single cell above the target gets a plane of its
    own — or past the ``batch_size`` width cap (0 = uncapped).
    """
    cap = batch_size if batch_size > 0 else len(indices)
    chunks: List[List[int]] = []
    current: List[int] = []
    current_cost = 0
    for index, cost in zip(indices, costs):
        if current and (current_cost + cost > target_cost or len(current) >= cap):
            chunks.append(current)
            current, current_cost = [], 0
        current.append(index)
        current_cost += cost
    if current:
        chunks.append(current)
    return chunks


def adaptive_plan(
    cells,
    target_cost: int,
    batch_size: int = 0,
    jobs: int = 1,
) -> List[PlanUnit]:
    """Cost-model dispatch plan for one grid run (deterministic).

    Same inputs — cells, target, cap, jobs — always produce the same
    plan.  Chunks preserve cell order within each group and groups keep
    first-occurrence order, so the plan can never reorder results;
    width-1 chunks degrade to plain ``cell`` units exactly like the
    fixed planner's leftovers.
    """
    if target_cost <= 0:
        raise ValueError("adaptive_plan needs a positive target_cost")
    groups, order = _stackable_groups(cells)
    # Per-group chunk lists first, so the steal pass can rebalance across
    # groups before unit indices and meta are finalized.
    chunked: List[Tuple[tuple, List[List[int]], List[int]]] = []
    for key in order:
        indices = groups[key]
        if key[0] == "solo" or len(indices) < 2:
            chunked.append((key, [[i] for i in indices], []))
            continue
        costs = [estimate_cell_cost(cells[i]) for i in indices]
        chunks = _chunk_by_cost(indices, costs, target_cost, batch_size)
        chunked.append((key, chunks, costs))

    def chunk_cost(chunk: List[int]) -> int:
        return sum(estimate_cell_cost(cells[i]) for i in chunk)

    # Tail steal: while the pool would have idle workers, halve the
    # costliest stackable plane (width permitting) so its tail can run
    # concurrently.  batch_size already bounds widths, so halving cannot
    # violate the cap.
    if jobs > 1:
        while True:
            planes = [
                (chunk_cost(chunk), gi, pos, len(chunk))
                for gi, (key, chunks, _) in enumerate(chunked)
                if key[0] == "group"
                for pos, chunk in enumerate(chunks)
                if len(chunk) >= 2
            ]
            splittable = [p for p in planes if p[3] >= 4]
            if len(planes) >= jobs or not splittable:
                break
            _cost, gi, pos, _width = max(
                splittable, key=lambda p: (p[0], -p[1], -p[2])
            )
            chunks = chunked[gi][1]
            victim = chunks[pos]
            half = len(victim) // 2
            chunks[pos : pos + 1] = [victim[:half], victim[half:]]

    plan: List[PlanUnit] = []
    for key, chunks, _costs in chunked:
        splits = len(chunks)
        for chunk in chunks:
            meta: Dict[str, object] = {
                "scheduler": "adaptive",
                "target_cost": int(target_cost),
                "est_cost": chunk_cost(chunk),
                "splits": splits if key[0] == "group" else 1,
                "unit": len(plan),
            }
            kind = "batch" if key[0] == "group" and len(chunk) >= 2 else "cell"
            if kind == "cell":
                for i in chunk:
                    solo_meta = dict(meta, est_cost=estimate_cell_cost(cells[i]))
                    solo_meta["unit"] = len(plan)
                    plan.append(("cell", [i], solo_meta))
            else:
                plan.append(("batch", list(chunk), meta))
    return plan


def _plan_summary(plan: Sequence[PlanUnit]) -> Dict[str, object]:
    """Aggregate view of one plan for payload meta and logging."""
    batch_units = [u for u in plan if u[0] == "batch"]
    est = [int(u[2]["est_cost"]) for u in plan if u[2] is not None]
    return {
        "units": len(plan),
        "batch_units": len(batch_units),
        "widths": [len(u[1]) for u in batch_units],
        "est_cost_max": max(est) if est else 0,
        "est_cost_total": sum(est),
    }
