"""Randomized stacked-vs-solo parity fuzzer over every stackable kernel.

The hand-written parity suites (``test_batched_engine.py``) pin the
contract on curated fixtures; this fuzzer draws *seeded* random instance
groups — mixed graph families, mixed sizes, mixed generator seeds, mixed
per-instance round limits — across ALL kernels the registry reports as
stackable and asserts the absolute contract on each draw: a K-instance
stacked run reproduces the K solo ``vector``-engine runs **field for
field** — rounds, outputs, message/bit totals, per-round series,
``max_message_bits``, ``all_halted``.

For lemma310 the draws additionally perturb a coin-flip's worth of
instances away from the canonical uniform inputs (``x != p`` on a third
of their nodes), so every lane stays fuzzed: canonical instances run
their color-class rounds *in-plane* from round 1, perturbed ones run
their per-instance ``2 + 3*num_colors`` scalar prologue and join the
plane late, and mixed draws exercise both inside one plane round.

Every draw is a deterministic function of ``(program, fuzz_seed)``, so a
failure reproduces from the parametrized id alone.
"""

from __future__ import annotations

import random

import pytest

from repro.api.registry import batchable_programs, program_spec
from repro.congest.engine import iter_stacked, run_stacked
from repro.congest.network import Network
from repro.congest.simulator import Simulator
from repro.graphs.suite import suite_instance

#: Graph families whose generators honor the requested n exactly.
FAMILIES = ("gnp", "gnp-dense", "tree", "geometric", "ba")

#: Per-draw group shape: how many instances, and the size band.  Small
#: sizes keep the fuzz matrix fast while still mixing takeover rounds
#: (lemma310 colorings differ across families and densities).
MIN_INSTANCES, MAX_INSTANCES = 2, 5
MIN_N, MAX_N = 8, 48

FUZZ_SEEDS = range(4)

_FIELDS = (
    "rounds",
    "outputs",
    "total_messages",
    "total_bits",
    "max_message_bits",
    "messages_per_round",
    "bits_per_round",
    "all_halted",
)


def _draw_group(program: str, fuzz_seed: int):
    """One deterministic random instance group plus its run recipe."""
    rng = random.Random(f"stacked-fuzz/{program}/{fuzz_seed}")
    spec = program_spec(program)
    count = rng.randint(MIN_INSTANCES, MAX_INSTANCES)
    networks = []
    for _ in range(count):
        family = rng.choice(FAMILIES)
        n = rng.randint(MIN_N, MAX_N)
        seed = rng.randint(0, 10**6)
        networks.append(
            Network.congest(suite_instance(family, n, seed=seed).graph)
        )
    inputs = (
        [dict(spec.batch_inputs(net)) for net in networks]
        if spec.batch_inputs is not None
        else None
    )
    if program == "lemma310":
        # Perturb ~half the instances off the canonical uniform inputs:
        # either ``x != p`` on a third of the nodes, or (rarer) ``x == p``
        # per node but varying across nodes — both fail the kernel's
        # round-1 gate (the second only via its cross-node uniformity
        # clause) and run the scalar color-class prologue, so the fuzzer
        # keeps covering in-plane, late-join, and mixed planes.
        from repro.util.transmittable import TransmittableGrid

        for k, net in enumerate(networks):
            draw = rng.random()
            if draw < 0.5:
                quarter = TransmittableGrid.for_n(net.n).to_int(0.25)
                patch = (
                    {"x_num": quarter}
                    if draw < 0.35
                    else {"x_num": quarter, "p_num": quarter}
                )
                inputs[k] = {
                    v: (dict(box, **patch) if v % 3 == 0 else box)
                    for v, box in inputs[k].items()
                }
    limits = [int(spec.batch_max_rounds(net)) for net in networks]
    return networks, inputs, limits


def _solo_runs(program: str, networks, inputs, limits):
    spec = program_spec(program)
    return [
        Simulator(
            net,
            spec.batch_factory,
            inputs=(inputs[k] if inputs else {}),
            engine="vector",
        ).run(max_rounds=limits[k])
        for k, net in enumerate(networks)
    ]


@pytest.mark.parametrize("fuzz_seed", FUZZ_SEEDS)
@pytest.mark.parametrize("program", batchable_programs())
def test_fuzz_stacked_parity_field_for_field(program, fuzz_seed):
    """Random mixed-size/mixed-seed groups: stacked == solo, every field."""
    networks, inputs, limits = _draw_group(program, fuzz_seed)
    spec = program_spec(program)
    solo = _solo_runs(program, networks, inputs, limits)
    stacked = run_stacked(
        networks, spec.batch_factory, inputs=inputs, max_rounds=limits
    )
    for k, (a, b) in enumerate(zip(solo, stacked)):
        for field in _FIELDS:
            assert getattr(a, field) == getattr(b, field), (
                program,
                fuzz_seed,
                k,
                field,
            )
        assert a == b, (program, fuzz_seed, k)


@pytest.mark.parametrize("fuzz_seed", FUZZ_SEEDS)
@pytest.mark.parametrize("program", batchable_programs())
def test_fuzz_iter_stacked_yield_order_and_parity(program, fuzz_seed):
    """Streaming draws: per-instance results surface the moment each
    instance terminates, in non-decreasing completion order, and match
    the solo runs exactly."""
    networks, inputs, limits = _draw_group(program, fuzz_seed)
    spec = program_spec(program)
    solo = _solo_runs(program, networks, inputs, limits)
    collected = {}
    yielded_rounds = []
    for k, result in iter_stacked(
        networks, spec.batch_factory, inputs=inputs, max_rounds=limits
    ):
        assert k not in collected, "an instance must yield exactly once"
        collected[k] = result
        yielded_rounds.append(result.rounds)
    assert sorted(collected) == list(range(len(networks)))
    # Completion order: yield ticks are monotone and an instance's counted
    # rounds never exceed its yield tick, so the stream can never surface
    # a slower instance before a faster one.
    assert yielded_rounds == sorted(yielded_rounds), (program, fuzz_seed)
    assert [collected[k] for k in range(len(networks))] == solo


def test_fuzz_covers_lemma310_and_mixed_takeovers():
    """The fuzz matrix actually exercises every lemma310 lane: canonical
    instances take over at round 1 (in-plane color-class rounds),
    perturbed ones keep their ``2 + 3*num_colors`` scalar prologue, and
    at least one draw mixes both inside a single plane."""
    from repro.congest.engine import kernel_for
    from repro.congest.programs.lemma310 import Lemma310Program

    assert "lemma310" in batchable_programs()
    kernel_cls = kernel_for(Lemma310Program)
    saw_round_one = saw_late = mixed = False
    for fuzz_seed in FUZZ_SEEDS:
        networks, inputs, _ = _draw_group("lemma310", fuzz_seed)
        takeovers = {
            int(
                kernel_cls.takeover_round(
                    net, {v: Lemma310Program(box[v]) for v in range(net.n)}
                )
            )
            for net, box in zip(networks, inputs)
        }
        saw_round_one = saw_round_one or 1 in takeovers
        saw_late = saw_late or any(t > 1 for t in takeovers)
        mixed = mixed or (1 in takeovers and len(takeovers) > 1)
    assert saw_round_one, "no fuzz draw ran the in-plane round-1 lane"
    assert saw_late, "no fuzz draw ran the scalar-prologue lane"
    assert mixed, "no fuzz draw mixed per-instance takeover rounds"
