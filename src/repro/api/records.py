"""Typed result objects for grid runs: :class:`RunRecord`, :class:`SweepResult`.

These replace the ad-hoc dicts the legacy runner returned.  The dict shape
remains the on-disk / cross-process interchange format (``BENCH_*.json``
artifacts, worker pickles predate this module), so every record converts
losslessly both ways: :meth:`RunRecord.to_dict` emits exactly the legacy
shape and :meth:`RunRecord.from_dict` parses it back.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Sequence


@dataclass
class RunRecord:
    """Outcome of one grid cell (success or structured failure).

    ``metrics`` is the per-program block (shared simulation totals plus the
    spec's summary values); ``batch`` annotates records produced by a
    stacked multi-instance run with the stack width and group wall-clock;
    ``plan`` carries the adaptive scheduler's decision meta
    (``scheduler/target_cost/est_cost/splits/unit/actual_wall_s``, plus a
    ``fallback`` block when the record was re-dispatched after a lost
    worker) and is ``None`` whenever the fixed planner ran — legacy
    records and artifacts are unchanged.  ``quality`` is the certification
    oracle's verdict (``oracle/method/status/opt/lp_bound/ratio_vs_opt/
    ratio_vs_lp/...``), attached only when a grid runs with ``certify``
    set — records from uncertified runs are byte-identical to before the
    oracle existed.
    """

    cell: object  # a runner.GridCell (kept loose to avoid an import cycle)
    ok: bool
    wall_s: Optional[float] = None
    metrics: Optional[Dict[str, object]] = None
    error: Optional[Dict[str, str]] = None
    batch: Optional[Dict[str, object]] = None
    plan: Optional[Dict[str, object]] = None
    quality: Optional[Dict[str, object]] = None

    @property
    def key(self) -> str:
        """The cell's reproduction key, e.g. ``gnp-60/greedy/vector/s7``."""
        return self.cell.key  # type: ignore[attr-defined]

    def to_dict(self) -> Dict[str, object]:
        """The legacy dict shape (bit-for-bit what the old runner emitted)."""
        record: Dict[str, object] = {
            "cell": asdict(self.cell),  # type: ignore[call-overload]
            "key": self.key,
            "ok": self.ok,
        }
        if self.plan is not None:
            record["plan"] = dict(self.plan)
        if not self.ok:
            record["error"] = dict(self.error or {})
            return record
        record["wall_s"] = self.wall_s
        if self.batch is not None:
            record["batch"] = dict(self.batch)
        record["metrics"] = dict(self.metrics or {})
        if self.quality is not None:
            record["quality"] = dict(self.quality)
        return record

    @classmethod
    def from_dict(cls, record: Mapping[str, object]) -> "RunRecord":
        """Parse a legacy dict record (e.g. read back from a JSON artifact)."""
        from repro.experiments.runner import GridCell

        cell = GridCell(**record["cell"])  # type: ignore[arg-type]
        return cls(
            cell=cell,
            ok=bool(record.get("ok")),
            wall_s=record.get("wall_s"),  # type: ignore[arg-type]
            metrics=dict(record["metrics"]) if "metrics" in record else None,  # type: ignore[arg-type]
            error=dict(record["error"]) if "error" in record else None,  # type: ignore[arg-type]
            batch=dict(record["batch"]) if "batch" in record else None,  # type: ignore[arg-type]
            plan=dict(record["plan"]) if "plan" in record else None,  # type: ignore[arg-type]
            quality=dict(record["quality"]) if "quality" in record else None,  # type: ignore[arg-type]
        )


def as_record_dicts(
    results: Sequence[object],
) -> List[Dict[str, object]]:
    """Normalize a mixed record sequence to legacy dicts.

    Report and summary functions accept both :class:`RunRecord` objects
    (the builder surface) and plain dicts (legacy callers, JSON round
    trips); this is the single conversion point.
    """
    return [
        rec.to_dict() if isinstance(rec, RunRecord) else dict(rec)  # type: ignore[call-overload]
        for rec in results
    ]


@dataclass
class SweepResult:
    """An ordered grid run: one :class:`RunRecord` per cell, plus run meta.

    Iteration, indexing and ``len`` operate on the records in cell order
    (the deterministic order — never completion order, regardless of
    workers or strategy).
    """

    records: List[RunRecord]
    meta: Dict[str, object] = field(default_factory=dict)

    def __iter__(self) -> Iterator[RunRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __getitem__(self, index):
        return self.records[index]

    @property
    def ok(self) -> bool:
        """True when every cell succeeded."""
        return all(rec.ok for rec in self.records)

    def failures(self) -> List[RunRecord]:
        return [rec for rec in self.records if not rec.ok]

    def to_dicts(self) -> List[Dict[str, object]]:
        """Legacy dict records (the ``run_grid`` return shape)."""
        return [rec.to_dict() for rec in self.records]

    def summary(self) -> Dict[str, object]:
        """Per-engine totals, speedups and failures (see the runner)."""
        from repro.experiments.runner import summarize_results

        return summarize_results(self.to_dicts())

    def payload(self, meta: Mapping[str, object] | None = None) -> Dict[str, object]:
        """The canonical JSON document for this run."""
        from repro.experiments.runner import results_payload

        merged = dict(self.meta)
        merged.update(meta or {})
        return results_payload(self.to_dicts(), meta=merged)

    def write(self, path, meta: Mapping[str, object] | None = None) -> Path:
        """Write the run to ``path`` as pretty-printed JSON."""
        import json

        path = Path(path)
        path.write_text(json.dumps(self.payload(meta), indent=2) + "\n")
        return path

    def report(self):
        """Render as the engine-comparison :class:`ExperimentReport`."""
        from repro.experiments.harness import engine_grid_report

        return engine_grid_report(self.to_dicts())
