"""Exact MDS as an integer linear program (HiGHS via ``scipy.optimize.milp``).

``min sum_v x_v`` subject to ``sum_{u in N[v]} x_u >= 1`` for every node
``v`` and ``x`` binary — the integral covering program whose relaxation
:mod:`repro.fractional.lp` already solves.  HiGHS branch-and-cut handles
the graph-zoo scale (n in the hundreds) in well under a second for most
families; a wall-clock ``time_limit_s`` bounds the hard instances, in
which case the incumbent (a feasible dominating set, hence an *upper*
bound on OPT) and the solver's remaining MIP gap are reported instead of
a proven optimum.

This is the middle rung of the certification ladder
(:func:`repro.oracle.certificate.certify`): above the budgeted
branch-and-bound of :mod:`repro.baselines.exact`, below the pure LP
lower bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import FrozenSet, Optional

import networkx as nx
import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.analysis.verify import require_dominating_set
from repro.errors import LPError
from repro.graphs.normalize import require_normalized

#: ``milp`` status codes -> human-readable status strings.
_MILP_STATUS = {
    0: "optimal",
    1: "iteration_limit",
    2: "infeasible",
    3: "unbounded",
    4: "numerical",
}


@dataclass(frozen=True)
class ILPSolution:
    """Outcome of one MDS ILP solve.

    ``nodes`` is the best dominating set found (``None`` when the solver
    produced no incumbent at all); ``optimum`` is its size.  ``proven``
    is ``True`` exactly when HiGHS closed the gap — otherwise ``optimum``
    is only an upper bound on OPT and ``mip_gap`` reports the remaining
    relative gap at the limit.
    """

    nodes: Optional[FrozenSet[int]]
    optimum: Optional[int]
    proven: bool
    status: str
    mip_gap: Optional[float]
    solve_wall_s: float


def solve_mds_ilp(graph: nx.Graph, time_limit_s: float = 10.0) -> ILPSolution:
    """Solve minimum dominating set exactly via HiGHS branch-and-cut.

    Raises :class:`~repro.errors.LPError` (with the HiGHS status code)
    when the solver reports infeasibility or a numerical failure — the
    domination ILP of a non-empty graph is always feasible (``x = 1``),
    so either outcome means the solve, not the instance, went wrong.
    """
    require_normalized(graph)
    n = graph.number_of_nodes()
    if n == 0:
        return ILPSolution(
            nodes=frozenset(),
            optimum=0,
            proven=True,
            status="optimal",
            mip_gap=0.0,
            solve_wall_s=0.0,
        )
    rows, cols = [], []
    for v in graph.nodes():
        for u in set(graph.neighbors(v)) | {v}:
            rows.append(v)
            cols.append(u)
    coverage = sparse.csc_matrix(
        (np.ones(len(rows)), (rows, cols)), shape=(n, n)
    )
    start = perf_counter()
    result = milp(
        c=np.ones(n),
        constraints=LinearConstraint(coverage, lb=1.0),
        integrality=np.ones(n),
        bounds=Bounds(0.0, 1.0),
        options={"time_limit": float(time_limit_s)},
    )
    wall = perf_counter() - start
    status = _MILP_STATUS.get(result.status, f"status_{result.status}")
    if result.status in (2, 3, 4):
        raise LPError(
            f"MDS ILP solve failed ({status}, HiGHS status {result.status}): "
            f"{result.message}",
            status=result.status,
        )
    if result.x is None:
        # Time limit hit before any incumbent was found.
        return ILPSolution(
            nodes=None,
            optimum=None,
            proven=False,
            status="time_limit",
            mip_gap=None,
            solve_wall_s=wall,
        )
    chosen = frozenset(int(v) for v in np.flatnonzero(result.x > 0.5))
    require_dominating_set(graph, chosen, "ILP MDS incumbent")
    proven = result.status == 0
    gap = getattr(result, "mip_gap", None)
    return ILPSolution(
        nodes=chosen,
        optimum=len(chosen),
        proven=proven,
        status="optimal" if proven else "time_limit",
        mip_gap=float(gap) if gap is not None else None,
        solve_wall_s=wall,
    )
