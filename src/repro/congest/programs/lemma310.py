"""Distributed execution of the Lemma 3.10 derandomization on the simulator.

This node program runs the color-class conditional-expectation loop as
actual CONGEST message passing on the graph itself (the ``B = B_G`` case
where every node hosts one value variable and one constraint over its
inclusive neighborhood):

* round 0 — every node broadcasts its ``(x, p)`` (transmittable numerators),
  so each node can instantiate the estimator for its own constraint;
* per color class ``i`` (3 rounds):
  announce — participating nodes of color ``i`` declare they are deciding;
  alphas — every neighbor ``u`` of a decider ``v`` sends
  ``(alpha_{u,0}, alpha_{u,1})``, its expected final value conditioned on
  ``v``'s coin (distance-2 coloring guarantees at most one deciding
  neighbor);
  decide — ``v`` picks the smaller sum, fixes its coin, and broadcasts the
  decision so neighbors update their estimator state;
* finally two rounds execute the rounding phases (value exchange,
  constraint check).

The per-node math reuses :class:`repro.derand.estimators.ConstraintEstimator`
verbatim, so the distributed run provably mirrors the centralized engine up
to the paper's alpha quantization; tests compare the two end to end.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

import networkx as nx
import numpy as np

from repro.congest.engine import (
    EngineSpec,
    MessageSpec,
    PendingBroadcast,
    VectorKernel,
    register_kernel,
)
from repro.congest.message import Message
from repro.congest.network import Network
from repro.congest.node import Context, NodeProgram
from repro.congest.simulator import SimulationResult, Simulator
from repro.derand.estimators import ConstraintEstimator, EstimatorConfig
from repro.errors import CongestError
from repro.util.transmittable import TransmittableGrid


class Lemma310Program(NodeProgram):
    """Input per node: dict with keys ``x_num``, ``p_num``, ``c_num``,
    ``color`` (-1 = not participating), ``num_colors``, ``iota``, ``mode``.

    Output per node: ``value`` (final grid numerator after phase two) and,
    for participants, ``coin`` (0/1).
    """

    #: The broadcast-shaped phases (value exchange, coin announcements and
    #: the execution rounds).  The color-class rounds use targeted
    #: ``announce``/``alpha`` sends and are *not* vector-eligible — the
    #: vector engine runs them under FastEngine semantics and takes over at
    #: the execution phase (see :class:`Lemma310ExecutionKernel`).
    message_specs = (
        MessageSpec("xp", "x_num", "p_num"),
        MessageSpec("fixed", "coin"),
        MessageSpec("exec", "value"),
    )

    def __init__(self, input_value: object = None):
        super().__init__(input_value)
        spec = dict(input_value)  # type: ignore[arg-type]
        self.iota: int = spec["iota"]
        self.scale: int = 1 << self.iota
        self.x_num: int = spec["x_num"]
        self.p_num: int = spec["p_num"]
        self.c_num: int = spec["c_num"]
        self.color: int = spec["color"]
        self.num_colors: int = spec["num_colors"]
        self.mode: str = spec["mode"]
        #: neighbor id -> (x_num, p_num); filled in round 1
        self.nbr: Dict[int, Tuple[int, int]] = {}
        self.estimator: ConstraintEstimator | None = None
        self.coin: int | None = None
        self._final_x: int | None = None

    # -- local math ---------------------------------------------------------

    def _f(self, num: int) -> float:
        return num / self.scale

    def _participates(self, x_num: int, p_num: int) -> bool:
        return 0 < x_num and 0 < p_num < self.scale

    def _build_estimator(self) -> None:
        deterministic = 0.0
        free: Dict[int, Tuple[float, float]] = {}
        entries = dict(self.nbr)
        entries[-1] = (self.x_num, self.p_num)  # own variable, id -1 locally
        for node_id, (x_num, p_num) in entries.items():
            if x_num <= 0:
                continue
            if self._participates(x_num, p_num):
                free[node_id] = (self._f(x_num) / self._f(p_num), self._f(p_num))
            else:
                deterministic += self._f(x_num)
        self.estimator = ConstraintEstimator(
            cid=0,
            c=self._f(self.c_num),
            deterministic_sum=deterministic,
            free_coins=free,
            config=EstimatorConfig(mode=self.mode),
        )

    def _own_success_value(self) -> float:
        return self._f(self.x_num) / self._f(self.p_num)

    def _alpha_pair(self, decider: int) -> Tuple[float, float]:
        """(alpha_{u,0}, alpha_{u,1}): this node's expected final value given
        the decider's coin outcome."""
        assert self.estimator is not None
        key = -1 if decider == -2 else decider
        # Expected own phase-one value.
        if self.coin is not None:
            ex = self._own_success_value() if self.coin else 0.0
            ex0 = ex1 = ex
        elif self._participates(self.x_num, self.p_num):
            ex0 = ex1 = self._f(self.x_num)  # p * (x/p)
        else:
            ex0 = ex1 = self._f(self.x_num)
        if key == -1:  # the decider is this node itself
            ex0, ex1 = 0.0, self._own_success_value()
        phi0 = self.estimator.phi_if(key, False)
        phi1 = self.estimator.phi_if(key, True)
        return ex0 + phi0, ex1 + phi1

    # -- protocol ------------------------------------------------------------

    def setup(self, ctx: Context) -> None:
        ctx.broadcast(Message("xp", self.x_num, self.p_num))

    def receive(self, ctx: Context, inbox: Dict[int, Message]) -> None:
        round_no = ctx.round_number
        if round_no == 1:
            for sender, msg in inbox.items():
                if msg.tag != "xp":
                    raise CongestError(f"unexpected {msg.tag} in exchange round")
                self.nbr[sender] = (msg.fields[0], msg.fields[1])
            self._build_estimator()
            self._maybe_announce(ctx, class_index=0)
            return

        # Rounds are grouped in threes per color class, offset by the
        # exchange round: class i occupies rounds 2+3i .. 4+3i.
        class_index = (round_no - 2) // 3
        step = (round_no - 2) % 3

        if class_index >= self.num_colors:
            self._execute_phases(ctx, inbox, round_no)
            return

        if step == 0:
            # "announce" messages arrive; neighbors of a decider quote alphas.
            deciders = [s for s, m in inbox.items() if m.tag == "announce"]
            if len(deciders) > 1:
                raise CongestError(
                    f"node {ctx.node} saw {len(deciders)} simultaneous "
                    "deciders; the coloring is not distance-2"
                )
            if deciders:
                v = deciders[0]
                a0, a1 = self._alpha_pair(v)
                ctx.send(
                    v,
                    Message(
                        "alpha",
                        min(self.scale * 4, round(a0 * self.scale)),
                        min(self.scale * 4, round(a1 * self.scale)),
                    ),
                )
        elif step == 1:
            # Deciders collect alphas and decide.
            if self.color == class_index and self.coin is None and \
                    self._participates(self.x_num, self.p_num):
                total0 = total1 = 0
                for msg in inbox.values():
                    if msg.tag == "alpha":
                        total0 += msg.fields[0]
                        total1 += msg.fields[1]
                own0, own1 = self._alpha_pair(-2)
                total0 += round(own0 * self.scale)
                total1 += round(own1 * self.scale)
                self.coin = 1 if total1 < total0 else 0
                ctx.broadcast(Message("fixed", self.coin))
                assert self.estimator is not None
                self.estimator.fix(-1, bool(self.coin))
        else:
            # Neighbors fold the decision into their estimators; the next
            # class announces.
            for sender, msg in inbox.items():
                if msg.tag == "fixed":
                    assert self.estimator is not None
                    if self.estimator.involves(sender):
                        self.estimator.fix(sender, bool(msg.fields[0]))
            self._maybe_announce(ctx, class_index + 1)

    def _maybe_announce(self, ctx: Context, class_index: int) -> None:
        if class_index >= self.num_colors:
            # Move straight to execution: broadcast the phase-one value.
            self._broadcast_final_x(ctx)
            return
        if (
            self.color == class_index
            and self.coin is None
            and self._participates(self.x_num, self.p_num)
        ):
            ctx.broadcast(Message("announce"))

    def _phase_one_value_num(self) -> int:
        if self.x_num <= 0:
            return 0
        if not self._participates(self.x_num, self.p_num):
            return self.x_num
        if self.coin is None:
            raise CongestError("participating node reached execution undecided")
        if not self.coin:
            return 0
        return min(self.scale, round(self._own_success_value() * self.scale))

    def _broadcast_final_x(self, ctx: Context) -> None:
        if self._final_x is None:
            self._final_x = self._phase_one_value_num()
            ctx.broadcast(Message("exec", self._final_x))

    def _execute_phases(self, ctx: Context, inbox: Dict[int, Message], round_no: int) -> None:
        self._broadcast_final_x(ctx)
        exec_msgs = {s: m for s, m in inbox.items() if m.tag == "exec"}
        if len(exec_msgs) == ctx.degree:
            covered = (self._final_x or 0) + sum(
                m.fields[0] for m in exec_msgs.values()
            )
            final = self.scale if covered < self.c_num else (self._final_x or 0)
            ctx.output("value", final)
            if self.coin is not None:
                ctx.output("coin", self.coin)
            ctx.halt()


@register_kernel(Lemma310Program)
class Lemma310ExecutionKernel(VectorKernel):
    """Vectorized execution phase of the Lemma 3.10 loop.

    The conditional-expectation rounds (announce / alpha / decide per color
    class) involve targeted sends and per-node estimator math, so the
    engine runs them scalar; takeover happens at round ``2 + 3 *
    num_colors``, the first execution round, where every node has queued
    its ``exec`` broadcast of the phase-one value.  From there the
    constraint check is one int64 scatter/gather round.
    """

    #: Not stackable: takeover happens after a per-instance number of
    #: scalar color-class rounds (``2 + 3 * num_colors``), so K instances
    #: cannot enter a shared message plane in lockstep.  Solo runs still
    #: vectorize the execution phase; batched sweeps fall back per cell.
    stackable = False

    @classmethod
    def eligible(cls, network, programs) -> bool:
        num_colors = {p.num_colors for p in programs.values()}
        return len(num_colors) == 1

    @classmethod
    def takeover_round(cls, network, programs) -> int:
        return 2 + 3 * programs[0].num_colors

    def __init__(self, plane, network, programs, contexts):
        super().__init__(plane, network, programs, contexts)
        n = plane.n
        self.final_x = np.fromiter(
            (programs[v]._final_x or 0 for v in range(n)),
            dtype=np.int64,
            count=n,
        )
        self.c_num = np.fromiter(
            (programs[v].c_num for v in range(n)), dtype=np.int64, count=n
        )
        self.scale = np.fromiter(
            (programs[v].scale for v in range(n)), dtype=np.int64, count=n
        )
        self.coin = np.fromiter(
            (
                -1 if programs[v].coin is None else programs[v].coin
                for v in range(n)
            ),
            dtype=np.int64,
            count=n,
        )

    def step(
        self, round_no: int, inbound: Optional[PendingBroadcast]
    ) -> Optional[PendingBroadcast]:
        plane = self.plane
        sent = plane.sent_slots(inbound)
        heard = plane.row_sum(sent)
        received = plane.row_sum(np.where(sent, plane.gather(self.final_x), 0))
        # A node finishes once it heard the phase-one value of its whole
        # neighborhood in one round (all nodes broadcast simultaneously).
        finishing = self.live & (heard == plane.degrees)
        if finishing.any():
            covered = self.final_x + received
            final = np.where(covered < self.c_num, self.scale, self.final_x)
            for v in np.flatnonzero(finishing):
                node = int(v)
                self.output(node, "value", int(final[v]))
                if self.coin[v] >= 0:
                    self.output(node, "coin", int(self.coin[v]))
            self.live &= ~finishing
        return None


def run_lemma310_on_graph(
    graph: nx.Graph | None,
    values: Mapping[int, float],
    p: Mapping[int, float],
    colors: Mapping[int, int],
    mode: str = "auto",
    grid: TransmittableGrid | None = None,
    network: Network | None = None,
    engine: EngineSpec = None,
) -> Tuple[Dict[int, float], Dict[int, int], SimulationResult]:
    """Run the distributed Lemma 3.10 loop for the graph instance ``B_G``.

    ``colors`` must be a distance-2 coloring of the participating nodes
    (0-based).  Returns (final values, coins, simulation metrics).
    ``graph`` may be ``None`` when ``network`` is given (e.g. a
    shared-memory CSR reconstruction).
    """
    network = network or Network.congest(graph)
    n = network.n
    grid = grid or TransmittableGrid.for_n(n)
    num_colors = (max(colors.values()) + 1) if colors else 0
    inputs = {}
    for v in graph.nodes() if graph is not None else range(n):
        inputs[v] = {
            "iota": grid.iota,
            "x_num": grid.to_int(values.get(v, 0.0)),
            "p_num": grid.to_int(p.get(v, 1.0)),
            "c_num": grid.to_int(1.0),
            "color": colors.get(v, -1),
            "num_colors": num_colors,
            "mode": mode,
        }
    sim = Simulator(network, Lemma310Program, inputs=inputs, engine=engine)
    result = sim.run(max_rounds=3 * num_colors + 12)
    final_values = {
        v: grid.from_int(num) for v, num in result.output_map("value").items()
    }
    coins = {v: c for v, c in result.output_map("coin").items()}
    return final_values, coins, result


# -- experiment-surface registration ------------------------------------------

from repro.api.registry import ProgramSpec, register_program  # noqa: E402


def _drive(network: Network, engine: str) -> SimulationResult:
    """Canonical Lemma 3.10 workload: every node a fair coin, ``c = 1``.

    ``x(v) = p(v) = 1/2`` makes every node a participating variable, and a
    distance-2 coloring is derived from the topology itself (via the lazy
    ``network.graph``), so the whole derandomization loop — exchange,
    per-color conditional-expectation rounds, execution phases — runs with
    inputs fully determined by the cell.
    """
    from repro.coloring.distance2 import distance2_coloring

    coloring = distance2_coloring(network.graph)
    n = network.n
    values = {v: 0.5 for v in range(n)}
    p = {v: 0.5 for v in range(n)}
    _vals, _coins, sim = run_lemma310_on_graph(
        None, values, p, coloring.colors, network=network, engine=engine
    )
    return sim


def _summary(sim: SimulationResult) -> Dict[str, object]:
    scale = 1 << TransmittableGrid.for_n(len(sim.outputs)).iota
    values = sim.output_map("value")
    return {
        "joined": sum(1 for num in values.values() if num == scale),
        "decided": len(sim.output_map("coin")),
    }


register_program(
    ProgramSpec(
        name="lemma310",
        description="Lemma 3.10 color-class conditional-expectation loop",
        program=Lemma310Program,
        drive=_drive,
        summarize=_summary,
        # No batch recipe: the execution kernel takes over after a
        # per-instance number of scalar color rounds, so K instances cannot
        # share one plane (its kernel is stackable=False); batched sweeps
        # fall back per cell.
    )
)
