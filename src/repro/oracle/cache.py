"""In-process oracle result cache keyed by topology identity.

Grid cells are deterministic: the suite generator maps ``(family, n,
seed, params)`` to one graph, and every MDS-producing program maps that
graph to one solution size.  A certificate therefore depends only on the
cell's identity and the oracle knobs — so a sweep that revisits a cell
(another engine on the same topology, a re-dispatched fallback record
after a lost pool worker, a repeated experiment) must never pay for a
second ILP/LP solve.  This module is that memo: a process-local cache
whose keys are built from the full topology identity via
:func:`topology_cache_key` and whose hit/miss counters the benchmark
artifacts record (``BENCH_quality.json``'s ``meta.oracle.cache`` block).

The cache stores the :class:`~repro.oracle.certificate.Certificate`
objects themselves (frozen dataclasses), so a repeat key returns the
*identical* object — asserted by the oracle property suite.

**Persistence.** Because a certificate depends only on its key — full
topology identity plus solution size and oracle knobs, nothing about the
host or the run — the memo survives the process: :meth:`OracleCache.dump`
writes every entry to JSON and :meth:`OracleCache.load` merges a dump
back, turning a solved sweep into a warm start for the next one.  This is
the result-cache's *quality twin* in the simulation service
(``ServiceConfig.oracle_cache_path`` loads on start, dumps on stop) and
the ``--oracle-cache PATH`` flag of ``run_experiments.py --certify``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Hashable, Optional, Tuple


def topology_cache_key(
    family: str,
    n: int,
    seed: int,
    params: Optional[Tuple] = None,
) -> Tuple:
    """The full topology identity of one deterministic suite instance.

    ``params`` carries any extra generator parameters beyond the standard
    (family, n, seed) axes — ``None`` for the built-in suite, whose
    builders are fully determined by those three.  Two cells with equal
    keys run on the identical generated graph (the runner's
    ``GridCell.topology_key`` contract), so their oracle bounds coincide.
    """
    return (str(family), int(n), int(seed), params)


def _freeze(value):
    """Rebuild tuple keys from their JSON (list) round-trip form."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    return value


class OracleCache:
    """A counting memo for oracle certificates (process-local)."""

    def __init__(self) -> None:
        self._entries: Dict[Hashable, object] = {}
        self.hits = 0
        self.misses = 0

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: Hashable) -> Optional[object]:
        """The cached value for ``key`` (counting a hit), or ``None``."""
        value = self._entries.get(key)
        if value is not None:
            self.hits += 1
        return value

    def store(self, key: Hashable, value: object) -> object:
        """Memoize ``value`` under ``key`` (counting a miss); returns it."""
        self.misses += 1
        self._entries[key] = value
        return value

    def stats(self) -> Dict[str, int]:
        """Counters for artifact meta: hits, misses, resident entries."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._entries),
        }

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def dump(self, path) -> Path:
        """Persist every certificate entry to ``path`` as JSON.

        Only :class:`~repro.oracle.certificate.Certificate` values are
        written (the cache holds nothing else in practice; the guard
        keeps a foreign value from corrupting the artifact).  Keys are
        the full memo keys — ``(topology_key, size, oracle,
        exact_node_limit, search_budget, time_limit_s)`` — serialized as
        nested JSON arrays, so a dump is exactly a warm start: identical
        cells in a later process hit without re-solving.
        """
        from dataclasses import asdict, is_dataclass

        entries = [
            {"key": list(key), "certificate": asdict(value)}  # type: ignore[arg-type]
            for key, value in self._entries.items()
            if is_dataclass(value) and isinstance(key, tuple)
        ]
        path = Path(path)
        payload = {
            "generator": "repro.oracle.cache",
            "entries": entries,
        }
        path.write_text(json.dumps(payload, indent=2) + "\n")
        return path

    def load(self, path, merge: bool = True) -> int:
        """Merge a :meth:`dump` artifact back in; returns entries loaded.

        Existing in-memory entries win on key collisions (they are
        identical by determinism; keeping them preserves the repeat-key
        identical-object guarantee within this process).  ``merge=False``
        clears first.  Loading counts toward neither hits nor misses —
        the counters keep describing this process's traffic.
        """
        from repro.oracle.certificate import Certificate

        payload = json.loads(Path(path).read_text())
        if payload.get("generator") != "repro.oracle.cache":
            raise ValueError(f"{path} is not an oracle cache dump")
        if not merge:
            self.clear()
        loaded = 0
        for entry in payload.get("entries", ()):
            key = _freeze(entry["key"])
            if key in self._entries:
                continue
            self._entries[key] = Certificate(**entry["certificate"])
            loaded += 1
        return loaded


#: The process-wide cache instance every ``certify`` call shares.
_CACHE = OracleCache()


def oracle_cache() -> OracleCache:
    """The shared in-process oracle cache."""
    return _CACHE


def clear_oracle_cache() -> None:
    """Reset the shared cache (tests and fresh sweeps)."""
    _CACHE.clear()
