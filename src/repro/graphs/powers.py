"""Graph powers.

``G^k`` connects two distinct nodes iff their distance in ``G`` is at most
``k``.  The paper needs ``G^2`` (distance-2 colorings, 2-hop network
decompositions) and ``G^3``-style reachability for the ``G_S`` graph of
Section 4.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Set

import networkx as nx

from repro.errors import GraphError


def ball(
    graph: nx.Graph, center: int, radius: int, within: Set[int] | None = None
) -> Dict[int, int]:
    """BFS ball: map node -> distance for all nodes within ``radius`` of
    ``center``; optionally restricted to the induced subgraph on ``within``.
    """
    if center not in graph:
        raise GraphError(f"center {center} not in graph")
    dist = {center: 0}
    frontier = deque([center])
    while frontier:
        u = frontier.popleft()
        if dist[u] == radius:
            continue
        for w in graph.neighbors(u):
            if within is not None and w not in within:
                continue
            if w not in dist:
                dist[w] = dist[u] + 1
                frontier.append(w)
    return dist


def graph_power(graph: nx.Graph, k: int) -> nx.Graph:
    """``G^k`` on the same node set.

    Runs a depth-``k`` BFS from every node; ``O(n * m_k)`` where ``m_k`` is
    the ball size, fine at simulation scale.
    """
    if k < 1:
        raise GraphError("power k must be >= 1")
    power = nx.Graph()
    power.add_nodes_from(graph.nodes())
    for v in graph.nodes():
        for u, d in ball(graph, v, k).items():
            if u != v and d >= 1:
                power.add_edge(v, u)
    return power


def square_graph(graph: nx.Graph) -> nx.Graph:
    """``G^2`` (used by distance-2 colorings and 2-hop decompositions)."""
    return graph_power(graph, 2)


def nodes_within(graph: nx.Graph, sources: Iterable[int], radius: int) -> Set[int]:
    """All nodes within ``radius`` hops of any source (multi-source BFS)."""
    dist: Dict[int, int] = {}
    frontier: deque[int] = deque()
    for s in sources:
        dist[s] = 0
        frontier.append(s)
    while frontier:
        u = frontier.popleft()
        if dist[u] == radius:
            continue
        for w in graph.neighbors(u):
            if w not in dist:
                dist[w] = dist[u] + 1
                frontier.append(w)
    return set(dist)


def pairwise_distance_at_most(
    graph: nx.Graph, u: int, v: int, limit: int
) -> bool:
    """Whether ``d_G(u, v) <= limit`` (early-exit bidirectional-ish BFS)."""
    if u == v:
        return True
    seen = ball(graph, u, limit)
    return v in seen


def shortest_path_within(
    graph: nx.Graph, u: int, v: int, limit: int
) -> List[int] | None:
    """A shortest path from ``u`` to ``v`` if its length is at most
    ``limit``; ``None`` otherwise.  Ties broken deterministically by BFS
    order over sorted adjacency.
    """
    if u == v:
        return [u]
    parent: Dict[int, int] = {u: -1}
    frontier = deque([(u, 0)])
    while frontier:
        w, d = frontier.popleft()
        if d == limit:
            continue
        for nxt in sorted(graph.neighbors(w)):
            if nxt in parent:
                continue
            parent[nxt] = w
            if nxt == v:
                path = [v]
                while path[-1] != u:
                    path.append(parent[path[-1]])
                return list(reversed(path))
            frontier.append((nxt, d + 1))
    return None
