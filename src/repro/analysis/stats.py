"""Aggregation helpers over experiment rows.

Used by ``scripts/run_experiments.py`` to append a cross-experiment summary
to EXPERIMENTS.md and by tests that assert distribution-level shapes
(e.g. "the median deterministic ratio is within 10% of greedy's").
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence


@dataclass(frozen=True)
class RatioSummary:
    """Distribution summary of a ratio column."""

    count: int
    mean: float
    median: float
    maximum: float
    minimum: float

    def render(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.3f} median={self.median:.3f} "
            f"min={self.minimum:.3f} max={self.maximum:.3f}"
        )


def summarize_ratios(values: Iterable[float]) -> RatioSummary:
    """Summary statistics of a non-empty ratio sequence."""
    data = [float(v) for v in values]
    if not data:
        raise ValueError("summarize_ratios requires at least one value")
    return RatioSummary(
        count=len(data),
        mean=statistics.mean(data),
        median=statistics.median(data),
        maximum=max(data),
        minimum=min(data),
    )


def column(rows: Sequence[Dict[str, object]], key: str) -> List[float]:
    """Extract a numeric column from experiment rows, skipping non-numbers."""
    out: List[float] = []
    for row in rows:
        value = row.get(key)
        if isinstance(value, bool) or value is None:
            continue
        if isinstance(value, (int, float)) and math.isfinite(float(value)):
            out.append(float(value))
    return out


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (the standard ratio aggregate)."""
    data = [float(v) for v in values]
    if not data:
        raise ValueError("geometric_mean requires at least one value")
    if any(v <= 0 for v in data):
        raise ValueError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in data) / len(data))
