"""Distributed locally-maximal greedy dominating set.

The classic CONGEST baseline predating the paper's techniques: in each
phase every node computes its *span* (uncovered nodes in its inclusive
neighborhood) and joins the dominating set iff its ``(span, -id)`` pair is
maximal within its 2-hop neighborhood.  At least the globally best node
always joins, so the process terminates; quality empirically tracks
sequential greedy (E7/E10 report it), though the phase count can be
``Theta(n)`` in the worst case — exactly the behaviour that motivated the
LP-rounding approach the paper derandomizes.

Each phase costs four CONGEST rounds:

1. nodes announce their covered bit (so neighbors can compute spans),
2. nodes announce ``(span, id)``,
3. nodes forward the best pair seen in their inclusive neighborhood
   (making the 2-hop maximum visible),
4. locally-maximal nodes join and announce it.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

import networkx as nx

from repro.congest.engine import EngineSpec
from repro.congest.message import Message
from repro.congest.network import Network
from repro.congest.node import Context, NodeProgram
from repro.congest.simulator import SimulationResult, Simulator


class DistributedGreedyProgram(NodeProgram):
    """Output per node: ``in_ds`` (0/1).  No per-node input needed."""

    def __init__(self, input_value: object = None):
        super().__init__(input_value)
        self.covered = False
        self.in_ds = False
        self.neighbor_covered: Dict[int, bool] = {}
        self.neighbor_pairs: Dict[int, Tuple[int, int]] = {}
        self.best_seen: Tuple[int, int] | None = None

    def _span(self, ctx: Context) -> int:
        span = 0 if self.covered else 1
        span += sum(
            1 for u in ctx.neighbors if not self.neighbor_covered.get(u, False)
        )
        return span

    def _own_pair(self, ctx: Context) -> Tuple[int, int]:
        return (self._span(ctx), -ctx.node)

    def setup(self, ctx: Context) -> None:
        ctx.broadcast(Message("cov", 0))

    def receive(self, ctx: Context, inbox: Dict[int, Message]) -> None:
        step = (ctx.round_number - 1) % 4
        if step == 0:
            # Covered bits arrive; announce span.
            for sender, msg in inbox.items():
                if msg.tag == "cov":
                    self.neighbor_covered[sender] = bool(msg.fields[0])
            span, _ = self._own_pair(ctx)
            if self.covered and span == 0:
                # Nothing left to contribute or learn.
                ctx.output("in_ds", int(self.in_ds))
                ctx.halt()
                return
            ctx.broadcast(Message("span", span, ctx.node))
        elif step == 1:
            # Spans arrive; forward the best pair in the inclusive
            # neighborhood (2-hop max construction).
            self.neighbor_pairs = {}
            for sender, msg in inbox.items():
                if msg.tag == "span":
                    self.neighbor_pairs[sender] = (msg.fields[0], -msg.fields[1])
            best = max(
                list(self.neighbor_pairs.values()) + [self._own_pair(ctx)]
            )
            self.best_seen = best
            ctx.broadcast(Message("best", best[0], -best[1]))
        elif step == 2:
            # 1-hop maxima arrive; decide membership.
            two_hop_best = self.best_seen or self._own_pair(ctx)
            for msg in inbox.values():
                if msg.tag == "best":
                    pair = (msg.fields[0], -msg.fields[1])
                    if pair > two_hop_best:
                        two_hop_best = pair
            mine = self._own_pair(ctx)
            if mine[0] > 0 and mine >= two_hop_best:
                self.in_ds = True
                self.covered = True
            ctx.broadcast(Message("join", int(self.in_ds)))
        else:
            # Joins arrive; update coverage and start the next phase.
            for sender, msg in inbox.items():
                if msg.tag == "join" and msg.fields[0]:
                    self.neighbor_covered[sender] = True
                    self.covered = True
            ctx.broadcast(Message("cov", int(self.covered)))


def run_distributed_greedy(
    graph: nx.Graph,
    network: Network | None = None,
    engine: EngineSpec = None,
) -> Tuple[Set[int], SimulationResult]:
    """Run the program; returns the dominating set and simulator metrics."""
    network = network or Network.congest(graph)
    sim = Simulator(network, DistributedGreedyProgram, engine=engine)
    result = sim.run(max_rounds=8 * network.n + 16)
    ds = {v for v, out in result.outputs.items() if out.get("in_ds")}
    return ds, result
