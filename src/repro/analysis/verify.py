"""Solution checkers.

Every algorithm output in tests and benchmarks passes through these;
"probably dominating" is not a thing this library reports.
"""

from __future__ import annotations

from typing import Iterable, List, Set

import networkx as nx

from repro.errors import InfeasibleSolutionError


def domination_deficit(graph: nx.Graph, candidate: Iterable[int]) -> List[int]:
    """Nodes not dominated by ``candidate`` (empty list = dominating set)."""
    chosen: Set[int] = set(candidate)
    uncovered = []
    for v in graph.nodes():
        if v in chosen:
            continue
        if not any(u in chosen for u in graph.neighbors(v)):
            uncovered.append(v)
    return uncovered


def is_dominating_set(graph: nx.Graph, candidate: Iterable[int]) -> bool:
    """Whether every node is in the set or adjacent to it."""
    return not domination_deficit(graph, candidate)


def require_dominating_set(
    graph: nx.Graph, candidate: Iterable[int], what: str = "solution"
) -> Set[int]:
    """Return the set if it dominates; raise with witnesses otherwise."""
    chosen = set(candidate)
    bad = domination_deficit(graph, chosen)
    if bad:
        raise InfeasibleSolutionError(
            f"{what} is not a dominating set; {len(bad)} uncovered nodes "
            f"(e.g. {bad[:5]})"
        )
    return chosen


def is_connected_dominating_set(graph: nx.Graph, candidate: Iterable[int]) -> bool:
    """Whether ``candidate`` dominates and induces a connected subgraph."""
    chosen = set(candidate)
    if not chosen:
        return graph.number_of_nodes() == 0
    if not is_dominating_set(graph, chosen):
        return False
    induced = graph.subgraph(chosen)
    return nx.is_connected(induced)


def require_connected_dominating_set(
    graph: nx.Graph, candidate: Iterable[int], what: str = "CDS"
) -> Set[int]:
    chosen = set(candidate)
    require_dominating_set(graph, chosen, what)
    induced = graph.subgraph(chosen)
    if chosen and not nx.is_connected(induced):
        parts = list(nx.connected_components(induced))
        raise InfeasibleSolutionError(
            f"{what} induces {len(parts)} components, expected 1"
        )
    return chosen
