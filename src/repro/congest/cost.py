"""Round-cost ledger: separates *simulated* from *charged* rounds.

Some substrates are substituted by centralized-deterministic equivalents
(see DESIGN.md Section 3); their CONGEST round cost is *charged* using the
paper's stated complexity formulas instead of being measured.  The ledger
keeps the two kinds of cost in separate columns so experiment tables can
report them honestly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.util.mathx import ceil_log2, log_star


def gk18_decomposition_rounds(n: int, k: int = 2) -> int:
    """Charged rounds for the [GK18] k-hop network decomposition (Thm 3.2).

    ``k * f(n)`` with ``f(n) = 2^O(sqrt(log n log log n))``; we instantiate the
    O(.) constant as 1, which is the convention the paper itself uses when
    composing round bounds.
    """
    if n < 2:
        return 1
    log_n = math.log2(n)
    f_n = 2.0 ** math.sqrt(log_n * max(1.0, math.log2(max(2.0, log_n))))
    return max(1, int(math.ceil(k * f_n)))


def kmw06_lp_rounds(max_degree: int, eps: float) -> int:
    """Charged rounds for the [KMW06] fractional solver (Lemma 2.1):
    ``O(eps^-4 log^2 Delta)`` with constant 1.
    """
    delta = max(2, max_degree)
    return max(1, int(math.ceil((math.log2(delta) ** 2) / (eps ** 4))))


def bek15_coloring_rounds(num_colors_target: int, initial_colors: int, n: int) -> int:
    """Charged rounds for [BEK15]-style (degree+1)-coloring used by
    Lemma 3.12: ``O(target + log* n)`` to go from ``initial_colors`` (here:
    IDs) down to ``target`` colors.
    """
    return max(1, num_colors_target + log_star(max(2, n)))


def ruling_set_rounds(n: int) -> int:
    """Charged rounds for the [ALGP89, HKN16] ruling set: ``O(log^3 n)``."""
    return max(1, int(math.ceil(math.log2(max(2, n)) ** 3)))


@dataclass
class CostLedger:
    """Accumulates simulated and charged rounds per pipeline stage.

    ``simulated`` entries come from actual :class:`~repro.congest.simulator.
    Simulator` executions; ``charged`` entries apply a formula from the paper
    for a substituted oracle.  ``message_bits`` tracks the largest message
    observed across all simulated stages.
    """

    entries: List[Tuple[str, str, int]] = field(default_factory=list)
    max_message_bits: int = 0

    def charge(self, stage: str, rounds: int) -> None:
        """Record ``rounds`` modelled rounds for ``stage``."""
        self.entries.append((stage, "charged", max(0, int(rounds))))

    def simulate(self, stage: str, rounds: int, max_message_bits: int = 0) -> None:
        """Record ``rounds`` actually simulated rounds for ``stage``."""
        self.entries.append((stage, "simulated", max(0, int(rounds))))
        if max_message_bits > self.max_message_bits:
            self.max_message_bits = max_message_bits

    @property
    def simulated_rounds(self) -> int:
        return sum(r for _, kind, r in self.entries if kind == "simulated")

    @property
    def charged_rounds(self) -> int:
        return sum(r for _, kind, r in self.entries if kind == "charged")

    @property
    def total_rounds(self) -> int:
        return self.simulated_rounds + self.charged_rounds

    def by_stage(self) -> Dict[str, int]:
        """Total rounds per stage name."""
        totals: Dict[str, int] = {}
        for stage, _, rounds in self.entries:
            totals[stage] = totals.get(stage, 0) + rounds
        return totals

    def merge(self, other: "CostLedger", prefix: str = "") -> None:
        """Fold another ledger's entries into this one."""
        for stage, kind, rounds in other.entries:
            self.entries.append((prefix + stage, kind, rounds))
        if other.max_message_bits > self.max_message_bits:
            self.max_message_bits = other.max_message_bits

    def summary(self) -> str:
        lines = [
            f"{stage:<40s} {kind:>10s} {rounds:>10d}"
            for stage, kind, rounds in self.entries
        ]
        lines.append(
            f"{'TOTAL':<40s} {'sim+chg':>10s} "
            f"{self.simulated_rounds:>5d}+{self.charged_rounds:<5d}"
        )
        return "\n".join(lines)


def bits_for_id(n: int) -> int:
    """Bits needed for a node identifier in an ``n``-node network."""
    return max(1, ceil_log2(max(2, n)))
