"""Benchmark E1: Theorem 1.1 decomposition-route MDS quality table.

Regenerates the Theorem 1.1 decomposition-route MDS quality (see DESIGN.md Section 2) and certifies
every guarantee check recorded by the experiment.
"""

from benchmarks.conftest import run_experiment
from repro.experiments import e01_theorem11


def bench_e01_theorem11(benchmark):
    run_experiment(benchmark, e01_theorem11.run)
