"""Synchronous round-by-round execution engine.

The simulator owns the network, one program instance per node, and the metric
counters.  Each round it (1) collects every node's outbox, (2) validates
message sizes against the CONGEST budget, (3) delivers all messages
simultaneously, and (4) invokes ``receive`` on every non-halted node.  This
is the textbook synchronous model of Peleg [Pel00] that the paper assumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Type

from repro.congest.message import Message
from repro.congest.network import Network
from repro.congest.node import Context, NodeProgram
from repro.errors import MessageTooLargeError, SimulationLimitError


@dataclass
class SimulationResult:
    """Outcome and metrics of one simulated execution."""

    rounds: int
    total_messages: int
    total_bits: int
    max_message_bits: int
    outputs: Dict[int, Dict[str, object]]
    all_halted: bool
    #: messages sent per round, for congestion profiles
    messages_per_round: list = field(default_factory=list)

    def output_map(self, key: str) -> Dict[int, object]:
        """Collect output ``key`` from each node that produced it."""
        return {
            v: outs[key] for v, outs in self.outputs.items() if key in outs
        }


class Simulator:
    """Runs one :class:`NodeProgram` class on every node of a network.

    Parameters
    ----------
    network:
        The communication topology plus bit budget.
    program_factory:
        Called as ``program_factory(input_value)`` per node; usually just the
        program class itself.
    inputs:
        Optional mapping node -> per-node input object.
    """

    def __init__(
        self,
        network: Network,
        program_factory: Callable[[object], NodeProgram] | Type[NodeProgram],
        inputs: Mapping[int, object] | None = None,
    ):
        self.network = network
        inputs = inputs or {}
        self._contexts: Dict[int, Context] = {}
        self._programs: Dict[int, NodeProgram] = {}
        for v in range(network.n):
            ctx = Context(v, network.neighbors(v), network.n)
            self._contexts[v] = ctx
            self._programs[v] = program_factory(inputs.get(v))

    def run(self, max_rounds: int = 10_000) -> SimulationResult:
        """Execute until every node halts or ``max_rounds`` is exceeded."""
        budget = self.network.bit_budget
        total_messages = 0
        total_bits = 0
        max_bits = 0
        messages_per_round: list[int] = []

        for v, program in self._programs.items():
            ctx = self._contexts[v]
            ctx.round_number = 0
            program.setup(ctx)

        rounds = 0
        while rounds < max_rounds:
            # Collect and validate this round's traffic.
            in_transit: Dict[int, Dict[int, Message]] = {}
            round_messages = 0
            for v, ctx in self._contexts.items():
                for to, msg in ctx._drain_outbox().items():
                    if budget is not None and msg.bits > budget:
                        raise MessageTooLargeError(v, to, msg.bits, budget)
                    in_transit.setdefault(to, {})[v] = msg
                    round_messages += 1
                    total_bits += msg.bits
                    if msg.bits > max_bits:
                        max_bits = msg.bits

            live = [v for v, ctx in self._contexts.items() if not ctx._halted]
            if not live and not in_transit:
                break
            if not live:
                # Messages addressed to halted nodes are dropped; nothing
                # can change any more.
                break

            rounds += 1
            total_messages += round_messages
            messages_per_round.append(round_messages)

            progressed = False
            for v in live:
                ctx = self._contexts[v]
                ctx.round_number = rounds
                inbox = in_transit.get(v, {})
                self._programs[v].receive(ctx, inbox)
                progressed = True
            if not progressed:  # pragma: no cover - defensive
                break

            if all(ctx._halted for ctx in self._contexts.values()):
                break
        else:
            raise SimulationLimitError(
                f"simulation did not terminate within {max_rounds} rounds"
            )

        return SimulationResult(
            rounds=rounds,
            total_messages=total_messages,
            total_bits=total_bits,
            max_message_bits=max_bits,
            outputs={v: dict(ctx._outputs) for v, ctx in self._contexts.items()},
            all_halted=all(ctx._halted for ctx in self._contexts.values()),
            messages_per_round=messages_per_round,
        )
