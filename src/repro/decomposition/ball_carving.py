"""Deterministic ball-carving network decomposition.

Construction (the [ALGP89]-style doubling argument):

1. *Carving.*  Repeatedly take the smallest-ID unclustered node and grow a
   BFS ball inside the unclustered part of the graph, adding the next BFS
   layer as long as it more than doubles the ball.  The doubling rule stops
   within ``log2 n`` layers, so every cluster is connected with BFS-tree
   depth at most ``log2 n``.
2. *Coloring.*  Two clusters conflict when some pair of their members is at
   distance <= k in the *full* graph; greedy coloring of the conflict graph
   in cluster-ID order yields colors with exact ``k``-separation by
   construction.

This substitutes the [GK18] CONGEST construction (see DESIGN.md Section 3):
the (d, c) quality is measured (experiment E9) instead of bounded by
``2^O(sqrt(log n log log n))``, and the CONGEST cost of the original is
charged separately.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Set

import networkx as nx

from repro.decomposition.cluster_graph import (
    Cluster,
    NetworkDecomposition,
)
from repro.errors import DecompositionError
from repro.graphs.normalize import require_normalized
from repro.graphs.powers import nodes_within


def _grow_ball(graph: nx.Graph, center: int, available: Set[int]) -> Set[int]:
    """BFS ball around ``center`` in ``G[available]`` under the doubling
    rule: include the next layer only while it more than doubles the ball."""
    ball = {center}
    frontier = {center}
    while True:
        next_layer: Set[int] = set()
        for v in frontier:
            for u in graph.neighbors(v):
                if u in available and u not in ball and u not in next_layer:
                    next_layer.add(u)
        if not next_layer:
            break
        if len(ball) + len(next_layer) <= 2 * len(ball):
            break
        ball |= next_layer
        frontier = next_layer
    return ball


def _bfs_tree(graph: nx.Graph, root: int, members: Set[int]) -> tuple[Dict[int, int], int]:
    """Rooted BFS tree of ``G[members]``; returns (parent map, depth)."""
    parent = {root: -1}
    depth = 0
    frontier = deque([(root, 0)])
    while frontier:
        v, d = frontier.popleft()
        depth = max(depth, d)
        for u in sorted(graph.neighbors(v)):
            if u in members and u not in parent:
                parent[u] = v
                frontier.append((u, d + 1))
    if set(parent) != members:
        raise DecompositionError(
            f"cluster around {root} is not connected inside its members"
        )
    return parent, depth


def carve_clusters(graph: nx.Graph) -> List[Cluster]:
    """Partition the graph into connected low-depth clusters (uncolored)."""
    require_normalized(graph)
    available: Set[int] = set(graph.nodes())
    clusters: List[Cluster] = []
    next_id = 0
    while available:
        center = min(available)
        members = _grow_ball(graph, center, available)
        parent, depth = _bfs_tree(graph, center, members)
        clusters.append(
            Cluster(
                id=next_id,
                members=frozenset(members),
                leader=center,
                parent=parent,
                depth=depth,
            )
        )
        available -= members
        next_id += 1
    return clusters


def color_clusters(
    graph: nx.Graph, clusters: List[Cluster], separation_k: int
) -> List[Cluster]:
    """Greedy conflict coloring achieving pairwise ``k``-separation."""
    # Conflict relation: cluster A conflicts with B iff B has a member within
    # distance k of A.
    member_cluster: Dict[int, int] = {}
    for cluster in clusters:
        for v in cluster.members:
            member_cluster[v] = cluster.id

    conflicts: Dict[int, Set[int]] = {c.id: set() for c in clusters}
    for cluster in clusters:
        reach = nodes_within(graph, cluster.members, separation_k)
        for v in reach:
            other = member_cluster[v]
            if other != cluster.id:
                conflicts[cluster.id].add(other)
                conflicts[other].add(cluster.id)

    colors: Dict[int, int] = {}
    for cluster in sorted(clusters, key=lambda c: c.id):
        taken = {colors[o] for o in conflicts[cluster.id] if o in colors}
        color = 0
        while color in taken:
            color += 1
        colors[cluster.id] = color

    return [
        Cluster(
            id=c.id,
            members=c.members,
            leader=c.leader,
            parent=c.parent,
            depth=c.depth,
            color=colors[c.id],
        )
        for c in clusters
    ]


def carve_decomposition(graph: nx.Graph, separation_k: int = 2) -> NetworkDecomposition:
    """Full pipeline: carve, build trees, color with ``k``-separation.

    The default ``separation_k = 2`` produces the 2-hop decomposition
    Lemma 3.4 consumes (same-color clusters at distance >= 3, so their
    inclusive cluster neighborhoods ``N(C)`` are disjoint).
    """
    clusters = color_clusters(graph, carve_clusters(graph), separation_k)
    return NetworkDecomposition(
        graph=graph, clusters=clusters, separation_k=separation_k
    )
