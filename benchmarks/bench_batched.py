"""Micro-benchmark: stacked multi-instance plane vs the per-cell path.

The batched tentpole bar, asserted on every run: executing a 50-seed
E1-style sweep (one suite cell, many seeded topologies, the simulated
greedy MDS program on the vector engine) as **one stacked message plane**
must be **>= 5x** faster than running the same cells one at a time through
the per-cell vector path, measured on simulation wall only (topology
generation is shared and identical between the strategies).  One observed
run on a dev container: 0.104s per-cell vs 0.018s stacked (~5.9x).

Result parity is asserted *before* the speedup — every per-seed metrics
block must be identical between the strategies — so a correctness
regression can never hide behind a timing win.  A second target times the
color-reduction sweep (lockstep termination, n rounds for every seed) for
the same bar at a lower margin, a third exercises ``batch_size``
chunking, and a fourth is the **ragged bar**: a mixed-size 50-instance
sweep (sizes spanning an order of magnitude) stacked as one ragged plane
must be ≥ 3x faster than its per-cell path — the margin is lower than
the uniform bar because the stacked loop runs as many rounds as the
*largest* instance needs while per-cell work shrinks with size.  A fifth
target is the **lemma310 bar**: the canonical uniform Lemma 3.10 sweep
stacks through the vectorized color-class kernel (round-1 takeover, the
alpha/decide/fold protocol running in-plane) and must clear ≥ 3x — the
workload that was batch-ineligible before the two-speed kernel landed.

Run with::

    pytest benchmarks/bench_batched.py -o python_files='bench_*.py' \
        -o python_functions='bench_*' -s
"""

from __future__ import annotations

from repro.api import Experiment
from repro.experiments.harness import (
    comparable_records as _comparable,
    seed_sweep_cells,
    simulation_wall as _sim_wall,
)
from repro.experiments.runner import run_grid

#: The tentpole bar: stacked vs per-cell on the 50-seed greedy sweep.
BATCHED_SPEEDUP_BAR = 5.0
#: Color reduction stacks perfectly (lockstep rounds) but runs fewer
#: numpy ops per round, so the dispatch-overhead win is smaller.
COLOR_SPEEDUP_BAR = 2.0
#: The ragged bar: a mixed-size 50-instance sweep stacked as one ragged
#: plane vs per-cell (the stacked loop pays the largest instance's round
#: count, so the margin is below the uniform bar).
RAGGED_SPEEDUP_BAR = 3.0
#: Mixed sizes spanning an order of magnitude; 10 seeds each = 50 cells.
RAGGED_SIZES = (20, 40, 60, 100, 150)
#: Lemma 3.10 on the canonical uniform workload: the color-class rounds
#: run in-plane (round-1 takeover) but each round does more numpy work
#: than greedy's, so the bar sits at the ragged margin, not the tentpole.
LEMMA310_SPEEDUP_BAR = 3.0

SWEEP_SEEDS = list(range(50))


def _shootout(cells, batch_size: int = 0):
    """Run one cell set under both strategies; return the best-of-3 walls."""
    best: dict = {}
    for _ in range(3):  # best-of-3: measure the strategy, not the scheduler
        for strategy in ("cell", "batch"):
            records = run_grid(cells, strategy=strategy, batch_size=batch_size)
            wall = _sim_wall(records)
            if strategy not in best or wall < best[strategy][1]:
                best[strategy] = (records, wall)
    return best


def _sweep(program: str, family: str, n: int, batch_size: int = 0):
    """Uniform seed sweep under both strategies (the PR 3 workloads)."""
    cells = seed_sweep_cells(program=program, family=family, n=n, seeds=SWEEP_SEEDS)
    return _shootout(cells, batch_size=batch_size)


def bench_batched_greedy_50_seeds(benchmark):
    """The tentpole: 50-seed greedy sweep, stacked >= 5x per-cell."""
    best = _sweep("greedy", "gnp", 60)
    cell_records, cell_wall = best["cell"]
    batch_records, batch_wall = best["batch"]
    assert _comparable(cell_records) == _comparable(batch_records), (
        "stacked records diverged from per-cell records"
    )
    assert all(rec["ok"] for rec in batch_records)
    assert sum(1 for rec in batch_records if "batch" in rec) == len(SWEEP_SEEDS)
    speedup = cell_wall / batch_wall
    print(
        f"\n50-seed greedy gnp-60: cell {cell_wall * 1000:.1f}ms, "
        f"batch {batch_wall * 1000:.1f}ms, speedup {speedup:.1f}x"
    )
    assert speedup >= BATCHED_SPEEDUP_BAR, (
        f"stacked plane only {speedup:.2f}x faster, bar is {BATCHED_SPEEDUP_BAR}x"
    )
    benchmark.pedantic(
        lambda: run_grid(
            seed_sweep_cells(program="greedy", family="gnp", n=60, seeds=SWEEP_SEEDS),
            strategy="batch",
        ),
        iterations=1,
        rounds=1,
        warmup_rounds=0,
    )


def bench_batched_color_reduction_50_seeds(benchmark):
    """Color reduction: lockstep stacked termination, parity + >= 2x."""
    best = _sweep("color-reduction", "tree", 80)
    cell_records, cell_wall = best["cell"]
    batch_records, batch_wall = best["batch"]
    assert _comparable(cell_records) == _comparable(batch_records)
    speedup = cell_wall / batch_wall
    print(
        f"\n50-seed color-reduction tree-80: cell {cell_wall * 1000:.1f}ms, "
        f"batch {batch_wall * 1000:.1f}ms, speedup {speedup:.1f}x"
    )
    assert speedup >= COLOR_SPEEDUP_BAR
    benchmark.pedantic(
        lambda: run_grid(
            seed_sweep_cells(
                program="color-reduction", family="tree", n=80, seeds=SWEEP_SEEDS
            ),
            strategy="batch",
        ),
        iterations=1,
        rounds=1,
        warmup_rounds=0,
    )


def bench_batched_chunked(benchmark):
    """batch_size chunking: identical records, still faster than per-cell."""
    best = _sweep("greedy", "tree", 80, batch_size=10)
    cell_records, cell_wall = best["cell"]
    batch_records, batch_wall = best["batch"]
    assert _comparable(cell_records) == _comparable(batch_records)
    assert all(rec.get("batch", {}).get("k", 0) <= 10 for rec in batch_records)
    speedup = cell_wall / batch_wall
    print(
        f"\n50-seed greedy tree-80 (batch_size=10): cell "
        f"{cell_wall * 1000:.1f}ms, batch {batch_wall * 1000:.1f}ms, "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= 2.0
    benchmark.pedantic(
        lambda: run_grid(
            seed_sweep_cells(program="greedy", family="tree", n=80, seeds=SWEEP_SEEDS),
            strategy="batch",
            batch_size=10,
        ),
        iterations=1,
        rounds=1,
        warmup_rounds=0,
    )


def bench_batched_lemma310_50_seeds(benchmark):
    """Lemma 3.10: vectorized color-class stacking, parity + >= 3x.

    Every instance is canonical-uniform (``x = p = 1/2``, mode auto), so
    the stacked kernel takes over at round 1 and runs the full
    announce/alpha/decide/fold protocol on the plane — no scalar
    prologue.  Parity is asserted record for record before the speedup,
    so the derandomized coin flips, traffic totals, and outputs are
    pinned bit for bit against the per-cell vector path.
    """
    best = _sweep("lemma310", "gnp", 60)
    cell_records, cell_wall = best["cell"]
    batch_records, batch_wall = best["batch"]
    assert _comparable(cell_records) == _comparable(batch_records), (
        "stacked lemma310 records diverged from per-cell records"
    )
    assert all(rec["ok"] for rec in batch_records)
    assert sum(1 for rec in batch_records if "batch" in rec) == len(SWEEP_SEEDS)
    speedup = cell_wall / batch_wall
    print(
        f"\n50-seed lemma310 gnp-60: cell {cell_wall * 1000:.1f}ms, "
        f"batch {batch_wall * 1000:.1f}ms, speedup {speedup:.1f}x"
    )
    assert speedup >= LEMMA310_SPEEDUP_BAR, (
        f"lemma310 plane only {speedup:.2f}x faster, bar is "
        f"{LEMMA310_SPEEDUP_BAR}x"
    )
    benchmark.pedantic(
        lambda: run_grid(
            seed_sweep_cells(
                program="lemma310", family="gnp", n=60, seeds=SWEEP_SEEDS
            ),
            strategy="batch",
        ),
        iterations=1,
        rounds=1,
        warmup_rounds=0,
    )


def _ragged_cells():
    return (
        Experiment("greedy")
        .on("gnp")
        .sizes(*RAGGED_SIZES)
        .engine("vector")
        .seeds(len(SWEEP_SEEDS) // len(RAGGED_SIZES))
        .cells()
    )


def bench_ragged_mixed_size_50_instances(benchmark):
    """The ragged bar: 50 mixed-size instances as one plane, >= 3x per-cell.

    Every instance of the group is a different (size, seed) topology —
    n in {20..150} — so this is the workload uniform stacking could never
    batch; parity is asserted record for record against the per-cell
    vector path before the speedup is measured.
    """
    cells = _ragged_cells()
    assert len(cells) == 50
    best = _shootout(cells)
    cell_records, cell_wall = best["cell"]
    batch_records, batch_wall = best["batch"]
    assert _comparable(cell_records) == _comparable(batch_records), (
        "ragged stacked records diverged from per-cell records"
    )
    assert all(rec["ok"] for rec in batch_records)
    # The whole mixed-size group stacks: one ragged plane of width 50.
    assert sum(1 for rec in batch_records if "batch" in rec) == len(cells)
    assert {rec["batch"]["k"] for rec in batch_records if "batch" in rec} == {50}
    speedup = cell_wall / batch_wall
    print(
        f"\n50-instance ragged greedy gnp (n in {list(RAGGED_SIZES)}): cell "
        f"{cell_wall * 1000:.1f}ms, batch {batch_wall * 1000:.1f}ms, "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= RAGGED_SPEEDUP_BAR, (
        f"ragged plane only {speedup:.2f}x faster, bar is {RAGGED_SPEEDUP_BAR}x"
    )
    benchmark.pedantic(
        lambda: run_grid(_ragged_cells(), strategy="batch"),
        iterations=1,
        rounds=1,
        warmup_rounds=0,
    )
