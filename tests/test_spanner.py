"""Baswana-Sen spanner: sparsity, connectivity, derandomized sampling."""

import math
import random

import networkx as nx
import pytest

from repro.errors import GraphError
from repro.graphs.generators import gnp_graph, grid_graph, ring_graph
from repro.graphs.normalize import normalize_graph
from repro.spanner.baswana_sen import (
    baswana_sen_spanner,
    derandomized_sampler,
    random_sampler,
    spanner_subgraph,
)


class TestRandomizedSpanner:
    @pytest.mark.parametrize("seed", range(4))
    def test_connected_preserved(self, medium_gnp, seed):
        result = baswana_sen_spanner(
            medium_gnp, random_sampler(random.Random(seed))
        )
        sub = spanner_subgraph(medium_gnp, result)
        assert nx.is_connected(sub)

    def test_edges_subset_of_graph(self, medium_gnp):
        result = baswana_sen_spanner(medium_gnp, random_sampler(random.Random(1)))
        for u, v in result.edges:
            assert medium_gnp.has_edge(u, v)

    def test_sparsity_bound(self):
        g = gnp_graph(120, 0.25, seed=2)  # dense input
        result = baswana_sen_spanner(g, random_sampler(random.Random(3)))
        n = g.number_of_nodes()
        assert result.num_edges <= 3 * n * math.log2(n)
        assert result.num_edges < g.number_of_edges()

    def test_tree_input_returns_tree(self, small_tree):
        result = baswana_sen_spanner(small_tree, random_sampler(random.Random(0)))
        # A tree has no redundancy: the spanner must keep it connected with
        # exactly its edges.
        assert result.num_edges == small_tree.number_of_edges()

    def test_cluster_counts_monotone(self, medium_gnp):
        result = baswana_sen_spanner(medium_gnp, random_sampler(random.Random(5)))
        for a, b in zip(result.cluster_counts, result.cluster_counts[1:]):
            assert b <= a


class TestDerandomizedSpanner:
    def test_deterministic(self, medium_gnp):
        a = baswana_sen_spanner(medium_gnp, derandomized_sampler())
        b = baswana_sen_spanner(medium_gnp, derandomized_sampler())
        assert a.edges == b.edges

    def test_connected_preserved(self, zoo_graph):
        if not nx.is_connected(zoo_graph):
            return
        result = baswana_sen_spanner(zoo_graph, derandomized_sampler())
        assert nx.is_connected(spanner_subgraph(zoo_graph, result))

    def test_competitive_with_randomized(self):
        g = gnp_graph(100, 0.15, seed=7)
        det = baswana_sen_spanner(g, derandomized_sampler())
        rand_sizes = [
            baswana_sen_spanner(g, random_sampler(random.Random(s))).num_edges
            for s in range(5)
        ]
        assert det.num_edges <= 2 * min(rand_sizes) + 10

    def test_forced_balance_rare(self, medium_gnp):
        result = baswana_sen_spanner(medium_gnp, derandomized_sampler())
        assert result.forced_balance_events <= medium_gnp.number_of_nodes()

    def test_ring(self):
        g = ring_graph(30)
        result = baswana_sen_spanner(g, derandomized_sampler())
        assert nx.is_connected(spanner_subgraph(g, result))

    def test_grid_sparsifies_nothing_much(self):
        g = grid_graph(6, 6)
        result = baswana_sen_spanner(g, derandomized_sampler())
        sub = spanner_subgraph(g, result)
        assert nx.is_connected(sub)
        assert result.num_edges <= g.number_of_edges()


class TestSpannerAPI:
    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            baswana_sen_spanner(nx.Graph(), derandomized_sampler())

    def test_singleton(self):
        g = nx.Graph()
        g.add_node(0)
        result = baswana_sen_spanner(normalize_graph(g), derandomized_sampler())
        assert result.num_edges == 0

    def test_explicit_phases(self, small_gnp):
        result = baswana_sen_spanner(small_gnp, derandomized_sampler(), phases=2)
        assert result.phases == 2

    def test_subgraph_rejects_foreign_edges(self, path5):
        from repro.spanner.baswana_sen import SpannerResult

        fake = SpannerResult(
            edges={(0, 4)}, phases=1, cluster_counts=[], sampled_counts=[]
        )
        with pytest.raises(GraphError):
            spanner_subgraph(path5, fake)

    def test_stretch_sampled(self):
        """Spanner distances stay within a polylog factor on sampled pairs."""
        g = gnp_graph(80, 0.2, seed=9)
        result = baswana_sen_spanner(g, derandomized_sampler())
        sub = spanner_subgraph(g, result)
        rng = random.Random(1)
        nodes = sorted(g.nodes())
        n = g.number_of_nodes()
        cap = 4 * math.log2(n)
        for _ in range(30):
            s, t = rng.sample(nodes, 2)
            d_g = nx.shortest_path_length(g, s, t)
            d_s = nx.shortest_path_length(sub, s, t)
            assert d_s <= cap * d_g + 2
