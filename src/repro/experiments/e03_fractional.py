"""E3 — Lemma 2.1 / [KMW06] substrate: fractional dominating sets.

Compares the two Part-I providers on every suite instance: the LP oracle
(exact optimum) and the distributed water-filling solver (measured rounds).
Checks: both outputs feasible; raised solutions reach the
``eps/(2 Delta~)`` fractionality contract; the raising step costs at most
a ``(1 + eps)`` factor over the provider's size plus the paper's additive
term.
"""

from __future__ import annotations

from repro.domsets.cfds import CFDS
from repro.experiments.harness import ExperimentReport, standard_suite
from repro.fractional.distributed import distributed_fractional_mds
from repro.fractional.lp import lp_fractional_mds
from repro.fractional.raising import kmw06_initial_fds

COLUMNS = [
    "graph", "n", "Delta", "lp_opt", "dist_size", "dist_ratio", "dist_rounds",
    "raised_size", "raise_factor", "fractionality", "lambda",
]


def run(fast: bool = True, eps: float = 0.5) -> ExperimentReport:
    report = ExperimentReport(
        experiment="E3",
        claim="Lemma 2.1: (1+eps)-approx fractional DS, eps/(2D~)-fractional",
        columns=COLUMNS,
    )
    for inst in standard_suite(fast):
        graph = inst.graph
        delta_tilde = inst.max_degree + 1
        lp = lp_fractional_mds(graph)
        dist = distributed_fractional_mds(graph, gamma=min(0.5, eps))
        dist_cfds = CFDS.fds(graph, dist.values)
        initial = kmw06_initial_fds(graph, eps=eps, provider="lp")

        lam = eps / (2.0 * delta_tilde)
        report.add_row(
            graph=inst.name,
            n=inst.n,
            Delta=inst.max_degree,
            lp_opt=round(lp.optimum, 3),
            dist_size=round(dist.size, 3),
            dist_ratio=round(dist.size / max(lp.optimum, 1e-9), 3),
            dist_rounds=dist.rounds,
            raised_size=round(initial.raised_size, 3),
            raise_factor=round(initial.raised_size / max(lp.optimum, 1e-9), 3),
            fractionality=f"{initial.fds.fractionality:.2e}",
            **{"lambda": f"{lam:.2e}"},
        )
        report.check("distributed_feasible", dist_cfds.is_feasible())
        report.check("raised_feasible", initial.fds.is_feasible())
        report.check(
            "fractionality_contract",
            initial.fds.fractionality >= lam - 1e-12,
        )
        # Raising adds at most n * lambda <= (eps/2) * (n / Delta~) and
        # n/Delta~ <= LP_OPT, so the raised size stays within (1+eps) of LP.
        report.check(
            "raise_within_eps",
            initial.raised_size
            <= (1.0 + eps) * lp.optimum + 1e-6 + inst.n * lam,
        )
    return report
