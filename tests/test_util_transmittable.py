"""Transmittable fixed-point grid (paper Section 2)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.util.transmittable import (
    TransmittableGrid,
    iota_for,
    quantize_down,
    quantize_up,
)


class TestIotaFor:
    def test_matches_paper_definition(self):
        # iota is the smallest integer with 2^-iota <= 1/n^10.
        for n in (2, 3, 10, 100):
            iota = iota_for(n)
            assert 2.0 ** (-iota) <= 1.0 / n ** 10
            assert 2.0 ** (-(iota - 1)) > 1.0 / n ** 10

    def test_tiny_n(self):
        assert iota_for(1) == 1
        assert iota_for(0) == 1


class TestQuantize:
    def test_up_is_ceiling(self):
        assert quantize_up(0.3, 2) == 0.5
        assert quantize_up(0.25, 2) == 0.25
        assert quantize_up(0.26, 2) == 0.5

    def test_down_is_floor(self):
        assert quantize_down(0.3, 2) == 0.25
        assert quantize_down(0.25, 2) == 0.25

    def test_zero_and_negative(self):
        assert quantize_up(0.0, 4) == 0.0
        assert quantize_up(-0.5, 4) == 0.0
        assert quantize_down(-0.1, 4) == 0.0

    def test_capped_at_one(self):
        assert quantize_up(0.999999, 3) == 1.0

    @given(st.floats(min_value=0.0, max_value=1.0), st.integers(2, 40))
    def test_up_dominates_value(self, x, iota):
        assert quantize_up(x, iota) >= x - 1e-12

    @given(st.floats(min_value=0.0, max_value=1.0), st.integers(2, 40))
    def test_down_below_value(self, x, iota):
        assert quantize_down(x, iota) <= x + 1e-12

    @given(st.floats(min_value=0.0, max_value=1.0), st.integers(2, 40))
    def test_error_bounded_by_step(self, x, iota):
        step = 2.0 ** (-iota)
        assert quantize_up(x, iota) - x <= step + 1e-12
        assert x - quantize_down(x, iota) <= step + 1e-12


class TestGrid:
    def test_for_n_caps_iota(self):
        grid = TransmittableGrid.for_n(10 ** 6)
        assert grid.iota <= 48

    def test_step_and_bits(self):
        grid = TransmittableGrid(iota=10)
        assert grid.step == pytest.approx(2.0 ** -10)
        assert grid.bits == 10

    def test_round_trip_int(self):
        grid = TransmittableGrid(iota=16)
        for x in (0.0, 0.25, 0.5, 1.0, 0.125):
            assert grid.from_int(grid.to_int(x)) == pytest.approx(x)

    def test_is_on_grid(self):
        grid = TransmittableGrid(iota=4)
        assert grid.is_on_grid(0.25)
        assert grid.is_on_grid(0.0625)
        assert not grid.is_on_grid(0.3)
        assert not grid.is_on_grid(1.5)
        assert not grid.is_on_grid(-0.25)

    def test_up_lands_on_grid(self):
        grid = TransmittableGrid(iota=7)
        for x in (0.1, 0.33, math.pi / 4, 0.999):
            assert grid.is_on_grid(grid.up(x))
