"""Simulator facade over the pluggable engine architecture.

The round loop itself lives in :mod:`repro.congest.engine` — the textbook
synchronous model of Peleg [Pel00]: per round the engine (1) collects every
node's outbox, (2) validates message sizes against the CONGEST budget,
(3) delivers all messages simultaneously, and (4) invokes ``receive`` on
every non-halted node.  :class:`Simulator` keeps the historical entry point:
it builds one program instance and one :class:`~repro.congest.node.Context`
per node and delegates execution to an engine — the flat-array
:class:`~repro.congest.engine.fast.FastEngine` by default, or any engine
selected via the ``engine`` argument / :func:`repro.congest.engine.
set_default_engine` / the ``REPRO_ENGINE`` environment variable.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Type

from repro.congest.engine import EngineSpec, SimulationResult, resolve_engine
from repro.congest.network import Network
from repro.congest.node import Context, NodeProgram

__all__ = ["SimulationResult", "Simulator"]


class Simulator:
    """Runs one :class:`NodeProgram` class on every node of a network.

    Parameters
    ----------
    network:
        The communication topology plus bit budget.
    program_factory:
        Called as ``program_factory(input_value)`` per node; usually just the
        program class itself.
    inputs:
        Optional mapping node -> per-node input object.
    engine:
        Round-loop implementation: an engine name (``"fast"``,
        ``"reference"``), an :class:`~repro.congest.engine.base.Engine`
        instance or class, or ``None`` for the process default.
    """

    def __init__(
        self,
        network: Network,
        program_factory: Callable[[object], NodeProgram] | Type[NodeProgram],
        inputs: Mapping[int, object] | None = None,
        engine: EngineSpec = None,
    ):
        self.network = network
        self.engine = resolve_engine(engine)
        inputs = inputs or {}
        self._contexts: Dict[int, Context] = {}
        self._programs: Dict[int, NodeProgram] = {}
        for v in range(network.n):
            ctx = Context(v, network.neighbors(v), network.n)
            self._contexts[v] = ctx
            self._programs[v] = program_factory(inputs.get(v))

    def run(self, max_rounds: int = 10_000) -> SimulationResult:
        """Execute until every node halts or ``max_rounds`` is exceeded."""
        return self.engine.run(
            self.network, self._programs, self._contexts, max_rounds
        )
