"""Per-round congestion histograms surfaced by the E10 harness report."""

from __future__ import annotations

import pytest

from repro.congest.message import message_bits
from repro.congest.programs.greedy_mds import run_distributed_greedy
from repro.congest.programs.rounding_exec import run_rounding_execution
from repro.experiments import e10_congest
from repro.experiments.harness import congestion_histogram, render_congestion
from repro.graphs.generators import star_graph


class TestHistogramMath:
    def test_known_series(self):
        rows = congestion_histogram([100, 150, 260, 399], buckets=3)
        assert [r["rounds"] for r in rows] == [2, 1, 1]
        assert rows[0] == {"lo": 100, "hi": 199, "rounds": 2}
        assert rows[-1]["hi"] == 399

    def test_counts_sum_to_rounds(self):
        series = [7, 7, 7, 9000, 12, 4000, 4001]
        rows = congestion_histogram(series, buckets=4)
        assert sum(r["rounds"] for r in rows) == len(series)

    def test_single_round_series(self):
        assert congestion_histogram([42]) == [{"lo": 42, "hi": 42, "rounds": 1}]

    def test_empty_series(self):
        assert congestion_histogram([]) == []
        assert render_congestion([]) == "-"

    def test_bad_bucket_count(self):
        with pytest.raises(ValueError):
            congestion_histogram([1, 2], buckets=0)

    def test_render_omits_empty_buckets(self):
        text = render_congestion([10, 10, 10, 1000], buckets=4)
        assert text.startswith("10-")
        assert ":3" in text and ":1" in text
        assert ":0" not in text


class TestStarGraphCongestion:
    """Exact congestion profile on a known topology.

    On a star, phase two of the rounding execution is a single broadcast
    round: the hub and every spoke announce a ``val`` message, putting one
    message per directed edge — ``2 * #edges`` — on the wire.  With all
    phase-one values at zero, every message is exactly
    ``message_bits((0,))`` bits, so the round's total — and therefore the
    whole histogram — is known in closed form.
    """

    N = 10

    def test_rounding_exec_profile_is_exact(self):
        graph = star_graph(self.N)
        zeros = {v: 0.0 for v in graph.nodes()}
        _, sim = run_rounding_execution(graph, zeros, {v: 1.0 for v in graph.nodes()})
        expected_round_bits = 2 * graph.number_of_edges() * message_bits((0,))
        assert sim.bits_per_round == [expected_round_bits]
        assert congestion_histogram(sim.bits_per_round) == [
            {"lo": expected_round_bits, "hi": expected_round_bits, "rounds": 1}
        ]
        assert render_congestion(sim.bits_per_round) == (
            f"{expected_round_bits}-{expected_round_bits}:1"
        )

    def test_greedy_histogram_covers_all_rounds(self):
        graph = star_graph(self.N)
        _, sim = run_distributed_greedy(graph)
        rows = congestion_histogram(sim.bits_per_round)
        assert sum(r["rounds"] for r in rows) == sim.rounds
        assert rows[0]["lo"] == min(sim.bits_per_round)
        assert rows[-1]["hi"] == max(sim.bits_per_round)


def test_e10_report_surfaces_congestion_column():
    report = e10_congest.run(fast=True)
    assert "congestion" in report.columns
    assert report.rows
    for row in report.rows:
        cell = row["congestion"]
        assert isinstance(cell, str) and cell
        # every populated bucket renders as lo-hi:rounds
        for part in cell.split():
            span, _, count = part.rpartition(":")
            assert int(count) >= 1
            lo, _, hi = span.partition("-")
            assert int(lo) <= int(hi)
