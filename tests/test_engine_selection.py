"""Engine selection errors: CLI flags and runner grids fail *structured*.

A typo in ``--engine`` must surface as a :class:`repro.errors` exception
(or a clean CLI exit) naming the bad value and the registered engines —
never a bare ``KeyError`` from a registry dict.
"""

from __future__ import annotations

import pytest

from repro.congest.engine import (
    available_engines,
    resolve_engine,
    set_default_engine,
)
from repro.errors import (
    CongestError,
    ReproError,
    UnknownEngineError,
    UnknownProgramError,
)
from repro.experiments.runner import GridCell, expand_grid, run_cell


class TestResolutionErrors:
    def test_resolve_unknown_names_available(self):
        with pytest.raises(UnknownEngineError) as exc:
            resolve_engine("warp-drive")
        assert exc.value.name == "warp-drive"
        assert set(exc.value.available) == set(available_engines())
        assert "vector" in str(exc.value)

    def test_set_default_unknown_is_structured(self):
        with pytest.raises(UnknownEngineError):
            set_default_engine("warp-drive")

    def test_unknown_engine_is_still_a_congest_error(self):
        # Backwards compatibility: callers catching CongestError keep working.
        with pytest.raises(CongestError):
            resolve_engine("warp-drive")
        assert issubclass(UnknownEngineError, CongestError)
        assert issubclass(UnknownEngineError, ReproError)
        assert issubclass(UnknownProgramError, ReproError)

    def test_never_a_key_error(self):
        with pytest.raises(Exception) as exc:
            resolve_engine("warp-drive")
        assert not isinstance(exc.value, KeyError)


class TestGridSelectionErrors:
    def test_expand_grid_rejects_unknown_engine(self):
        with pytest.raises(UnknownEngineError) as exc:
            expand_grid(("tree",), (16,), engines=("fast", "warp"))
        assert exc.value.name == "warp"

    def test_expand_grid_rejects_unknown_program(self):
        with pytest.raises(UnknownProgramError) as exc:
            expand_grid(("tree",), (16,), programs=("bfs", "dijkstra"))
        assert exc.value.name == "dijkstra"

    def test_run_cell_records_structured_engine_error(self):
        rec = run_cell(GridCell(family="tree", n=12, program="bfs", engine="warp"))
        assert rec["ok"] is False
        assert rec["error"]["type"] == "UnknownEngineError"
        assert "warp" in rec["error"]["message"]
        assert "KeyError" not in rec["error"]["type"]


class TestCliSelectionErrors:
    def test_grid_command_unknown_engine_exits_cleanly(self, capsys):
        from repro.__main__ import main

        code = main(
            ["grid", "--families", "tree", "--sizes", "12", "--engines", "warp"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "warp" in err
        assert "available" in err

    def test_engine_flag_rejects_unknown_choice(self, capsys):
        from repro.__main__ import main

        # argparse enforces the registered-engine choices before anything runs.
        with pytest.raises(SystemExit) as exc:
            main(["mds", "--engine", "warp"])
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_engine_flag_lists_vector(self):
        from repro.__main__ import build_parser

        parser = build_parser()
        args = parser.parse_args(["bench", "E10", "--engine", "vector"])
        assert args.engine == "vector"
