"""Tree convergecast (sum) and broadcast.

Given a rooted spanning forest (``parent`` pointers, as produced by
:mod:`repro.congest.programs.bfs`), each node contributes an integer vector;
leaves send up first, internal nodes add their children's vectors to their
own and forward, and finally the root broadcasts the totals back down.  This
is the O(depth)-round aggregation the paper uses inside clusters in
Lemma 3.4 ("we can aggregate their respective sums at l in O(d) rounds using
the spanning tree of the cluster").

Vector entries are grid numerators (non-negative ints), so one entry fits a
CONGEST message; a vector of ``w`` entries is sent as ``w`` consecutive
messages, faithfully costing ``w`` rounds of pipelining in the bit ledger.
For simplicity each message here carries the whole vector and the simulator's
bit meter reports the true size; callers that need strict O(log n) messages
use vectors of width 1 or 2 (which is all the paper's algorithms need:
``sum(alpha_0), sum(alpha_1)``).
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Tuple

import networkx as nx

from repro.congest.engine import EngineSpec
from repro.congest.message import Message
from repro.congest.network import Network
from repro.congest.node import Context, NodeProgram
from repro.congest.simulator import SimulationResult, Simulator


class TreeAggregationProgram(NodeProgram):
    """Per-node input: ``(parent, children_count, vector)``.

    ``parent == -1`` marks the root.  Output per node: ``total`` — the
    root's summed vector after the downward broadcast (every node in the
    tree learns it, mirroring the paper's seed-bit decision broadcast).
    Nodes outside any tree (``parent is None``) halt immediately.
    """

    #: An empty-inbox ``receive`` is a no-op here: leaves/roots act in
    #: ``setup``, everyone else only reacts to ``up``/``down`` traffic —
    #: so engines may run this program event-driven (skip idle nodes).
    event_driven = True

    def __init__(self, input_value: object = None):
        super().__init__(input_value)
        if input_value is None:
            self.parent = None
            self.pending_children = 0
            self.acc: Tuple[int, ...] = ()
        else:
            parent, children_count, vector = input_value
            self.parent = parent
            self.pending_children = children_count
            self.acc = tuple(int(x) for x in vector)
        self._sent_up = False
        self._done = False

    def _try_send_up(self, ctx: Context) -> None:
        if self._sent_up or self.pending_children > 0 or self.parent is None:
            return
        if self.parent == -1:
            # Root: aggregation complete, start the downward broadcast.
            ctx.output("total", self.acc)
            ctx.broadcast(Message("down", *self.acc))
            self._done = True
            ctx.halt()
        else:
            ctx.send(self.parent, Message("up", *self.acc))
            self._sent_up = True

    def setup(self, ctx: Context) -> None:
        if self.parent is None:
            ctx.halt()
            return
        self._try_send_up(ctx)

    def receive(self, ctx: Context, inbox: Dict[int, Message]) -> None:
        for sender, msg in sorted(inbox.items()):
            if msg.tag == "up":
                self.acc = tuple(a + b for a, b in zip(self.acc, msg.fields))
                self.pending_children -= 1
            elif msg.tag == "down" and not self._done:
                ctx.output("total", tuple(msg.fields))
                # Forward downwards to everyone except the sender (children
                # ignore duplicates anyway; avoiding the sender respects the
                # one-message-per-port rule).
                for u in ctx.neighbors:
                    if u != sender:
                        ctx.send(u, Message("down", *msg.fields))
                self._done = True
                ctx.halt()
                return
        self._try_send_up(ctx)
        # No defensive round cutoff here: it would violate the event_driven
        # contract (a halt on an empty-inbox call).  Malformed forests
        # (parent cycles) surface as SimulationLimitError via the
        # simulator's max_rounds bound instead, identically on any engine.


def run_tree_sum(
    graph: nx.Graph | None,
    parent_of: Mapping[int, int],
    vectors: Mapping[int, Sequence[int]],
    network: Network | None = None,
    engine: EngineSpec = None,
) -> Tuple[Dict[int, Tuple[int, ...]], SimulationResult]:
    """Sum per-node integer vectors up a rooted forest and broadcast back.

    ``parent_of`` maps node -> parent (``-1`` for roots); nodes absent from
    the mapping take no part.  Returns ``(totals_by_node, result)`` where
    each participating node reports the total of *its* tree.  ``graph``
    may be ``None`` when ``network`` is given (e.g. a shared-memory CSR
    reconstruction).
    """
    network = network or Network.congest(graph)
    children_count: Dict[int, int] = {v: 0 for v in parent_of}
    for v, p in parent_of.items():
        if p is not None and p >= 0:
            children_count[p] = children_count.get(p, 0) + 1
    width = max((len(vec) for vec in vectors.values()), default=1)
    inputs = {}
    for v in graph.nodes() if graph is not None else range(network.n):
        if v in parent_of:
            vec = list(vectors.get(v, ())) + [0] * width
            inputs[v] = (parent_of[v], children_count.get(v, 0), vec[:width])
        else:
            inputs[v] = None
    sim = Simulator(network, TreeAggregationProgram, inputs=inputs, engine=engine)
    result = sim.run(max_rounds=6 * network.n + 12)
    return result.output_map("total"), result


# -- experiment-surface registration ------------------------------------------

from repro.api.registry import ProgramSpec, register_program  # noqa: E402
from repro.congest.programs.bfs import run_bfs_forest  # noqa: E402


def _drive(network: Network, engine: str) -> SimulationResult:
    """Canonical tree-sum workload: count the BFS tree rooted at node 0.

    The BFS forest is built first (on the same engine); the metered result
    is the aggregation itself — every node in the tree contributes the
    vector ``(1,)``, so the broadcast total equals the tree size.
    """
    root_of, _dist, parent_of, _ = run_bfs_forest(
        None, roots=[0], network=network, engine=engine
    )
    parents = {
        v: parent_of[v] for v in range(network.n) if root_of.get(v, -1) != -1
    }
    vectors = {v: (1,) for v in parents}
    _totals, sim = run_tree_sum(
        None, parents, vectors, network=network, engine=engine
    )
    return sim


def _summary(sim: SimulationResult) -> Dict[str, object]:
    totals = sim.output_map("total")
    return {
        "reached": len(totals),
        "tree_total": max((int(t[0]) for t in totals.values()), default=0),
    }


register_program(
    ProgramSpec(
        name="tree-sum",
        description="convergecast + broadcast over the BFS tree of node 0",
        program=TreeAggregationProgram,
        drive=_drive,
        summarize=_summary,
        # No batch recipe: the aggregation uses targeted per-port sends,
        # which the stacked broadcast plane does not model.
    )
)
