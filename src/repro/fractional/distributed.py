"""Distributed threshold water-filling covering solver.

A round-by-round multiplicative scheme in the spirit of the [KMW06]
LP algorithm: a global degree threshold ``theta`` sweeps down from
``Delta~`` by ``(1+gamma)`` factors; while any node is adjacent to at least
``theta`` uncovered constraints it raises its value by ``gamma / theta``
(covering at least ``theta`` constraints per ``gamma/theta`` units of cost —
the dual-fitting argument that keeps the solution within ``O((1+gamma)
ln Delta~)`` of the LP optimum, and empirically within a few percent; E3
measures the ratio).  Every iteration costs two CONGEST rounds: one to
announce values (so constraints learn their coverage) and one to announce
coverage (so nodes learn their dynamic degree).

The sweep is fully deterministic and node-local given the shared round
counter, so it doubles as a deterministic Part-I provider whose round count
is *measured* rather than charged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import networkx as nx

from repro.errors import GraphError
from repro.graphs.normalize import require_normalized


@dataclass(frozen=True)
class DistributedLPResult:
    """Feasible fractional dominating set with measured round cost."""

    values: Dict[int, float]
    size: float
    rounds: int
    iterations: int
    threshold_trace: List[float]


def distributed_fractional_mds(
    graph: nx.Graph, gamma: float = 0.25, max_iterations: int = 100_000
) -> DistributedLPResult:
    """Run the water-filling sweep until every constraint is covered."""
    require_normalized(graph)
    if not 0.0 < gamma <= 1.0:
        raise GraphError(f"gamma must be in (0, 1], got {gamma}")
    nodes = sorted(graph.nodes())
    if not nodes:
        raise GraphError("empty graph")
    neighborhoods = {
        v: sorted(set(graph.neighbors(v)) | {v}) for v in nodes
    }
    delta_tilde = max(len(nb) for nb in neighborhoods.values())

    x: Dict[int, float] = {v: 0.0 for v in nodes}
    coverage: Dict[int, float] = {v: 0.0 for v in nodes}
    theta = float(delta_tilde)
    rounds = 0
    iterations = 0
    trace = [theta]

    def uncovered(v: int) -> bool:
        return coverage[v] < 1.0 - 1e-12

    active = {v for v in nodes if uncovered(v)}
    while active:
        iterations += 1
        if iterations > max_iterations:
            raise GraphError(
                f"water-filling failed to converge in {max_iterations} iterations"
            )
        # Dynamic degree: how many uncovered constraints each node touches.
        dyn: Dict[int, int] = {v: 0 for v in nodes}
        for v in active:
            for u in neighborhoods[v]:
                dyn[u] += 1
        raisers = [u for u in nodes if dyn[u] >= theta and x[u] < 1.0]
        rounds += 2  # value announcement + coverage announcement
        if raisers:
            increment = gamma / theta
            for u in raisers:
                new_value = min(1.0, x[u] + increment)
                delta = new_value - x[u]
                if delta <= 0.0:
                    continue
                x[u] = new_value
                for v in graph.neighbors(u):
                    coverage[v] += delta
                coverage[u] += delta
            active = {v for v in active if uncovered(v)}
        else:
            theta = max(1.0, theta / (1.0 + gamma))
            trace.append(theta)
            if theta == 1.0 and not raisers and active:
                # At theta == 1 every node adjacent to an uncovered
                # constraint qualifies; if none does but constraints remain
                # uncovered, those constraints' own nodes must raise.
                for v in sorted(active):
                    x[v] = 1.0
                    for u in graph.neighbors(v):
                        coverage[u] += 1.0
                    coverage[v] += 1.0
                active = {v for v in active if uncovered(v)}

    return DistributedLPResult(
        values=dict(x),
        size=sum(x.values()),
        rounds=rounds,
        iterations=iterations,
        threshold_trace=trace,
    )
