"""Benchmark E9: network decomposition quality table.

Regenerates the network decomposition quality (see DESIGN.md Section 2) and certifies
every guarantee check recorded by the experiment.
"""

from benchmarks.conftest import run_experiment
from repro.experiments import e09_decomposition


def bench_e09_decomposition(benchmark):
    run_experiment(benchmark, e09_decomposition.run)
