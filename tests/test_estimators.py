"""Pessimistic estimators: exactness, domination, supermartingale property."""

import random

import pytest

from repro.derand.estimators import ConstraintEstimator, EstimatorConfig
from repro.errors import DerandomizationError


def brute_force_uncovered(c, fixed, coins):
    """Exact Pr(sum < c) by enumeration over coin outcomes."""
    items = list(coins.values())
    total = 0.0
    for mask in range(1 << len(items)):
        prob, s = 1.0, fixed
        for i, (w, p) in enumerate(items):
            if mask >> i & 1:
                prob *= p
                s += w
            else:
                prob *= 1.0 - p
        if s < c - 1e-12:
            total += prob
    return total


def make(c, fixed, coins, mode):
    return ConstraintEstimator(
        cid=0, c=c, deterministic_sum=fixed, free_coins=coins,
        config=EstimatorConfig(mode=mode),
    )


class TestExactProduct:
    def test_matches_brute_force(self):
        coins = {1: (1.0, 0.3), 2: (1.0, 0.6), 3: (1.0, 0.1)}
        est = make(1.0, 0.0, coins, "exact-product")
        assert est.phi() == pytest.approx(brute_force_uncovered(1.0, 0.0, coins))

    def test_rejects_small_success_values(self):
        with pytest.raises(DerandomizationError):
            make(1.0, 0.0, {1: (0.5, 0.5)}, "exact-product")

    def test_phi_if_matches_commit(self):
        coins = {1: (1.0, 0.3), 2: (1.0, 0.6)}
        est = make(1.0, 0.0, dict(coins), "exact-product")
        predicted = est.phi_if(1, False)
        est.fix(1, False)
        assert est.phi() == pytest.approx(predicted)

    def test_success_zeroes(self):
        est = make(1.0, 0.0, {1: (1.0, 0.3), 2: (1.0, 0.6)}, "exact-product")
        assert est.phi_if(1, True) == 0.0
        est.fix(1, True)
        assert est.satisfied()
        assert est.phi() == 0.0


class TestChernoff:
    def test_upper_bounds_exact(self):
        rng = random.Random(4)
        for _ in range(30):
            coins = {
                i: (rng.uniform(0.05, 0.4), rng.uniform(0.2, 0.8))
                for i in range(rng.randint(2, 8))
            }
            c = rng.uniform(0.3, 1.0)
            fixed = rng.uniform(0.0, 0.3)
            est = make(c, fixed, coins, "chernoff")
            exact = brute_force_uncovered(c, fixed, coins)
            assert est.phi() >= exact - 1e-9

    def test_collapses_to_zero_when_satisfied(self):
        est = make(0.5, 0.6, {1: (0.1, 0.5)}, "chernoff")
        assert est.phi() == 0.0

    def test_supermartingale_per_coin(self):
        """E_b[phi(theta, b)] <= phi(theta) for every coin."""
        rng = random.Random(5)
        for _ in range(30):
            coins = {
                i: (rng.uniform(0.05, 0.5), rng.uniform(0.2, 0.8))
                for i in range(rng.randint(2, 6))
            }
            c = rng.uniform(0.3, 1.2)
            est = make(min(c, 1.0), 0.0, coins, "chernoff")
            for u, (w, p) in coins.items():
                avg = p * est.phi_if(u, True) + (1 - p) * est.phi_if(u, False)
                assert avg <= est.phi() + 1e-9

    def test_full_fixing_dominates_indicator(self):
        coins = {1: (0.2, 0.5), 2: (0.2, 0.5)}
        est = make(1.0, 0.3, dict(coins), "chernoff")
        est.fix(1, False)
        est.fix(2, False)
        # Violated for sure (0.3 < 1.0): phi must be 1.
        assert est.phi() == pytest.approx(1.0)

    def test_incremental_matches_fresh(self):
        rng = random.Random(6)
        coins = {
            i: (rng.uniform(0.05, 0.4), rng.uniform(0.2, 0.8)) for i in range(8)
        }
        est = make(1.0, 0.0, dict(coins), "chernoff")
        remaining = dict(coins)
        for u in list(coins):
            success = rng.random() < 0.5
            est.fix(u, success)
            fixed_sum = est.fixed_sum
            remaining.pop(u)
            fresh = ConstraintEstimator(
                0, 1.0, fixed_sum, remaining, EstimatorConfig(mode="chernoff")
            )
            fresh.t = est.t  # same MGF parameter for comparability
            fresh._log_prod = fresh._full_log_prod()
            assert est.phi() == pytest.approx(fresh.phi(), abs=1e-8)


class TestExactEnum:
    def test_matches_brute_force_after_fixes(self):
        coins = {1: (0.4, 0.5), 2: (0.3, 0.25), 3: (0.5, 0.7)}
        est = make(1.0, 0.0, dict(coins), "exact-enum")
        assert est.phi() == pytest.approx(brute_force_uncovered(1.0, 0.0, coins))
        assert est.phi_if(2, True) == pytest.approx(
            brute_force_uncovered(1.0, 0.3, {1: coins[1], 3: coins[3]})
        )
        est.fix(2, True)
        assert est.phi() == pytest.approx(
            brute_force_uncovered(1.0, 0.3, {1: coins[1], 3: coins[3]})
        )

    def test_enum_limit(self):
        coins = {i: (0.1, 0.5) for i in range(25)}
        with pytest.raises(DerandomizationError):
            make(1.0, 0.0, coins, "exact-enum")


class TestAutoMode:
    def test_picks_exact_when_single_success_covers(self):
        est = make(1.0, 0.0, {1: (1.0, 0.5)}, "auto")
        assert est.mode == "exact-product"

    def test_picks_chernoff_otherwise(self):
        est = make(1.0, 0.0, {1: (0.2, 0.5)}, "auto")
        assert est.mode == "chernoff"

    def test_invalid_mode_rejected(self):
        with pytest.raises(DerandomizationError):
            EstimatorConfig(mode="bogus")

    def test_invalid_coins_rejected(self):
        with pytest.raises(DerandomizationError):
            make(1.0, 0.0, {1: (0.5, 1.0)}, "chernoff")
        with pytest.raises(DerandomizationError):
            make(1.0, 0.0, {1: (0.0, 0.5)}, "chernoff")

    def test_fix_unknown_coin(self):
        est = make(1.0, 0.0, {1: (1.0, 0.5)}, "auto")
        with pytest.raises(DerandomizationError):
            est.fix(9, True)
        with pytest.raises(DerandomizationError):
            est.phi_if(9, False)


class TestChernoffParameterChoice:
    def test_t_zero_when_already_covered(self):
        est = make(0.2, 0.5, {1: (0.1, 0.5)}, "chernoff")
        assert est.t == 0.0

    def test_t_positive_when_concentration_helps(self):
        # Expected sum 1.5 vs demand 1.0: Chernoff gives a real bound.
        coins = {i: (0.3, 0.5) for i in range(10)}
        est = make(1.0, 0.0, coins, "chernoff")
        assert est.t > 0.0
        assert est.phi() < 1.0

    def test_phi_one_when_expectation_below_demand(self):
        coins = {1: (0.1, 0.5)}
        est = make(1.0, 0.0, coins, "chernoff")
        assert est.phi() == pytest.approx(1.0)
