"""Benchmark E12: design ablations.

Regenerates the design ablations (see DESIGN.md Section 2) and certifies
every guarantee check recorded by the experiment.
"""

from benchmarks.conftest import run_experiment
from repro.experiments import e12_ablation


def bench_e12_ablation(benchmark):
    run_experiment(benchmark, e12_ablation.run)
