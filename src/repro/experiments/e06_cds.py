"""E6 — Theorem 1.4: connected dominating set quality.

For every connected suite instance: run the CDS pipeline, verify
connectivity + domination, and compare ``|CDS|`` against (a) ``3 |S|``
(the classic spanning-tree bound the spanner route must stay within a
constant of), (b) exact ``OPT_CDS`` on instances small enough to solve, and
(c) the ``O(ln Delta)`` guarantee of Theorem 1.4.
"""

from __future__ import annotations

import networkx as nx

from repro.analysis.bounds import theorem14_cds_bound
from repro.analysis.verify import is_connected_dominating_set
from repro.baselines.exact import exact_cds
from repro.cds.pipeline import approx_cds
from repro.experiments.harness import ExperimentReport, standard_suite
from repro.fractional.lp import lp_fractional_mds

COLUMNS = [
    "graph", "n", "Delta", "S", "cds", "overhead", "3S_bound", "route",
    "opt_cds", "ratio_vs_opt", "clusters", "spanner_edges",
]


def run(fast: bool = True, eps: float = 0.5) -> ExperimentReport:
    report = ExperimentReport(
        experiment="E6",
        claim="Theorem 1.4: O(ln Delta)-approx connected dominating set",
        columns=COLUMNS,
    )
    for inst in standard_suite(fast):
        graph = inst.graph
        if not nx.is_connected(graph):
            continue
        result = approx_cds(graph, eps=eps)
        s_size = len(result.dominating_set)
        opt = None
        if inst.n <= 18:
            opt = exact_cds(graph)
        lp = lp_fractional_mds(graph)
        bound = theorem14_cds_bound(inst.max_degree)
        report.add_row(
            graph=inst.name,
            n=inst.n,
            Delta=inst.max_degree,
            S=s_size,
            cds=result.size,
            overhead=round(result.overhead, 3),
            **{"3S_bound": 3 * s_size},
            route=result.route,
            opt_cds=len(opt) if opt is not None else "-",
            ratio_vs_opt=(round(result.size / len(opt), 2) if opt else "-"),
            clusters=int(result.stats.get("clusters", 0)),
            spanner_edges=int(result.stats.get("spanner_edges", 0)),
        )
        report.check(
            "connected_dominating",
            is_connected_dominating_set(graph, result.cds),
        )
        # |CDS| <= 3|S| + spanner overhead; allow the spanner's O(eps |S|)
        # slack with an explicit constant.
        report.check("near_3s", result.size <= 3 * s_size + 2)
        # Theorem 1.4 guarantee against the LP lower bound on OPT_MDS
        # (OPT_CDS >= OPT_MDS >= LP).
        report.check(
            "theorem14_bound",
            result.size <= bound * max(lp.optimum, 1.0) + 3,
        )
    return report
