"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by the library derives from
:class:`ReproError` so downstream users can catch library failures with a
single ``except`` clause while still distinguishing the failure domain.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """A graph input violates a structural precondition.

    Examples: non-normalized node labels, disconnected input to an algorithm
    that requires connectivity, or an empty graph.
    """


class CongestError(ReproError):
    """The CONGEST simulator detected a protocol violation."""


class UnknownEngineError(CongestError):
    """A simulation engine was requested by a name that is not registered.

    Raised by engine resolution and by the batch runner's grid expansion so
    that a typo in ``--engine`` surfaces as one structured library error
    (never a bare ``KeyError``) listing the registered engine names.
    """

    def __init__(self, name: str, available: "list[str]"):
        self.name = name
        self.available = list(available)
        super().__init__(
            f"unknown engine {name!r}; available: {', '.join(self.available)}"
        )


class UnknownProgramError(ReproError):
    """A batch-runner node program was requested by an unknown name."""

    def __init__(self, name: str, available: "list[str]"):
        self.name = name
        self.available = list(available)
        super().__init__(
            f"unknown program {name!r}; available: {', '.join(self.available)}"
        )


class BatchEligibilityError(CongestError):
    """A group of instances cannot run as one stacked message plane.

    Raised by :func:`repro.congest.engine.batched.run_stacked` /
    :func:`~repro.congest.engine.batched.iter_stacked` when the instances
    violate a stacking precondition (a program without a stackable vector
    kernel, a late-takeover kernel that cannot absorb a scalar prologue
    — ``takeover_round > 1`` without ``absorb_instance`` — or a
    non-conforming handover; sizes, bit budgets and per-instance takeover
    rounds may all differ — the plane is ragged and instances join it at
    their own takeover round).  The batch runner
    treats this as a signal to fall back to per-cell execution, so callers
    never see it unless they invoke the stacked engine directly.
    """


class EngineRestrictionError(ReproError):
    """A workload was asked to run on an engine its spec excludes.

    :attr:`repro.api.registry.ProgramSpec.engines` lets a spec restrict
    which simulation engines can drive it; the
    :class:`~repro.api.experiment.Experiment` builder enforces the
    restriction during engine negotiation (at ``.cells()`` expansion, so
    the error surfaces before anything runs) instead of silently running
    the workload on an unsupported engine.
    """

    def __init__(self, program: str, engine: str, allowed: "list[str]"):
        self.program = program
        self.engine = engine
        self.allowed = list(allowed)
        super().__init__(
            f"program {program!r} does not support engine {engine!r}; "
            f"its spec allows: {', '.join(self.allowed)}"
        )


class UnknownStrategyError(ReproError):
    """A batch-runner execution strategy was requested by an unknown name."""

    def __init__(self, name: str, available: "list[str]"):
        self.name = name
        self.available = list(available)
        super().__init__(
            f"unknown strategy {name!r}; available: {', '.join(self.available)}"
        )


class WorkerLostError(ReproError):
    """A grid-pool worker process died (or stalled) mid-dispatch-unit.

    The streaming pool path (:func:`repro.experiments.runner.run_grid`
    with ``jobs > 1``) detects the loss through its sentinel protocol —
    the worker's result channel hits EOF with its claimed unit
    unfinished, or no sentinel arrives within the stall timeout — and
    **never surfaces this error to callers**: the parent re-dispatches
    the unit's not-yet-yielded cells per cell in-process, and each
    fallback record carries this error's structured description in its
    ``plan.fallback`` block.  The class exists so the event is a typed,
    inspectable member of the library error family rather than a bare
    string.
    """

    def __init__(self, unit: int, pid: "int | None", exitcode: "int | None"):
        self.unit = unit
        self.pid = pid
        self.exitcode = exitcode
        super().__init__(
            f"pool worker (pid={pid}, exitcode={exitcode}) lost while "
            f"running dispatch unit {unit}; unfinished cells re-dispatched "
            "in-process"
        )


class ServiceError(ReproError):
    """Base class for failures of the always-on simulation service.

    The :mod:`repro.service` layer never lets these escape as bare
    strings: the in-process facade raises them from ``submit`` and the
    JSON-lines protocol serializes them into structured error frames
    (``{"type": "error", "error": {"type": <class name>, ...}}``), so a
    remote client can pattern-match the same codes a library caller
    catches.
    """


class ClientQueueFullError(ServiceError):
    """A tenant's pending-cell queue hit the service's backpressure bound.

    Each client of :class:`repro.service.SimulationService` owns a
    bounded admission queue (``max_pending_per_client``).  A submission
    that would overflow it is rejected *whole* — no partial enqueue — so
    one tenant's runaway sweep fills its own queue and gets this
    structured rejection instead of starving every other tenant's batch
    windows.
    """

    def __init__(self, client: str, pending: int, limit: int):
        self.client = client
        self.pending = pending
        self.limit = limit
        super().__init__(
            f"client {client!r} has {pending} pending cells; submission "
            f"would exceed the per-client backpressure bound of {limit}"
        )


class ServiceClosedError(ServiceError):
    """A request reached a service that is not running (or shutting down)."""

    def __init__(self, detail: str = "service is not running"):
        super().__init__(detail)


class MessageTooLargeError(CongestError):
    """A node program attempted to send a message above the bit budget."""

    def __init__(self, sender: int, receiver: int, bits: int, budget: int):
        self.sender = sender
        self.receiver = receiver
        self.bits = bits
        self.budget = budget
        super().__init__(
            f"message from {sender} to {receiver} is {bits} bits, "
            f"budget is {budget} bits"
        )


class SimulationLimitError(CongestError):
    """The simulator exceeded the configured maximum number of rounds."""


class InfeasibleSolutionError(ReproError):
    """A (fractional) dominating set or covering solution is infeasible."""


class DerandomizationError(ReproError):
    """The conditional-expectation engine detected an internal inconsistency.

    This is raised, for instance, if the pessimistic estimator increases
    after fixing a coin, which would falsify the supermartingale invariant
    the method of conditional expectations relies on.
    """


class DecompositionError(ReproError):
    """A network decomposition violates Definition 3.1 / 3.2 invariants."""


class ColoringError(ReproError):
    """A produced coloring is not proper for its conflict relation."""


class RandomnessError(ReproError):
    """Invalid parameters for the k-wise independent generator."""


class LPError(ReproError):
    """The LP oracle failed to produce a feasible solution.

    Carries the HiGHS status code (``scipy.optimize.linprog``'s
    ``result.status``: 1 = iteration limit, 2 = infeasible, 3 = unbounded,
    4 = numerical difficulties) so callers can tell a genuinely infeasible
    instance from a solver hiccup — the certification oracle falls back to
    a weaker bound on numerical failure instead of aborting a sweep, but
    must *not* mask infeasibility (see :class:`LPInfeasibleError`).
    """

    def __init__(self, message: str, status: "int | None" = None):
        self.status = status
        super().__init__(message)


class LPInfeasibleError(LPError):
    """The covering LP itself is infeasible (HiGHS status 2).

    Distinguished from generic :class:`LPError` because infeasibility is a
    statement about the *instance*, not the solver: no fallback oracle can
    produce a bound for it, so sweeps surface it instead of degrading.
    """


class SearchBudgetExceededError(ReproError):
    """A branch-and-bound search exceeded its exploration budget.

    Raised by :func:`repro.baselines.exact.exact_mds` when ``search_budget``
    is set and the search tree outgrows it.  The certification oracle
    catches this to drop from the exact rung to the ILP rung of its bound
    ladder; the default (no budget) preserves the solver's original
    run-to-completion behaviour.
    """
