"""Synchronous message-passing simulator for the CONGEST and LOCAL models.

The simulator executes *node programs* (subclasses of
:class:`~repro.congest.node.NodeProgram`) in synchronous rounds on a network
derived from a ``networkx`` graph.  Per round, every node may send one message
to each neighbor; in CONGEST mode the byte-size of every message is measured
and enforced against an ``O(log n)``-bit budget (Section 2 of the paper).

The round loop itself is pluggable (:mod:`repro.congest.engine`): the
``reference`` engine is the readable dict-of-dicts baseline, the ``fast``
engine (default) runs the same semantics over flat CSR arrays with an
active-set scheduler — see ``docs/engines.md``.

Composite pipelines additionally *charge* rounds for substituted oracles
through :class:`~repro.congest.cost.CostLedger`, keeping simulated and
modelled round counts strictly separate.
"""

from repro.congest.message import Message, bits_of_int, message_bits
from repro.congest.network import Network, congest_bit_budget
from repro.congest.node import Context, NodeProgram
from repro.congest.engine import (
    Engine,
    FastEngine,
    ReferenceEngine,
    available_engines,
    default_engine_name,
    resolve_engine,
    set_default_engine,
)
from repro.congest.simulator import SimulationResult, Simulator
from repro.congest.cost import CostLedger, gk18_decomposition_rounds, kmw06_lp_rounds

__all__ = [
    "Message",
    "bits_of_int",
    "message_bits",
    "Network",
    "congest_bit_budget",
    "Context",
    "NodeProgram",
    "Engine",
    "FastEngine",
    "ReferenceEngine",
    "available_engines",
    "default_engine_name",
    "resolve_engine",
    "set_default_engine",
    "SimulationResult",
    "Simulator",
    "CostLedger",
    "gk18_decomposition_rounds",
    "kmw06_lp_rounds",
]
