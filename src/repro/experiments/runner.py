"""Batch experiment runner: (graph × program × engine) grids across workers.

The simulator executes one cell at a time; scaling to many scenarios is the
runner's job.  A *cell* pins everything needed to reproduce one simulated
execution — graph family, size, seed, node program, engine — so a grid of
cells can be expanded up front (:func:`expand_grid`), executed sequentially
or across ``multiprocessing`` workers (:func:`run_grid`), and aggregated
into one JSON document (:func:`results_payload` / :func:`write_results`).

Design points:

* **Determinism.** Cells carry their own seed; a grid run with ``jobs=1``
  is bit-for-bit reproducible, and worker parallelism cannot reorder the
  output (results are returned in cell order regardless of completion
  order).
* **Structured failures.** A cell that raises — bad family, simulation
  limit, oversized message — produces an ``ok=False`` record with the
  exception type and message instead of tearing down the whole grid;
  malformed grid *axes* (unknown program or engine names) raise structured
  :class:`~repro.errors.UnknownProgramError` /
  :class:`~repro.errors.UnknownEngineError` at expansion time instead.
* **Generate once, share everywhere.** All cells of one (family, n, seed)
  work item run on the same topology.  Sequentially the Network object is
  reused directly; across process workers the parent generates each graph
  once and ships its CSR arrays through ``multiprocessing.shared_memory``
  (:mod:`repro.experiments.sharedmem`), so workers skip graph generation
  entirely and nothing big travels through the pool queue.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.congest.engine import available_engines
from repro.congest.network import Network
from repro.congest.programs import (
    run_bfs_forest,
    run_color_reduction,
    run_distributed_greedy,
)
from repro.congest.simulator import SimulationResult
from repro.errors import UnknownEngineError, UnknownProgramError
from repro.graphs.suite import suite_instance

__all__ = [
    "GridCell",
    "available_programs",
    "expand_grid",
    "run_cell",
    "run_grid",
    "summarize_results",
    "results_payload",
    "write_results",
]


@dataclass(frozen=True)
class GridCell:
    """One fully-specified simulated execution."""

    family: str
    n: int
    program: str
    engine: str
    seed: int = 7

    @property
    def key(self) -> str:
        return f"{self.family}-{self.n}/{self.program}/{self.engine}/s{self.seed}"

    @property
    def topology_key(self) -> Tuple[str, int, int]:
        """Cells sharing this key run on the identical generated graph."""
        return (self.family, self.n, self.seed)


def _drive_bfs(network: Network, engine: str) -> SimulationResult:
    return run_bfs_forest(None, roots=[0], network=network, engine=engine)[-1]


def _drive_greedy(network: Network, engine: str) -> SimulationResult:
    return run_distributed_greedy(None, network=network, engine=engine)[-1]


def _drive_color(network: Network, engine: str) -> SimulationResult:
    return run_color_reduction(None, network=network, engine=engine)[-1]


#: Named node-program drivers a cell can select.  Each takes
#: ``(network, engine)`` and returns the :class:`SimulationResult` —
#: network-only signatures so shared-memory reconstructions plug in
#: without a ``networkx`` graph.
_PROGRAMS: Dict[str, Callable[[Network, str], SimulationResult]] = {
    "bfs": _drive_bfs,
    "greedy": _drive_greedy,
    "color-reduction": _drive_color,
}


def available_programs() -> List[str]:
    """Sorted names of the node programs the runner can drive."""
    return sorted(_PROGRAMS)


def expand_grid(
    families: Sequence[str],
    sizes: Sequence[int],
    programs: Sequence[str] | None = None,
    engines: Sequence[str] | None = None,
    seed: int = 7,
) -> List[GridCell]:
    """Cartesian expansion of the grid axes into concrete cells.

    Unknown program or engine names fail fast with a structured error —
    one bad axis value would otherwise poison every cell it touches.
    """
    programs = list(programs) if programs is not None else available_programs()
    engines = list(engines) if engines is not None else available_engines()
    for program in programs:
        if program not in _PROGRAMS:
            raise UnknownProgramError(program, available_programs())
    registered = set(available_engines())
    for engine in engines:
        if engine not in registered:
            raise UnknownEngineError(engine, available_engines())
    return [
        GridCell(family=f, n=n, program=p, engine=e, seed=seed)
        for f in families
        for n in sizes
        for p in programs
        for e in engines
    ]


def build_network(cell: GridCell) -> Network:
    """Generate the cell's graph and compile it into a CONGEST network."""
    inst = suite_instance(cell.family, cell.n, seed=cell.seed)
    return Network.congest(inst.graph)


def run_cell(
    cell: GridCell, network: Optional[Network] = None
) -> Dict[str, object]:
    """Execute one cell; never raises — failures become structured records.

    ``network`` short-circuits graph generation when the caller already
    holds the cell's topology (sequential reuse or a shared-memory
    reconstruction); the timed section covers simulation only either way.
    """
    record: Dict[str, object] = {"cell": asdict(cell), "key": cell.key}
    try:
        if cell.program not in _PROGRAMS:
            raise UnknownProgramError(cell.program, available_programs())
        if network is None:
            network = build_network(cell)
        start = time.perf_counter()
        sim = _PROGRAMS[cell.program](network, cell.engine)
        wall = time.perf_counter() - start
    except Exception as exc:  # noqa: BLE001 - the grid must survive any cell
        record["ok"] = False
        record["error"] = {"type": type(exc).__name__, "message": str(exc)}
        return record
    record["ok"] = True
    record["wall_s"] = wall
    record["metrics"] = {
        "n": network.n,
        "rounds": sim.rounds,
        "total_messages": sim.total_messages,
        "total_bits": sim.total_bits,
        "max_message_bits": sim.max_message_bits,
        "all_halted": sim.all_halted,
    }
    return record


def _run_cell_task(task) -> Dict[str, object]:
    """Pool worker: attach the published topology (if any) and run."""
    cell, handle = task
    if handle is None:
        return run_cell(cell)
    from repro.experiments.sharedmem import attach_network

    try:
        network = attach_network(handle)
    except Exception:  # pragma: no cover - attach races are host-specific
        network = None  # fall back to regenerating in the worker
    return run_cell(cell, network=network)


def run_grid(
    cells: Iterable[GridCell], jobs: int = 1
) -> List[Dict[str, object]]:
    """Run every cell, optionally across ``jobs`` worker processes.

    Results come back in cell order either way; ``jobs <= 1`` runs inline
    (deterministic and debugger-friendly).  In both modes each unique
    (family, n, seed) topology is generated exactly once — reused
    in-process sequentially, published through shared memory to workers.
    """
    cells = list(cells)
    if jobs <= 1 or len(cells) <= 1:
        networks: Dict[tuple, Optional[Network]] = {}
        results = []
        for cell in cells:
            key = cell.topology_key
            if key not in networks:
                try:
                    networks[key] = build_network(cell)
                except Exception:  # noqa: BLE001 - recorded per cell below
                    networks[key] = None
            results.append(run_cell(cell, network=networks[key]))
        return results

    import multiprocessing

    from repro.experiments.sharedmem import SharedTopology

    published: Dict[tuple, SharedTopology] = {}
    tasks = []
    try:
        for cell in cells:
            key = cell.topology_key
            if key not in published:
                try:
                    published[key] = SharedTopology.publish(build_network(cell))
                except Exception:  # noqa: BLE001 - cell records the failure
                    published[key] = None  # type: ignore[assignment]
            topology = published[key]
            tasks.append((cell, topology.handle if topology else None))
        with multiprocessing.Pool(processes=min(jobs, len(cells))) as pool:
            return pool.map(_run_cell_task, tasks)
    finally:
        for topology in published.values():
            if topology is not None:
                topology.unlink()


def summarize_results(results: Sequence[Mapping[str, object]]) -> Dict[str, object]:
    """Aggregate a grid run: totals per engine plus cross-engine speedups.

    The ``speedup_vs_reference`` map reports, for every non-reference
    engine, total-reference-wall / total-engine-wall over the cells where
    *both* engines succeeded on the same (family, n, program, seed) work
    item — the apples-to-apples wall-clock ratio.
    """
    per_engine: Dict[str, Dict[str, float]] = {}
    walls: Dict[tuple, Dict[str, float]] = {}
    failures = []
    for rec in results:
        cell = rec["cell"]  # type: ignore[index]
        engine = cell["engine"]  # type: ignore[index]
        agg = per_engine.setdefault(
            engine, {"cells": 0, "ok": 0, "wall_s": 0.0, "rounds": 0, "messages": 0}
        )
        agg["cells"] += 1
        if rec.get("ok"):
            metrics = rec["metrics"]  # type: ignore[index]
            agg["ok"] += 1
            agg["wall_s"] += rec["wall_s"]  # type: ignore[operator]
            agg["rounds"] += metrics["rounds"]  # type: ignore[index]
            agg["messages"] += metrics["total_messages"]  # type: ignore[index]
            item = (cell["family"], cell["n"], cell["program"], cell["seed"])  # type: ignore[index]
            walls.setdefault(item, {})[engine] = rec["wall_s"]  # type: ignore[assignment]
        else:
            failures.append({"key": rec["key"], "error": rec["error"]})
    speedups: Dict[str, float] = {}
    for engine in per_engine:
        if engine == "reference":
            continue
        ref_total = eng_total = 0.0
        for by_engine in walls.values():
            if "reference" in by_engine and engine in by_engine:
                ref_total += by_engine["reference"]
                eng_total += by_engine[engine]
        if eng_total > 0:
            speedups[engine] = round(ref_total / eng_total, 3)
    return {
        "per_engine": per_engine,
        "speedup_vs_reference": speedups,
        "failures": failures,
    }


def results_payload(
    results: Sequence[Mapping[str, object]], meta: Mapping[str, object] | None = None
) -> Dict[str, object]:
    """The canonical JSON document for one grid run."""
    return {
        "generator": "repro.experiments.runner",
        "meta": dict(meta or {}),
        "summary": summarize_results(results),
        "cells": list(results),
    }


def write_results(
    path: str | Path,
    results: Sequence[Mapping[str, object]],
    meta: Mapping[str, object] | None = None,
) -> Path:
    """Write the grid run to ``path`` as pretty-printed JSON."""
    path = Path(path)
    path.write_text(json.dumps(results_payload(results, meta), indent=2) + "\n")
    return path
