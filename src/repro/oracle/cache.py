"""In-process oracle result cache keyed by topology identity.

Grid cells are deterministic: the suite generator maps ``(family, n,
seed, params)`` to one graph, and every MDS-producing program maps that
graph to one solution size.  A certificate therefore depends only on the
cell's identity and the oracle knobs — so a sweep that revisits a cell
(another engine on the same topology, a re-dispatched fallback record
after a lost pool worker, a repeated experiment) must never pay for a
second ILP/LP solve.  This module is that memo: a process-local cache
whose keys are built from the full topology identity via
:func:`topology_cache_key` and whose hit/miss counters the benchmark
artifacts record (``BENCH_quality.json``'s ``meta.oracle.cache`` block).

The cache stores the :class:`~repro.oracle.certificate.Certificate`
objects themselves (frozen dataclasses), so a repeat key returns the
*identical* object — asserted by the oracle property suite.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple


def topology_cache_key(
    family: str,
    n: int,
    seed: int,
    params: Optional[Tuple] = None,
) -> Tuple:
    """The full topology identity of one deterministic suite instance.

    ``params`` carries any extra generator parameters beyond the standard
    (family, n, seed) axes — ``None`` for the built-in suite, whose
    builders are fully determined by those three.  Two cells with equal
    keys run on the identical generated graph (the runner's
    ``GridCell.topology_key`` contract), so their oracle bounds coincide.
    """
    return (str(family), int(n), int(seed), params)


class OracleCache:
    """A counting memo for oracle certificates (process-local)."""

    def __init__(self) -> None:
        self._entries: Dict[Hashable, object] = {}
        self.hits = 0
        self.misses = 0

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: Hashable) -> Optional[object]:
        """The cached value for ``key`` (counting a hit), or ``None``."""
        value = self._entries.get(key)
        if value is not None:
            self.hits += 1
        return value

    def store(self, key: Hashable, value: object) -> object:
        """Memoize ``value`` under ``key`` (counting a miss); returns it."""
        self.misses += 1
        self._entries[key] = value
        return value

    def stats(self) -> Dict[str, int]:
        """Counters for artifact meta: hits, misses, resident entries."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._entries),
        }

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0


#: The process-wide cache instance every ``certify`` call shares.
_CACHE = OracleCache()


def oracle_cache() -> OracleCache:
    """The shared in-process oracle cache."""
    return _CACHE


def clear_oracle_cache() -> None:
    """Reset the shared cache (tests and fresh sweeps)."""
    _CACHE.clear()
