"""Batch runner: grid expansion, determinism, structured failures, JSON."""

from __future__ import annotations

import copy
import json

import pytest


from repro.experiments.harness import engine_grid_cells, engine_grid_report
from repro.experiments.runner import (
    GridCell,
    available_programs,
    expand_grid,
    results_payload,
    run_cell,
    run_grid,
    summarize_results,
    write_results,
)


def _strip_walls(results):
    stripped = copy.deepcopy(results)
    for rec in stripped:
        rec.pop("wall_s", None)
    return stripped


SMALL_GRID = expand_grid(
    families=("tree", "gnp"),
    sizes=(16,),
    programs=("bfs",),
    engines=("reference", "fast"),
    seed=3,
)


class TestExpandGrid:
    def test_cartesian_product(self):
        cells = expand_grid(
            families=("gnp", "tree"),
            sizes=(20, 40),
            programs=("bfs", "greedy"),
            engines=("reference", "fast"),
        )
        assert len(cells) == 2 * 2 * 2 * 2
        assert len(set(cells)) == len(cells)
        assert all(isinstance(c, GridCell) for c in cells)

    def test_defaults_cover_all_programs_and_engines(self):
        cells = expand_grid(families=("tree",), sizes=(12,))
        programs = {c.program for c in cells}
        engines = {c.engine for c in cells}
        assert programs == set(available_programs())
        assert {"reference", "fast"} <= engines

    def test_key_is_reproducible(self):
        cell = GridCell(family="gnp", n=40, program="bfs", engine="fast", seed=9)
        assert cell.key == "gnp-40/bfs/fast/s9"


class TestRunCell:
    def test_success_record(self):
        cell = GridCell(family="tree", n=16, program="bfs", engine="fast", seed=3)
        rec = run_cell(cell)
        assert rec["ok"] is True
        assert rec["metrics"]["rounds"] >= 1
        assert rec["metrics"]["all_halted"] is True
        assert rec["wall_s"] >= 0
        assert rec["cell"] == {
            "family": "tree", "n": 16, "program": "bfs",
            "engine": "fast", "seed": 3,
        }

    def test_unknown_family_is_structured_error(self):
        rec = run_cell(GridCell(family="nope", n=16, program="bfs", engine="fast"))
        assert rec["ok"] is False
        assert rec["error"]["type"] == "GraphError"
        assert "nope" in rec["error"]["message"]

    def test_unknown_program_is_structured_error(self):
        rec = run_cell(GridCell(family="tree", n=16, program="boom", engine="fast"))
        assert rec["ok"] is False
        assert rec["error"]["type"] == "UnknownProgramError"
        assert "boom" in rec["error"]["message"]

    def test_unknown_engine_is_structured_error(self):
        rec = run_cell(GridCell(family="tree", n=16, program="bfs", engine="warp"))
        assert rec["ok"] is False
        assert rec["error"]["type"] == "UnknownEngineError"
        assert "warp" in rec["error"]["message"]


class TestRunGrid:
    def test_single_worker_is_deterministic(self):
        first = run_grid(SMALL_GRID, jobs=1)
        second = run_grid(SMALL_GRID, jobs=1)
        assert _strip_walls(first) == _strip_walls(second)

    def test_results_preserve_cell_order(self):
        results = run_grid(SMALL_GRID, jobs=1)
        assert [r["key"] for r in results] == [c.key for c in SMALL_GRID]

    def test_worker_pool_matches_sequential(self):
        sequential = run_grid(SMALL_GRID, jobs=1)
        parallel = run_grid(SMALL_GRID, jobs=2)
        assert _strip_walls(sequential) == _strip_walls(parallel)

    def test_cell_failure_does_not_crash_grid(self):
        cells = [
            GridCell(family="tree", n=16, program="bfs", engine="fast"),
            GridCell(family="nope", n=16, program="bfs", engine="fast"),
            GridCell(family="gnp", n=16, program="bfs", engine="fast"),
        ]
        results = run_grid(cells, jobs=1)
        assert [r["ok"] for r in results] == [True, False, True]


class TestSummariesAndJson:
    def test_summary_speedup_and_failures(self):
        cells = SMALL_GRID + [
            GridCell(family="nope", n=16, program="bfs", engine="fast")
        ]
        results = run_grid(cells, jobs=1)
        summary = summarize_results(results)
        assert summary["per_engine"]["reference"]["ok"] == 2
        assert summary["per_engine"]["fast"]["ok"] == 2
        assert summary["per_engine"]["fast"]["cells"] == 3
        assert "fast" in summary["speedup_vs_reference"]
        assert len(summary["failures"]) == 1
        assert summary["failures"][0]["error"]["type"] == "GraphError"

    def test_write_results_roundtrip(self, tmp_path):
        results = run_grid(SMALL_GRID, jobs=1)
        out = write_results(tmp_path / "grid.json", results, meta={"jobs": 1})
        payload = json.loads(out.read_text())
        assert payload["generator"] == "repro.experiments.runner"
        assert payload["meta"] == {"jobs": 1}
        assert len(payload["cells"]) == len(SMALL_GRID)
        assert payload["summary"] == json.loads(
            json.dumps(summarize_results(results))
        )

    def test_results_payload_is_json_serializable(self):
        results = run_grid(SMALL_GRID, jobs=1)
        json.dumps(results_payload(results))


class TestEngineGridReport:
    def test_parity_and_no_failures_pass(self):
        results = run_grid(SMALL_GRID, jobs=1)
        report = engine_grid_report(results)
        assert report.checks["no_failures"] is True
        assert report.checks["engine_parity"] is True
        assert len(report.rows) == len(SMALL_GRID)
        assert "wall_ms" in report.columns

    def test_failure_flips_check(self):
        cells = SMALL_GRID + [
            GridCell(family="nope", n=16, program="bfs", engine="fast")
        ]
        report = engine_grid_report(run_grid(cells, jobs=1))
        assert report.checks["no_failures"] is False
        assert any("nope" in note for note in report.notes)

    def test_metric_divergence_flips_parity(self):
        results = run_grid(SMALL_GRID, jobs=1)
        doctored = copy.deepcopy(results)
        for rec in doctored:
            if rec["cell"]["engine"] == "fast":
                rec["metrics"]["rounds"] += 1
        report = engine_grid_report(doctored)
        assert report.checks["engine_parity"] is False

    def test_shared_cells_definition(self):
        cells = engine_grid_cells(fast=True)
        assert all(c.engine in ("reference", "fast", "vector") for c in cells)
        assert len({(c.family, c.n, c.program) for c in cells}) * 3 == len(cells)


class TestBatchStrategy:
    """strategy="batch" is an execution detail: records never change."""

    SWEEP = expand_grid(
        families=("gnp", "tree"),
        sizes=(24,),
        programs=("greedy", "color-reduction", "bfs"),
        engines=("vector", "fast"),
        seeds=(0, 1, 2, 3),
    )

    @staticmethod
    def _strip(results):
        stripped = copy.deepcopy(results)
        for rec in stripped:
            rec.pop("wall_s", None)
            rec.pop("batch", None)
        return stripped

    def test_seeds_axis_expansion(self):
        cells = expand_grid(
            families=("gnp",), sizes=(16,), programs=("bfs",),
            engines=("fast",), seeds=(1, 2, 3),
        )
        assert [c.seed for c in cells] == [1, 2, 3]
        assert len({c.topology_key for c in cells}) == 3

    def test_unknown_strategy_is_structured(self):
        from repro.errors import UnknownStrategyError

        with pytest.raises(UnknownStrategyError):
            run_grid(self.SWEEP, strategy="warp")

    def test_batch_matches_cell_records(self):
        cell = run_grid(self.SWEEP, strategy="cell")
        batch = run_grid(self.SWEEP, strategy="batch")
        assert self._strip(cell) == self._strip(batch)
        stacked = [r for r in batch if "batch" in r]
        # greedy + color-reduction on vector engine batch; bfs and fast
        # engine cells fall back per cell.
        assert len(stacked) == 2 * 2 * 4
        assert all(r["cell"]["engine"] == "vector" for r in stacked)
        assert all(r["cell"]["program"] != "bfs" for r in stacked)

    def test_batch_size_chunks_groups(self):
        batch = run_grid(self.SWEEP, strategy="batch", batch_size=3)
        widths = {r["batch"]["k"] for r in batch if "batch" in r}
        assert widths == {3}  # 4 seeds -> chunk of 3 + leftover of 1 (solo)
        assert self._strip(batch) == self._strip(
            run_grid(self.SWEEP, strategy="cell")
        )

    def test_batch_size_one_caps_to_per_cell(self):
        """batch_size=1 means width-1 stacks, i.e. plain per-cell runs."""
        results = run_grid(self.SWEEP, strategy="batch", batch_size=1)
        assert not any("batch" in r for r in results)
        assert self._strip(results) == self._strip(
            run_grid(self.SWEEP, strategy="cell")
        )

    def test_batch_workers_match_sequential(self):
        sequential = run_grid(self.SWEEP, strategy="batch")
        parallel = run_grid(self.SWEEP, strategy="batch", jobs=2)
        assert self._strip(sequential) == self._strip(parallel)

    def test_mixed_size_groups_stack_as_one_ragged_plane(self):
        """Since the ragged layout, one (family, program, engine) group
        spans sizes: a mixed-size sweep stacks whole instead of falling
        back per cell, with records identical to per-cell execution."""
        from repro.api import Experiment

        cells = (
            Experiment("greedy", "color-reduction")
            .on("gnp")
            .sizes(16, 24, 40)
            .engine("vector")
            .seeds(2)
            .cells()
        )
        batch = run_grid(cells, strategy="batch")
        assert self._strip(batch) == self._strip(run_grid(cells, strategy="cell"))
        # Each program's 3 sizes x 2 seeds stack into one width-6 plane.
        assert all("batch" in rec for rec in batch)
        assert {rec["batch"]["k"] for rec in batch} == {6}
        parallel = run_grid(cells, strategy="batch", jobs=2)
        assert self._strip(batch) == self._strip(parallel)

    def test_batch_survives_bad_family(self):
        cells = list(self.SWEEP[:2]) + [
            GridCell(family="nope", n=24, program="greedy", engine="vector")
        ]
        results = run_grid(cells, strategy="batch")
        assert [r["ok"] for r in results] == [True, True, False]
        assert results[2]["error"]["type"] == "GraphError"

    def test_program_summaries_present(self):
        results = run_grid(self.SWEEP, strategy="batch")
        for rec in results:
            program = rec["cell"]["program"]
            metrics = rec["metrics"]
            assert "max_degree" in metrics
            if program == "greedy":
                assert 0 < metrics["ds_size"] <= metrics["n"]
            elif program == "color-reduction":
                assert 0 < metrics["colors"] <= metrics["max_degree"] + 1
            elif program == "bfs":
                assert metrics["reached"] >= 1

    def test_cli_quick_batch_smoke(self, capsys):
        from repro.__main__ import main

        assert main(["grid", "--quick", "--strategy", "batch"]) == 0
        out = capsys.readouterr().out
        assert "engine_parity=PASS" in out
        assert "no_failures=PASS" in out


class TestSharedStackedTopology:
    def test_publish_attach_round_trip(self):
        from repro.experiments.sharedmem import (
            SharedStackedTopology,
            attach_stacked,
        )
        from repro.experiments.runner import build_network

        cells = [
            GridCell(family="gnp", n=20, program="greedy", engine="vector", seed=s)
            for s in range(3)
        ]
        networks = [build_network(c) for c in cells]
        stack = SharedStackedTopology.publish(networks)
        try:
            rebuilt = attach_stacked(stack.handle)
        finally:
            stack.unlink()
        assert len(rebuilt) == 3
        for original, copy_net in zip(networks, rebuilt):
            assert copy_net.n == original.n
            assert copy_net.bit_budget == original.bit_budget
            for v in range(original.n):
                assert copy_net.neighbors(v) == original.neighbors(v)
