"""``repro.api`` — the unified experiment surface.

Three pieces, designed to be used together:

* the **program registry** (:class:`ProgramSpec`, :func:`register_program`,
  :func:`program_spec`, :func:`available_programs`): every CONGEST node
  program — and the CDS composite pipeline — self-registers a declarative
  spec, so grid axes, drivers, summaries and batch eligibility all come
  from one place;
* the **builder** (:class:`Experiment`): fluent grid construction with
  engine/strategy negotiation, ``run()`` for ordered results and
  ``stream()`` for records-as-they-finish;
* **typed records** (:class:`RunRecord`, :class:`SweepResult`): the
  result objects, convertible to/from the legacy dict shape via
  ``to_dict()`` / ``from_dict()``.

See ``docs/api.md`` for the full guide and ``examples/experiment_api.py``
for a runnable tour.
"""

from repro.api.experiment import Experiment
from repro.api.records import RunRecord, SweepResult, as_record_dicts
from repro.api.registry import (
    ProgramSpec,
    available_programs,
    batchable_programs,
    program_spec,
    register_program,
    registered_specs,
)

__all__ = [
    "Experiment",
    "ProgramSpec",
    "RunRecord",
    "SweepResult",
    "as_record_dicts",
    "available_programs",
    "batchable_programs",
    "program_spec",
    "register_program",
    "registered_specs",
]
