"""Distributed iterative color reduction as a node program.

The message-passing realization of :func:`repro.coloring.reduction.
reduce_coloring`: starting from unique IDs (a proper ``n``-coloring), color
classes are eliminated top-down, one class per round — the [BEK15]-style
final stage the paper's Lemma 3.12 builds on.  Node with color ``c`` acts
in round ``n - c``: it picks the smallest color unused in its neighborhood
and announces it.  After ``n`` rounds at most ``Delta + 1`` colors remain.

Every message is a single color value (``O(log n)`` bits).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import networkx as nx
import numpy as np

from repro.congest.engine import (
    EngineSpec,
    MessageSpec,
    PendingBroadcast,
    VectorKernel,
    register_kernel,
)
from repro.congest.message import Message
from repro.congest.network import Network
from repro.congest.node import Context, NodeProgram
from repro.congest.simulator import SimulationResult, Simulator
from repro.errors import ColoringError


class ColorReductionProgram(NodeProgram):
    """Input per node: its initial color (defaults to its id).

    Output: ``color`` — the final color, at most ``Delta + 1`` distinct
    values across the network.
    """

    #: Every message is a one-field color broadcast.
    message_specs = (MessageSpec("color", "color"),)

    def __init__(self, input_value: object = None):
        super().__init__(input_value)
        self.color: int | None = (
            int(input_value) if input_value is not None else None
        )
        self.neighbor_colors: Dict[int, int] = {}

    def setup(self, ctx: Context) -> None:
        if self.color is None:
            self.color = ctx.node
        ctx.broadcast(Message("color", self.color))

    def receive(self, ctx: Context, inbox: Dict[int, Message]) -> None:
        for sender, msg in inbox.items():
            if msg.tag == "color":
                self.neighbor_colors[sender] = msg.fields[0]

        # Round r eliminates color class n - r; nodes of that color recolor.
        acting_color = ctx.n - ctx.round_number
        assert self.color is not None
        if self.color == acting_color and acting_color > 0:
            taken = set(self.neighbor_colors.values())
            new_color = 0
            while new_color in taken:
                new_color += 1
            if new_color in taken:  # pragma: no cover - defensive
                raise ColoringError("no free color found")
            self.color = new_color
            ctx.broadcast(Message("color", self.color))

        if acting_color <= 0:
            ctx.output("color", self.color)
            ctx.halt()


@register_kernel(ColorReductionProgram)
class ColorReductionKernel(VectorKernel):
    """Vector transcription of the top-down class-elimination rounds.

    The message plane (delivery, accounting) is fully vectorized; the mex
    computation runs as a small scalar loop over that round's acting class
    only — total scalar work across the run is O(sum of acting degrees),
    not O(n) per round like the scalar engines pay.

    The acting class is computed from ``plane.local_n_of`` (the per-node
    view of the ``n`` each node program believes it runs on), so the
    kernel is *stackable on ragged planes*: in global round ``r`` a node
    of an ``n_k``-node instance acts iff its color is ``n_k - r`` and the
    whole instance halts at round ``n_k`` — smaller instances eliminate
    lower classes and terminate earlier while their larger siblings run
    on, exactly as each solo run schedules itself.
    """

    _SPEC = ColorReductionProgram.message_specs[0]

    def __init__(self, plane, network, programs, contexts):
        super().__init__(plane, network, programs, contexts)
        n = plane.n
        self.color = np.fromiter(
            (programs[v].color for v in range(n)), dtype=np.int64, count=n
        )
        #: Last-heard color per edge slot; -1 = never heard (the missing
        #: ``neighbor_colors`` entry, which the mex must ignore).
        self.ncolor = np.full(plane.nnz, -1, dtype=np.int64)

    @classmethod
    def stacked_setup(cls, plane, inputs):
        """Vectorized boot: every node announces its initial color.

        Colors default to the node's *local* id (a proper n-coloring per
        instance, exactly what the scalar ``setup`` picks); explicit
        initial colors from ``inputs`` overwrite their entries.
        """
        kernel = cls._blank(plane)
        color = plane.local_ids.copy()
        for k, mapping in enumerate(inputs):
            if not mapping:
                continue
            base = int(plane.node_offsets[k])
            for v, c in mapping.items():
                if c is not None:
                    color[base + int(v)] = int(c)
        kernel.color = color
        kernel.ncolor = np.full(plane.nnz, -1, dtype=np.int64)
        pending = PendingBroadcast(
            cls._SPEC,
            plane.degrees > 0,
            (color.copy(),),
            cls._SPEC.bits_array((color,)),
        )
        return kernel, pending

    def step(
        self, round_no: int, inbound: Optional[PendingBroadcast]
    ) -> Optional[PendingBroadcast]:
        plane = self.plane
        if inbound is not None:
            sent = plane.sent_slots(inbound)
            self.ncolor[sent] = inbound.columns[0][plane.indices[sent]]

        # Per-node acting class: round r eliminates class n_k - r in each
        # node's own instance; an instance is done once its class hits 0
        # (round n_k), independently of any larger siblings on the plane.
        acting_color = plane.local_n_of - round_no
        finishing = self.live & (acting_color <= 0)
        if finishing.any():
            for v in np.flatnonzero(finishing):
                self.output(int(v), "color", int(self.color[v]))
            self.live &= ~finishing

        acting = self.live & (self.color == acting_color)
        if not acting.any():
            return None
        indptr = plane.indptr
        for v in np.flatnonzero(acting):
            row = self.ncolor[indptr[v] : indptr[v + 1]]
            taken = {int(c) for c in row if c >= 0}
            new_color = 0
            while new_color in taken:
                new_color += 1
            self.color[v] = new_color
        return PendingBroadcast(
            self._SPEC,
            acting,
            (self.color.copy(),),
            self._SPEC.bits_array((self.color,)),
        )


def run_color_reduction(
    graph: nx.Graph | None,
    initial: Dict[int, int] | None = None,
    network: Network | None = None,
    engine: EngineSpec = None,
) -> Tuple[Dict[int, int], SimulationResult]:
    """Run distributed color reduction; returns (colors, metrics).

    ``graph`` may be ``None`` when ``network`` is given.
    """
    network = network or Network.congest(graph)
    inputs = dict(initial) if initial is not None else {}
    sim = Simulator(network, ColorReductionProgram, inputs=inputs, engine=engine)
    result = sim.run(max_rounds=network.n + 4)
    return result.output_map("color"), result


# -- experiment-surface registration ------------------------------------------

from repro.api.registry import ProgramSpec, register_program  # noqa: E402


def _drive(network: Network, engine: str) -> SimulationResult:
    return run_color_reduction(None, network=network, engine=engine)[-1]


def _summary(sim: SimulationResult) -> Dict[str, object]:
    return {"colors": len(set(sim.output_map("color").values()))}


register_program(
    ProgramSpec(
        name="color-reduction",
        description="[BEK15]-style reduction to at most Delta+1 colors",
        program=ColorReductionProgram,
        drive=_drive,
        summarize=_summary,
        batch_factory=ColorReductionProgram,
        batch_max_rounds=lambda net: net.n + 4,
    )
)
