"""Baseline CDS construction: spanning tree of ``G_S`` plus witness paths.

The classical bound: a spanning tree of ``G_S`` has ``|S| - 1`` edges, each
realized by at most 2 interior connector nodes, so ``|CDS| < 3|S|``.  This
is the non-local construction (computing a spanning tree takes
diameter-linear time distributedly) that Theorem 1.4 replaces by the
clustering + spanner route; it doubles as the small-instance fallback and
the quality yardstick in E6.
"""

from __future__ import annotations

from typing import Set

import networkx as nx

from repro.analysis.verify import require_connected_dominating_set
from repro.cds.gs_graph import GSGraph
from repro.errors import GraphError


def cds_from_spanning_tree(gsg: GSGraph) -> Set[int]:
    """``S`` plus the interior nodes of witness paths of a ``G_S`` spanning
    tree (BFS tree from the smallest S-node)."""
    if not gsg.s_nodes:
        if gsg.graph.number_of_nodes() == 0:
            return set()
        raise GraphError("empty dominating set on a non-empty graph")
    if not nx.is_connected(gsg.graph):
        raise GraphError("CDS requires a connected graph")
    cds: Set[int] = set(gsg.s_nodes)
    if len(gsg.s_nodes) == 1:
        return cds
    root = gsg.s_nodes[0]
    # Deterministic BFS tree over G_S.
    tree_edges = list(nx.bfs_edges(gsg.gs, root, sort_neighbors=sorted))
    for u, v in tree_edges:
        path = gsg.witness_path(u, v)
        cds.update(path[1:-1])
    return require_connected_dominating_set(gsg.graph, cds, "spanning-tree CDS")
