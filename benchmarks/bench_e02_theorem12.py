"""Benchmark E2: Theorem 1.2 coloring-route MDS — quality table plus the
Delta-sweep series (rounds as a function of the maximum degree at fixed n),
the "figure" counterpart of the theorem's O(Delta polylog Delta) claim.
"""

from benchmarks.conftest import run_experiment
from repro.experiments import e02_theorem12


def bench_e02_theorem12(benchmark):
    run_experiment(benchmark, e02_theorem12.run)


def bench_e02_delta_sweep(benchmark):
    report = benchmark.pedantic(
        e02_theorem12.run_delta_sweep, iterations=1, rounds=1, warmup_rounds=0
    )
    print()
    print(report.render())
    failed = [name for name, ok in report.checks.items() if not ok]
    assert not failed, f"E2 sweep checks failed: {failed}"
