"""Connected dominating sets (Section 4, Theorem 1.4).

Pipeline: compute a dominating set ``S`` (Theorem 1.1/1.2), build the
``G_S`` graph (S-nodes adjacent iff within distance 3, Claim 4.1), reduce
the problem size with a ruling set + BFS-phase clustering (Lemma 4.2),
select bounded-congestion connection paths (rules 1-3), run the
(derandomized) Baswana-Sen spanner on the cluster graph ``G'_S``, and emit
``S`` plus all connector nodes.
"""

from repro.cds.gs_graph import GSGraph, build_gs_graph
from repro.cds.connector import cds_from_spanning_tree
from repro.cds.ruling import ruling_set
from repro.cds.clustering import ClusterTreeSet, cluster_dominating_set
from repro.cds.paths import PathSelection, select_connection_paths
from repro.cds.pipeline import CDSResult, approx_cds

__all__ = [
    "GSGraph",
    "build_gs_graph",
    "cds_from_spanning_tree",
    "ruling_set",
    "ClusterTreeSet",
    "cluster_dominating_set",
    "PathSelection",
    "select_connection_paths",
    "CDSResult",
    "approx_cds",
]
