"""Round-complexity formula helpers and ledger-charging paths."""

import networkx as nx

from repro.congest.programs.aggregate import run_tree_sum
from repro.decomposition.ball_carving import carve_decomposition
from repro.derand.coloring_based import charged_rounds_formula_theorem12
from repro.derand.decomposition_based import (
    charge_cluster_loop,
    charged_rounds_formula_theorem11,
)
from repro.congest.cost import CostLedger
from repro.domsets.covering import CoveringInstance
from repro.fractional.raising import kmw06_initial_fds
from repro.graphs.normalize import normalize_graph
from repro.rounding.schemes import one_shot_scheme


class TestFormulaShapes:
    def test_theorem11_dominated_by_decomposition_term(self):
        """For large n at fixed Delta, the 2^O(sqrt(log n log log n)) term
        dominates — Theorem 1.1's runtime is a function of n."""
        small = charged_rounds_formula_theorem11(2 ** 8, 16, 0.5)
        large = charged_rounds_formula_theorem11(2 ** 20, 16, 0.5)
        assert large > 4 * small

    def test_theorem12_dominated_by_delta_term(self):
        """For large Delta at fixed n, rounds grow ~ Delta polylog Delta —
        Theorem 1.2's runtime is a function of Delta."""
        small = charged_rounds_formula_theorem12(1000, 8, 0.5)
        large = charged_rounds_formula_theorem12(1000, 256, 0.5)
        assert large > 16 * small  # at least linear growth in Delta

    def test_theorem12_barely_grows_with_n(self):
        a = charged_rounds_formula_theorem12(2 ** 8, 16, 0.5)
        b = charged_rounds_formula_theorem12(2 ** 24, 16, 0.5)
        assert b <= 3 * a  # only the log* term moves

    def test_eps_blowup(self):
        assert charged_rounds_formula_theorem12(1000, 16, 0.25) > \
            charged_rounds_formula_theorem12(1000, 16, 0.5)


class TestChargeClusterLoop:
    def test_charges_scale_with_participants_and_depth(self, medium_gnp):
        initial = kmw06_initial_fds(medium_gnp, eps=0.5)
        delta_tilde = max(d for _, d in medium_gnp.degree()) + 1
        scheme = one_shot_scheme(
            CoveringInstance.from_graph(medium_gnp, initial.fds.values),
            delta_tilde,
        )
        decomposition = carve_decomposition(medium_gnp, separation_k=2)
        ledger = CostLedger()
        charge_cluster_loop(ledger, scheme, decomposition)
        total = ledger.by_stage()["lemma3.4-seed-fixing"]
        # Upper bound: every participant costs one full tree aggregation.
        participants = len(scheme.participating())
        worst = participants * (2 * decomposition.max_depth + 2)
        assert 0 <= total <= worst

    def test_no_participants_charges_nothing(self, path5):
        inst = CoveringInstance.from_graph(path5, {v: 1.0 for v in path5.nodes()})
        scheme = one_shot_scheme(inst, delta_tilde=3)
        decomposition = carve_decomposition(path5)
        ledger = CostLedger()
        charge_cluster_loop(ledger, scheme, decomposition)
        assert ledger.by_stage()["lemma3.4-seed-fixing"] == 0


class TestAggregationEdgeCases:
    def test_single_node_tree(self):
        g = normalize_graph(nx.path_graph(2))
        totals, sim = run_tree_sum(g, {0: -1}, {0: (5,)})
        assert totals[0] == (5,)

    def test_missing_vector_defaults_zero(self):
        g = normalize_graph(nx.path_graph(3))
        parent = {0: -1, 1: 0, 2: 1}
        totals, _ = run_tree_sum(g, parent, {1: (7,)})
        assert totals[0] == (7,)

    def test_nodes_outside_tree_idle(self):
        g = normalize_graph(nx.path_graph(4))
        parent = {0: -1, 1: 0}  # nodes 2, 3 take no part
        totals, sim = run_tree_sum(g, parent, {0: (1,), 1: (2,)})
        assert totals[0] == (3,)
        assert 2 not in totals and 3 not in totals
