"""Iterative color reduction (the [BEK15] elimination-style final stage).

Given a proper ``C``-coloring, colors are eliminated from the top: in
iteration ``c`` (for ``c = C-1 .. target``), every node of color ``c``
simultaneously recolors itself with the smallest color not used in its
neighborhood.  Nodes of one color class form an independent set, so the
simultaneous step stays proper, and after the sweep at most
``max(target, Delta + 1)`` colors remain.  Each iteration is one CONGEST
round (nodes already know neighbor colors and announce changes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import networkx as nx

from repro.coloring.greedy import validate_coloring


@dataclass(frozen=True)
class ReductionResult:
    colors: Dict[int, int]
    num_colors: int
    rounds: int


def reduce_coloring(
    graph: nx.Graph, colors: Dict[int, int], target: int | None = None
) -> ReductionResult:
    """Reduce a proper coloring to at most ``max(target, Delta+1)`` colors.

    ``target`` defaults to ``Delta + 1``.  Runs in ``C - target`` rounds
    (one per eliminated color class).
    """
    validate_coloring(graph, colors)
    delta = max((d for _, d in graph.degree()), default=0)
    goal = max(target if target is not None else delta + 1, delta + 1)
    current = dict(colors)
    num_colors = max(current.values()) + 1 if current else 0
    rounds = 0
    for c in range(num_colors - 1, goal - 1, -1):
        movers = [v for v, col in current.items() if col == c]
        if not movers:
            continue
        rounds += 1
        updates = {}
        for v in movers:
            taken = {current[u] for u in graph.neighbors(v)}
            color = 0
            while color in taken:
                color += 1
            updates[v] = color
        current.update(updates)
    validate_coloring(graph, current)
    return ReductionResult(
        colors=current,
        num_colors=len(set(current.values())) if current else 0,
        rounds=rounds,
    )
