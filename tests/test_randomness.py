"""GF(2^m) arithmetic and k-wise independent coins (Lemma 3.3)."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RandomnessError
from repro.randomness.gf2 import GF2m, find_irreducible, _is_irreducible
from repro.randomness.kwise import KWiseCoins, seed_bits_required


class TestGF2m:
    def test_known_irreducibles(self):
        # x^2+x+1 and x^3+x+1 are the classic small irreducibles.
        assert find_irreducible(2) == 0b111
        assert find_irreducible(3) == 0b1011

    def test_rabin_rejects_reducible(self):
        # x^2 + 1 = (x+1)^2 over GF(2).
        assert not _is_irreducible(0b101, 2)

    def test_rejects_out_of_range_degree(self):
        with pytest.raises(RandomnessError):
            find_irreducible(0)
        with pytest.raises(RandomnessError):
            find_irreducible(65)

    @pytest.mark.parametrize("m", [2, 3, 4, 8])
    def test_field_axioms_small(self, m):
        f = GF2m(m)
        elements = list(range(min(f.order, 16)))
        for a, b in itertools.product(elements, repeat=2):
            assert f.mul(a, b) == f.mul(b, a)
            assert f.add(a, b) == f.add(b, a)
            assert f.mul(a, 1) == a
            assert f.mul(a, 0) == 0

    def test_nonzero_elements_invertible(self):
        f = GF2m(4)
        for a in range(1, f.order):
            # a^(2^m - 1) = 1 for nonzero a in GF(2^m).
            assert f.pow(a, f.order - 1) == 1

    def test_distributivity_sampled(self):
        f = GF2m(8)
        rng = random.Random(1)
        for _ in range(100):
            a, b, c = (rng.randrange(f.order) for _ in range(3))
            assert f.mul(a, f.add(b, c)) == f.add(f.mul(a, b), f.mul(a, c))

    def test_eval_poly_horner(self):
        f = GF2m(4)
        coeffs = [3, 1, 7]  # 3 + x + 7x^2
        for point in range(f.order):
            manual = f.add(
                f.add(coeffs[0], f.mul(coeffs[1], point)),
                f.mul(coeffs[2], f.mul(point, point)),
            )
            assert f.eval_poly(coeffs, point) == manual

    def test_element_validation(self):
        f = GF2m(4)
        with pytest.raises(RandomnessError):
            f.element(16)
        with pytest.raises(RandomnessError):
            f.element(-1)


class TestKWiseCoins:
    def test_seed_length(self):
        assert seed_bits_required(4, 16) == 64
        fam = KWiseCoins(k=4, m=8, rng=random.Random(0))
        assert fam.seed_length == 32

    def test_explicit_seed_round_trip(self):
        bits = [1, 0] * 16  # k=4, m=8 -> 32 bits
        fam = KWiseCoins(k=4, m=8, seed_bits=bits)
        fam2 = KWiseCoins(k=4, m=8, seed_bits=bits)
        for i in range(10):
            assert fam.uniform_value(i) == fam2.uniform_value(i)

    def test_invalid_seed_rejected(self):
        with pytest.raises(RandomnessError):
            KWiseCoins(k=2, m=4, seed_bits=[0, 1, 2, 0, 0, 0, 0, 0])
        with pytest.raises(RandomnessError):
            KWiseCoins(k=2, m=4, seed_bits=[0, 1])
        with pytest.raises(RandomnessError):
            KWiseCoins(k=0, m=4)

    def test_exact_pairwise_uniformity(self):
        """Over ALL seeds of a tiny family, every pair of outputs is exactly
        uniform on GF(2^m)^2 — the defining property of 2-wise independence."""
        m, k = 2, 2
        counts = {}
        total = 0
        for seed_int in range(1 << (k * m)):
            bits = [(seed_int >> i) & 1 for i in range(k * m)]
            fam = KWiseCoins(k=k, m=m, seed_bits=bits)
            pair = (fam.uniform_value(0), fam.uniform_value(1))
            counts[pair] = counts.get(pair, 0) + 1
            total += 1
        assert len(counts) == 16  # all (value0, value1) pairs occur
        assert set(counts.values()) == {total // 16}

    def test_exact_triplewise_uniformity(self):
        m, k = 2, 3
        counts = {}
        for seed_int in range(1 << (k * m)):
            bits = [(seed_int >> i) & 1 for i in range(k * m)]
            fam = KWiseCoins(k=k, m=m, seed_bits=bits)
            triple = tuple(fam.uniform_value(i) for i in (0, 1, 2))
            counts[triple] = counts.get(triple, 0) + 1
        assert set(counts.values()) == {1}  # perfectly uniform on 64 triples

    def test_coin_probability_exact(self):
        """Marginal coin probability equals numerator / 2^m exactly."""
        m, k = 3, 2
        numerator = 3  # Pr = 3/8
        ones = 0
        total = 0
        for seed_int in range(1 << (k * m)):
            bits = [(seed_int >> i) & 1 for i in range(k * m)]
            fam = KWiseCoins(k=k, m=m, seed_bits=bits)
            ones += fam.coin(5, numerator)
            total += 1
        assert ones / total == pytest.approx(numerator / (1 << m))

    def test_coin_numerator_validation(self):
        fam = KWiseCoins(k=2, m=4, rng=random.Random(0))
        with pytest.raises(RandomnessError):
            fam.coin(0, 17)
        with pytest.raises(RandomnessError):
            fam.coin(0, -1)

    def test_coin_float_snaps_down(self):
        fam = KWiseCoins(k=2, m=4, rng=random.Random(0))
        # 0.999 snaps to 15/16: at least one seed value (15) must fail.
        assert fam.coin_float(0, 1.0) in (True, False)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 6), st.integers(2, 8))
    def test_values_in_field_range(self, k, m):
        fam = KWiseCoins(k=k, m=m, rng=random.Random(k * 31 + m))
        for i in range(min(1 << m, 20)):
            assert 0 <= fam.uniform_value(i) < (1 << m)

    def test_statistical_mean(self):
        """Large-family sanity: empirical coin mean tracks the probability."""
        rng = random.Random(9)
        fam = KWiseCoins(k=8, m=16, rng=rng)
        p_num = 1 << 14  # 1/4
        hits = sum(fam.coin(i, p_num) for i in range(4000))
        assert 0.2 <= hits / 4000 <= 0.3
