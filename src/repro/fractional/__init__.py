"""Part I of the pipelines: (1+eps)-approximate fractional dominating sets
with fractionality ``eps / (2 Delta~)`` (Lemma 2.1, after [KMW06]).

Two interchangeable providers (DESIGN.md Section 3 item 2):

* ``"lp"`` — exact LP optimum via ``scipy.optimize.linprog`` (HiGHS), the
  oracle used for approximation-ratio measurement; CONGEST rounds are
  charged at the [KMW06] rate.
* ``"distributed"`` — a threshold water-filling covering solver that runs
  round-by-round on plain state and whose round count is measured; its
  quality relative to the LP optimum is an experiment output (E3).

Both are followed by the Lemma 2.1 *raising* step, which lifts every value
to at least ``eps/(2 Delta~)``, costing at most an ``(1 + eps/2)`` factor
because the optimum is at least ``n / Delta~``.
"""

from repro.fractional.lp import LPSolution, lp_fractional_mds, solve_covering_lp
from repro.fractional.distributed import (
    DistributedLPResult,
    distributed_fractional_mds,
)
from repro.fractional.raising import (
    InitialFDS,
    kmw06_initial_fds,
    raise_fractionality,
    repair_feasibility,
)

__all__ = [
    "LPSolution",
    "lp_fractional_mds",
    "solve_covering_lp",
    "DistributedLPResult",
    "distributed_fractional_mds",
    "InitialFDS",
    "kmw06_initial_fds",
    "raise_fractionality",
    "repair_feasibility",
]
