"""Per-constraint pessimistic estimators ``phi_v(theta) >= Pr(E_v | theta)``.

Each estimator tracks, for one covering constraint, the contribution of
already-decided (or deterministic) variables (``fixed_sum``) and the set of
still-free coins.  It answers two queries in O(1):

* ``phi()`` — the current upper bound on the violation probability;
* ``phi_if(u, success)`` — the bound after hypothetically fixing coin ``u``.

Three modes:

``exact-product``
    Valid when every free coin's success value ``w_u`` alone meets the
    demand ``c`` (one-shot rounding: ``w = 1 >= c``).  Then the constraint
    is violated iff *no* free coin succeeds and the fixed contribution is
    short, so ``Pr(E | theta) = [fixed < c] * prod (1 - p_u)`` exactly.

``chernoff``
    ``phi = min(1, exp(t (c - fixed)) * prod E[exp(-t X_u)])`` for a fixed
    per-constraint ``t >= 0`` chosen once by ternary search.  This is the
    standard MGF bound (the paper's Theorem 3.11 route); it upper-bounds the
    violation probability for every ``t`` and is a supermartingale under
    coin fixing by Jensen's inequality on the concave map ``min(1, .)``.
    Whenever the fixed contribution already meets the demand the bound
    collapses to the exact value 0.

``exact-enum``
    Exponential enumeration over free coins; a test oracle.

All modes return exact 0 once ``fixed_sum >= c`` (the constraint can never
be violated again since values are non-negative).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import DerandomizationError

#: Refresh the running log-product from scratch after this many incremental
#: updates to keep float drift below the guarantee-checking tolerance.
_REFRESH_EVERY = 512


@dataclass(frozen=True)
class EstimatorConfig:
    """How constraint estimators are instantiated.

    mode:
        ``"auto"`` picks ``exact-product`` when valid, otherwise
        ``chernoff``.  Explicit modes force one flavor (``exact-enum`` only
        for tiny instances).
    t_search_hi:
        Upper end of the ternary-search window for the Chernoff parameter.
    enum_limit:
        Maximum number of free coins ``exact-enum`` will enumerate.
    """

    mode: str = "auto"
    t_search_hi: float = 500.0
    enum_limit: int = 18

    def __post_init__(self) -> None:
        if self.mode not in ("auto", "exact-product", "chernoff", "exact-enum"):
            raise DerandomizationError(f"unknown estimator mode {self.mode!r}")


class ConstraintEstimator:
    """Tracks ``phi`` for one constraint through the fixing process."""

    __slots__ = (
        "cid",
        "c",
        "mode",
        "t",
        "fixed_sum",
        "free",
        "_log_prod",
        "_updates",
    )

    def __init__(
        self,
        cid: int,
        c: float,
        deterministic_sum: float,
        free_coins: Dict[int, Tuple[float, float]],
        config: EstimatorConfig,
    ):
        """``free_coins`` maps variable id -> ``(w, p)`` with ``0 < p < 1``
        and success value ``w = x/p > 0``."""
        self.cid = cid
        self.c = c
        self.fixed_sum = deterministic_sum
        self.free: Dict[int, Tuple[float, float]] = dict(free_coins)
        for u, (w, p) in self.free.items():
            if not (0.0 < p < 1.0) or w <= 0.0:
                raise DerandomizationError(
                    f"constraint {cid}: coin {u} has invalid (w={w}, p={p})"
                )

        mode = config.mode
        if mode == "auto":
            single_success_covers = all(
                w >= self.c - 1e-12 for (w, _) in self.free.values()
            )
            mode = "exact-product" if single_success_covers else "chernoff"
        if mode == "exact-product":
            bad = [u for u, (w, _) in self.free.items() if w < self.c - 1e-12]
            if bad:
                raise DerandomizationError(
                    f"constraint {cid}: exact-product mode requires every free "
                    f"success to cover c={self.c}; offending coins {bad[:5]}"
                )
        if mode == "exact-enum" and len(self.free) > config.enum_limit:
            raise DerandomizationError(
                f"constraint {cid}: {len(self.free)} free coins exceed the "
                f"enumeration limit {config.enum_limit}"
            )
        self.mode = mode

        self.t = 0.0
        if mode == "chernoff":
            self.t = self._choose_t(config.t_search_hi)
        self._log_prod = self._full_log_prod()
        self._updates = 0

    # -- internals -----------------------------------------------------------

    def _coin_log_factor(self, w: float, p: float) -> float:
        """``log`` of this coin's product term under the current mode."""
        if self.mode == "exact-product":
            return math.log1p(-p)
        # chernoff: log E[exp(-t X_u)] = log(p e^{-tw} + 1 - p)
        return math.log(p * math.exp(-self.t * w) + (1.0 - p))

    def _full_log_prod(self) -> float:
        if self.mode == "exact-enum":
            return 0.0
        return sum(self._coin_log_factor(w, p) for (w, p) in self.free.values())

    def _choose_t(self, hi: float) -> float:
        """Ternary-search the convex exponent ``g(t)`` for the initial state."""
        gap = self.c - self.fixed_sum
        if gap <= 1e-12 or not self.free:
            return 0.0

        def g(t: float) -> float:
            total = t * gap
            for w, p in self.free.values():
                total += math.log(p * math.exp(-t * w) + (1.0 - p))
            return total

        lo_t, hi_t = 0.0, hi
        for _ in range(80):
            m1 = lo_t + (hi_t - lo_t) / 3.0
            m2 = hi_t - (hi_t - lo_t) / 3.0
            if g(m1) <= g(m2):
                hi_t = m2
            else:
                lo_t = m1
        return 0.5 * (lo_t + hi_t)

    # -- queries -------------------------------------------------------------

    def satisfied(self) -> bool:
        """Deterministically satisfied: fixed contributions meet the demand."""
        return self.fixed_sum >= self.c - 1e-12

    def phi(self) -> float:
        """Current upper bound on ``Pr(E | theta)``."""
        if self.satisfied():
            return 0.0
        if self.mode == "exact-enum":
            return self._enumerate(self.fixed_sum, dict(self.free))
        if self.mode == "exact-product":
            return math.exp(self._log_prod)
        exponent = self.t * (self.c - self.fixed_sum) + self._log_prod
        return min(1.0, math.exp(min(exponent, 50.0)))

    def phi_if(self, u: int, success: bool) -> float:
        """Bound after hypothetically fixing coin ``u`` (not committed)."""
        if u not in self.free:
            raise DerandomizationError(
                f"constraint {self.cid}: coin {u} is not free"
            )
        w, p = self.free[u]
        new_fixed = self.fixed_sum + (w if success else 0.0)
        if new_fixed >= self.c - 1e-12:
            return 0.0
        if self.mode == "exact-enum":
            rest = {k: v for k, v in self.free.items() if k != u}
            return self._enumerate(new_fixed, rest)
        log_rest = self._log_prod - self._coin_log_factor(w, p)
        if self.mode == "exact-product":
            # success with w < c impossible here (mode guarantees w >= c, so
            # new_fixed >= c was already handled above); failure keeps fixed.
            return math.exp(min(0.0, log_rest))
        exponent = self.t * (self.c - new_fixed) + log_rest
        return min(1.0, math.exp(min(exponent, 50.0)))

    def phi_given(self, assignments: Dict[int, bool]) -> float:
        """Bound with several free coins hypothetically fixed at once.

        Used by the seed-level derandomization (Lemma 3.4), where one
        cluster's coins are all determined by a candidate seed and the
        remaining (other-cluster) coins keep their product factors.  Not
        committed; ``assignments`` maps coin id -> success.
        """
        new_fixed = self.fixed_sum
        removed_log = 0.0
        for u, success in assignments.items():
            if u not in self.free:
                raise DerandomizationError(
                    f"constraint {self.cid}: coin {u} is not free"
                )
            w, p = self.free[u]
            if success:
                new_fixed += w
            if self.mode != "exact-enum":
                removed_log += self._coin_log_factor(w, p)
        if new_fixed >= self.c - 1e-12:
            return 0.0
        if self.mode == "exact-enum":
            rest = {k: v for k, v in self.free.items() if k not in assignments}
            return self._enumerate(new_fixed, rest)
        log_rest = self._log_prod - removed_log
        if self.mode == "exact-product":
            return math.exp(min(0.0, log_rest))
        exponent = self.t * (self.c - new_fixed) + log_rest
        return min(1.0, math.exp(min(exponent, 50.0)))

    def _enumerate(self, fixed: float, coins: Dict[int, Tuple[float, float]]) -> float:
        items = list(coins.values())
        total = 0.0
        for mask in range(1 << len(items)):
            prob = 1.0
            sum_x = fixed
            for i, (w, p) in enumerate(items):
                if mask >> i & 1:
                    prob *= p
                    sum_x += w
                else:
                    prob *= 1.0 - p
            if sum_x < self.c - 1e-12:
                total += prob
        return total

    # -- commits -------------------------------------------------------------

    def fix(self, u: int, success: bool) -> None:
        """Commit coin ``u``'s outcome."""
        if u not in self.free:
            raise DerandomizationError(
                f"constraint {self.cid}: coin {u} is not free"
            )
        w, p = self.free.pop(u)
        if success:
            self.fixed_sum += w
        if self.mode != "exact-enum":
            self._log_prod -= self._coin_log_factor(w, p)
            self._updates += 1
            if self._updates >= _REFRESH_EVERY:
                self._log_prod = self._full_log_prod()
                self._updates = 0

    def involves(self, u: int) -> bool:
        return u in self.free
