"""The named benchmark suite used by every experiment.

One place defines the (family, size) grid so all tables in
``benchmarks/`` sweep the same instances and rows are comparable across
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Sequence

import networkx as nx

from repro.errors import GraphError
from repro.graphs import generators


@dataclass(frozen=True)
class SuiteInstance:
    """A named, reproducible benchmark graph."""

    name: str
    family: str
    graph: nx.Graph

    @property
    def n(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def max_degree(self) -> int:
        return max((d for _, d in self.graph.degree()), default=0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SuiteInstance({self.name}, n={self.n}, Delta={self.max_degree})"


_FAMILY_BUILDERS: Dict[str, Callable[[int, int], nx.Graph]] = {
    "gnp": lambda n, seed: generators.gnp_graph(n, p=min(0.5, 4.0 / n), seed=seed),
    "gnp-dense": lambda n, seed: generators.gnp_graph(
        n, p=min(0.8, 12.0 / n), seed=seed
    ),
    "geometric": lambda n, seed: generators.geometric_graph(n, seed=seed),
    "ba": lambda n, seed: generators.preferential_attachment_graph(n, m=3, seed=seed),
    "grid": lambda n, seed: generators.grid_graph(
        max(2, int(round(n ** 0.5))), max(2, int(round(n ** 0.5)))
    ),
    "tree": lambda n, seed: generators.random_tree(n, seed=seed),
    "caterpillar": lambda n, seed: generators.caterpillar_graph(
        max(2, n // 4), legs_per_node=3
    ),
    "regular": lambda n, seed: generators.regular_graph(
        n if n % 2 == 0 else n + 1, d=6, seed=seed
    ),
}


def families() -> List[str]:
    """Names of all suite families."""
    return sorted(_FAMILY_BUILDERS)


def suite_instance(family: str, n: int, seed: int = 0) -> SuiteInstance:
    """Build one reproducible suite instance."""
    if family not in _FAMILY_BUILDERS:
        raise GraphError(
            f"unknown family {family!r}; known: {', '.join(families())}"
        )
    graph = _FAMILY_BUILDERS[family](n, seed)
    return SuiteInstance(name=f"{family}-{n}", family=family, graph=graph)


def benchmark_suite(
    sizes: Sequence[int] = (60, 120, 240),
    families_subset: Sequence[str] | None = None,
    seed: int = 7,
) -> Iterator[SuiteInstance]:
    """Yield the standard sweep: every family at every size.

    Families whose builders round ``n`` (grids, regular graphs) may differ
    slightly from the requested size; the instance name reports the request
    and ``instance.n`` the truth.
    """
    chosen = list(families_subset) if families_subset else families()
    for family in chosen:
        for n in sizes:
            yield suite_instance(family, n, seed=seed)
