"""Check that intra-repo markdown links and anchors resolve.

Scans the repo's markdown documentation (``README.md``, ``docs/*.md``,
``ROADMAP.md``, ``CHANGES.md``) for ``[text](target)`` links and verifies:

* relative file targets exist (relative to the linking file);
* ``#anchor`` fragments — on the same file or a linked markdown file —
  match a heading's GitHub-style slug in the target document.

External links (``http(s)://``, ``mailto:``) are not fetched.  Exit code
is the number of broken links; CI's docs job runs this as a gate, and
``tests/test_docs.py`` runs it in tier-1 so broken links fail locally
first.

Usage:
    python scripts/check_docs_links.py [root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: ``[text](target)`` — excluding images; tolerates titles after the URL.
LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)

DOC_GLOBS = ("README.md", "ROADMAP.md", "CHANGES.md", "docs/*.md")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a markdown heading."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    text = re.sub(r"[^\w\- ]", "", text.lower())
    return re.sub(r" ", "-", text)


def anchors_of(path: Path) -> set:
    content = path.read_text(encoding="utf-8")
    return {github_slug(h) for h in HEADING_RE.findall(content)}


def doc_files(root: Path) -> list:
    files: list = []
    for pattern in DOC_GLOBS:
        files.extend(sorted(root.glob(pattern)))
    return files


def check(root: Path) -> list:
    """Return a list of human-readable broken-link descriptions."""
    broken = []
    for doc in doc_files(root):
        content = doc.read_text(encoding="utf-8")
        for match in LINK_RE.finditer(content):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, fragment = target.partition("#")
            if path_part:
                resolved = (doc.parent / path_part).resolve()
                if not resolved.exists():
                    broken.append(f"{doc}: missing file {target!r}")
                    continue
            else:
                resolved = doc
            if fragment:
                if resolved.suffix.lower() != ".md" or not resolved.is_file():
                    continue  # anchors into non-markdown targets: skip
                if fragment.lower() not in anchors_of(resolved):
                    broken.append(
                        f"{doc}: anchor #{fragment} not found in {resolved.name}"
                    )
    return broken


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = Path(argv[0]) if argv else Path(__file__).resolve().parent.parent
    broken = check(root)
    for line in broken:
        print(f"BROKEN  {line}")
    checked = len(doc_files(root))
    print(f"checked {checked} markdown files: {len(broken)} broken links")
    # Exit status, not a count: raw counts wrap modulo 256 (256 broken
    # links would exit 0 and green-light the CI gate).
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
