"""Binary finite field ``GF(2^m)`` arithmetic on Python integers.

Field elements are ``m``-bit integers; addition is XOR; multiplication is
carry-less multiplication reduced modulo a fixed irreducible polynomial.  The
irreducible modulus is found deterministically at construction time with
Rabin's irreducibility test, so the implementation is self-contained for any
``m`` up to 64 (the library uses ``m`` in the 8..32 range).
"""

from __future__ import annotations

from functools import lru_cache
from typing import List

from repro.errors import RandomnessError


def _poly_degree(p: int) -> int:
    return p.bit_length() - 1


def _poly_mulmod(a: int, b: int, mod: int) -> int:
    """Carry-less multiply ``a * b`` reduced modulo polynomial ``mod``."""
    deg = _poly_degree(mod)
    result = 0
    while b:
        if b & 1:
            result ^= a
        b >>= 1
        a <<= 1
        if a >> deg & 1:
            a ^= mod
    return result


def _poly_mod(a: int, mod: int) -> int:
    """Reduce polynomial ``a`` modulo ``mod``."""
    dm = _poly_degree(mod)
    da = _poly_degree(a)
    while da >= dm and a:
        a ^= mod << (da - dm)
        da = _poly_degree(a)
    return a


def _poly_gcd(a: int, b: int) -> int:
    while b:
        a, b = b, _poly_mod(a, b)
    return a


def _poly_pow_x(exponent_log2: int, mod: int) -> int:
    """Compute ``x^(2^exponent_log2) mod mod`` by repeated squaring."""
    result = 2  # the polynomial "x"
    for _ in range(exponent_log2):
        result = _poly_mulmod(result, result, mod)
    return result


def _prime_factors(n: int) -> List[int]:
    factors = []
    d = 2
    while d * d <= n:
        if n % d == 0:
            factors.append(d)
            while n % d == 0:
                n //= d
        d += 1
    if n > 1:
        factors.append(n)
    return factors


def _is_irreducible(poly: int, m: int) -> bool:
    """Rabin's irreducibility test for a degree-``m`` polynomial over GF(2)."""
    # x^(2^m) == x (mod poly)
    if _poly_pow_x(m, poly) != 2:
        return False
    for q in _prime_factors(m):
        h = _poly_pow_x(m // q, poly) ^ 2  # x^(2^(m/q)) - x
        if _poly_gcd(poly, h) != 1:
            return False
    return True


@lru_cache(maxsize=None)
def find_irreducible(m: int) -> int:
    """Smallest irreducible degree-``m`` polynomial over GF(2) (as an int).

    Deterministic: scans candidates ``x^m + r`` for increasing ``r`` with an
    odd constant term (a necessary condition), so repeated runs agree.
    """
    if m < 1 or m > 64:
        raise RandomnessError(f"field degree m must be in 1..64, got {m}")
    if m == 1:
        return 0b11  # x + 1
    top = 1 << m
    for r in range(1, top, 2):  # constant term must be 1
        candidate = top | r
        if _is_irreducible(candidate, m):
            return candidate
    raise RandomnessError(f"no irreducible polynomial of degree {m} found")


class GF2m:
    """The field ``GF(2^m)`` with fixed deterministic modulus.

    Elements are ints in ``[0, 2^m)``.
    """

    def __init__(self, m: int):
        self.m = m
        self.modulus = find_irreducible(m)
        self.order = 1 << m

    def add(self, a: int, b: int) -> int:
        return a ^ b

    def mul(self, a: int, b: int) -> int:
        return _poly_mulmod(a, b, self.modulus)

    def pow(self, a: int, e: int) -> int:
        result = 1
        base = a
        while e:
            if e & 1:
                result = self.mul(result, base)
            base = self.mul(base, base)
            e >>= 1
        return result

    def eval_poly(self, coefficients: List[int], point: int) -> int:
        """Horner evaluation of ``sum coefficients[i] * point^i``."""
        acc = 0
        for c in reversed(coefficients):
            acc = self.mul(acc, point) ^ c
        return acc

    def element(self, value: int) -> int:
        """Validate/wrap an integer as a field element."""
        if not 0 <= value < self.order:
            raise RandomnessError(
                f"value {value} outside GF(2^{self.m}) range [0, {self.order})"
            )
        return value
