"""E1 — Theorem 1.1: deterministic MDS via network decomposition.

For every suite instance: run the decomposition-route pipeline, certify
the output size against the oracle's strongest bound (exact/ILP optimum
where affordable, the LP optimum otherwise — see :mod:`repro.oracle`) and
the ``(1+eps)(1+ln(Delta+1))`` guarantee, and report simulated + charged
rounds.  The guarantee must hold on every row (checked), and the measured
ratio should sit near the greedy baseline's (the shape claim: the
deterministic algorithm matches the quality of the classic approaches).
"""

from __future__ import annotations

from repro.analysis.bounds import theorem11_approximation_bound
from repro.analysis.verify import is_dominating_set
from repro.baselines.greedy import greedy_mds
from repro.experiments.harness import ExperimentReport, standard_suite
from repro.fractional.lp import lp_fractional_mds
from repro.mds.deterministic import approx_mds_decomposition
from repro.oracle import certify, topology_cache_key

COLUMNS = [
    "graph", "n", "Delta", "lp_opt", "opt", "ds", "greedy", "ratio",
    "ratio_vs_opt", "bound", "sim_rounds", "charged_rounds",
]


def run(fast: bool = True, eps: float = 0.5) -> ExperimentReport:
    report = ExperimentReport(
        experiment="E1",
        claim="Theorem 1.1: (1+eps)(1+ln(D+1))-approx MDS via decomposition",
        columns=COLUMNS,
    )
    for inst in standard_suite(fast):
        lp = lp_fractional_mds(inst.graph)
        result = approx_mds_decomposition(inst.graph, eps=eps)
        greedy = greedy_mds(inst.graph)
        bound = theorem11_approximation_bound(eps, inst.max_degree)
        ratio = result.size / max(lp.optimum, 1e-9)
        cert = certify(
            inst.graph,
            result.size,
            cache_key=topology_cache_key(inst.family, inst.n, 7),
        )
        report.add_row(
            graph=inst.name,
            n=inst.n,
            Delta=inst.max_degree,
            lp_opt=round(lp.optimum, 2),
            opt=cert.opt if cert.opt is not None else "-",
            ds=result.size,
            greedy=len(greedy),
            ratio=round(ratio, 3),
            ratio_vs_opt=(
                round(cert.ratio_vs_opt, 3)
                if cert.ratio_vs_opt is not None
                else "-"
            ),
            bound=round(bound, 3),
            sim_rounds=result.ledger.simulated_rounds,
            charged_rounds=result.ledger.charged_rounds,
        )
        report.check("dominating", is_dominating_set(inst.graph, result.dominating_set))
        report.check("within_bound", ratio <= bound + 1e-9)
        report.check("near_greedy", result.size <= 2 * len(greedy) + 2)
        # Against the certified optimum the paper bound must hold a
        # fortiori (OPT >= LP optimum, so ratio_vs_opt <= ratio).
        if cert.ratio_vs_opt is not None:
            report.check("within_bound_vs_opt", cert.ratio_vs_opt <= bound + 1e-9)
    report.notes.append(
        "bound is vs LP optimum (a lower bound on OPT); opt/ratio_vs_opt "
        "come from the certification oracle where a ladder rung proved the "
        "optimum; rounds split into simulated (measured) and charged "
        "(substituted oracles, paper formulas)"
    )
    return report


def run_seed_sweep(
    fast: bool = True,
    strategy: str = "batch",
    family: str = "gnp",
    n: int = 60,
    certify: str | None = None,
) -> ExperimentReport:
    """E1's statistical ensemble: the simulated MDS baseline over many seeds.

    The quality table above runs one instance per suite cell; the paper's
    Theorem 1.1 story is statistical — the guarantee holds on *every*
    member of an ensemble of seeded topologies.  This sweep drives the
    simulated distributed greedy MDS program over the whole seed ensemble
    through the batch runner (``strategy="batch"`` stacks all seeds into
    one message plane instead of instantiating per-node programs per
    seed), and checks the domination size window on every seed:
    ``n / (Delta + 1) <= |DS| <= n`` — the lower bound every dominating
    set obeys, the upper bound certifying a non-degenerate output.

    ``certify`` (an oracle mode, e.g. ``"auto"``) routes every record
    through the certification oracle: the report gains ratio columns and
    the ``quality_within_bound`` check gating each seed's measured ratio
    against the greedy guarantee ``ln(Delta+1)+1``.
    """
    from repro.api import Experiment
    from repro.experiments.harness import (
        SEED_SWEEP_COUNT_FAST,
        SEED_SWEEP_COUNT_FULL,
        fast_mode,
        seed_sweep_report,
    )

    if fast is None:
        fast = fast_mode()
    experiment = (
        Experiment("greedy")
        .on(family)
        .sizes(n)
        .engine("vector")
        .seeds(SEED_SWEEP_COUNT_FAST if fast else SEED_SWEEP_COUNT_FULL)
        .strategy(strategy)
    )
    if certify is not None:
        experiment.certify(certify)
    sweep = experiment.run()
    report = seed_sweep_report(
        sweep.records,
        experiment="E1-seeds",
        claim="simulated greedy MDS ensemble: |DS| within the domination window on every seed",
        value_key="ds_size",
    )
    for rec in sweep:
        if not rec.ok:
            continue
        metrics = rec.metrics
        lower = metrics["n"] / (metrics["max_degree"] + 1)
        report.check("ds_lower_bound", metrics["ds_size"] >= lower - 1e-9)
        report.check("ds_nondegenerate", 0 < metrics["ds_size"] <= metrics["n"])
    return report
