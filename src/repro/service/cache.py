"""The service's two-tier deterministic cache: topologies and results.

Both tiers lean on the same fact the oracle cache (PR 7) leans on: the
suite generator is a pure function of ``(family, n, seed, params)`` and
every registered program is a pure function of the generated graph, so a
cell's topology and its success record never change between runs.  Caching
is therefore *exact* — a hit returns precisely what a fresh run would have
produced (timing fields aside) — and the only policy question is capacity,
which both tiers answer with an LRU bound.

**Topology tier** (:class:`TopologyCache`).  Keyed by
:attr:`~repro.experiments.runner.GridCell.topology_key`; backed by the
existing shared-memory CSR transport: a miss generates the graph once and
publishes its CSR arrays through
:meth:`repro.experiments.sharedmem.SharedTopology.publish`, and every use
— hit or miss — reconstructs a fresh, independently-owned
:class:`~repro.congest.network.Network` via
:func:`~repro.experiments.sharedmem.attach_network`.  Reconstruction from
flat CSR skips generation + normalization (the dominant fixed cost) while
giving each batch window a network no other window has mutated; because
the blocks are ordinary shared memory, the same handles could be handed to
pool workers unchanged if window execution ever moves out of process.
Eviction and :meth:`~TopologyCache.clear` unlink the blocks.

**Result tier** (:class:`ResultCache`).  Keyed by the full cell identity —
the :class:`~repro.experiments.runner.GridCell` itself: family, n, seed
(the topology identity) plus program and engine.  Stores only *success*
records, normalized to the solo shape (no ``batch``/``plan``/``quality``
annotations — those describe one particular execution, not the cell), so a
hit is served exactly as a solo ``strategy="cell"`` run would have
returned it.  Per-request opt-out and hit/miss counters live at the
service layer; this class only counts.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional

from repro.api.records import RunRecord
from repro.congest.network import Network
from repro.experiments.runner import GridCell, build_network
from repro.experiments.sharedmem import SharedTopology, attach_network

__all__ = ["ResultCache", "TopologyCache", "normalized_record"]


def normalized_record(record: RunRecord) -> RunRecord:
    """Strip a record to the solo-run shape (drop execution annotations).

    ``batch``, ``plan`` and ``quality`` blocks describe *how* one
    particular dispatch produced the record (stack width, scheduler
    decision, caller's oracle mode) — not properties of the cell — so the
    cacheable identity-determined payload is cell/ok/wall_s/metrics/error
    only.  The copy shares nothing mutable with its source.
    """
    return RunRecord(
        cell=record.cell,
        ok=record.ok,
        wall_s=record.wall_s,
        metrics=dict(record.metrics) if record.metrics is not None else None,
        error=dict(record.error) if record.error is not None else None,
    )


class TopologyCache:
    """LRU of published topologies, one shared-memory publish per identity."""

    def __init__(self, max_entries: int = 64):
        self.max_entries = max(1, int(max_entries))
        self._entries: "OrderedDict[tuple, Optional[SharedTopology]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def network_for(self, cell: GridCell) -> Optional[Network]:
        """A fresh :class:`Network` for the cell's topology (or ``None``).

        ``None`` means the topology could not be built or attached — the
        caller's :func:`~repro.experiments.runner._run_cell_record` then
        regenerates (and structurally records) the failure itself, so a
        bad family name degrades to a per-cell error record, never to a
        service crash.  Failed publishes are cached as ``None`` too:
        a client resubmitting a bad cell must not re-pay generation.
        """
        key = cell.topology_key
        if key in self._entries:
            self.hits += 1
            self._entries.move_to_end(key)
        else:
            self.misses += 1
            try:
                topology: Optional[SharedTopology] = SharedTopology.publish(
                    build_network(cell)
                )
            except Exception:  # noqa: BLE001 - recorded per cell downstream
                topology = None
            self._entries[key] = topology
            while len(self._entries) > self.max_entries:
                _evicted_key, evicted = self._entries.popitem(last=False)
                if evicted is not None:
                    evicted.unlink()
        topology = self._entries[key]
        if topology is None:
            return None
        try:
            return attach_network(topology.handle)
        except Exception:  # pragma: no cover - attach races are host-specific
            return None

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "entries": len(self)}

    def clear(self) -> None:
        """Unlink every published block and reset the counters."""
        for topology in self._entries.values():
            if topology is not None:
                topology.unlink()
        self._entries.clear()
        self.hits = 0
        self.misses = 0


class ResultCache:
    """LRU of normalized success records keyed by full cell identity."""

    def __init__(self, max_entries: int = 1024):
        self.max_entries = max(1, int(max_entries))
        self._entries: "OrderedDict[GridCell, Dict[str, object]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, cell: GridCell) -> bool:
        return cell in self._entries

    def get(self, cell: GridCell) -> Optional[RunRecord]:
        """The cached record for ``cell`` as a fresh object, or ``None``.

        Entries are stored as legacy dicts and parsed back per hit, so
        every caller owns an independent :class:`RunRecord` — a consumer
        mutating its copy (e.g. attaching a ``quality`` block) cannot
        poison the cache.
        """
        stored = self._entries.get(cell)
        if stored is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(cell)
        return RunRecord.from_dict(stored)

    def store(self, record: RunRecord) -> bool:
        """Cache a success record (normalized); failures are never cached.

        Failure records are excluded because they are the one place
        determinism can be violated from outside the cell — a transient
        host condition (memory pressure killing a solve, say) must not be
        replayed forever to every future requester.
        """
        if not record.ok:
            return False
        self._entries[record.cell] = normalized_record(record).to_dict()
        self._entries.move_to_end(record.cell)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return True

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "entries": len(self)}

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
