"""Constrained fractional dominating sets (Definition 2.1)."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.domsets.cfds import CFDS, fractionality_of
from repro.errors import InfeasibleSolutionError
from repro.graphs.generators import gnp_graph
from repro.graphs.normalize import normalize_graph


@pytest.fixture
def triangle():
    return normalize_graph(nx.complete_graph(3))


class TestConstruction:
    def test_defaults(self, triangle):
        cfds = CFDS(triangle)
        assert cfds.values == {0: 0.0, 1: 0.0, 2: 0.0}
        assert cfds.constraints == {0: 1.0, 1: 1.0, 2: 1.0}

    def test_rejects_out_of_range_values(self, triangle):
        with pytest.raises(InfeasibleSolutionError):
            CFDS(triangle, values={0: 1.5})
        with pytest.raises(InfeasibleSolutionError):
            CFDS(triangle, constraints={0: -0.5})

    def test_from_set(self, triangle):
        cfds = CFDS.from_set(triangle, {1})
        assert cfds.values[1] == 1.0
        assert cfds.is_feasible()
        assert cfds.integral_set() == {1}


class TestFeasibility:
    def test_inclusive_neighborhood(self, triangle):
        # One node with value 1 covers the whole triangle.
        cfds = CFDS.fds(triangle, {0: 1.0, 1: 0.0, 2: 0.0})
        assert cfds.is_feasible()
        assert cfds.coverage(2) == 1.0

    def test_violations_reported(self):
        g = normalize_graph(nx.path_graph(4))
        cfds = CFDS.fds(g, {0: 1.0, 1: 0.0, 2: 0.0, 3: 0.0})
        bad = dict(cfds.violations())
        assert set(bad) == {2, 3}
        assert not cfds.is_feasible()
        with pytest.raises(InfeasibleSolutionError):
            cfds.require_feasible()

    def test_fractional_coverage(self, triangle):
        cfds = CFDS.fds(triangle, {v: 1.0 / 3.0 for v in triangle.nodes()})
        assert cfds.is_feasible()
        assert cfds.size == pytest.approx(1.0)

    def test_partial_constraints(self):
        g = normalize_graph(nx.path_graph(2))
        cfds = CFDS(g, values={0: 0.4}, constraints={0: 0.4, 1: 0.3})
        assert cfds.is_feasible()
        assert cfds.slack(1) == pytest.approx(0.1)


class TestProperties:
    def test_size_and_fractionality(self, triangle):
        cfds = CFDS.fds(triangle, {0: 0.5, 1: 0.25, 2: 0.5})
        assert cfds.size == pytest.approx(1.25)
        assert cfds.fractionality == pytest.approx(0.25)

    def test_fractionality_of_all_zero(self):
        assert fractionality_of({0: 0.0}) == float("inf")

    def test_support(self, triangle):
        cfds = CFDS.fds(triangle, {0: 0.5, 1: 0.0, 2: 0.1})
        assert cfds.support() == {0, 2}

    def test_integrality(self, triangle):
        assert CFDS.from_set(triangle, {0}).is_integral()
        frac = CFDS.fds(triangle, {0: 0.5, 1: 0.5, 2: 0.5})
        assert not frac.is_integral()
        with pytest.raises(InfeasibleSolutionError):
            frac.integral_set()

    def test_scaled_caps_at_one(self, triangle):
        cfds = CFDS.fds(triangle, {0: 0.6, 1: 0.2, 2: 0.0})
        scaled = cfds.scaled(2.0)
        assert scaled.values[0] == 1.0
        assert scaled.values[1] == pytest.approx(0.4)

    def test_with_values_and_copy_independent(self, triangle):
        cfds = CFDS.fds(triangle, {0: 0.5})
        other = cfds.with_values({0: 0.7, 1: 0.1, 2: 0.0})
        copy = cfds.copy()
        copy.values[0] = 0.9
        assert cfds.values[0] == 0.5
        assert other.values[0] == 0.7


@settings(max_examples=30, deadline=None)
@given(st.integers(3, 25), st.integers(0, 5))
def test_uniform_inverse_delta_tilde_always_feasible(n, seed):
    """x(v) = 1/Delta~ is feasible only on regular-enough graphs; the safe
    universal FDS is x(v) = 1/(deg_min+1) ... so test the always-feasible
    all-ones solution and the uniform one on cliques."""
    g = gnp_graph(n, 4.0 / n, seed=seed)
    ones = CFDS.fds(g, {v: 1.0 for v in g.nodes()})
    assert ones.is_feasible()
    assert ones.size == n
