"""Network decompositions: carving, invariants, separation, validation."""

import math

import networkx as nx
import pytest

from repro.decomposition.ball_carving import (
    carve_clusters,
    carve_decomposition,
)
from repro.decomposition.cluster_graph import (
    Cluster,
    NetworkDecomposition,
    validate_decomposition,
)
from repro.errors import DecompositionError
from repro.graphs.normalize import normalize_graph
from repro.graphs.powers import nodes_within


class TestCarving:
    def test_partitions_nodes(self, zoo_graph):
        clusters = carve_clusters(zoo_graph)
        seen = set()
        for cluster in clusters:
            assert not (cluster.members & seen)
            seen |= cluster.members
        assert seen == set(zoo_graph.nodes())

    def test_depth_bounded_by_log(self, zoo_graph):
        clusters = carve_clusters(zoo_graph)
        n = zoo_graph.number_of_nodes()
        bound = math.log2(n) + 1 if n > 1 else 1
        for cluster in clusters:
            assert cluster.depth <= bound

    def test_clusters_connected(self, zoo_graph):
        clusters = carve_clusters(zoo_graph)
        for cluster in clusters:
            sub = zoo_graph.subgraph(cluster.members)
            assert cluster.size == 1 or nx.is_connected(sub)

    def test_doubling_growth(self):
        """Every cluster of size s was grown through layers that at least
        doubled, so its member count is >= 2^depth."""
        g = normalize_graph(nx.path_graph(64))
        for cluster in carve_clusters(g):
            assert cluster.size >= 2 ** cluster.depth


class TestColoring:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_separation_k(self, small_gnp, k):
        dec = carve_decomposition(small_gnp, separation_k=k)
        validate_decomposition(dec)  # includes the k-separation check

    def test_colors_assigned(self, small_geometric):
        dec = carve_decomposition(small_geometric)
        assert all(c.color >= 0 for c in dec.clusters)
        assert dec.num_colors >= 1

    def test_color_classes_grouping(self, small_gnp):
        dec = carve_decomposition(small_gnp)
        classes = dec.color_classes()
        assert sum(len(cls) for cls in classes) == dec.num_clusters
        for cls in classes:
            assert len({c.color for c in cls}) == 1


class TestValidation:
    def _tiny_decomposition(self):
        g = normalize_graph(nx.path_graph(4))
        c0 = Cluster(0, frozenset({0, 1}), 0, {0: -1, 1: 0}, 1, color=0)
        c1 = Cluster(1, frozenset({2, 3}), 2, {2: -1, 3: 2}, 1, color=1)
        return g, [c0, c1]

    def test_valid_passes(self):
        g, clusters = self._tiny_decomposition()
        validate_decomposition(NetworkDecomposition(g, clusters, separation_k=2))

    def test_detects_overlap(self):
        g, clusters = self._tiny_decomposition()
        bad = Cluster(1, frozenset({1, 2, 3}), 2, {1: 2, 2: -1, 3: 2}, 1, color=1)
        with pytest.raises(DecompositionError):
            validate_decomposition(
                NetworkDecomposition(g, [clusters[0], bad], separation_k=2)
            )

    def test_detects_missing_nodes(self):
        g, clusters = self._tiny_decomposition()
        with pytest.raises(DecompositionError):
            validate_decomposition(
                NetworkDecomposition(g, [clusters[0]], separation_k=2)
            )

    def test_detects_separation_violation(self):
        g, clusters = self._tiny_decomposition()
        same_color = [
            Cluster(0, clusters[0].members, 0, clusters[0].parent, 1, color=0),
            Cluster(1, clusters[1].members, 2, clusters[1].parent, 1, color=0),
        ]
        # Clusters {0,1} and {2,3} are at distance 1 < separation 2.
        with pytest.raises(DecompositionError):
            validate_decomposition(
                NetworkDecomposition(g, same_color, separation_k=2)
            )

    def test_detects_bad_tree_edge(self):
        g = normalize_graph(nx.path_graph(4))
        bad = Cluster(0, frozenset({0, 2}), 0, {0: -1, 2: 0}, 1, color=0)
        other = Cluster(1, frozenset({1, 3}), 1, {1: -1, 3: 1}, 1, color=1)
        with pytest.raises(DecompositionError):
            validate_decomposition(NetworkDecomposition(g, [bad, other], separation_k=1))

    def test_detects_foreign_leader(self):
        with pytest.raises(DecompositionError):
            Cluster(0, frozenset({1, 2}), 7, {1: -1, 2: 1}, 1, color=0)

    def test_detects_uncolored(self):
        g = normalize_graph(nx.path_graph(2))
        c = Cluster(0, frozenset({0, 1}), 0, {0: -1, 1: 0}, 1)
        with pytest.raises(DecompositionError):
            validate_decomposition(NetworkDecomposition(g, [c], separation_k=1))


class TestSeparationSemantics:
    def test_same_color_clusters_have_disjoint_neighborhoods(self, medium_gnp):
        """The property Lemma 3.4 consumes: for a 2-hop decomposition,
        same-color clusters' inclusive neighborhoods are disjoint."""
        dec = carve_decomposition(medium_gnp, separation_k=2)
        for color_class in dec.color_classes():
            reaches = [
                nodes_within(medium_gnp, c.members, 1) for c in color_class
            ]
            for i in range(len(reaches)):
                for j in range(i + 1, len(reaches)):
                    assert not (reaches[i] & reaches[j])
