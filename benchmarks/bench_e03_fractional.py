"""Benchmark E3: Lemma 2.1 fractional substrate table.

Regenerates the Lemma 2.1 fractional substrate (see DESIGN.md Section 2) and certifies
every guarantee check recorded by the experiment.
"""

from benchmarks.conftest import run_experiment
from repro.experiments import e03_fractional


def bench_e03_fractional(benchmark):
    run_experiment(benchmark, e03_fractional.run)
