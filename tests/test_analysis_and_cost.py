"""Verification helpers, bound formulas, and the cost ledger."""

import math

import networkx as nx
import pytest

from repro.analysis.bounds import (
    corollary13_approximation_bound,
    factor_two_uncovered_bound,
    greedy_bound,
    lemma37_required_r,
    one_shot_uncovered_bound,
    theorem11_approximation_bound,
    theorem14_cds_bound,
)
from repro.analysis.verify import (
    domination_deficit,
    is_connected_dominating_set,
    is_dominating_set,
    require_connected_dominating_set,
    require_dominating_set,
)
from repro.congest.cost import (
    CostLedger,
    bek15_coloring_rounds,
    gk18_decomposition_rounds,
    kmw06_lp_rounds,
    ruling_set_rounds,
)
from repro.errors import InfeasibleSolutionError


class TestVerify:
    def test_deficit_lists_uncovered(self, path5):
        assert domination_deficit(path5, {0}) == [2, 3, 4]
        assert domination_deficit(path5, {1, 3}) == []

    def test_is_dominating(self, path5):
        assert is_dominating_set(path5, {1, 3})
        assert not is_dominating_set(path5, {0})

    def test_require_raises_with_witnesses(self, path5):
        with pytest.raises(InfeasibleSolutionError, match="uncovered"):
            require_dominating_set(path5, {0})
        assert require_dominating_set(path5, {1, 3}) == {1, 3}

    def test_connected_dominating(self, path5):
        assert is_connected_dominating_set(path5, {1, 2, 3})
        assert not is_connected_dominating_set(path5, {1, 3})  # disconnected
        assert not is_connected_dominating_set(path5, {1, 2})  # not dominating

    def test_require_connected_raises(self, path5):
        with pytest.raises(InfeasibleSolutionError, match="components"):
            require_connected_dominating_set(path5, {1, 3})

    def test_empty_graph_conventions(self):
        g = nx.Graph()
        assert is_dominating_set(g, set())
        assert is_connected_dominating_set(g, set())


class TestBounds:
    def test_theorem11_formula(self):
        assert theorem11_approximation_bound(0.5, 9) == pytest.approx(
            1.5 * (1 + math.log(10))
        )

    def test_corollary13_tighter(self):
        assert corollary13_approximation_bound(0.5, 9) < theorem11_approximation_bound(0.5, 9)

    def test_greedy_bound_is_harmonic(self):
        assert greedy_bound(3) == pytest.approx(1 + 0.5 + 1 / 3 + 0.25)

    def test_uncovered_bounds(self):
        assert one_shot_uncovered_bound(9) == pytest.approx(0.1)
        assert factor_two_uncovered_bound(9) == pytest.approx(1e-4)

    def test_lemma37_r(self):
        r = lemma37_required_r(0.5, 9)
        assert r == pytest.approx(256 * math.log(10) / 0.125)
        assert lemma37_required_r(0.5, 9, scale=0.5) == pytest.approx(r / 2)

    def test_cds_bound_grows_with_delta(self):
        assert theorem14_cds_bound(100) > theorem14_cds_bound(4)


class TestCostFormulas:
    def test_gk18_subexponential_shape(self):
        """2^O(sqrt(log n log log n)) is super-polylog but sub-polynomial."""
        small = gk18_decomposition_rounds(2 ** 10)
        big = gk18_decomposition_rounds(2 ** 20)
        assert big > small
        assert big < 2 ** 20  # far below n

    def test_kmw06_eps_sensitivity(self):
        assert kmw06_lp_rounds(16, 0.25) > kmw06_lp_rounds(16, 0.5)

    def test_bek15_and_ruling(self):
        assert bek15_coloring_rounds(10, 100, 100) >= 10
        assert ruling_set_rounds(256) == math.ceil(math.log2(256) ** 3)


class TestCostLedger:
    def test_split_accounting(self):
        ledger = CostLedger()
        ledger.charge("oracle", 100)
        ledger.simulate("bfs", 7, max_message_bits=42)
        assert ledger.charged_rounds == 100
        assert ledger.simulated_rounds == 7
        assert ledger.total_rounds == 107
        assert ledger.max_message_bits == 42

    def test_merge_with_prefix(self):
        a = CostLedger()
        a.charge("x", 5)
        b = CostLedger()
        b.simulate("y", 3, max_message_bits=10)
        a.merge(b, prefix="sub/")
        assert a.by_stage() == {"x": 5, "sub/y": 3}
        assert a.max_message_bits == 10

    def test_summary_renders(self):
        ledger = CostLedger()
        ledger.charge("stage", 5)
        text = ledger.summary()
        assert "stage" in text and "TOTAL" in text

    def test_negative_rounds_clamped(self):
        ledger = CostLedger()
        ledger.charge("x", -5)
        assert ledger.charged_rounds == 0
