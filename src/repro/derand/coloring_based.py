"""Derandomization via distance-2 colorings (Section 3.3).

:func:`derandomized_rounding_with_coloring` is Lemma 3.10: iterate the color
classes of a distance-2 coloring of the participating variables; all
variables in one class fix their coin simultaneously against a snapshot,
which is sound because same-colored variables share no constraint.

:func:`one_shot_via_coloring` is Lemma 3.13: prune every constraint of the
bipartite representation down to at most ``F`` covering members (left degree
``F``), color the value side with ``O(F * Delta~)`` colors (Lemma 3.12), and
derandomize the one-shot scheme with the exact product estimator.

:func:`factor_two_via_coloring` is Lemma 3.14: split constraint nodes so
each copy sees at most ``2s`` participating members (``s = 64 eps^-2
ln(Delta~)`` by default), color with ``O(s * Delta~)`` colors, and
derandomize the factor-two scheme with the Chernoff estimator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping

import networkx as nx

from repro.congest.cost import CostLedger
from repro.coloring.distance2 import bipartite_distance2_coloring
from repro.derand.conditional import ConditionalExpectationEngine, DerandResult
from repro.derand.estimators import EstimatorConfig
from repro.domsets.covering import CoveringInstance
from repro.errors import InfeasibleSolutionError
from repro.rounding.abstract import RoundingScheme
from repro.rounding.schemes import one_shot_scheme
from repro.util.mathx import ceil_log2
from repro.util.transmittable import TransmittableGrid

#: Rounds per color class in the Lemma 3.10 loop: announce, alphas, decide.
ROUNDS_PER_COLOR = 3


@dataclass
class ColoringDerandOutput:
    """Result of one coloring-route rounding step."""

    values: Dict[int, float]
    result: DerandResult
    num_colors: int
    ledger: CostLedger
    scheme_name: str


def schedule_from_colors(
    scheme: RoundingScheme, colors: Mapping[int, int]
) -> list:
    """Batches of participating variables, one batch per color."""
    participants = scheme.participating()
    missing = [u for u in participants if u not in colors]
    if missing:
        raise InfeasibleSolutionError(
            f"{len(missing)} participating variables uncolored (e.g. {missing[:5]})"
        )
    buckets: Dict[int, list] = {}
    for u in participants:
        buckets.setdefault(colors[u], []).append(u)
    return [sorted(buckets[c]) for c in sorted(buckets)]


def derandomized_rounding_with_coloring(
    scheme: RoundingScheme,
    colors: Mapping[int, int],
    config: EstimatorConfig | None = None,
) -> DerandResult:
    """Lemma 3.10: run the conditional-expectation engine color by color."""
    engine = ConditionalExpectationEngine(scheme, config)
    return engine.run(schedule_from_colors(scheme, colors))


def one_shot_via_coloring(
    graph: nx.Graph,
    values: Mapping[int, float],
    config: EstimatorConfig | None = None,
    grid: TransmittableGrid | None = None,
    model: str = "congest",
) -> ColoringDerandOutput:
    """Lemma 3.13: deterministic one-shot rounding, coloring route.

    ``values`` must be a feasible fractional dominating set; with
    fractionality ``1/F`` the pruned instance has left degree at most ``F``
    and the output is an integral dominating set of size at most
    ``ln(Delta~) A + n / Delta~`` plus quantization slack.  ``model``
    selects the charge rate of the coloring subroutine (``"congest"`` per
    Lemma 3.12, ``"local"`` per Corollary 1.3).
    """
    n = graph.number_of_nodes()
    grid = grid or TransmittableGrid.for_n(n)
    delta_tilde = max((d for _, d in graph.degree()), default=0) + 1
    ledger = CostLedger()

    base = CoveringInstance.from_graph(graph, values)
    nonzero = [v for v in base.values().values() if v > 0]
    f_cap = int(math.ceil(1.0 / min(nonzero))) if nonzero else 1
    pruned = base.prune_to_cover(max_members=f_cap)
    scheme = one_shot_scheme(pruned, delta_tilde, quantize=grid.up)

    participating = set(scheme.participating())
    coloring = bipartite_distance2_coloring(
        scheme.instance, restrict=participating, n_network=n
    )
    ledger.charge("lemma3.12-coloring", coloring.charged_rounds_for(model, n))

    cfg = config or EstimatorConfig(mode="exact-product")
    result = derandomized_rounding_with_coloring(scheme, coloring.colors, cfg)
    ledger.charge("lemma3.10-color-loop", ROUNDS_PER_COLOR * max(1, coloring.num_colors))
    ledger.charge("rounding-execution", 2)

    return ColoringDerandOutput(
        values=result.outcome.projected,
        result=result,
        num_colors=coloring.num_colors,
        ledger=ledger,
        scheme_name="one-shot/coloring",
    )


def default_split_width(eps: float, delta_tilde: int, scale: float = 1.0) -> int:
    """``s = 64 eps^-2 ln(Delta~)`` (Lemma 3.14), with an experiment scale."""
    s = 64.0 * scale * math.log(max(2, delta_tilde)) / (eps * eps)
    return max(1, int(math.ceil(s)))


def factor_two_via_coloring(
    graph: nx.Graph,
    values: Mapping[int, float],
    eps: float,
    r: float,
    s: int | None = None,
    constants_scale: float = 1.0,
    config: EstimatorConfig | None = None,
    grid: TransmittableGrid | None = None,
    model: str = "congest",
) -> ColoringDerandOutput:
    """Lemma 3.14: deterministic factor-two rounding, coloring route.

    ``r`` is the inverse fractionality of ``values``; participating
    variables (boosted value below ``2/r``) double or vanish.  Constraints
    are split so every copy sees at most ``2s`` participating members.
    """
    n = graph.number_of_nodes()
    grid = grid or TransmittableGrid.for_n(n)
    delta_tilde = max((d for _, d in graph.degree()), default=0) + 1
    if s is None:
        s = default_split_width(eps, delta_tilde, scale=constants_scale)
    ledger = CostLedger()

    base = CoveringInstance.from_graph(graph, values)
    boosted = base.boost_values(1.0 + eps, quantize=grid.up)
    threshold = 2.0 / r
    split = boosted.split_constraints(
        original_values=dict(values),
        participation_threshold=threshold,
        s=s,
    )
    p = {
        u: (0.5 if 0.0 < var.x < threshold else 1.0)
        for u, var in split.value_vars.items()
    }
    scheme = RoundingScheme(
        instance=split,
        p=p,
        name="factor-two/split",
        params={"eps": eps, "r": float(r), "s": float(s)},
    )

    participating = set(scheme.participating())
    coloring = bipartite_distance2_coloring(
        scheme.instance, restrict=participating, n_network=n
    )
    ledger.charge("lemma3.12-coloring", coloring.charged_rounds_for(model, n))

    cfg = config or EstimatorConfig(mode="chernoff")
    result = derandomized_rounding_with_coloring(scheme, coloring.colors, cfg)
    ledger.charge("lemma3.10-color-loop", ROUNDS_PER_COLOR * max(1, coloring.num_colors))
    ledger.charge("rounding-execution", 2)

    return ColoringDerandOutput(
        values=result.outcome.projected,
        result=result,
        num_colors=coloring.num_colors,
        ledger=ledger,
        scheme_name="factor-two/coloring",
    )


def charged_rounds_formula_theorem12(
    n: int, delta: int, eps: float
) -> int:
    """The Theorem 1.2 round bound
    ``O(Delta poly log Delta + poly log Delta log* n)`` with unit constants,
    for comparison columns in experiment tables."""
    log_delta = max(1.0, math.log2(max(2, delta)))
    log_star_n = max(1, ceil_log2(max(2, n)).bit_length())
    return int(
        math.ceil(
            delta * log_delta ** 2 / (eps * eps)
            + log_delta ** 2 * log_star_n / (eps * eps)
        )
    )
