"""Pluggable round-loop engines for the CONGEST simulator.

Importing this package registers the bundled engines:

``reference``
    The seed dict-of-dicts loop — readable, O(n) per round, the semantic
    baseline (:class:`~repro.congest.engine.reference.ReferenceEngine`).
``fast``
    Flat-array active-set loop, the default — per-round cost scales with
    live nodes and actual traffic
    (:class:`~repro.congest.engine.fast.FastEngine`).
``vector``
    Numpy message-plane loop for fixed-shape broadcast rounds — programs
    declare :class:`MessageSpec` shapes and register a
    :class:`VectorKernel`; everything else falls back to ``fast``
    semantics (:class:`~repro.congest.engine.vector.VectorEngine`).

Select an engine per run (``Simulator(..., engine="reference")``), process
wide (:func:`set_default_engine`, the ``--engine`` CLI flags), or via the
``REPRO_ENGINE`` environment variable.  ``docs/engines.md`` has the guide.

On top of the per-run engines, :func:`run_stacked` /
:func:`iter_stacked` (:mod:`repro.congest.engine.batched`) execute K
independent instances of one *stackable* program family as a single
stacked message plane — ragged (mixed instance sizes) or uniform — the
batched multi-instance mode behind the experiment runner's ``batch``
strategy; the ``iter`` variant streams each instance's result the moment
its termination mask flips.
"""

from repro.congest.engine.base import (
    Engine,
    EngineSpec,
    SimulationResult,
    available_engines,
    default_engine_name,
    register_engine,
    resolve_engine,
    set_default_engine,
)
from repro.congest.engine.batched import (
    StackedPlane,
    iter_stacked,
    plane_cost,
    run_stacked,
    stack_ineligibility,
)
from repro.congest.engine.fast import FastEngine
from repro.congest.engine.reference import ReferenceEngine
from repro.congest.engine.vector import (
    CsrPlane,
    MessageSpec,
    PendingBroadcast,
    PendingTargeted,
    VectorEngine,
    VectorKernel,
    kernel_for,
    pending_parts,
    plane_namespace,
    register_kernel,
    set_plane_namespace,
    use_plane_namespace,
)

__all__ = [
    "Engine",
    "EngineSpec",
    "SimulationResult",
    "available_engines",
    "default_engine_name",
    "register_engine",
    "resolve_engine",
    "set_default_engine",
    "FastEngine",
    "ReferenceEngine",
    "VectorEngine",
    "CsrPlane",
    "MessageSpec",
    "PendingBroadcast",
    "PendingTargeted",
    "StackedPlane",
    "VectorKernel",
    "kernel_for",
    "pending_parts",
    "plane_namespace",
    "register_kernel",
    "set_plane_namespace",
    "use_plane_namespace",
    "iter_stacked",
    "plane_cost",
    "run_stacked",
    "stack_ineligibility",
]
