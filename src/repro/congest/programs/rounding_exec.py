"""Execution of the abstract rounding process (Section 3.1) on the simulator.

Phase one of the process is a purely local coin flip / coin lookup: node
``v``'s value becomes ``X_v`` (either ``x(v)/p(v)`` or ``0``).  Phase two
requires one communication round: every node broadcasts ``X_v``, and a node
whose constraint ``sum_{u in N(v)} X_u >= c(v)`` is violated joins the
dominating set (sets its value to 1).

The program takes the already-resolved phase-one value as input (the coins —
random, k-wise pseudo-random, or deterministically fixed — are produced by
:mod:`repro.rounding` / :mod:`repro.derand`), so the same program executes
both the randomized and the derandomized variants, exactly as in the paper
where "the third step can be executed in O(1) rounds".

Values travel as grid numerators; one value per message.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

import networkx as nx

from repro.congest.engine import EngineSpec
from repro.congest.message import Message
from repro.congest.network import Network
from repro.congest.node import Context, NodeProgram
from repro.congest.simulator import SimulationResult, Simulator
from repro.util.transmittable import TransmittableGrid


class RoundingExecutionProgram(NodeProgram):
    """Per-node input: ``(x_num, c_num, scale)`` grid numerators.

    ``x_num`` is the phase-one value numerator, ``c_num`` the constraint
    numerator, ``scale`` the grid denominator (``2**iota``).  Output:
    ``value`` — the final numerator after phase two (``scale`` if the node
    joined the dominating set).
    """

    def __init__(self, input_value: object = None):
        super().__init__(input_value)
        self.x_num, self.c_num, self.scale = input_value  # type: ignore[misc]

    def setup(self, ctx: Context) -> None:
        ctx.broadcast(Message("val", self.x_num))

    def receive(self, ctx: Context, inbox: Dict[int, Message]) -> None:
        covered = self.x_num  # inclusive neighborhood: own value counts
        for msg in inbox.values():
            covered += msg.fields[0]
        if covered < self.c_num:
            final = self.scale  # join: value 1
        else:
            final = self.x_num
        ctx.output("value", final)
        ctx.halt()


def run_rounding_execution(
    graph: nx.Graph,
    phase_one_values: Mapping[int, float],
    constraints: Mapping[int, float],
    grid: TransmittableGrid | None = None,
    network: Network | None = None,
    engine: EngineSpec = None,
) -> Tuple[Dict[int, float], SimulationResult]:
    """Run phase two of the abstract rounding process distributedly.

    Returns ``(final_values, result)`` with final values mapped back to
    floats on the grid.
    """
    grid = grid or TransmittableGrid.for_n(graph.number_of_nodes())
    network = network or Network.congest(graph)
    scale = 1 << grid.iota
    inputs = {
        v: (
            grid.to_int(phase_one_values.get(v, 0.0)),
            grid.to_int(constraints.get(v, 1.0)),
            scale,
        )
        for v in graph.nodes()
    }
    sim = Simulator(network, RoundingExecutionProgram, inputs=inputs, engine=engine)
    result = sim.run(max_rounds=4)
    values = {
        v: grid.from_int(num) for v, num in result.output_map("value").items()
    }
    return values, result
