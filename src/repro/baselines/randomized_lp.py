"""LP + independent randomized rounding baseline ([JRS02]/[KMW06] style).

Solve the dominating set LP, scale every value by ``ln(Delta~)``, round each
node into the set independently with that probability, then add every node
whose inclusive neighborhood stayed empty (the standard alteration step).
Expected size ``ln(Delta~) OPT_LP + n/Delta~`` — the randomized yardstick
whose *derandomization* is the paper's contribution.
"""

from __future__ import annotations

import math
import random
from typing import Set

import networkx as nx

from repro.analysis.verify import require_dominating_set
from repro.fractional.lp import lp_fractional_mds
from repro.graphs.normalize import require_normalized


def randomized_lp_rounding_mds(
    graph: nx.Graph, seed: int = 0, boost: float | None = None
) -> Set[int]:
    """One run of the classic randomized rounding algorithm."""
    require_normalized(graph)
    if graph.number_of_nodes() == 0:
        return set()
    rng = random.Random(seed)
    delta_tilde = max((d for _, d in graph.degree()), default=0) + 1
    factor = boost if boost is not None else max(1.0, math.log(delta_tilde))
    lp = lp_fractional_mds(graph)

    chosen: Set[int] = set()
    for v in sorted(graph.nodes()):
        if rng.random() < min(1.0, factor * lp.values[v]):
            chosen.add(v)
    for v in sorted(graph.nodes()):
        if v in chosen:
            continue
        if not any(u in chosen for u in graph.neighbors(v)):
            chosen.add(v)  # alteration: self-cover leftover nodes
    return require_dominating_set(graph, chosen, "randomized LP rounding")
