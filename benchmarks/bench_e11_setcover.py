"""Benchmark E11: set cover generalization table.

Regenerates the set cover generalization (see DESIGN.md Section 2) and certifies
every guarantee check recorded by the experiment.
"""

from benchmarks.conftest import run_experiment
from repro.experiments import e11_setcover


def bench_e11_setcover(benchmark):
    run_experiment(benchmark, e11_setcover.run)
