"""Small shared utilities: fixed-point transmittable values, math helpers,
deterministic ordering and table formatting.
"""

from repro.util.transmittable import (
    TransmittableGrid,
    quantize_down,
    quantize_up,
)
from repro.util.mathx import (
    H_harmonic,
    ceil_log2,
    ilog2,
    log_star,
)
from repro.util.tables import TableFormatter

__all__ = [
    "TransmittableGrid",
    "quantize_down",
    "quantize_up",
    "H_harmonic",
    "ceil_log2",
    "ilog2",
    "log_star",
    "TableFormatter",
]
