"""Shared fixtures: small deterministic graphs used across the suite."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graphs.generators import (
    caterpillar_graph,
    clique_graph,
    geometric_graph,
    gnp_graph,
    grid_graph,
    random_tree,
    regular_graph,
    ring_graph,
    star_graph,
)
from repro.graphs.normalize import normalize_graph


@pytest.fixture
def path5() -> nx.Graph:
    return normalize_graph(nx.path_graph(5))


@pytest.fixture
def small_gnp() -> nx.Graph:
    return gnp_graph(30, 0.15, seed=1)


@pytest.fixture
def medium_gnp() -> nx.Graph:
    return gnp_graph(60, 0.08, seed=2)


@pytest.fixture
def small_geometric() -> nx.Graph:
    return geometric_graph(40, seed=3)


@pytest.fixture
def small_tree() -> nx.Graph:
    return random_tree(25, seed=4)


@pytest.fixture
def small_regular() -> nx.Graph:
    return regular_graph(20, 4, seed=5)


def graph_zoo() -> list:
    """A diverse, deterministic set of (name, graph) pairs for sweeps."""
    return [
        ("path", normalize_graph(nx.path_graph(8))),
        ("ring", ring_graph(12)),
        ("star", star_graph(9)),
        ("clique", clique_graph(7)),
        ("grid", grid_graph(4, 4)),
        ("tree", random_tree(18, seed=6)),
        ("caterpillar", caterpillar_graph(5, 2)),
        ("gnp", gnp_graph(24, 0.18, seed=7)),
        ("geometric", geometric_graph(26, seed=8)),
        ("regular", regular_graph(16, 4, seed=9)),
    ]


@pytest.fixture(params=graph_zoo(), ids=lambda pair: pair[0])
def zoo_graph(request) -> nx.Graph:
    return request.param[1]
