"""Generic covering instances: the value-node / constraint-node view.

Section 3.3 of the paper replaces the graph ``G`` by its *bipartite
representation* ``B_G``: each node splits into a constraint node (left) and
a value node (right).  The derandomization lemmas then operate on modified
bipartite graphs ``B`` obtained by removing edges (Lemma 3.13) or splitting
constraint nodes (Lemma 3.14).  :class:`CoveringInstance` is exactly that
object: value variables carry fractional values (and objective weights, for
the Section 5 weighted generalization); constraints carry a demand ``c`` and
a member list of value variables.  Minimum set cover (Section 5) is the same
structure with sets as value variables and elements as constraints, so all
rounding machinery downstream of this module is problem-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, List, Mapping, Sequence, Set, Tuple

import networkx as nx

from repro.errors import InfeasibleSolutionError
from repro.graphs.normalize import require_normalized


@dataclass(frozen=True)
class ValueVar:
    """A fractional variable (right-hand / ``U_R`` node of ``B``)."""

    id: int
    x: float
    origin: int
    weight: float = 1.0


@dataclass(frozen=True)
class Constraint:
    """A covering constraint (left-hand / ``U_L`` node of ``B``).

    ``members`` lists the value variables whose sum must reach ``c``.
    ``origin`` is the graph node (or set-cover element) whose coverage this
    constraint encodes; if the constraint ends up violated after rounding,
    *origin* joins the solution (phase two of the abstract process).
    ``join_weight`` is origin's objective cost of joining (1 if unweighted).
    """

    id: int
    c: float
    members: Tuple[int, ...]
    origin: int
    join_weight: float = 1.0


class CoveringInstance:
    """An immutable covering instance plus the var -> constraints index."""

    def __init__(
        self,
        value_vars: Sequence[ValueVar],
        constraints: Sequence[Constraint],
    ):
        self.value_vars: Dict[int, ValueVar] = {v.id: v for v in value_vars}
        self.constraints: Dict[int, Constraint] = {c.id: c for c in constraints}
        if len(self.value_vars) != len(value_vars):
            raise InfeasibleSolutionError("duplicate value variable ids")
        if len(self.constraints) != len(constraints):
            raise InfeasibleSolutionError("duplicate constraint ids")
        index: Dict[int, List[int]] = {v: [] for v in self.value_vars}
        for cn in constraints:
            for u in cn.members:
                if u not in self.value_vars:
                    raise InfeasibleSolutionError(
                        f"constraint {cn.id} references unknown variable {u}"
                    )
                index[u].append(cn.id)
        self.var_constraints: Dict[int, Tuple[int, ...]] = {
            v: tuple(cids) for v, cids in index.items()
        }

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_graph(
        cls,
        graph: nx.Graph,
        values: Mapping[int, float],
        constraints: Mapping[int, float] | None = None,
        weights: Mapping[int, float] | None = None,
    ) -> "CoveringInstance":
        """The bipartite representation ``B_G`` of a graph CFDS.

        One value variable and one constraint per node; the constraint of
        ``v`` spans the inclusive neighborhood ``N(v)``.
        """
        require_normalized(graph)
        weights = weights or {}
        value_vars = [
            ValueVar(id=v, x=float(values.get(v, 0.0)), origin=v,
                     weight=float(weights.get(v, 1.0)))
            for v in sorted(graph.nodes())
        ]
        cons = []
        for v in sorted(graph.nodes()):
            demand = 1.0 if constraints is None else float(constraints.get(v, 1.0))
            members = tuple(sorted(set(graph.neighbors(v)) | {v}))
            cons.append(
                Constraint(id=v, c=demand, members=members, origin=v,
                           join_weight=float(weights.get(v, 1.0)))
            )
        return cls(value_vars, cons)

    # -- bookkeeping --------------------------------------------------------

    @property
    def num_vars(self) -> int:
        return len(self.value_vars)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    def values(self) -> Dict[int, float]:
        """Current fractional values by variable id."""
        return {v: var.x for v, var in self.value_vars.items()}

    def size(self) -> float:
        """Weighted size ``sum_u w(u) * x(u)``."""
        return sum(var.weight * var.x for var in self.value_vars.values())

    def member_sum(self, cid: int, values: Mapping[int, float] | None = None) -> float:
        """Sum of member values for one constraint."""
        cn = self.constraints[cid]
        if values is None:
            return sum(self.value_vars[u].x for u in cn.members)
        return sum(values.get(u, 0.0) for u in cn.members)

    def violations(
        self, values: Mapping[int, float] | None = None, tol: float = 1e-9
    ) -> List[int]:
        """Constraint ids with ``member_sum < c - tol``."""
        return [
            cid
            for cid, cn in self.constraints.items()
            if self.member_sum(cid, values) < cn.c - tol
        ]

    def is_feasible(self, values: Mapping[int, float] | None = None, tol: float = 1e-9) -> bool:
        return not self.violations(values, tol)

    @property
    def max_constraint_degree(self) -> int:
        """``Delta_L``: most members any constraint has."""
        return max((len(cn.members) for cn in self.constraints.values()), default=0)

    @property
    def max_var_degree(self) -> int:
        """``Delta_R``: most constraints any variable appears in."""
        return max((len(cids) for cids in self.var_constraints.values()), default=0)

    # -- transforms (the Section 3.3 "Constructing Graph B" steps) ----------

    def with_values(self, new_values: Mapping[int, float]) -> "CoveringInstance":
        """Same structure, new fractional values."""
        return CoveringInstance(
            [replace(var, x=float(new_values.get(var.id, var.x)))
             for var in self.value_vars.values()],
            list(self.constraints.values()),
        )

    def boost_values(
        self, factor: float, cap: float = 1.0, quantize: Callable[[float], float] | None = None
    ) -> "CoveringInstance":
        """Values become ``min(cap, factor * x)``, optionally snapped up onto
        a transmittable grid (the paper's n^-10 rounding)."""
        new_vals = {}
        for var in self.value_vars.values():
            x = min(cap, factor * var.x)
            if quantize is not None:
                x = min(cap, quantize(x))
            new_vals[var.id] = x
        return self.with_values(new_vals)

    def prune_to_cover(self, max_members: int | None = None) -> "CoveringInstance":
        """Lemma 3.13 edge removal: each constraint keeps a smallest prefix
        of members (largest values first) that already meets its demand.

        With a ``1/F``-fractional input, at most ``F`` members survive per
        constraint, so the left degree of ``B`` drops to ``F``.
        """
        new_cons = []
        for cn in self.constraints.values():
            ordered = sorted(
                cn.members, key=lambda u: (-self.value_vars[u].x, u)
            )
            kept: List[int] = []
            total = 0.0
            for u in ordered:
                if total >= cn.c - 1e-12:
                    break
                kept.append(u)
                total += self.value_vars[u].x
            if total < cn.c - 1e-9:
                raise InfeasibleSolutionError(
                    f"constraint {cn.id} cannot be covered by its members "
                    f"(sum {total:.4g} < c {cn.c:.4g}); prune requires a feasible input"
                )
            if max_members is not None and len(kept) > max_members:
                raise InfeasibleSolutionError(
                    f"constraint {cn.id} kept {len(kept)} members, limit {max_members}; "
                    "input fractionality too low for the requested bound"
                )
            new_cons.append(replace(cn, members=tuple(sorted(kept))))
        return CoveringInstance(list(self.value_vars.values()), new_cons)

    def split_constraints(
        self,
        original_values: Mapping[int, float],
        participation_threshold: float,
        s: int,
    ) -> "CoveringInstance":
        """Lemma 3.14 constraint splitting.

        Members with current value ``x >= participation_threshold`` (the
        nodes that will not take part in the rounding) stay on the first
        copy ``v_1``.  If at most ``s`` participating members remain they
        join ``v_1`` too; otherwise they are distributed over copies
        ``v_2..v_k`` holding between ``s`` and ``2s`` members each.  Each
        copy's demand is ``min(1, sum of its members' original values)``,
        so the demands are met with the pre-boost values and sum up to at
        least the original demand (the paper states ``max``; ``min`` is the
        reading consistent with Definition 2.1's ``c in [0,1]``).
        """
        if s < 1:
            raise InfeasibleSolutionError(f"split width s must be >= 1, got {s}")
        new_cons: List[Constraint] = []
        next_id = 0

        def share(members: Iterable[int]) -> float:
            return min(1.0, sum(original_values.get(u, 0.0) for u in members))

        for cid in sorted(self.constraints):
            cn = self.constraints[cid]
            high = [u for u in cn.members
                    if self.value_vars[u].x >= participation_threshold]
            low = [u for u in cn.members
                   if self.value_vars[u].x < participation_threshold]
            if len(low) <= s:
                members = tuple(sorted(high + low))
                new_cons.append(
                    Constraint(id=next_id, c=share(members), members=members,
                               origin=cn.origin, join_weight=cn.join_weight)
                )
                next_id += 1
            else:
                if high:
                    members = tuple(sorted(high))
                    new_cons.append(
                        Constraint(id=next_id, c=share(members), members=members,
                                   origin=cn.origin, join_weight=cn.join_weight)
                    )
                    next_id += 1
                low_sorted = sorted(low)
                k = max(1, len(low_sorted) // s)
                base, extra = divmod(len(low_sorted), k)
                start = 0
                for j in range(k):
                    size = base + (1 if j < extra else 0)
                    chunk = tuple(low_sorted[start : start + size])
                    start += size
                    if not s <= len(chunk) <= 2 * s:
                        raise InfeasibleSolutionError(
                            f"split produced a chunk of {len(chunk)} members "
                            f"outside [{s}, {2 * s}]"
                        )
                    new_cons.append(
                        Constraint(id=next_id, c=share(chunk), members=chunk,
                                   origin=cn.origin, join_weight=cn.join_weight)
                    )
                    next_id += 1
        return CoveringInstance(list(self.value_vars.values()), new_cons)

    # -- conflict structure (for distance-2 colorings, Lemma 3.12) ----------

    def value_conflict_graph(self, restrict: Set[int] | None = None) -> nx.Graph:
        """Graph on value variables; edge iff two variables share a
        constraint.  A proper coloring of this graph is exactly a distance-2
        coloring of the right-hand side of ``B``.
        """
        conflict = nx.Graph()
        vars_in = set(self.value_vars) if restrict is None else set(restrict)
        conflict.add_nodes_from(sorted(vars_in))
        for cn in self.constraints.values():
            members = [u for u in cn.members if u in vars_in]
            for i, u in enumerate(members):
                for w in members[i + 1 :]:
                    conflict.add_edge(u, w)
        return conflict

    # -- projection back to the original problem ----------------------------

    def project(
        self, final_values: Mapping[int, float], joined_origins: Iterable[int]
    ) -> Dict[int, float]:
        """Map rounded variable values back to origins.

        An origin's value is the max over its variables' values, forced to 1
        if the origin joined in phase two ("a node sets its value to the
        maximum of the values of its two copies").
        """
        out: Dict[int, float] = {}
        for var in self.value_vars.values():
            x = final_values.get(var.id, 0.0)
            if x > out.get(var.origin, 0.0):
                out[var.origin] = x
        for origin in joined_origins:
            out[origin] = 1.0
        return out
