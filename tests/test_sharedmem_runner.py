"""Shared-memory topology transport and generate-once grid execution."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.congest.network import Network
from repro.errors import GraphError, UnknownEngineError, UnknownProgramError
from repro.experiments.runner import GridCell, expand_grid, run_grid
from repro.experiments.sharedmem import SharedTopology, attach_network
from repro.graphs.generators import gnp_graph, star_graph


class TestNetworkFromCsr:
    def test_round_trip_preserves_topology(self, small_gnp):
        original = Network.congest(small_gnp)
        indptr, indices = original.csr()
        rebuilt = Network.from_csr(indptr, indices, bit_budget=original.bit_budget)
        assert rebuilt.n == original.n
        assert rebuilt.bit_budget == original.bit_budget
        for v in range(original.n):
            assert rebuilt.neighbors(v) == original.neighbors(v)
            assert rebuilt.degree(v) == original.degree(v)
        assert rebuilt.max_degree == original.max_degree

    def test_lazy_graph_reconstruction(self):
        g = star_graph(7)
        original = Network.congest(g)
        rebuilt = Network.from_csr(*original.csr(), bit_budget=None)
        assert nx.is_isomorphic(rebuilt.graph, g)
        assert sorted(rebuilt.graph.nodes()) == sorted(g.nodes())
        assert sorted(rebuilt.graph.edges()) == sorted(g.edges())

    def test_malformed_csr_rejected(self):
        with pytest.raises(GraphError):
            Network.from_csr([0, 2], [1], bit_budget=None)
        with pytest.raises(GraphError):
            Network.from_csr([0], [], bit_budget=None)


class TestSharedTopology:
    def test_publish_attach_round_trip(self):
        g = gnp_graph(40, 0.15, seed=2)
        network = Network.congest(g)
        topology = SharedTopology.publish(network)
        try:
            rebuilt = attach_network(topology.handle)
            assert rebuilt.n == network.n
            assert rebuilt.bit_budget == network.bit_budget
            for v in range(network.n):
                assert rebuilt.neighbors(v) == network.neighbors(v)
        finally:
            topology.unlink()

    def test_handle_is_picklable(self):
        import pickle

        network = Network.congest(star_graph(5))
        topology = SharedTopology.publish(network)
        try:
            handle = pickle.loads(pickle.dumps(topology.handle))
            rebuilt = attach_network(handle)
            assert rebuilt.n == network.n
        finally:
            topology.unlink()

    def test_edgeless_graph_publishes(self):
        network = Network.local(nx.empty_graph(3))
        topology = SharedTopology.publish(network)
        try:
            rebuilt = attach_network(topology.handle)
            assert rebuilt.n == 3
            assert all(rebuilt.neighbors(v) == () for v in range(3))
        finally:
            topology.unlink()


class TestGridExpansionValidation:
    def test_unknown_engine_raises_structured(self):
        with pytest.raises(UnknownEngineError) as exc:
            expand_grid(("tree",), (16,), engines=("warp-drive",))
        assert "warp-drive" in str(exc.value)
        assert "fast" in str(exc.value)

    def test_unknown_program_raises_structured(self):
        with pytest.raises(UnknownProgramError) as exc:
            expand_grid(("tree",), (16,), programs=("quicksort",))
        assert "quicksort" in str(exc.value)


class TestSharedMemoryGrid:
    GRID = [
        GridCell(family="gnp", n=24, program=p, engine=e, seed=5)
        for p in ("bfs", "greedy")
        for e in ("reference", "fast", "vector")
    ]

    def _strip_walls(self, results):
        import copy

        stripped = copy.deepcopy(results)
        for rec in stripped:
            rec.pop("wall_s", None)
        return stripped

    def test_workers_match_sequential(self):
        sequential = run_grid(self.GRID, jobs=1)
        parallel = run_grid(self.GRID, jobs=2)
        assert self._strip_walls(sequential) == self._strip_walls(parallel)
        assert all(r["ok"] for r in parallel)

    def test_failed_topology_is_per_cell_structured(self):
        cells = [
            GridCell(family="gnp", n=16, program="bfs", engine="fast"),
            GridCell(family="nope", n=16, program="bfs", engine="fast"),
        ]
        for jobs in (1, 2):
            results = run_grid(cells, jobs=jobs)
            assert [r["ok"] for r in results] == [True, False]
            assert results[1]["error"]["type"] == "GraphError"
